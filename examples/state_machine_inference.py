#!/usr/bin/env python3
"""Infer a protocol state machine from execution traces (paper Sec. 4.2).

Reproduces the paper's signature methodology: instrument the QUIC sender,
run it through a set of network environments, and infer the congestion-
control state machine (Fig. 3a) from the traces — including transition
probabilities, per-state dwell times, and Synoptic-style temporal
invariants.  Also prints the BBR machine (Fig. 3b) to show the approach
ports to other congestion controllers, and writes Graphviz DOT files you
can render with ``dot -Tpng``.

Run:  python examples/state_machine_inference.py
"""

from pathlib import Path

from repro.core import ProtocolSpec, infer
from repro.core.runner import run_page_load
from repro.devices import MOTOG
from repro.http import page, single_object_page
from repro.netem import emulated
from repro.quic import quic_config

OUT_DIR = Path(__file__).parent / "output"

#: Environments chosen to exercise every Table 3 state.
ENVIRONMENTS = [
    ("clean 10 Mbps", emulated(10.0), single_object_page(1024 * 1024), {}),
    ("lossy 100 Mbps", emulated(100.0, loss_pct=1.0),
     single_object_page(2 * 1024 * 1024), {}),
    ("multiplexed", emulated(5.0), page(10, 50 * 1024), {}),
    ("mobile client", emulated(50.0), single_object_page(10 * 1024 * 1024),
     {"device": MOTOG}),
    ("high bandwidth", emulated(100.0), single_object_page(10 * 1024 * 1024),
     {}),
]


def main() -> None:
    OUT_DIR.mkdir(exist_ok=True)

    print("collecting execution traces across environments...")
    traces = []
    for name, scenario, web_page, extra in ENVIRONMENTS:
        out = run_page_load(scenario, web_page, "quic", seed=1, trace=True,
                            **extra)
        visited = sorted(set(out.server_trace.state_sequence()))
        print(f"  {name:<15} PLT {out.plt:6.3f}s  states: {', '.join(visited)}")
        traces.append(out.server_trace)

    print("\n=== inferred QUIC Cubic state machine (Fig. 3a) ===")
    model = infer(traces)
    print(model.summary())

    invariants = model.mine_invariants([t.state_sequence() for t in traces])
    print(f"\nmined {len(invariants)} temporal invariants; e.g.:")
    for inv in invariants[:8]:
        print(f"  {inv}")

    dot_path = OUT_DIR / "quic_cubic_fsm.dot"
    dot_path.write_text(model.to_dot("QUIC Cubic congestion control"))
    print(f"\nDOT diagram written to {dot_path}")

    print("\n=== the same pipeline applied to BBR (Fig. 3b) ===")
    cfg = quic_config(34)
    cfg.use_bbr = True
    bbr_traces = []
    for seed in range(3):
        out = run_page_load(emulated(20.0), single_object_page(5 * 1024 * 1024),
                            ProtocolSpec("quic", cfg), seed=seed, trace=True)
        bbr_traces.append(out.server_trace)
    bbr_model = infer(bbr_traces)
    print(bbr_model.summary())
    (OUT_DIR / "quic_bbr_fsm.dot").write_text(bbr_model.to_dot("QUIC BBR"))
    print(f"DOT diagram written to {OUT_DIR / 'quic_bbr_fsm.dot'}")


if __name__ == "__main__":
    main()

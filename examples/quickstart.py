#!/usr/bin/env python3
"""Quickstart: one statistically sound QUIC-vs-TCP comparison.

This is the paper's core measurement unit (Sec. 3.3): load the same page
over QUIC and over TCP(+TLS+HTTP/2) back-to-back for ten rounds in an
emulated network, then report the percent PLT difference and whether it
is statistically significant under Welch's t-test at p < 0.01.

Run:  python examples/quickstart.py
"""

from repro.core import compare_page_load, run_page_load
from repro.http import single_object_page
from repro.netem import emulated


def main() -> None:
    # A 10 Mbps bottleneck with the testbed's base 36 ms RTT (Fig. 1).
    scenario = emulated(10.0)
    page = single_object_page(200 * 1024)  # one 200 KB image

    print(f"scenario : {scenario.describe()}")
    print(f"workload : {page.name} ({page.total_bytes} bytes)")
    print()

    # One instrumented run of each protocol, for a feel of the numbers.
    for protocol in ("quic", "tcp"):
        out = run_page_load(scenario, page, protocol, seed=0, trace=True)
        states = " -> ".join(out.server_trace.state_sequence()[:6])
        print(f"{protocol:>4}: PLT {out.plt * 1000:7.1f} ms   "
              f"server states: {states}")
    print()

    # The real measurement: ten rounds, both protocols, Welch's t-test.
    cell = compare_page_load(scenario, page, runs=10)
    print(cell.describe())
    if cell.significant():
        print(f"=> {cell.winner.upper()} is faster by {abs(cell.pct_diff):.1f}% "
              f"(significant at p < 0.01)")
    else:
        print("=> no statistically significant difference (a 'white cell')")


if __name__ == "__main__":
    main()

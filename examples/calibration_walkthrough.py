#!/usr/bin/env python3
"""Calibration walk-through (paper Sec. 4.1, Fig. 2).

Shows why naive QUIC evaluations go wrong, step by step:

1. hosting on a GAE-like frontend adds large *variable* wait time that
   poisons PLT measurements;
2. the public QUIC build (small MACW + the Chromium-52 ssthresh bug)
   downloads large objects ~2x slower than Google's deployment;
3. grey-box calibration — sweeping the server's MACW against a
   reference — recovers the deployed configuration.

Run:  python examples/calibration_walkthrough.py
"""

from repro.core.calibration import calibrate_macw, uncalibrated_vs_calibrated
from repro.netem import emulated


def main() -> None:
    scenario = emulated(100.0)
    print("step 1+2 — Fig. 2's three bars (10 MB over 100 Mbps):\n")
    for bar in uncalibrated_vs_calibrated(scenario=scenario, runs=5):
        print("  " + bar.describe())
    print()
    print("the GAE bar's wait time is large AND variable -> unusable for")
    print("PLT; the public build's download is ~2x the calibrated one.\n")

    print("step 3 — grey-box MACW search against the reference server:\n")
    result = calibrate_macw(candidates=(107, 215, 430, 860),
                            scenario=scenario, runs=3)
    print(result.describe())
    print()
    print(f"selected MACW: {result.best_macw} — the paper's calibrated 430")
    print("(any cap above the path BDP is indistinguishable, hence 860 ties).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""QUIC/TCP fairness on a shared bottleneck (paper Sec. 5.1, Fig. 4, Table 4).

Runs competing bulk flows over the 5 Mbps / 36 ms / 30 KB-buffer bottleneck
and prints per-flow throughput timelines plus the Table 4 aggregate.

Run:  python examples/fairness_timeline.py
"""

from repro.core.runner import run_fairness
from repro.core.stats import mean


def timeline(series, width=50, cap=5.0):
    """Render a (time, mbps) series as an ASCII strip chart."""
    out = []
    for t, mbps in series[:width]:
        bar = "#" * int(mbps / cap * 40)
        out.append(f"  {t:5.1f}s {mbps:5.2f} Mbps {bar}")
    return "\n".join(out)


def main() -> None:
    print("=== QUIC vs one TCP flow (Fig. 4a) ===")
    result = run_fairness(n_quic=1, n_tcp=1, duration=30.0, seed=1)
    for flow in sorted(result.average_mbps):
        print(f"\n{flow}: avg {result.average_mbps[flow]:.2f} Mbps")
        print(timeline(result.series[flow][::4]))

    print("\n=== Table 4 aggregate (paper: QUIC 2.71 vs TCP 1.62) ===")
    for label, n_tcp in (("QUIC vs TCP", 1), ("QUIC vs TCPx2", 2),
                         ("QUIC vs TCPx4", 4)):
        shares = []
        rows = {}
        for seed in range(3):
            r = run_fairness(n_quic=1, n_tcp=n_tcp, duration=30.0, seed=seed)
            shares.append(r.quic_share())
            for flow, mbps in r.average_mbps.items():
                rows.setdefault(flow, []).append(mbps)
        print(f"\n{label} (QUIC byte share {mean(shares) * 100:.0f}%)")
        for flow in sorted(rows):
            print(f"  {flow:<6} {mean(rows[flow]):5.2f} Mbps")
    print("\nBoth run Cubic — QUIC's pacing, per-packet ACKs and N=2")
    print("emulation let it take far more than its fair share.")


if __name__ == "__main__":
    main()

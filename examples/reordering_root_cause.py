#!/usr/bin/env python3
"""Root-cause a performance pathology: QUIC under packet reordering.

Walks through the paper's Fig. 10 analysis end to end:

1. measure QUIC vs TCP on a jittery path (112 ms RTT, 10 ms jitter —
   netem-style jitter reorders packets);
2. use the instrumentation to show *why* QUIC collapses (false losses
   from the fixed NACK threshold; heavy Recovery dwell) while TCP's
   DSACK adaptation raises its duplicate threshold and sails through;
3. apply the fixes the QUIC team was experimenting with (larger /
   adaptive / time-based thresholds) and quantify the repair.

Run:  python examples/reordering_root_cause.py
"""

from repro.core import ProtocolSpec
from repro.core.rootcause import loss_report
from repro.core.runner import run_bulk_transfer
from repro.netem import reordering_scenario
from repro.quic import quic_config

SIZE = 10 * 1024 * 1024


def show(label: str, result) -> None:
    report = loss_report_from(result)
    dwell = result.server_trace.dwell_fractions()
    recovery = dwell.get("Recovery", 0.0) + dwell.get("RetransmissionTimeout", 0.0)
    print(f"{label:<22} {result.elapsed:7.2f}s  "
          f"{result.throughput_mbps:6.2f} Mbps  "
          f"false losses {result.false_losses:5d}  "
          f"time in recovery {recovery * 100:4.1f}%")


def loss_report_from(result):
    return result  # the TransferResult already carries the counters


def main() -> None:
    scenario = reordering_scenario()
    print(f"scenario: {scenario.describe()}  (jitter => reordering)")
    print(f"workload: {SIZE // (1024 * 1024)} MB download\n")

    print("step 1 - the symptom:")
    quic_default = run_bulk_transfer(scenario, SIZE, "quic", seed=1)
    tcp = run_bulk_transfer(scenario, SIZE, "tcp", seed=1)
    show("QUIC (NACK=3)", quic_default)
    show("TCP (DSACK)", tcp)

    print("\nstep 2 - the root cause:")
    rate = quic_default.false_losses / max(quic_default.losses, 1)
    print(f"  {rate * 100:.0f}% of QUIC's declared losses were spurious: "
          "reordered packets deeper than the")
    print("  3-packet NACK threshold are treated as lost, every false loss "
          "halves the window.")
    print("  TCP instead detected its spurious retransmits via DSACK and "
          "raised its dupthresh.\n")

    print("step 3 - the fixes (paper: the QUIC team's experiments):")
    for label, mutate in (
        ("QUIC NACK=10", lambda c: setattr(c, "nack_threshold", 10)),
        ("QUIC NACK=50", lambda c: setattr(c, "nack_threshold", 50)),
        ("QUIC adaptive", lambda c: setattr(c, "adaptive_nack_threshold", True)),
        ("QUIC time-based", lambda c: setattr(c, "time_based_loss", True)),
    ):
        cfg = quic_config(34)
        mutate(cfg)
        show(label, run_bulk_transfer(scenario, SIZE,
                                      ProtocolSpec("quic", cfg), seed=1))

    print("\nconclusion: with reordering-robust loss detection QUIC matches "
          "or beats TCP again.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Video streaming QoE over QUIC vs TCP (paper Sec. 5.3, Table 6).

Streams a one-hour title pinned at each quality level for 60 seconds over
a 100 Mbps link with 1% loss, and prints the Table 6 metrics: time to
start, fraction loaded, buffering/playing ratio, rebuffer counts.

Run:  python examples/video_qoe.py
"""

from repro.netem import emulated
from repro.video import QUALITIES, measure_video_qoe

SCENARIO = emulated(100.0, loss_pct=1.0)
RUNS = 3


def main() -> None:
    print("Table 6 reproduction — 60 s sessions, 100 Mbps + 1% loss, "
          f"{RUNS} runs per cell\n")
    for quality in QUALITIES:
        for protocol in ("quic", "tcp"):
            agg = measure_video_qoe(quality, protocol, runs=RUNS,
                                    scenario=SCENARIO)
            print(agg.row())
        print()
    print("Expected shape (paper): parity at tiny/medium/hd720; at hd2160")
    print("QUIC loads more video and rebuffers less per played second.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Why QUIC slows down on phones (paper Sec. 5.2, Figs. 12-13).

Loads the same 10 MB object at 50 Mbps from a desktop, a Nexus 6 and a
MotoG, over both protocols, then explains the result with state dwell
times: on the MotoG the QUIC *server* spends most of its time
ApplicationLimited, starved of flow-control credit by the phone's slow
userspace packet consumption — while TCP's kernel path barely notices.

Run:  python examples/mobile_vs_desktop.py
"""

from repro.core import compare_dwell
from repro.core.runner import run_page_load
from repro.devices import DESKTOP, MOTOG, NEXUS6
from repro.http import single_object_page
from repro.netem import emulated

SCENARIO = emulated(50.0)
PAGE = single_object_page(10 * 1024 * 1024)


def main() -> None:
    print(f"workload: {PAGE.name} over {SCENARIO.describe()}\n")
    print(f"{'device':<10}{'QUIC PLT':>10}{'TCP PLT':>10}{'QUIC vs TCP':>14}")
    traces = {}
    for device in (DESKTOP, NEXUS6, MOTOG):
        quic = run_page_load(SCENARIO, PAGE, "quic", seed=1, trace=True,
                             device=device)
        tcp = run_page_load(SCENARIO, PAGE, "tcp", seed=1, device=device)
        traces[device.name] = quic.server_trace
        diff = (tcp.plt - quic.plt) / tcp.plt * 100
        print(f"{device.name:<10}{quic.plt:>9.2f}s{tcp.plt:>9.2f}s"
              f"{diff:>+13.1f}%")

    print("\nroot cause (Fig. 13): QUIC server state dwell, desktop vs MotoG")
    comparison = compare_dwell(traces["desktop"], traces["motog"],
                               "desktop", "motog")
    print(comparison.render())
    state, delta = comparison.dominant_shift()
    print(f"\ndominant shift: {state} ({delta * +100:+.0f} percentage points)")
    print("-> the phone cannot consume packets fast enough; flow-control")
    print("   credit dries up and the server sits ApplicationLimited.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Proxying study (paper Sec. 5.5, Figs. 16-18).

Quantifies what in-network split-connection proxies do for each protocol:

* a transparent TCP proxy halves each leg's RTT, speeding handshakes,
  slow start and loss recovery — recovering much of QUIC's advantage;
* an "unoptimized" QUIC proxy (QUIC's encrypted headers forbid
  transparent proxying, and the proxied legs lose 0-RTT) hurts small
  objects but helps large ones under loss.

Run:  python examples/proxy_study.py
"""

from repro.core.runner import run_page_load
from repro.core.stats import mean
from repro.http import single_object_page
from repro.netem import emulated

CONDITIONS = (
    ("base (36 ms RTT)", emulated(10.0)),
    ("high delay (+100 ms)", emulated(10.0, extra_delay_ms=100)),
    ("lossy (1%)", emulated(10.0, loss_pct=1.0)),
)
SIZES = ((10, "10 KB"), (1000, "1 MB"))
RUNS = 4


def plt(scenario, size_kb, protocol, proxied):
    samples = [
        run_page_load(scenario, single_object_page(size_kb * 1024), protocol,
                      seed=seed, proxied=proxied).plt
        for seed in range(RUNS)
    ]
    return mean(samples)


def main() -> None:
    for name, scenario in CONDITIONS:
        print(f"=== {name} ===")
        header = f"{'workload':<10}{'TCP':>9}{'TCP+proxy':>11}" \
                 f"{'QUIC':>9}{'QUIC+proxy':>12}"
        print(header)
        for size_kb, label in SIZES:
            tcp_direct = plt(scenario, size_kb, "tcp", False)
            tcp_proxy = plt(scenario, size_kb, "tcp", True)
            quic_direct = plt(scenario, size_kb, "quic", False)
            quic_proxy = plt(scenario, size_kb, "quic", True)
            print(f"{label:<10}{tcp_direct:>8.3f}s{tcp_proxy:>10.3f}s"
                  f"{quic_direct:>8.3f}s{quic_proxy:>11.3f}s")
        print()
    print("expected shapes (paper): the TCP proxy narrows QUIC's lead; the")
    print("QUIC proxy hurts small objects (no 0-RTT) and helps large+lossy.")


if __name__ == "__main__":
    main()

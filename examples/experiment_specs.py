#!/usr/bin/env python3
"""Declarative experiments: run the bundled JSON specs.

Demonstrates the automation layer (the paper's stated future work):
experiments as data.  Each spec under ``examples/specs/`` declares a
scenario grid, a workload grid and a round count; this script runs them
and prints the resulting heatmaps.

Run:  python examples/experiment_specs.py
"""

from pathlib import Path

from repro.core.experiment import ExperimentSpec, run_experiment

SPEC_DIR = Path(__file__).parent / "specs"


def main() -> None:
    for spec_path in sorted(SPEC_DIR.glob("*.json")):
        spec = ExperimentSpec.from_json(spec_path.read_text())
        print(f"=== {spec.name} — {spec.description}")
        print(f"    {len(spec.scenarios)} scenarios x "
              f"{len(spec.workloads)} workloads x {spec.runs} runs "
              f"on {spec.device}\n")
        # jobs=2 fans the grid across worker processes; results are
        # bit-identical to a serial run (every run is seed-determined).
        result = run_experiment(spec, jobs=2)
        print(result.heatmap().render())
        print()
        for row in result.summary_rows():
            print("  " + row)
        print()


if __name__ == "__main__":
    main()

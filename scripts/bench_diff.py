#!/usr/bin/env python
"""Perf-regression gate: compare two benchmark payloads.

Usage::

    python scripts/bench_diff.py BASELINE.json CANDIDATE.json \
        [--threshold 0.25] [--history benchmarks/results/bench_history.jsonl]

Understands the three machine-readable payload shapes the repo commits:

* ``BENCH_sim.json`` (``benchmark: sim_hotpath``) — the candidate fails
  the gate if ``events_per_sec`` or ``packets_per_sec`` regresses by
  more than ``--threshold`` (default 25 %), or if any fixed-seed
  simulated outcome (``plt_quic``, ``plt_tcp``, ``events_quic``,
  ``events_tcp``, ``packets_delivered``) changes on an identical
  workload.  When both payloads carry ``calibration_ops_per_sec`` the
  gated rates are normalised by it first, making the comparison
  meaningful across hosts.  ``plt_wall_seconds`` is informational.
* ``BENCH_executor.json`` (``executor_scaling``) — the payload shape is
  gated (every required key present) plus the correctness contract:
  ``results_identical`` must be true.  ``speedup`` is informational
  (it measures the host's core count more than the code).
* ``BENCH_store.json`` (``store_hit_rate``) — shape-gated, plus
  ``results_identical`` true and ``warm_hit_rate`` exactly 1.0 (a warm
  sweep re-executing anything is a cache-correctness bug).  The
  cold/warm speedup is informational.
* ``BENCH_pipeline.json`` (``pipeline``) — the streaming-executor gate:
  shape-gated, ``results_identical`` must be true (the pipelined sweep
  produced the same store as the round-trip path), and
  ``max_event_bytes`` must stay within ``event_bound_bytes`` (a record
  payload crossing the parent pipe is the exact regression the
  streaming API exists to prevent).  Throughput and parent RSS are
  informational trends.
* ``BENCH_manyflow.json`` (``manyflow``) — the thousand-flow fast
  path: shape-gated, ``results_identical`` must be true (batched link
  delivery produced the same simulated outcome as per-packet
  scheduling), ``speedup_vs_per_packet`` must stay >= 3.0 (the
  fast-path acceptance floor), the host-normalised ``events_per_sec``
  is gated on ``--threshold`` like the sim rates, and on an identical
  workload the fixed-seed ``outcome`` block must match exactly.
* ``BENCH_models.json`` (``models``) — the analytical-oracle gate:
  shape-gated, ``results_identical`` must be true (two passes over the
  oracle grid produced bit-identical simulated metrics), every gated
  cell must sit within the tolerance band (``within_tolerance ==
  gated_cells``), and ``max_abs_log_error`` must stay under
  ``ln(1 + tolerance)`` — a CC kernel whose behaviour drifts from its
  closed-form model (Mathis/AIMD, RFC 8312 Cubic, BDP-bound BBR) fails
  here even if fixed-seed goldens were re-baselined.  On an identical
  workload the per-cell ``fit`` block must match exactly.
* ``BENCH_chaos.json`` (``chaos``) — the fault-injection gate:
  shape-gated, ``results_identical`` must be true (a seeded fault
  schedule — 5xx replies, torn shard writes, a worker SIGKILL, a
  stalled request — must leave the final store byte-identical to the
  fault-free run), ``fsck_clean`` must be true (``fsck --repair``
  leaves zero residual corruption), ``fsck_detect_rate`` must be
  exactly 1.0 (every separately injected silent corruption is caught),
  ``plan_deterministic`` must be true (same seed, same schedule) and
  every scheduled fault must actually fire (``faults_fired ==
  faults_scheduled`` — a fault that never lands gates nothing).  The
  chaos/baseline wall-clock ratio is informational.
* ``BENCH_fabric.json`` (``fabric``) — the distributed-sweep gate:
  shape-gated, ``results_identical`` must be true (the served store
  renders the same report as the single-process baseline),
  ``resume_missing`` must be 0 (a completed sweep leaves no holes for
  a resume to find) and ``warm_hit_rate`` must be exactly 1.0 (a warm
  fabric pass re-executing cells is a remote-cache bug).  Fabric
  overhead and throughput are informational trends.

Exit codes: 0 = gate passes; 1 = regression, behaviour change, or
contract violation; 2 = malformed payload (missing required keys) or a
baseline/candidate benchmark-kind mismatch.

``--history PATH`` appends one JSON line per invocation (commit, kind,
outcome, headline metrics) so per-commit trends are visible, not just
one-step diffs; the committed ledger lives at
``benchmarks/results/bench_history.jsonl``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

GATED_RATES = ("events_per_sec", "packets_per_sec")
BEHAVIOUR_KEYS = ("plt_quic", "plt_tcp", "events_quic", "events_tcp",
                  "packets_delivered")

#: Keys every payload of a kind must carry (the "shape" gate).
REQUIRED_KEYS = {
    "sim_hotpath": ("current",),
    "executor_scaling": ("runs_total", "jobs", "serial_seconds",
                         "parallel_seconds", "speedup", "results_identical"),
    "store_hit_rate": ("runs_total", "cold_seconds", "warm_seconds",
                       "warm_speedup", "warm_hit_rate", "results_identical"),
    "pipeline": ("cells", "jobs", "roundtrip_seconds", "pipelined_seconds",
                 "pipelined_speedup", "events_per_sec", "max_event_bytes",
                 "event_bound_bytes", "parent_rss_peak_kb",
                 "results_identical"),
    "fabric": ("cells", "workers", "single_seconds", "fabric_seconds",
               "fabric_overhead", "cells_per_sec", "warm_hit_rate",
               "resume_missing", "results_identical"),
    "manyflow": ("flows", "batched_seconds", "per_packet_seconds",
                 "speedup_vs_per_packet", "events_per_sec",
                 "results_identical", "outcome"),
    "models": ("tolerance", "cells", "gated_cells", "within_tolerance",
               "max_abs_log_error", "results_identical", "fit"),
    "chaos": ("cells", "workers", "seed", "baseline_seconds",
              "chaos_seconds", "faults_scheduled", "faults_fired",
              "quarantined", "residual_issues", "corruptions_injected",
              "corruptions_detected", "fsck_detect_rate",
              "results_identical", "fsck_clean", "plan_deterministic"),
}

#: What lands in the history line per payload kind.
HISTORY_METRICS = {
    "sim_hotpath": ("events_per_sec", "packets_per_sec", "plt_wall_seconds"),
    "executor_scaling": ("speedup", "serial_seconds", "parallel_seconds"),
    "store_hit_rate": ("warm_speedup", "warm_hit_rate", "cold_seconds",
                       "warm_seconds"),
    "pipeline": ("pipelined_speedup", "events_per_sec",
                 "parent_rss_peak_kb", "pipelined_seconds",
                 "roundtrip_seconds"),
    "fabric": ("fabric_overhead", "cells_per_sec", "warm_hit_rate",
               "fabric_seconds", "single_seconds"),
    "manyflow": ("speedup_vs_per_packet", "events_per_sec",
                 "batched_seconds", "per_packet_seconds"),
    "models": ("max_abs_log_error", "mean_abs_log_error",
               "within_tolerance", "gated_cells"),
    "chaos": ("chaos_seconds", "baseline_seconds", "faults_fired",
              "quarantined", "fsck_detect_rate"),
}


def load_payload(path: str) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    with open(path) as handle:
        payload = json.load(handle)
    return payload.get("current", payload), payload


def payload_kind(payload: Dict[str, Any]) -> str:
    """The payload's declared benchmark; legacy payloads are sim-shaped."""
    return payload.get("benchmark", "sim_hotpath")


def check_shape(kind: str, payload: Dict[str, Any], current: Dict[str, Any],
                which: str) -> List[str]:
    source = current if kind == "sim_hotpath" else payload
    if kind == "sim_hotpath":
        # The sim payload nests its numbers under "current"; the shape
        # requirement is that the gated rates exist there.
        missing = [key for key in GATED_RATES if key not in current]
    else:
        missing = [key for key in REQUIRED_KEYS[kind] if key not in source]
    return [f"{which} payload missing required {kind} key(s): "
            f"{', '.join(missing)}"] if missing else []


# ----------------------------------------------------------------------
# per-kind gates: each returns the list of gate failures
# ----------------------------------------------------------------------
def gate_sim(base: Dict[str, Any], cand: Dict[str, Any],
             base_payload: Dict[str, Any], cand_payload: Dict[str, Any],
             threshold: float) -> List[str]:
    base_cal = base_payload.get("calibration_ops_per_sec")
    cand_cal = cand_payload.get("calibration_ops_per_sec")
    normalised = bool(base_cal and cand_cal)
    if normalised:
        print(f"host calibration: baseline {base_cal:,.0f} ops/s, "
              f"candidate {cand_cal:,.0f} ops/s (rates normalised)")
    else:
        print("host calibration missing from one payload; "
              "comparing raw rates")

    failures: List[str] = []
    for metric in GATED_RATES:
        b, c = base.get(metric), cand.get(metric)
        if not b or not c:
            print(f"{metric}: missing from a payload, skipped")
            continue
        if normalised:
            b, c = b / base_cal, c / cand_cal
        ratio = c / b
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            failures.append(
                f"{metric} regressed {100 * (1 - ratio):.1f}% "
                f"(limit {100 * threshold:.0f}%)")
        print(f"{metric}: {ratio:.3f}x of baseline [{status}]")

    b, c = base.get("plt_wall_seconds"), cand.get("plt_wall_seconds")
    if b and c:
        print(f"plt_wall_seconds: {b / c:.3f}x of baseline "
              "[informational]")

    if _same_workload(base_payload, cand_payload):
        for key in BEHAVIOUR_KEYS:
            if key in base and key in cand and base[key] != cand[key]:
                failures.append(
                    f"behaviour change: {key} {base[key]!r} -> {cand[key]!r}")
                print(f"{key}: {base[key]!r} -> {cand[key]!r} "
                      "[BEHAVIOUR CHANGE]")
    return failures


def gate_executor(base_payload: Dict[str, Any], cand_payload: Dict[str, Any],
                  threshold: float) -> List[str]:
    failures: List[str] = []
    if cand_payload.get("results_identical") is not True:
        failures.append(
            "executor contract: parallel results are not byte-identical "
            "to serial (results_identical is "
            f"{cand_payload.get('results_identical')!r})")
        print("results_identical: "
              f"{cand_payload.get('results_identical')!r} [CONTRACT FAIL]")
    else:
        print("results_identical: True [ok]")
    b, c = base_payload.get("speedup"), cand_payload.get("speedup")
    if b and c:
        print(f"speedup: {c:.2f}x vs baseline {b:.2f}x [informational]")
    return failures


def gate_store(base_payload: Dict[str, Any], cand_payload: Dict[str, Any],
               threshold: float) -> List[str]:
    failures: List[str] = []
    if cand_payload.get("results_identical") is not True:
        failures.append(
            "store contract: warm/resumed results are not byte-identical "
            "to the cold pass (results_identical is "
            f"{cand_payload.get('results_identical')!r})")
        print("results_identical: "
              f"{cand_payload.get('results_identical')!r} [CONTRACT FAIL]")
    else:
        print("results_identical: True [ok]")
    hit_rate = cand_payload.get("warm_hit_rate")
    if hit_rate != 1.0:
        failures.append(
            f"store contract: warm pass hit rate is {hit_rate!r}, "
            "expected 1.0 (a warm sweep re-executed cells)")
        print(f"warm_hit_rate: {hit_rate!r} [CONTRACT FAIL]")
    else:
        print("warm_hit_rate: 1.0 [ok]")
    b, c = base_payload.get("warm_speedup"), cand_payload.get("warm_speedup")
    if b and c:
        print(f"warm_speedup: {c:.1f}x vs baseline {b:.1f}x [informational]")
    return failures


def gate_pipeline(base_payload: Dict[str, Any], cand_payload: Dict[str, Any],
                  threshold: float) -> List[str]:
    failures: List[str] = []
    if cand_payload.get("results_identical") is not True:
        failures.append(
            "pipeline contract: the pipelined sweep did not produce the "
            "same store as the round-trip path (results_identical is "
            f"{cand_payload.get('results_identical')!r})")
        print("results_identical: "
              f"{cand_payload.get('results_identical')!r} [CONTRACT FAIL]")
    else:
        print("results_identical: True [ok]")
    bound = cand_payload.get("event_bound_bytes")
    largest = cand_payload.get("max_event_bytes")
    if largest > bound:
        failures.append(
            f"pipeline contract: a {largest}-byte event crossed the parent "
            f"pipe (bound {bound} bytes) — a record payload leaked into "
            "the event stream")
        print(f"max_event_bytes: {largest} > {bound} [CONTRACT FAIL]")
    else:
        print(f"max_event_bytes: {largest} <= {bound} [ok]")
    b = base_payload.get("pipelined_speedup")
    c = cand_payload.get("pipelined_speedup")
    if b and c:
        print(f"pipelined_speedup: {c:.2f}x vs baseline {b:.2f}x "
              "[informational]")
    b = base_payload.get("events_per_sec")
    c = cand_payload.get("events_per_sec")
    if b and c:
        print(f"events_per_sec: {c / b:.3f}x of baseline [informational]")
    return failures


def gate_fabric(base_payload: Dict[str, Any], cand_payload: Dict[str, Any],
                threshold: float) -> List[str]:
    failures: List[str] = []
    if cand_payload.get("results_identical") is not True:
        failures.append(
            "fabric contract: the served store does not render the same "
            "report as the single-process baseline (results_identical is "
            f"{cand_payload.get('results_identical')!r})")
        print("results_identical: "
              f"{cand_payload.get('results_identical')!r} [CONTRACT FAIL]")
    else:
        print("results_identical: True [ok]")
    missing = cand_payload.get("resume_missing")
    if missing != 0:
        failures.append(
            f"fabric contract: a completed sweep left {missing!r} key(s) "
            "unanswered by the server — records were lost in transit")
        print(f"resume_missing: {missing!r} [CONTRACT FAIL]")
    else:
        print("resume_missing: 0 [ok]")
    hit_rate = cand_payload.get("warm_hit_rate")
    if hit_rate != 1.0:
        failures.append(
            f"fabric contract: warm pass hit rate is {hit_rate!r}, "
            "expected 1.0 (a warm fabric sweep re-executed cells)")
        print(f"warm_hit_rate: {hit_rate!r} [CONTRACT FAIL]")
    else:
        print("warm_hit_rate: 1.0 [ok]")
    b = base_payload.get("fabric_overhead")
    c = cand_payload.get("fabric_overhead")
    if b and c:
        print(f"fabric_overhead: {c:.2f}x vs baseline {b:.2f}x "
              "[informational]")
    b = base_payload.get("cells_per_sec")
    c = cand_payload.get("cells_per_sec")
    if b and c:
        print(f"cells_per_sec: {c / b:.3f}x of baseline [informational]")
    return failures


def gate_chaos(base_payload: Dict[str, Any], cand_payload: Dict[str, Any],
               threshold: float) -> List[str]:
    failures: List[str] = []
    if cand_payload.get("results_identical") is not True:
        failures.append(
            "chaos contract: the fault-injected sweep did not converge "
            "to the fault-free store (results_identical is "
            f"{cand_payload.get('results_identical')!r})")
        print("results_identical: "
              f"{cand_payload.get('results_identical')!r} [CONTRACT FAIL]")
    else:
        print("results_identical: True [ok]")
    if cand_payload.get("fsck_clean") is not True:
        failures.append(
            "chaos contract: fsck found residual corruption after "
            f"--repair ({cand_payload.get('residual_issues')!r} issue(s))")
        print(f"fsck_clean: {cand_payload.get('fsck_clean')!r} "
              "[CONTRACT FAIL]")
    else:
        print("fsck_clean: True [ok]")
    rate = cand_payload.get("fsck_detect_rate")
    if rate != 1.0:
        failures.append(
            f"chaos contract: fsck detected only {rate!r} of the "
            "injected corruptions; the checksum layer is leaking")
        print(f"fsck_detect_rate: {rate!r} [CONTRACT FAIL]")
    else:
        print("fsck_detect_rate: 1.0 [ok]")
    if cand_payload.get("plan_deterministic") is not True:
        failures.append(
            "chaos contract: the same seed built two different fault "
            "schedules; chaos runs are no longer replayable")
        print("plan_deterministic: "
              f"{cand_payload.get('plan_deterministic')!r} [CONTRACT FAIL]")
    else:
        print("plan_deterministic: True [ok]")
    fired = cand_payload.get("faults_fired")
    scheduled = cand_payload.get("faults_scheduled")
    if fired != scheduled:
        failures.append(
            f"chaos contract: only {fired!r} of {scheduled!r} scheduled "
            "fault(s) fired — an unfired fault gates nothing")
        print(f"faults_fired: {fired!r}/{scheduled!r} [CONTRACT FAIL]")
    else:
        print(f"faults_fired: {fired}/{scheduled} [ok]")
    b = base_payload.get("baseline_seconds")
    c = cand_payload.get("chaos_seconds")
    bb = base_payload.get("chaos_seconds")
    if b and c and bb:
        print(f"chaos_seconds: {c:.2f}s vs baseline run's {bb:.2f}s "
              "[informational]")
    return failures


def gate_models(base_payload: Dict[str, Any], cand_payload: Dict[str, Any],
                threshold: float) -> List[str]:
    import math

    failures: List[str] = []
    if cand_payload.get("results_identical") is not True:
        failures.append(
            "models contract: two oracle-grid passes produced different "
            "simulated metrics (results_identical is "
            f"{cand_payload.get('results_identical')!r})")
        print("results_identical: "
              f"{cand_payload.get('results_identical')!r} [CONTRACT FAIL]")
    else:
        print("results_identical: True [ok]")

    gated = cand_payload.get("gated_cells")
    within = cand_payload.get("within_tolerance")
    if not gated or within != gated:
        failures.append(
            f"models contract: {within!r} of {gated!r} gated cell(s) "
            "within tolerance — a CC kernel diverged from its "
            "closed-form model")
        print(f"within_tolerance: {within!r}/{gated!r} [CONTRACT FAIL]")
    else:
        print(f"within_tolerance: {within}/{gated} [ok]")

    tolerance = cand_payload.get("tolerance")
    ceiling = math.log(1.0 + tolerance) if tolerance else None
    worst = cand_payload.get("max_abs_log_error")
    if ceiling is None or not isinstance(worst, (int, float)) \
            or worst > ceiling:
        failures.append(
            f"models contract: max |ln(obs/model)| is {worst!r}, the "
            f"ceiling is ln(1 + tolerance) = "
            f"{ceiling if ceiling is None else round(ceiling, 4)!r}")
        print(f"max_abs_log_error: {worst!r} [CONTRACT FAIL]")
    else:
        print(f"max_abs_log_error: {worst:.4f} (ceiling {ceiling:.4f}) "
              "[ok]")

    if _same_manyflow_workload(base_payload, cand_payload) \
            and base_payload.get("tolerance") == tolerance:
        bf = base_payload.get("fit")
        cf = cand_payload.get("fit")
        if bf != cf:
            failures.append(
                "behaviour change: the fixed-seed model-fit table differs "
                "on an identical oracle workload")
            print("fit: differs on identical workload [BEHAVIOUR CHANGE]")
        else:
            print("fit: identical on identical workload [ok]")
    b = base_payload.get("max_abs_log_error")
    if b and isinstance(worst, (int, float)):
        print(f"fit error trend: {worst:.4f} vs baseline {b:.4f} "
              "[informational]")
    return failures


#: The fast-path acceptance floor: batched delivery must beat
#: per-packet scheduling by at least this factor at the gated cell.
MANYFLOW_MIN_SPEEDUP = 3.0


def _same_manyflow_workload(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    wa, wb = a.get("workload"), b.get("workload")
    return bool(wa) and wa == wb


def gate_manyflow(base_payload: Dict[str, Any], cand_payload: Dict[str, Any],
                  threshold: float) -> List[str]:
    failures: List[str] = []
    if cand_payload.get("results_identical") is not True:
        failures.append(
            "manyflow contract: batched delivery and per-packet "
            "scheduling produced different simulated outcomes "
            f"(results_identical is "
            f"{cand_payload.get('results_identical')!r})")
        print("results_identical: "
              f"{cand_payload.get('results_identical')!r} [CONTRACT FAIL]")
    else:
        print("results_identical: True [ok]")

    speedup = cand_payload.get("speedup_vs_per_packet")
    if not isinstance(speedup, (int, float)) \
            or speedup < MANYFLOW_MIN_SPEEDUP:
        failures.append(
            f"manyflow contract: speedup_vs_per_packet is {speedup!r}, "
            f"the fast path must stay >= {MANYFLOW_MIN_SPEEDUP:g}x")
        print(f"speedup_vs_per_packet: {speedup!r} [CONTRACT FAIL]")
    else:
        print(f"speedup_vs_per_packet: {speedup:.2f}x "
              f"(floor {MANYFLOW_MIN_SPEEDUP:g}x) [ok]")

    base_cal = base_payload.get("calibration_ops_per_sec")
    cand_cal = cand_payload.get("calibration_ops_per_sec")
    b = base_payload.get("events_per_sec")
    c = cand_payload.get("events_per_sec")
    if b and c:
        if base_cal and cand_cal:
            ratio = (c / cand_cal) / (b / base_cal)
            note = "host-normalised"
        else:
            ratio = c / b
            note = "raw"
        if ratio < 1.0 - threshold:
            failures.append(
                f"events_per_sec regressed {100 * (1 - ratio):.1f}% "
                f"({note}; limit {100 * threshold:.0f}%)")
            print(f"events_per_sec: {ratio:.3f}x of baseline ({note}) "
                  "[REGRESSION]")
        else:
            print(f"events_per_sec: {ratio:.3f}x of baseline ({note}) [ok]")

    if _same_manyflow_workload(base_payload, cand_payload):
        bo = base_payload.get("outcome")
        co = cand_payload.get("outcome")
        if bo != co:
            changed = sorted(
                k for k in set(bo or {}) | set(co or {})
                if (bo or {}).get(k) != (co or {}).get(k))
            failures.append(
                "behaviour change: fixed-seed manyflow outcome differs "
                f"on an identical workload ({', '.join(changed)})")
            print(f"outcome: differs in {', '.join(changed)} "
                  "[BEHAVIOUR CHANGE]")
        else:
            print("outcome: identical on identical workload [ok]")
    return failures


# ----------------------------------------------------------------------
# history
# ----------------------------------------------------------------------
def _commit_id() -> Optional[str]:
    commit = os.environ.get("GIT_COMMIT") or os.environ.get("GITHUB_SHA")
    if commit:
        return commit[:12]
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def append_history(path: str, kind: str, ok: bool,
                   current: Dict[str, Any], payload: Dict[str, Any]) -> None:
    source = current if kind == "sim_hotpath" else payload
    metrics = {key: source[key] for key in HISTORY_METRICS[kind]
               if key in source}
    line = {
        "ts": round(time.time(), 3),
        "commit": _commit_id(),
        "benchmark": kind,
        "ok": ok,
        "metrics": metrics,
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")
    print(f"history line appended to {path}")


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("candidate", help="freshly measured BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional slowdown in the "
                             "gated rates (default 0.25 = 25%%)")
    parser.add_argument("--history", default=None, metavar="JSONL",
                        help="append a per-commit history line here "
                             "(e.g. benchmarks/results/bench_history.jsonl)")
    args = parser.parse_args(argv)

    base, base_payload = load_payload(args.baseline)
    cand, cand_payload = load_payload(args.candidate)

    base_kind = payload_kind(base_payload)
    cand_kind = payload_kind(cand_payload)
    if base_kind != cand_kind:
        print(f"FAIL: baseline is a {base_kind!r} payload but candidate "
              f"is {cand_kind!r}; compare like with like")
        return 2
    if base_kind not in REQUIRED_KEYS:
        print(f"FAIL: unknown benchmark kind {base_kind!r} "
              f"(expected one of {', '.join(sorted(REQUIRED_KEYS))})")
        return 2
    shape_errors = (check_shape(base_kind, base_payload, base, "baseline")
                    + check_shape(cand_kind, cand_payload, cand, "candidate"))
    if shape_errors:
        print("FAIL:")
        for line in shape_errors:
            print(f"  - {line}")
        return 2

    print(f"benchmark: {base_kind}")
    if base_kind == "sim_hotpath":
        failures = gate_sim(base, cand, base_payload, cand_payload,
                            args.threshold)
    elif base_kind == "executor_scaling":
        failures = gate_executor(base_payload, cand_payload, args.threshold)
    elif base_kind == "pipeline":
        failures = gate_pipeline(base_payload, cand_payload, args.threshold)
    elif base_kind == "fabric":
        failures = gate_fabric(base_payload, cand_payload, args.threshold)
    elif base_kind == "manyflow":
        failures = gate_manyflow(base_payload, cand_payload, args.threshold)
    elif base_kind == "models":
        failures = gate_models(base_payload, cand_payload, args.threshold)
    elif base_kind == "chaos":
        failures = gate_chaos(base_payload, cand_payload, args.threshold)
    else:
        failures = gate_store(base_payload, cand_payload, args.threshold)

    ok = not failures
    if args.history:
        append_history(args.history, cand_kind, ok, cand, cand_payload)

    if failures:
        print("\nFAIL:")
        for line in failures:
            print(f"  - {line}")
        return 1
    if base_kind == "sim_hotpath":
        print("\nOK: no regression beyond "
              f"{100 * args.threshold:.0f}% in {', '.join(GATED_RATES)}")
    else:
        print(f"\nOK: {base_kind} payload shape and contract hold")
    return 0


def _same_workload(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """Fixed-seed outcomes are only comparable on identical workloads."""
    wa, wb = a.get("workload"), b.get("workload")
    if not wa or not wb:
        return False
    # events/packets sizes change the microbenchmarks but not the PLT
    # pair; the PLT scenario/page strings are what must match.
    return (wa.get("plt_scenario") == wb.get("plt_scenario")
            and wa.get("plt_page") == wb.get("plt_page"))


if __name__ == "__main__":
    sys.exit(main())

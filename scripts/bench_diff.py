#!/usr/bin/env python
"""Perf-regression gate: compare two BENCH_sim.json payloads.

Usage::

    python scripts/bench_diff.py BASELINE.json CANDIDATE.json \
        [--threshold 0.25]

Compares the ``current`` section of each payload and exits non-zero if
the candidate regresses ``events_per_sec`` or ``packets_per_sec`` by
more than ``--threshold`` (default 25 %).  ``plt_wall_seconds`` is
reported but informational only: the canonical PLT pair is a short run,
so its wall clock is the noisiest of the three numbers.

When both payloads carry ``calibration_ops_per_sec`` (a pure-Python
spin-loop rate measured on the same host as the benchmarks), the gated
rates are normalised by it first.  That makes the comparison meaningful
across hosts: a laptop and a CI runner disagree wildly on absolute
events/sec, but far less on events-per-calibration-op.

The simulated outcomes embedded in the payloads (``plt_quic``,
``plt_tcp``, ``events_quic``, ``events_tcp``, ``packets_delivered``)
are fixed-seed and must be *identical* when the workloads match; a
mismatch is reported as a behaviour change and also fails the gate,
because it means the "optimisation" changed what the simulator computes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List

GATED_RATES = ("events_per_sec", "packets_per_sec")
BEHAVIOUR_KEYS = ("plt_quic", "plt_tcp", "events_quic", "events_tcp",
                  "packets_delivered")


def load_current(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        payload = json.load(handle)
    return payload.get("current", payload), payload


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_sim.json")
    parser.add_argument("candidate", help="freshly measured BENCH_sim.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional slowdown in the "
                             "gated rates (default 0.25 = 25%%)")
    args = parser.parse_args(argv)

    base, base_payload = load_current(args.baseline)
    cand, cand_payload = load_current(args.candidate)

    base_cal = base_payload.get("calibration_ops_per_sec")
    cand_cal = cand_payload.get("calibration_ops_per_sec")
    normalised = bool(base_cal and cand_cal)
    if normalised:
        print(f"host calibration: baseline {base_cal:,.0f} ops/s, "
              f"candidate {cand_cal:,.0f} ops/s (rates normalised)")
    else:
        print("host calibration missing from one payload; "
              "comparing raw rates")

    failures: List[str] = []
    for metric in GATED_RATES:
        b, c = base.get(metric), cand.get(metric)
        if not b or not c:
            print(f"{metric}: missing from a payload, skipped")
            continue
        if normalised:
            b, c = b / base_cal, c / cand_cal
        ratio = c / b
        status = "ok"
        if ratio < 1.0 - args.threshold:
            status = "REGRESSION"
            failures.append(
                f"{metric} regressed {100 * (1 - ratio):.1f}% "
                f"(limit {100 * args.threshold:.0f}%)")
        print(f"{metric}: {ratio:.3f}x of baseline [{status}]")

    b, c = base.get("plt_wall_seconds"), cand.get("plt_wall_seconds")
    if b and c:
        print(f"plt_wall_seconds: {b / c:.3f}x of baseline "
              "[informational]")

    if _same_workload(base_payload, cand_payload):
        for key in BEHAVIOUR_KEYS:
            if key in base and key in cand and base[key] != cand[key]:
                failures.append(
                    f"behaviour change: {key} {base[key]!r} -> {cand[key]!r}")
                print(f"{key}: {base[key]!r} -> {cand[key]!r} "
                      "[BEHAVIOUR CHANGE]")

    if failures:
        print("\nFAIL:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("\nOK: no regression beyond "
          f"{100 * args.threshold:.0f}% in {', '.join(GATED_RATES)}")
    return 0


def _same_workload(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """Fixed-seed outcomes are only comparable on identical workloads."""
    wa, wb = a.get("workload"), b.get("workload")
    if not wa or not wb:
        return False
    # events/packets sizes change the microbenchmarks but not the PLT
    # pair; the PLT scenario/page strings are what must match.
    return (wa.get("plt_scenario") == wb.get("plt_scenario")
            and wa.get("plt_page") == wb.get("plt_page"))


if __name__ == "__main__":
    sys.exit(main())

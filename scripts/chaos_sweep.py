"""The chaos gate: a seeded fault-injected sweep must change nothing.

The fabric's crash-safety claims (write-ahead shards, idempotent
uploads, respawn-and-replay) are exercised here under a *deterministic*
:class:`repro.faults.FaultPlan`: an HTTP 5xx burst, torn shard writes
on the server's backing store, one worker SIGKILL and one server stall,
all scheduled from one seed.  Three contracts are verified and gated
(``scripts/bench_diff.py`` kind ``chaos``):

* ``results_identical`` — after the faults, ``repro report
  --from-store`` over the served store is byte-identical to a
  fault-free run of the same sweep;
* ``fsck_clean`` — ``repro store fsck --repair`` quarantines the torn
  debris the injected faults left behind, and a second fsck pass finds
  zero residual corruption (and the repaired store still renders the
  identical report);
* ``fsck_detect_rate`` / ``plan_deterministic`` — fsck detects 100% of
  separately injected row corruptions, and the same seed builds the
  identical fault schedule twice (the replayability contract).

Writes ``benchmarks/results/chaos_sweep.txt`` and a machine-readable
``BENCH_chaos.json`` at the repo root.

Usage::

    PYTHONPATH=src python scripts/chaos_sweep.py \\
        [--cells 600] [--workers 3] [--seed 42]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import tempfile
import time
import warnings
from pathlib import Path

from repro.core.executor import (
    ProtocolSpec,
    RunRecord,
    RunRequest,
    usable_cpu_count,
)
from repro.core.report import build_store_report
from repro.fabric import StoreServer, iter_fabric_runs
from repro.faults import FaultPlan, FaultSpec, FaultyStore
from repro.http import single_object_page
from repro.netem import emulated
from repro.store import ShardStore, fsck

RESULTS = Path(__file__).parent.parent / "benchmarks" / "results" / \
    "chaos_sweep.txt"
BENCH_JSON = Path(__file__).parent.parent / "BENCH_chaos.json"

SCN = emulated(10.0)
PAGE = single_object_page(10_000)


def _synthetic_run(request: RunRequest) -> RunRecord:
    """Deterministic, nearly-free: the chaos exercises the plumbing."""
    plt = 0.25 + (request.seed % 97) / 1000.0
    return RunRecord(request=request, plt=plt, complete=True)


def build_requests(cells: int):
    protocols = (ProtocolSpec.quic(), ProtocolSpec.tcp())
    return [RunRequest(scenario=SCN, page=PAGE,
                       protocol=protocols[i % 2], seed=i)
            for i in range(cells)]


def build_plan(seed: int, cells: int) -> FaultPlan:
    """The headline schedule: 5xx burst, torn writes, a kill, a stall.

    Every offset is drawn from one seeded RNG, so the whole schedule —
    not just its shape — is a pure function of ``seed``.
    """
    rng = random.Random(f"chaos-sweep:{seed}")
    specs = [
        # a burst of three scheduled 5xx replies early in the sweep
        # (windows stay low: even a small sweep makes ~15 requests)
        FaultSpec("http", "error_500", after=rng.randint(2, 4)),
        FaultSpec("http", "error_500", after=rng.randint(5, 7)),
        FaultSpec("http", "error_500", after=rng.randint(8, 10)),
        # one stalled request mid-sweep (sleeps outside the store lock)
        FaultSpec("http", "stall", after=rng.randint(11, 14),
                  param=round(rng.uniform(0.2, 0.4), 3)),
        # torn appends on the server's backing store: the bytes tear
        # AND the request 500s, so the idempotent retry re-uploads
        FaultSpec("store", "torn_write", op="put",
                  after=rng.randint(5, cells // 4)),
        FaultSpec("store", "torn_write", op="put",
                  after=rng.randint(cells // 4, cells // 2)),
        # SIGKILL worker 1 after a handful of its events
        FaultSpec("worker", "kill", op="1", after=rng.randint(5, 25)),
    ]
    return FaultPlan(specs, seed=seed)


def _report(store) -> str:
    return build_store_report(store).replace(str(store.path), "STORE")


def run_sweep(requests, workdir: Path, *, workers: int, sync_every: int,
              plan: FaultPlan = None) -> float:
    """One full fabric sweep into ``workdir/central``; returns seconds.

    With a plan, all three fault surfaces are armed: the backing store
    is wrapped in :class:`FaultyStore`, the server takes the HTTP hook,
    and the coordinator takes the worker-kill hook.
    """
    central = ShardStore(workdir / "central")
    backing = central if plan is None else FaultyStore(central, plan)
    start = time.perf_counter()
    with StoreServer(backing, port=0, fault_plan=plan) as server:
        for _event in iter_fabric_runs(
                requests, server.url, workers=workers,
                sync_every=sync_every, run_fn=_synthetic_run,
                workdir=str(workdir / "wd"), fault_plan=plan,
                progress_timeout=60.0):
            pass
    return time.perf_counter() - start


def inject_corruptions(store_dir: Path, count: int, seed: int) -> int:
    """Flip ``count`` live rows' payloads without touching checksums.

    Parseable-but-wrong rows are the corruption class only checksums
    catch (torn lines announce themselves); fsck must find every one.
    """
    rng = random.Random(f"chaos-corrupt:{seed}")
    shards = sorted(p for p in store_dir.glob("*.jsonl")
                    if p.stem not in ("counters", "quarantine"))
    injected = 0
    for _ in range(count):
        shard = shards[rng.randrange(len(shards))]
        lines = shard.read_text().splitlines()
        pick = rng.randrange(len(lines))
        raw = json.loads(lines[pick])
        raw["record"]["plt"] = 99.0 + injected  # silent payload flip
        lines[pick] = json.dumps(raw, sort_keys=True)
        shard.write_text("\n".join(lines) + "\n")
        injected += 1
    return injected


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", type=int, default=600,
                        help="sweep size (default 600)")
    parser.add_argument("--workers", type=int, default=3,
                        help="fabric worker processes (default 3)")
    parser.add_argument("--sync-every", type=int, default=32,
                        help="worker upload batch (default 32)")
    parser.add_argument("--seed", type=int, default=42,
                        help="fault-plan seed (default 42)")
    parser.add_argument("--corruptions", type=int, default=8,
                        help="rows corrupted for the fsck detection check "
                             "(default 8)")
    args = parser.parse_args()

    requests = build_requests(args.cells)
    plan = build_plan(args.seed, args.cells)
    plan_deterministic = (
        plan.schedule() == build_plan(args.seed, args.cells).schedule())
    print(f"{args.cells} cells, {args.workers} workers, fault plan "
          f"seed={args.seed} ({len(plan.specs)} scheduled faults; "
          f"host CPUs: {os.cpu_count()}, usable: {usable_cpu_count()})")

    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    try:
        baseline_s = run_sweep(requests, workdir / "baseline",
                               workers=args.workers,
                               sync_every=args.sync_every)
        with ShardStore(workdir / "baseline" / "central") as store:
            baseline_report = _report(store)
        print(f"fault-free:  {baseline_s:6.2f} s")

        with warnings.catch_warnings():
            # torn-line warnings are the *point* here; keep output clean
            warnings.simplefilter("ignore", RuntimeWarning)
            chaos_s = run_sweep(requests, workdir / "chaos",
                                workers=args.workers,
                                sync_every=args.sync_every, plan=plan)
            fired = plan.fired()
            print(f"chaos:       {chaos_s:6.2f} s  ({len(fired)} fault(s) "
                  f"fired: "
                  + ", ".join(f"{f['surface']}/{f['kind']}" for f in fired)
                  + ")")

            central = workdir / "chaos" / "central"
            with ShardStore(central) as store:
                chaos_report = _report(store)
                repair = fsck(store, repair=True)
                verify = fsck(store)
                post_repair_report = _report(store)
        results_identical = (chaos_report == baseline_report
                             and post_repair_report == baseline_report)
        fsck_clean = verify.clean
        print(f"fsck:        {repair.quarantined} row(s) quarantined, "
              f"residual issues: {verify.issues}")

        # separate detection check: silent payload flips on the baseline
        injected = inject_corruptions(workdir / "baseline" / "central",
                                      args.corruptions, args.seed)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ShardStore(workdir / "baseline" / "central") as store:
                detect = fsck(store)
        detected = len(detect.checksum_failures)
        fsck_detect_rate = detected / injected if injected else 1.0
        print(f"detection:   {detected}/{injected} injected corruption(s) "
              f"found ({100 * fsck_detect_rate:.0f}%)")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    faults_fired = len(fired)
    ok = (results_identical and fsck_clean and fsck_detect_rate == 1.0
          and plan_deterministic and faults_fired == len(plan.specs))
    print(f"results identical: {results_identical}, fsck clean: "
          f"{fsck_clean}, plan deterministic: {plan_deterministic}, "
          f"faults fired: {faults_fired}/{len(plan.specs)}")

    lines = [
        "Seeded chaos sweep: fault injection vs the fault-free baseline",
        "==============================================================",
        "",
        f"sweep: {args.cells} cells, {args.workers} workers, "
        f"sync_every={args.sync_every}, fault seed {args.seed}",
        f"host CPU count: {os.cpu_count()} (usable: {usable_cpu_count()})",
        "",
        f"  fault-free sweep          {baseline_s:8.2f} s",
        f"  chaos sweep               {chaos_s:8.2f} s "
        f"({faults_fired}/{len(plan.specs)} scheduled faults fired)",
        "",
        f"  reports byte-identical    {results_identical}",
        f"  rows quarantined          {repair.quarantined:8d}",
        f"  residual fsck issues      {verify.issues:8d}",
        f"  corruption detect rate    {100 * fsck_detect_rate:7.0f}%"
        f"  ({detected}/{injected})",
        f"  plan deterministic        {plan_deterministic}",
        "",
        "Faults fired (schedule order):",
    ] + [f"  {f['sequence']:2d}. {f['surface']}/{f['kind']} on "
         f"{f['op'] or 'any'} (after {f['after']})" for f in fired] + [
        "",
        "Torn writes 500 the request and leave debris; the idempotent",
        "retry re-uploads, fsck --repair quarantines the debris, and the",
        "store converges to the byte-identical fault-free state.",
    ]
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text("\n".join(lines) + "\n")
    print(f"written to {RESULTS}")

    payload = {
        "benchmark": "chaos",
        "cells": args.cells,
        "workers": args.workers,
        "sync_every": args.sync_every,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpu_count(),
        "baseline_seconds": round(baseline_s, 4),
        "chaos_seconds": round(chaos_s, 4),
        "faults_scheduled": len(plan.specs),
        "faults_fired": faults_fired,
        "quarantined": repair.quarantined,
        "residual_issues": verify.issues,
        "corruptions_injected": injected,
        "corruptions_detected": detected,
        "fsck_detect_rate": round(fsck_detect_rate, 6),
        "results_identical": results_identical,
        "fsck_clean": fsck_clean,
        "plan_deterministic": plan_deterministic,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"written to {BENCH_JSON}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Sec. 5.4 — historical comparison across QUIC versions 25-37.

Paper shape: with the configuration held constant, versions 25-36 yield
nearly identical performance; QUIC 37 differs only through its larger
default MACW.
"""

from repro.core.stats import mean, sample_std
from repro.core.runner import measure_plts
from repro.http import single_object_page
from repro.netem import emulated
from repro.quic import quic_config

from .harness import bench_runs, run_once, save_result

VERSIONS = (25, 28, 30, 32, 34, 36)
SCENARIO = emulated(10.0)
PAGE = single_object_page(1024 * 1024)


def _version_sweep():
    runs = max(bench_runs() - 2, 3)
    results = {}
    for version in VERSIONS:
        cfg = quic_config(version, macw_packets=430)
        results[version] = measure_plts(SCENARIO, PAGE, "quic", runs=runs,
                                        quic_cfg=cfg)
    cfg37 = quic_config(37)  # default MACW 2000
    results[37] = measure_plts(SCENARIO, PAGE, "quic", runs=runs,
                               quic_cfg=cfg37)
    return results


def test_sec54_version_stability(benchmark):
    results = run_once(benchmark, _version_sweep)
    lines = ["Sec. 5.4 — PLT by QUIC version, same configuration "
             "(1 MB over 10 Mbps)", ""]
    for version, plts in sorted(results.items()):
        lines.append(f"QUIC {version:>2}: {mean(plts):.4f}s "
                     f"(sd {sample_std(plts):.4f})")
    save_result("sec54_versions", "\n".join(lines))

    fixed_config = [mean(results[v]) for v in VERSIONS]
    spread = (max(fixed_config) - min(fixed_config)) / min(fixed_config)
    assert spread < 0.02  # "nearly identical results"
    # At 10 Mbps the MACW never binds, so 37 matches as well.
    assert abs(mean(results[37]) - mean(results[34])) / mean(results[34]) < 0.05


def test_sec54_state_machine_stability(benchmark):
    """The longitudinal FSM check: versions 25-36 produce *identical*
    inferred state machines under the same configuration (Sec. 5.4)."""
    from repro.core import infer
    from repro.core.diffing import version_stability_report, diff_models
    from repro.core.runner import run_page_load

    def sweep():
        models = {}
        for version in (25, 30, 34, 36):
            traces = []
            for scenario, workload in (
                (emulated(10.0), single_object_page(1024 * 1024)),
                (emulated(50.0, loss_pct=1.0), single_object_page(1024 * 1024)),
            ):
                cfg = quic_config(version, macw_packets=430)
                out = run_page_load(scenario, workload, "quic", seed=1,
                                    trace=True, quic_cfg=cfg)
                traces.append(out.server_trace)
            models[version] = infer(traces)
        return models

    models = run_once(benchmark, sweep)
    report = version_stability_report(models, baseline=25)
    save_result("sec54_fsm_stability", report)
    for version in (30, 34, 36):
        diff = diff_models(models[25], models[version])
        assert diff.is_empty, f"QUIC {version} diverged: {diff.render()}"

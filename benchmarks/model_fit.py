"""Analytical-model oracle gate -> BENCH_models.json.

Runs the ``repro validate`` oracle grid — steady-state-friendly
manyflow cells for each pluggable CC kernel (reno / cubic / bbr, QUIC
and TCP parameterisations, two loss rates) — twice, and records:

* ``results_identical``   — the determinism contract: both passes must
  produce bit-identical simulated metrics for every cell,
* ``within_tolerance``    — gated cells whose observed/model ratio sits
  inside the tolerance band (the gate requires all of them),
* ``max_abs_log_error``   — the worst |ln(observed/model)| over gated
  cells; the ceiling is ``ln(1 + tolerance)`` by construction, and
  ``scripts/bench_diff.py`` trends it per commit,
* ``fit``                 — the per-cell table itself, so the diff gate
  can cross-check fixed-seed behaviour between commits.

Usage::

    PYTHONPATH=src python benchmarks/model_fit.py [--quick] \
        [--out BENCH_models.json]
"""

from __future__ import annotations

import argparse
import math
import platform
from pathlib import Path

from repro.core.bench import calibrate, write_payload
from repro.core.executor import run_requests
from repro.core.models import (
    DEFAULT_TOLERANCE,
    fit_records,
    oracle_requests,
    render_model_fit_table,
)

DEFAULT_OUT = Path(__file__).parent.parent / "BENCH_models.json"


def run_grid(ccs, loss_rates, seeds, flows):
    records = run_requests(oracle_requests(ccs=ccs, loss_rates=loss_rates,
                                           seeds=seeds, flows=flows),
                           jobs=0)
    failed = [r for r in records if not r.complete]
    metrics = [r.metrics for r in records]
    return fit_records(records), metrics, failed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="accepted observed/model band "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--quick", action="store_true",
                        help="reno-only, one loss cell — fast but not "
                             "the gated grid; for local iteration only")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT})")
    args = parser.parse_args()

    ccs = ("reno",) if args.quick else ("reno", "cubic", "bbr")
    loss_rates = (0.01,) if args.quick else (0.01, 0.02)
    seeds, flows = (0,), 8

    fit, metrics_a, failed = run_grid(ccs, loss_rates, seeds, flows)
    _, metrics_b, _ = run_grid(ccs, loss_rates, seeds, flows)
    identical = metrics_a == metrics_b

    cells = fit.cells()
    gated = [cell for cell in cells if cell.gated]
    within = [cell for cell in gated if cell.within(args.tolerance)]
    log_errors = [abs(math.log(cell.ratio)) for cell in gated
                  if 0 < cell.ratio < math.inf]

    payload = {
        "benchmark": "models",
        "python": platform.python_version(),
        "calibration_ops_per_sec": round(calibrate(), 1),
        "workload": {
            "ccs": list(ccs),
            "loss_rates": list(loss_rates),
            "seeds": list(seeds),
            "flows": flows,
            "scenario": "manyflow_scenario(rate_mbps=50.0, rtt=0.040)",
        },
        "tolerance": args.tolerance,
        "cells": len(cells),
        "gated_cells": len(gated),
        "within_tolerance": len(within),
        "max_abs_log_error": round(max(log_errors), 4) if log_errors
        else None,
        "mean_abs_log_error": round(sum(log_errors) / len(log_errors), 4)
        if log_errors else None,
        "results_identical": identical,
        "fit": [
            {
                "cc": cell.cc, "proto": cell.proto,
                "rate_mbps": cell.rate_mbps, "rtt": cell.rtt,
                "loss_rate": cell.loss_rate,
                "observed": round(cell.observed, 3),
                "predicted": round(cell.predicted, 3),
                "ratio": round(cell.ratio, 4),
                "regime": cell.regime, "gated": cell.gated,
                "ok": cell.within(args.tolerance) if cell.gated else None,
            }
            for cell in cells
        ],
    }

    print(render_model_fit_table(cells, args.tolerance))
    print()
    print(f"gated cells:         {len(gated):>10}")
    print(f"within tolerance:    {len(within):>10}")
    print(f"max |ln(obs/model)|: "
          f"{payload['max_abs_log_error'] or float('nan'):>10.4f}")
    print(f"results identical:   {identical!s:>10}")
    ok = True
    if failed:
        print(f"ERROR: {len(failed)} oracle run(s) failed")
        ok = False
    if not identical:
        print("ERROR: the two oracle passes produced different metrics")
        ok = False
    if len(within) != len(gated):
        print("ERROR: gated cell(s) diverged from the analytical model")
        ok = False
    if not ok:
        return 1
    write_payload(payload, str(args.out))
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Fig. 3 — inferred state machines for QUIC's Cubic (a) and BBR (b).

Paper shape: the Cubic machine contains the standard states (Init,
SlowStart, CongestionAvoidance, ApplicationLimited) plus the QUIC-specific
ones (CongestionAvoidanceMaxed, TailLossProbe, Recovery/proportional rate
reduction); BBR shows Startup/Drain/ProbeBW/ProbeRTT.
"""

from repro.core import infer
from repro.core.runner import run_page_load
from repro.devices import MOTOG
from repro.http import page, single_object_page
from repro.netem import emulated
from repro.quic import quic_config

from .harness import run_once, save_result

#: A scenario mix chosen to visit every Table 3 state.
SCENARIOS = [
    (emulated(10.0), single_object_page(1024 * 1024), {}),
    (emulated(100.0, loss_pct=1.0), single_object_page(2 * 1024 * 1024), {}),
    (emulated(5.0), page(10, 50 * 1024), {}),
    (emulated(50.0), single_object_page(10 * 1024 * 1024), {"device": MOTOG}),
    (emulated(100.0), single_object_page(10 * 1024 * 1024), {}),
]


def _collect_cubic_traces():
    traces = []
    for scenario, web_page, extra in SCENARIOS:
        for seed in range(2):
            out = run_page_load(scenario, web_page, "quic", seed=seed,
                                trace=True, **extra)
            traces.append(out.server_trace)
    traces.append(_tail_loss_trace())
    return traces


def _tail_loss_trace():
    """A run whose final packets die on the wire, so the inferred machine
    includes the TailLossProbe / RetransmissionTimeout states too."""
    from repro.core.instrumentation import Trace
    from repro.netem import Simulator, build_path
    from repro.quic import open_quic_pair, quic_config

    sim = Simulator()
    scenario = emulated(10.0).with_(queue_bytes=10_000_000)
    path = build_path(sim, scenario, seed=3)
    trace = Trace("tail-loss", enabled=True)
    cfg = quic_config(34, macw_packets=20)  # wire-paced sender
    client, server = open_quic_pair(
        sim, path.client, path.server, cfg,
        request_handler=lambda m: m["size"], seed=3, server_trace=trace,
    )
    size = 200_000
    done = {}
    client.connect()
    client.request({"size": size}, lambda s, m, t: done.update({1: t}))

    def arm():
        stream = server.send_streams.get(1)
        if stream is not None and stream.bytes_sent >= size - 3 * 1350:
            path.bottleneck_down.drop_next(3)
            return
        sim.schedule(0.002, arm)

    sim.schedule(0.002, arm)
    assert sim.run_until(lambda: 1 in done, timeout=30.0)
    trace.close(sim.now)
    return trace


def test_fig03a_cubic_state_machine(benchmark):
    traces = run_once(benchmark, _collect_cubic_traces)
    model = infer(traces)
    invariants = model.mine_invariants([t.state_sequence() for t in traces])
    text = model.summary() + "\n\n" + model.to_dot("QUIC Cubic (Fig. 3a)")
    text += "\n\nmined invariants (first 20):\n" + "\n".join(
        str(inv) for inv in invariants[:20])
    save_result("fig03a_cubic_state_machine", text)

    expected = {"Init", "SlowStart", "CongestionAvoidance",
                "CongestionAvoidanceMaxed", "ApplicationLimited", "Recovery",
                "TailLossProbe"}
    assert expected <= model.states
    assert model.has_transition("Init", "SlowStart")
    assert model.has_transition("SlowStart", "CongestionAvoidance") or \
        model.has_transition("SlowStart", "Recovery")


def _collect_bbr_traces():
    traces = []
    cfg = quic_config(34)
    cfg.use_bbr = True
    for seed in range(3):
        out = run_page_load(emulated(20.0), single_object_page(5 * 1024 * 1024),
                            "quic", seed=seed, trace=True, quic_cfg=cfg)
        traces.append(out.server_trace)
    return traces


def test_fig03b_bbr_state_machine(benchmark):
    traces = run_once(benchmark, _collect_bbr_traces)
    model = infer(traces)
    text = model.summary() + "\n\n" + model.to_dot("QUIC BBR (Fig. 3b)")
    save_result("fig03b_bbr_state_machine", text)

    assert {"Startup", "Drain", "ProbeBW"} <= model.states
    assert model.has_transition("Startup", "Drain")
    assert model.has_transition("Drain", "ProbeBW")

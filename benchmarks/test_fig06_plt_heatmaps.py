"""Fig. 6 — desktop PLT heatmaps: QUIC 34 vs TCP, no added loss/delay.

Paper shape: QUIC (red) wins in every cell except large numbers of small
objects (Fig. 6b's right columns), where Hybrid Slow Start's early exit
costs it the win.
"""

from repro.core.runner import build_plt_heatmap
from repro.http import page, single_object_page
from repro.netem import emulated

from .harness import bench_runs, full_scale, run_once, save_result

RATES = (5.0, 10.0, 50.0, 100.0)


def _size_pages():
    sizes_kb = (5, 10, 100, 200, 500, 1000, 10_000) if full_scale() \
        else (5, 100, 1000, 10_000)
    return [single_object_page(kb * 1024) for kb in sizes_kb]


def _count_pages():
    counts = (1, 2, 5, 10, 100, 200) if full_scale() else (1, 10, 100, 200)
    return [page(n, 10 * 1024) for n in counts]


def test_fig06a_object_sizes(benchmark):
    heatmap = run_once(
        benchmark, build_plt_heatmap,
        "Fig. 6a — QUIC34 vs TCP, rate x object size (no added loss/delay)",
        [emulated(rate) for rate in RATES],
        _size_pages(),
        runs=bench_runs(),
    )
    save_result("fig06a_plt_sizes", heatmap.render())
    # QUIC wins the significant single-object cells across the board.
    assert heatmap.fraction_favoring_treatment() >= 0.85
    assert len(heatmap.significant_cells()) >= len(heatmap.cells) * 0.6


def test_fig06b_object_counts(benchmark):
    heatmap = run_once(
        benchmark, build_plt_heatmap,
        "Fig. 6b — QUIC34 vs TCP, rate x object count (10 KB objects)",
        [emulated(rate) for rate in RATES],
        _count_pages(),
        runs=bench_runs(),
    )
    save_result("fig06b_plt_counts", heatmap.render())
    # The many-small-objects columns are QUIC's weak spot: its average
    # advantage there collapses versus the single-object column.
    single_cells = [heatmap.get(f"{r:g}Mbps+0ms+0%loss", "1x10KB")
                    for r in RATES]
    many_cells = [heatmap.get(f"{r:g}Mbps+0ms+0%loss", "200x10KB")
                  for r in RATES]
    single_avg = sum(c.pct_diff for c in single_cells) / len(single_cells)
    many_avg = sum(c.pct_diff for c in many_cells) / len(many_cells)
    assert many_avg < single_avg - 5

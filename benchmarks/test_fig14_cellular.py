"""Fig. 14 / Table 5 — PLT over emulated operational cellular networks.

Paper shapes: on LTE, QUIC behaves like a low-bandwidth desktop link with
a larger 0-RTT benefit (higher RTTs); on 3G, higher reordering eats into
QUIC's advantage and higher variance turns many cells inconclusive.
"""

from repro.core.runner import build_plt_heatmap
from repro.http import single_object_page
from repro.netem import CELLULAR_PROFILES

from .harness import bench_runs, run_once, save_result

SIZES_KB = (10, 100, 1000)
NETWORKS = ("verizon-lte", "sprint-lte", "verizon-3g", "sprint-3g")


def _cellular_heatmap():
    scenarios = [CELLULAR_PROFILES[name].scenario() for name in NETWORKS]
    pages = [single_object_page(kb * 1024) for kb in SIZES_KB]
    return build_plt_heatmap(
        "Fig. 14 — QUIC34 vs TCP over emulated cell networks (Table 5)",
        scenarios, pages, runs=bench_runs(),
    )


def test_fig14_cellular(benchmark):
    heatmap = run_once(benchmark, _cellular_heatmap)
    table5 = ["Table 5 — emulated network characteristics:"]
    for name in NETWORKS:
        profile = CELLULAR_PROFILES[name]
        table5.append(
            f"  {name:<12} {profile.throughput_mbps:5.2f} Mbps  "
            f"RTT {profile.rtt_ms:5.1f} ({profile.rtt_std_ms:4.1f}) ms  "
            f"reorder {profile.reordering_pct:4.2f}%  "
            f"loss {profile.loss_pct:4.2f}%"
        )
    save_result("fig14_cellular", "\n".join(table5) + "\n\n" + heatmap.render())

    # LTE: QUIC wins for small/medium objects (0-RTT over high RTT).
    for network in ("verizon-lte", "sprint-lte"):
        small = heatmap.get(network, "1x10KB")
        assert small.pct_diff > 10
    # 3G: the advantage diminishes relative to LTE (reordering bites).
    lte_avg = sum(heatmap.get(n, "1x1000KB").pct_diff
                  for n in ("verizon-lte", "sprint-lte")) / 2
    g3_avg = sum(heatmap.get(n, "1x1000KB").pct_diff
                 for n in ("verizon-3g", "sprint-3g")) / 2
    assert g3_avg < lte_avg

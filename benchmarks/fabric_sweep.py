"""Measure the distributed sweep fabric against a single-process sweep.

One in-process :class:`~repro.fabric.StoreServer` (sharded JSONL
backing store) serves a localhost sweep fabric; the coordinator shards
the same N-cell grid across 4 worker processes, each executing its
shard into a local write-ahead shard store and bulk-uploading over
HTTP.  The run function is synthetic and nearly free, so the
measurement is the fabric plumbing itself: the batched ``/missing``
probe, worker spawn, per-shard sync round-trips and the merged event
stream through the coordinator.

Three contracts are verified and gated (``scripts/bench_diff.py``
kind ``fabric``):

* ``results_identical`` — the served store renders a byte-identical
  ``repro report --from-store`` to the single-process baseline store;
* ``resume_missing`` — a second batched ``/missing`` probe over every
  key returns nothing (the sweep left no holes to resume);
* ``warm_hit_rate`` — re-running the whole sweep against the warm
  server executes nothing (100 % remote hits).

Writes ``benchmarks/results/fabric_sweep.txt`` and a machine-readable
``BENCH_fabric.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/fabric_sweep.py \\
        [--cells 10000] [--workers 4] [--sync-every 256]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.core.executor import (
    ProtocolSpec,
    RunRecord,
    RunRequest,
    iter_runs,
    usable_cpu_count,
)
from repro.core.report import build_store_report
from repro.fabric import RemoteStore, StoreServer, iter_fabric_runs, \
    run_fabric_sweep
from repro.http import single_object_page
from repro.netem import emulated
from repro.store import RunCache, ShardStore, fingerprint_for, run_key

RESULTS = Path(__file__).parent / "results" / "fabric_sweep.txt"
BENCH_JSON = Path(__file__).parent.parent / "BENCH_fabric.json"

SCN = emulated(10.0)
PAGE = single_object_page(10_000)


def _synthetic_run(request: RunRequest) -> RunRecord:
    """A deterministic, nearly-free run: the sweep measures plumbing."""
    plt = 0.25 + (request.seed % 97) / 1000.0
    return RunRecord(request=request, plt=plt, complete=True)


def build_requests(cells: int):
    protocols = (ProtocolSpec.quic(), ProtocolSpec.tcp())
    return [RunRequest(scenario=SCN, page=PAGE,
                       protocol=protocols[i % 2], seed=i)
            for i in range(cells)]


def _report(store) -> str:
    return build_store_report(store).replace(str(store.path), "STORE")


def single_process_sweep(requests, path) -> float:
    cache = RunCache(ShardStore(path))
    start = time.perf_counter()
    for _event in iter_runs(requests, run_fn=_synthetic_run, store=cache):
        pass
    elapsed = time.perf_counter() - start
    cache.store.close()
    return elapsed


def fabric_sweep(requests, url, workers, sync_every, workdir):
    start = time.perf_counter()
    events = hits = 0
    for event in iter_fabric_runs(requests, url, workers=workers,
                                  sync_every=sync_every,
                                  run_fn=_synthetic_run,
                                  workdir=str(workdir)):
        events += 1
        if event.kind == "hit":
            hits += 1
    return time.perf_counter() - start, events, hits


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", type=int, default=10_000,
                        help="sweep size (default 10000)")
    parser.add_argument("--workers", type=int, default=4,
                        help="fabric worker processes (default 4)")
    parser.add_argument("--sync-every", type=int, default=256,
                        help="worker upload batch, in completed runs "
                             "(default 256)")
    args = parser.parse_args()

    requests = build_requests(args.cells)
    keys = [run_key(r, fingerprint=fingerprint_for(r)) for r in requests]
    print(f"{args.cells} cells, 1 localhost store server + "
          f"{args.workers} fabric workers (host CPUs: {os.cpu_count()}, "
          f"usable: {usable_cpu_count()})")

    workdir = Path(tempfile.mkdtemp(prefix="repro-fabric-"))
    try:
        single_s = single_process_sweep(requests, workdir / "single")
        print(f"single-process: {single_s:7.2f} s")

        with StoreServer(ShardStore(workdir / "central"), port=0) as srv:
            fabric_s, events, hits = fabric_sweep(
                requests, srv.url, args.workers, args.sync_every,
                workdir / "wd")
            print(f"fabric (cold):  {fabric_s:7.2f} s  "
                  f"({events} events, {hits} remote hits)")

            remote = RemoteStore(srv.url)
            resume_missing = len(remote.missing(keys))

            warm_start = time.perf_counter()
            warm = run_fabric_sweep(requests, srv.url,
                                    workers=args.workers,
                                    run_fn=_synthetic_run,
                                    workdir=str(workdir / "warm"))
            warm_s = time.perf_counter() - warm_start
            warm_hit_rate = warm["hits"] / args.cells if args.cells else 1.0
            print(f"fabric (warm):  {warm_s:7.2f} s  "
                  f"({warm['hits']}/{args.cells} remote hits)")

            with ShardStore(workdir / "single") as single_store:
                identical = _report(srv.store) == _report(single_store)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    overhead = fabric_s / single_s if single_s else float("inf")
    cells_per_sec = args.cells / fabric_s if fabric_s else float("inf")
    print(f"fabric overhead: {overhead:.2f}x single-process, "
          f"{cells_per_sec:,.0f} cells/s, resume_missing={resume_missing}, "
          f"results identical: {identical}")

    lines = [
        "Distributed sweep fabric vs single-process sweep",
        "================================================",
        "",
        f"sweep: {args.cells} independent cells (synthetic run fn), "
        f"1 store server + {args.workers} workers on localhost, "
        f"sync_every={args.sync_every}",
        f"host CPU count: {os.cpu_count()} (usable: {usable_cpu_count()})",
        "",
        f"  single-process sweep      {single_s:8.2f} s",
        f"  fabric sweep (cold)       {fabric_s:8.2f} s "
        f"({cells_per_sec:,.0f} cells/s)",
        f"  fabric sweep (warm)       {warm_s:8.2f} s "
        f"({100 * warm_hit_rate:.0f}% remote hits)",
        "",
        f"  fabric overhead           {overhead:8.2f} x",
        f"  resume /missing probe     {resume_missing:8d} keys",
        f"  reports byte-identical    {identical}",
        "",
        "The fabric pays one batched /missing probe, per-worker process",
        "spawn and HTTP upload round-trips on top of the run cost; with a",
        "nearly-free run fn that overhead dominates, so the ratio above",
        "is its upper bound.  Real sweeps amortise it over emulation",
        "time, and the contracts — identical reports, an empty resume",
        "probe, a 100% warm pass — are what the gate holds.",
    ]
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text("\n".join(lines) + "\n")
    print(f"written to {RESULTS}")

    payload = {
        "benchmark": "fabric",
        "cells": args.cells,
        "workers": args.workers,
        "sync_every": args.sync_every,
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpu_count(),
        "single_seconds": round(single_s, 4),
        "fabric_seconds": round(fabric_s, 4),
        "fabric_overhead": round(overhead, 4),
        "cells_per_sec": round(cells_per_sec, 1),
        "warm_seconds": round(warm_s, 4),
        "warm_hit_rate": round(warm_hit_rate, 6),
        "resume_missing": resume_missing,
        "results_identical": identical,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"written to {BENCH_JSON}")

    ok = identical and resume_missing == 0 and warm_hit_rate == 1.0
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

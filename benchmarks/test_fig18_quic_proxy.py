"""Fig. 18 — QUIC direct vs QUIC through an (unoptimized) QUIC proxy.

Paper shape: the proxy *hurts* small objects (no 0-RTT on the proxied
legs) but *helps* large objects under loss (per-leg loss recovery at half
the RTT).
"""

from repro.core.comparison import Comparison
from repro.core.heatmap import Heatmap
from repro.core.runner import measure_plts
from repro.http import single_object_page
from repro.netem import emulated

from .harness import bench_runs, run_once, save_result

SIZES_KB = (10, 200, 1000, 10_000)
CONDITIONS = (
    ("base-36ms", dict()),
    ("loss-1pct", dict(loss_pct=1.0)),
    ("delay+100ms", dict(extra_delay_ms=100.0)),
)


def _grid():
    heatmap = Heatmap(
        "Fig. 18 — QUIC direct vs QUIC proxied (positive = direct faster)",
        row_labels=[name for name, _ in CONDITIONS],
        col_labels=[f"1x{kb}KB" for kb in SIZES_KB],
        treatment="direct",
        baseline="proxied",
    )
    runs = bench_runs()
    for name, kwargs in CONDITIONS:
        scenario = emulated(10.0, **kwargs)
        for kb in SIZES_KB:
            page = single_object_page(kb * 1024)
            direct = measure_plts(scenario, page, "quic", runs=runs)
            proxied = measure_plts(scenario, page, "quic", runs=runs,
                                   proxied=True)
            heatmap.put(name, f"1x{kb}KB",
                        Comparison(f"{name}/{kb}", direct, proxied))
    return heatmap


def test_fig18_quic_proxy(benchmark):
    heatmap = run_once(benchmark, _grid)
    save_result("fig18_quic_proxy", heatmap.render())

    # Small objects: direct (0-RTT) beats the proxy everywhere.
    for condition, _ in CONDITIONS:
        small = heatmap.get(condition, "1x10KB")
        assert small.pct_diff > 0
    # Large objects under loss: the proxy's per-leg recovery wins
    # (i.e. "direct faster" goes negative or insignificant).
    big_lossy = heatmap.get("loss-1pct", "1x10000KB")
    assert big_lossy.pct_diff < 5

"""Measure serial vs parallel wall clock for the experiment executor.

Runs the same ExperimentSpec grid with ``jobs=1`` and ``jobs=N``,
verifies the results are byte-identical, and records the wall-clock
comparison in ``benchmarks/results/executor_scaling.txt`` plus a
machine-readable ``BENCH_executor.json`` at the repo root (so the perf
trajectory is trackable across PRs).

Usage::

    PYTHONPATH=src python benchmarks/executor_scaling.py [--jobs 4]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core.executor import resolve_jobs, usable_cpu_count
from repro.core.experiment import (
    ExperimentSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_experiment,
)

RESULTS = Path(__file__).parent / "results" / "executor_scaling.txt"
BENCH_JSON = Path(__file__).parent.parent / "BENCH_executor.json"


def scaling_spec() -> ExperimentSpec:
    """A 2 scenarios x 2 workloads x 2 protocols x 2 runs = 16-cell grid."""
    return ExperimentSpec(
        "executor-scaling",
        description="wall-clock scaling probe for the parallel executor",
        scenarios=[ScenarioSpec(10.0), ScenarioSpec(50.0, loss_pct=1.0)],
        workloads=[WorkloadSpec(1, 1000), WorkloadSpec(100, 10)],
        runs=2,
    )


def timed(spec: ExperimentSpec, jobs: int):
    start = time.perf_counter()
    result = run_experiment(spec, jobs=jobs)
    return time.perf_counter() - start, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4,
                        help="parallel worker count (default 4)")
    args = parser.parse_args()
    jobs = resolve_jobs(args.jobs)

    spec = scaling_spec()
    cells = (len(spec.scenarios) * len(spec.workloads)
             * len(spec.protocols) * spec.runs)
    print(f"spec {spec.name!r}: {cells} runs total")

    serial_s, serial = timed(spec, 1)
    print(f"serial (jobs=1):   {serial_s:7.2f} s")
    parallel_s, parallel = timed(spec, jobs)
    print(f"parallel (jobs={jobs}): {parallel_s:7.2f} s")

    identical = serial.to_json() == parallel.to_json()
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    print(f"speedup: {speedup:.2f}x, results identical: {identical}")

    lines = [
        "Executor scaling: serial vs parallel wall clock",
        "===============================================",
        "",
        f"spec: {spec.name} ({len(spec.scenarios)} scenarios x "
        f"{len(spec.workloads)} workloads x {len(spec.protocols)} protocols "
        f"x {spec.runs} runs = {cells} independent simulations)",
        f"host CPU count: {os.cpu_count()} (usable: {usable_cpu_count()})",
        "",
        f"  jobs=1 (serial)    {serial_s:8.2f} s",
        f"  jobs={jobs:<2}            {parallel_s:8.2f} s",
        "",
        f"  speedup            {speedup:8.2f} x",
        f"  results identical  {identical}",
        "",
        "Every run is a pure function of (configuration, seed), so the",
        "parallel ExperimentResult.to_json() is byte-identical to serial.",
    ]
    if usable_cpu_count() < 2:
        lines += [
            "",
            "note: this host exposes a single usable core; the executor's",
            "auto-serial fallback therefore runs the jobs=N request",
            "in-process instead of forking a pool that could only lose,",
            "so the expected speedup here is ~1.0x.  On an N-core host",
            "the independent simulations scale to ~min(N, jobs)x.",
        ]
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text("\n".join(lines) + "\n")
    print(f"written to {RESULTS}")
    BENCH_JSON.write_text(json.dumps({
        "benchmark": "executor_scaling",
        "runs_total": cells,
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpu_count(),
        "jobs": jobs,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(speedup, 4),
        "results_identical": identical,
    }, indent=2) + "\n")
    print(f"written to {BENCH_JSON}")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())

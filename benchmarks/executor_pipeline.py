"""Measure the pipelined executor against the round-trip record path.

Two architectures sweep the same N-cell grid through a 4-process pool
into a sharded store:

* **round-trip** (the pre-streaming design): every full ``RunRecord``
  is pickled back over the parent pipe and the *parent* writes it into
  the store, one offer per record;
* **pipelined** (``iter_runs``): the workers write their records
  directly into the store (one batched append per chunk) and only the
  payload-free ``RunEvent`` stream reaches the parent.

The run function is synthetic and nearly free, so the measurement is
the plumbing itself: IPC bytes, (de)serialisation and store writes.
Records are verified identical between the two stores, the parent-pipe
events are verified payload-free and size-bounded, and the parent's
peak RSS is recorded — the pipelined parent never holds a record.

Writes ``benchmarks/results/executor_pipeline.txt``, a machine-readable
``BENCH_pipeline.json`` at the repo root, and merges a ``pipeline``
summary block into ``BENCH_executor.json`` when that file exists.

Usage::

    PYTHONPATH=src python benchmarks/executor_pipeline.py \\
        [--cells 10000] [--jobs 4]
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import resource
import shutil
import tempfile
import time
from pathlib import Path

from repro.core.executor import (
    EVENT_WIRE_BOUND,
    ProtocolSpec,
    RunRecord,
    RunRequest,
    iter_runs,
    usable_cpu_count,
)
from repro.core.aggregate import store_aggregator
from repro.http import single_object_page
from repro.netem import emulated
from repro.store import RunCache, ShardStore

RESULTS = Path(__file__).parent / "results" / "executor_pipeline.txt"
BENCH_JSON = Path(__file__).parent.parent / "BENCH_pipeline.json"
EXECUTOR_JSON = Path(__file__).parent.parent / "BENCH_executor.json"

SCN = emulated(10.0)
PAGE = single_object_page(10_000)


def _synthetic_run(request: RunRequest) -> RunRecord:
    """A deterministic, nearly-free run: the sweep measures plumbing."""
    plt = 0.25 + (request.seed % 97) / 1000.0
    return RunRecord(request=request, plt=plt, complete=True)


def build_requests(cells: int):
    protocols = (ProtocolSpec.quic(), ProtocolSpec.tcp())
    return [RunRequest(scenario=SCN, page=PAGE,
                       protocol=protocols[i % 2], seed=i)
            for i in range(cells)]


def _rss_kb() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def pipelined_sweep(requests, path, jobs):
    """Workers write the store; the parent consumes bare events."""
    cache = RunCache(ShardStore(path))
    events = 0
    max_event_bytes = 0
    start = time.perf_counter()
    for event in iter_runs(requests, jobs=jobs, run_fn=_synthetic_run,
                           store=cache, force_pool=True):
        events += 1
        max_event_bytes = max(max_event_bytes, len(pickle.dumps(event)))
        assert event.record is None, "a record payload crossed the pipe"
    elapsed = time.perf_counter() - start
    cache.store.close()
    return elapsed, events, max_event_bytes


def roundtrip_sweep(requests, path, jobs):
    """The pre-streaming design, emulated faithfully: the parent probes
    the cache per request, full records ride back over the pipe, and
    the parent offers them into the store one by one."""
    cache = RunCache(ShardStore(path))
    start = time.perf_counter()
    misses = [r for r in requests if cache.lookup(r) is None]
    for event in iter_runs(misses, jobs=jobs, run_fn=_synthetic_run,
                           keep_records=True, force_pool=True):
        if event.terminal:
            cache.offer(event.record)
    elapsed = time.perf_counter() - start
    cache.store.close()
    return elapsed


def stores_identical(path_a, path_b) -> bool:
    with ShardStore(path_a) as a, ShardStore(path_b) as b:
        if set(a.keys()) != set(b.keys()):
            return False
        return store_aggregator(a).render() == store_aggregator(b).render()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", type=int, default=10_000,
                        help="sweep size (default 10000)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="pool worker count (default 4; the pool is "
                             "forced even on a single-core host)")
    args = parser.parse_args()

    requests = build_requests(args.cells)
    print(f"{args.cells} cells through a {args.jobs}-process pool "
          f"(host CPUs: {os.cpu_count()}, usable: {usable_cpu_count()})")

    workdir = Path(tempfile.mkdtemp(prefix="repro-pipeline-"))
    try:
        rss_before = _rss_kb()
        pipelined_s, events, max_event_bytes = pipelined_sweep(
            requests, workdir / "pipelined", args.jobs)
        rss_peak = _rss_kb()
        print(f"pipelined:  {pipelined_s:7.2f} s  "
              f"({events / pipelined_s:,.0f} events/s through the parent, "
              f"largest event {max_event_bytes} B)")

        roundtrip_s = roundtrip_sweep(requests, workdir / "roundtrip",
                                      args.jobs)
        print(f"round-trip: {roundtrip_s:7.2f} s")

        identical = stores_identical(workdir / "pipelined",
                                     workdir / "roundtrip")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    speedup = roundtrip_s / pipelined_s if pipelined_s else float("inf")
    events_per_sec = events / pipelined_s if pipelined_s else float("inf")
    print(f"speedup: {speedup:.2f}x, stores identical: {identical}, "
          f"parent RSS peak {rss_peak:,} kB")

    lines = [
        "Pipelined executor vs round-trip record path",
        "============================================",
        "",
        f"sweep: {args.cells} independent cells (synthetic run fn), "
        f"jobs={args.jobs}, sharded JSONL store",
        f"host CPU count: {os.cpu_count()} (usable: {usable_cpu_count()})",
        "",
        f"  round-trip (records -> parent -> store) {roundtrip_s:8.2f} s",
        f"  pipelined  (workers -> store)           {pipelined_s:8.2f} s",
        "",
        f"  speedup                   {speedup:8.2f} x",
        f"  events through parent     {events:8d} "
        f"({events_per_sec:,.0f}/s)",
        f"  largest parent-pipe event {max_event_bytes:8d} B "
        f"(bound {EVENT_WIRE_BOUND} B)",
        f"  parent RSS before/peak    {rss_before:8,} / {rss_peak:,} kB",
        f"  stores identical          {identical}",
        "",
        "In the round-trip design every RunRecord is pickled across the",
        "parent pipe and written by the parent; pipelined workers append",
        "their own records (one batched flock per chunk) and the parent",
        "sees only payload-free RunEvents — so parent IPC and memory are",
        "O(1) per cell regardless of record size.",
    ]
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text("\n".join(lines) + "\n")
    print(f"written to {RESULTS}")

    payload = {
        "benchmark": "pipeline",
        "cells": args.cells,
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpu_count(),
        "roundtrip_seconds": round(roundtrip_s, 4),
        "pipelined_seconds": round(pipelined_s, 4),
        "pipelined_speedup": round(speedup, 4),
        "events_total": events,
        "events_per_sec": round(events_per_sec, 1),
        "max_event_bytes": max_event_bytes,
        "event_bound_bytes": EVENT_WIRE_BOUND,
        "parent_rss_before_kb": rss_before,
        "parent_rss_peak_kb": rss_peak,
        "results_identical": identical,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"written to {BENCH_JSON}")

    if EXECUTOR_JSON.exists():
        executor_payload = json.loads(EXECUTOR_JSON.read_text())
        executor_payload["pipeline"] = {
            key: payload[key]
            for key in ("cells", "jobs", "pipelined_speedup",
                        "events_per_sec", "max_event_bytes",
                        "results_identical")
        }
        EXECUTOR_JSON.write_text(
            json.dumps(executor_payload, indent=2) + "\n")
        print(f"pipeline block merged into {EXECUTOR_JSON}")

    ok = identical and max_event_bytes <= EVENT_WIRE_BOUND
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Fig. 13 — state transition diagrams with dwell times: MotoG vs desktop.

Paper shape: at 50 Mbps with no added loss/delay the QUIC server spends
58% of its time ApplicationLimited when serving a MotoG, vs 7% for a
desktop client — the userspace packet-consumption bottleneck.
"""

from repro.core import compare_dwell, infer
from repro.core.runner import run_page_load
from repro.devices import DESKTOP, MOTOG
from repro.http import single_object_page
from repro.netem import emulated

from .harness import run_once, save_result

SCENARIO = emulated(50.0)
PAGE = single_object_page(10 * 1024 * 1024)


def _traces():
    desktop = run_page_load(SCENARIO, PAGE, "quic", seed=1, trace=True)
    motog = run_page_load(SCENARIO, PAGE, "quic", seed=1, trace=True,
                          device=MOTOG)
    return desktop, motog


def test_fig13_dwell_comparison(benchmark):
    desktop, motog = run_once(benchmark, _traces)
    comparison = compare_dwell(desktop.server_trace, motog.server_trace,
                               "desktop", "motog")
    desktop_model = infer([desktop.server_trace])
    motog_model = infer([motog.server_trace])
    text = "\n\n".join([
        "Fig. 13 — QUIC server state dwell, 50 Mbps, no added loss/delay",
        "(paper: ApplicationLimited 7% on desktop vs 58% on MotoG)",
        comparison.render(),
        "--- desktop state machine ---",
        desktop_model.to_dot("desktop"),
        "--- motog state machine ---",
        motog_model.to_dot("motog"),
    ])
    save_result("fig13_state_dwell", text)

    d = desktop.server_trace.dwell_fractions().get("ApplicationLimited", 0.0)
    m = motog.server_trace.dwell_fractions().get("ApplicationLimited", 0.0)
    assert d < 0.15
    assert m > 0.40
    state, delta = comparison.dominant_shift()
    assert state in ("ApplicationLimited", "CongestionAvoidance")
    # The PLT consequence (Fig. 12's mechanics):
    assert motog.plt > desktop.plt * 1.2

"""Measure multi-writer throughput: sqlite store vs sharded JSONL store.

The point of the sharded backend is that a many-core sweep writes
results without serialising on one sqlite writer lock.  This benchmark
makes that concrete: N worker processes each append M records to the
*same* store, for both backends, and the wall clock gives records/sec.
Afterwards every record must be present and readable — lost or torn
rows fail the run (exit 1), so this doubles as a concurrency smoke.

Writes ``benchmarks/results/store_shards.txt``.

Usage::

    PYTHONPATH=src python benchmarks/store_shards.py [--workers 4] \
        [--records 150]
"""

from __future__ import annotations

import argparse
import hashlib
import multiprocessing
import os
import time
from pathlib import Path

from repro.core.executor import ProtocolSpec, RunRecord, RunRequest
from repro.http import single_object_page
from repro.netem import emulated
from repro.store import open_store, record_to_dict  # noqa: F401  (doc link)

RESULTS = Path(__file__).parent / "results" / "store_shards.txt"


def _worker(store_path: str, worker: int, records: int) -> None:
    """Append ``records`` rows to the shared store (one process)."""
    store = open_store(store_path)
    request = RunRequest(scenario=emulated(10.0),
                         page=single_object_page(20_000),
                         protocol=ProtocolSpec.quic(), seed=worker)
    record = RunRecord(request=request, plt=1.0, complete=True,
                       metrics={"plt": 1.0})
    for i in range(records):
        key = hashlib.sha256(f"w{worker}-r{i}".encode()).hexdigest()
        store.put(key, record, fingerprint="bench")
    store.close()


def measure(backend: str, path: Path, workers: int, records: int
            ) -> "tuple[float, int]":
    store = open_store(path, backend=backend)
    store.close()
    procs = [multiprocessing.Process(target=_worker,
                                     args=(str(path), w, records))
             for w in range(workers)]
    start = time.perf_counter()
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
    elapsed = time.perf_counter() - start
    store = open_store(path)
    stored = len(store)
    missing = sum(
        1 for w in range(workers) for i in range(records)
        if hashlib.sha256(f"w{w}-r{i}".encode()).hexdigest() not in store)
    store.close()
    if missing:
        raise AssertionError(
            f"{backend}: {missing} of {workers * records} records lost "
            "under concurrent append")
    return elapsed, stored


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4,
                        help="concurrent writer processes (default 4)")
    parser.add_argument("--records", type=int, default=150,
                        help="records appended per worker (default 150)")
    args = parser.parse_args()
    total = args.workers * args.records

    import tempfile

    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for backend, name in (("sqlite", "bench.sqlite"),
                              ("shards", "bench-shards")):
            elapsed, stored = measure(backend, Path(tmp) / name,
                                      args.workers, args.records)
            rate = total / elapsed if elapsed else float("inf")
            rows.append((backend, elapsed, rate, stored))
            print(f"{backend:<7} {args.workers} writers x {args.records} "
                  f"records: {elapsed:6.2f} s  ({rate:,.0f} records/sec, "
                  f"{stored}/{total} stored)")

    sqlite_rate = rows[0][2]
    shards_rate = rows[1][2]
    ratio = shards_rate / sqlite_rate if sqlite_rate else float("inf")
    print(f"sharded store writes {ratio:.1f}x faster than sqlite with "
          f"{args.workers} concurrent writers")

    lines = [
        "Results store: concurrent multi-writer throughput",
        "=================================================",
        "",
        f"{args.workers} writer processes x {args.records} records each "
        f"({total} total), same store",
        f"host CPU count: {os.cpu_count()}",
        "",
    ]
    for backend, elapsed, rate, stored in rows:
        lines.append(f"  {backend:<7} {elapsed:8.2f} s   "
                     f"{rate:10,.0f} records/sec   {stored}/{total} stored")
    lines += [
        "",
        f"  shards/sqlite write-rate ratio: {ratio:.1f}x",
        "",
        "Every record is verified present after the writers join; lost",
        "or torn rows fail the benchmark.  sqlite serialises all writers",
        "on one database lock; the sharded JSONL store only collides",
        "writers that land in the same key-prefix bucket at the same",
        "instant.",
    ]
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text("\n".join(lines) + "\n")
    print(f"written to {RESULTS}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

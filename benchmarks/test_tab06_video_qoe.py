"""Table 6 — video QoE per quality level, 100 Mbps + 1% loss.

Paper shape: no meaningful QoE difference at tiny/medium/hd720; at hd2160
QUIC loads a larger fraction of the video in 60 s and spends a much
smaller share of time buffering per played second.
"""

from repro.core.stats import mean
from repro.netem import emulated
from repro.video import QUALITIES, measure_video_qoe

from .harness import bench_runs, run_once, save_result

SCENARIO = emulated(100.0, loss_pct=1.0)


def _table():
    runs = max(bench_runs() - 1, 3)
    rows = {}
    for quality in QUALITIES:
        for protocol in ("quic", "tcp"):
            rows[(quality, protocol)] = measure_video_qoe(
                quality, protocol, runs=runs, scenario=SCENARIO,
            )
    return rows


def test_tab06_video_qoe(benchmark):
    rows = run_once(benchmark, _table)
    lines = ["Table 6 — YouTube-style QoE, 60 s sessions, 100 Mbps + 1% loss",
             ""]
    for quality in QUALITIES:
        for protocol in ("quic", "tcp"):
            lines.append(rows[(quality, protocol)].row())
        lines.append("")
    save_result("tab06_video_qoe", "\n".join(lines))

    def loaded(quality, protocol):
        return rows[(quality, protocol)].stat("video_loaded_pct")[0]

    def buffer_ratio(quality, protocol):
        return rows[(quality, protocol)].stat("buffer_play_ratio_pct")[0]

    # Low/medium qualities: both protocols play smoothly.
    for quality in ("tiny", "medium", "hd720"):
        for protocol in ("quic", "tcp"):
            assert buffer_ratio(quality, protocol) < 15.0
    # tiny: both hit the preload cap at the same loaded fraction.
    assert abs(loaded("tiny", "quic") - loaded("tiny", "tcp")) < 3.0
    # hd2160: QUIC's goodput advantage shows — it loads about twice the
    # video (paper: 0.8% vs 0.4%) and spends a smaller share of its time
    # buffering per unit played (paper: 50.2% vs 73.1%).
    assert loaded("hd2160", "quic") > loaded("hd2160", "tcp") * 1.3
    assert buffer_ratio("hd2160", "quic") < buffer_ratio("hd2160", "tcp")

"""Fig. 2 — calibration: public default vs GAE vs calibrated EC2.

Paper shape: the GAE bar has a large, variable *wait* component; the
uncalibrated public server's *download* takes ~2x the calibrated one.
"""

from repro.core.calibration import calibrate_macw, uncalibrated_vs_calibrated
from repro.netem import emulated

from .harness import bench_runs, run_once, save_result


def test_fig02_server_configurations(benchmark):
    bars = run_once(
        benchmark, uncalibrated_vs_calibrated,
        scenario=emulated(100.0),
        size_bytes=10 * 1024 * 1024,
        runs=max(bench_runs() // 2, 3),
    )
    lines = ["Fig. 2 — 10 MB download over 100 Mbps, wait vs download time",
             ""]
    lines += [bar.describe() for bar in bars]
    save_result("fig02_calibration", "\n".join(lines))

    by_label = {bar.label: bar for bar in bars}
    public = by_label["public default (MACW=107,bug)"]
    gae = by_label["Google App Engine"]
    ec2 = by_label["calibrated EC2 (MACW=430)"]
    # Paper shapes: GAE's wait dominates; public build downloads ~2x slower.
    assert gae.mean_wait > ec2.mean_wait * 3
    assert public.mean_download > ec2.mean_download * 1.5


def test_fig02_grey_box_macw_search(benchmark):
    result = run_once(
        benchmark, calibrate_macw,
        candidates=(107, 215, 430, 860),
        scenario=emulated(100.0),
        size_bytes=10 * 1024 * 1024,
        runs=3,
    )
    save_result("fig02_macw_search", result.describe())
    assert result.best_macw in (430, 860)  # >= BDP: indistinguishable caps

"""Extension experiments beyond the paper's figures.

* BBR vs Cubic: the paper could not evaluate BBR fairly ("not yet
  performing as well as Cubic in our deployment tests" — Sec. 5.4);
  with both implemented here the comparison is one function call.
* Trace-driven cellular bandwidth (mahimahi-style, as used by Das [20]):
  QUIC vs TCP over a synthetic LTE capacity trace with outages.
"""

from repro.core.stats import mean
from repro.http import single_object_page
from repro.netem import (
    Simulator,
    TraceDrivenLink,
    build_path,
    emulated,
    lte_like_trace,
)
from repro.quic import open_quic_pair, quic_config
from repro.tcp import open_tcp_pair, tcp_config

from ..harness import run_once, save_result


def test_extension_bbr_vs_cubic(benchmark):
    """BBR v1 vs Cubic for QUIC bulk transfers, clean and lossy."""

    def run():
        from repro.core.runner import run_bulk_transfer

        out = {}
        for loss in (0.0, 1.0):
            for use_bbr in (False, True):
                cfg = quic_config(34)
                cfg.use_bbr = use_bbr
                result = run_bulk_transfer(
                    emulated(50.0, loss_pct=loss), 10 * 1024 * 1024, "quic",
                    seed=1, quic_cfg=cfg)
                out[(loss, "bbr" if use_bbr else "cubic")] = result
        return out

    out = run_once(benchmark, run)
    lines = ["BBR v1 vs Cubic — 10 MB over 50 Mbps", ""]
    for (loss, cc), result in sorted(out.items()):
        lines.append(f"loss={loss:3.1f}% {cc:<6} {result.elapsed:7.3f}s  "
                     f"{result.throughput_mbps:6.2f} Mbps")
    save_result("extension_bbr_vs_cubic", "\n".join(lines))

    # Both complete; under random loss BBR (loss-agnostic) holds rate
    # better than Cubic, matching its design goal.
    assert out[(1.0, "bbr")].elapsed < out[(1.0, "cubic")].elapsed * 1.5
    # The paper-era observation: clean-path Cubic is competitive.
    assert out[(0.0, "cubic")].elapsed < out[(0.0, "bbr")].elapsed * 1.5


def _trace_transfer(protocol, seed):
    sim = Simulator()
    path = build_path(sim, emulated(100.0), seed=seed)
    trace = lte_like_trace(mean_mbps=8.0, duration=120.0, seed=seed)
    driver = TraceDrivenLink(sim, [path.bottleneck_down, path.bottleneck_up],
                             trace)
    driver.start()
    handler = lambda m: m["size"]  # noqa: E731
    size = 3 * 1024 * 1024
    done = {}
    if protocol == "quic":
        client, _server = open_quic_pair(
            sim, path.client, path.server, quic_config(34),
            request_handler=handler, seed=seed)
        client.connect()
        client.request({"size": size}, lambda s, m, t: done.update({1: t}))
    else:
        client, _server = open_tcp_pair(
            sim, path.client, path.server, tcp_config(),
            request_handler=handler, seed=seed)
        client.connect(lambda now: client.request(
            {"size": size}, lambda m, meta, t: done.update({1: t})))
    assert sim.run_until(lambda: 1 in done, timeout=300.0)
    driver.stop()
    return done[1]


def test_extension_trace_driven_lte(benchmark):
    """QUIC vs TCP over a mahimahi-style synthetic LTE trace."""

    def run():
        results = {"quic": [], "tcp": []}
        for protocol in results:
            for seed in range(3):
                results[protocol].append(_trace_transfer(protocol, seed))
        return results

    results = run_once(benchmark, run)
    q, t = mean(results["quic"]), mean(results["tcp"])
    save_result("extension_trace_lte",
                f"3 MB over synthetic LTE trace (8 Mbps mean, outages): "
                f"QUIC {q:.2f}s, TCP {t:.2f}s")
    # QUIC's faster ramp + handshake advantage carries over to traces.
    assert q < t


def test_extension_aqm_fairness(benchmark):
    """What-if: the Table 4 bottleneck runs CoDel instead of droptail.

    AQM bounds the standing queue's sojourn time instead of tail-dropping
    a 30 KB buffer.  Measured effect: QUIC's share softens slightly
    (~75% -> ~73%) — the unfairness is mostly in the window-growth
    dynamics, not the drop discipline.
    """

    def run():
        from repro.core.monitors import FlowThroughputMonitor
        from repro.netem import CoDel, Simulator, build_bottleneck
        from repro.netem import fairness_bottleneck

        shares = {}
        for aqm in (False, True):
            sim = Simulator()
            scn = fairness_bottleneck()
            net, clients, servers, down = build_bottleneck(sim, scn, 2, seed=1)
            if aqm:
                codel = CoDel(target=0.010, interval=0.1)
                codel.on_drop = down._count_drop
                down._queue = codel
            monitor = FlowThroughputMonitor(down, interval=0.5)
            handler = lambda m: m["size"]  # noqa: E731
            qc, _ = open_quic_pair(sim, clients[0], servers[0],
                                   quic_config(34), request_handler=handler,
                                   seed=1, flow_id="quic")
            tc, _ = open_tcp_pair(sim, clients[1], servers[1], tcp_config(),
                                  request_handler=handler, seed=2,
                                  flow_id="tcp")
            blob = 100_000_000
            qc.connect()
            qc.request({"size": blob}, lambda *a: None)
            tc.connect(lambda now: tc.request({"size": blob},
                                              lambda *a: None))
            sim.run(until=40.0)
            q = monitor.average_mbps("quic", 40.0)
            t = monitor.average_mbps("tcp", 40.0)
            shares["codel" if aqm else "droptail"] = (q, t, q / (q + t))
        return shares

    shares = run_once(benchmark, run)
    lines = ["QUIC-vs-TCP fairness, droptail vs CoDel bottleneck (5 Mbps):"]
    for name, (q, t, share) in shares.items():
        lines.append(f"  {name:<9} QUIC {q:4.2f} Mbps, TCP {t:4.2f} Mbps "
                     f"(QUIC share {share * 100:.0f}%)")
    save_result("extension_aqm_fairness", "\n".join(lines))
    # Both flows make progress under both disciplines.
    for name, (q, t, share) in shares.items():
        assert q > 0.3 and t > 0.3


def test_extension_real_page_corpus(benchmark):
    """Das-style corpus comparison (Table 1's prior-work row).

    Loads a synthetic real-page corpus over both protocols at 10 Mbps
    and reports the win fraction — the aggregate, conflated view the
    paper argues must be complemented by controlled grids.
    """

    def run():
        from repro.core.runner import run_page_load
        from repro.http import corpus_statistics, synthetic_corpus

        corpus = synthetic_corpus(12, seed=7)
        wins = 0
        rows = []
        for page_ in corpus:
            quic = run_page_load(emulated(10.0), page_, "quic", seed=1).plt
            tcp = run_page_load(emulated(10.0), page_, "tcp", seed=1).plt
            wins += quic < tcp
            rows.append((page_.name, page_.object_count,
                         page_.total_bytes // 1024, quic, tcp))
        return corpus_statistics(corpus), wins, rows

    stats, wins, rows = run_once(benchmark, run)
    lines = [f"synthetic real-page corpus over 10 Mbps "
             f"(median {stats['median_objects']} objects, "
             f"median {stats['median_total_kb']} KB):", ""]
    for name, count, kb, quic, tcp in rows:
        lines.append(f"  {name:<14} {count:>3} objs {kb:>6} KB   "
                     f"QUIC {quic:7.3f}s  TCP {tcp:7.3f}s")
    lines.append("")
    lines.append(f"QUIC wins {wins}/{len(rows)} pages")
    save_result("extension_real_pages", "\n".join(lines))
    assert wins >= len(rows) * 0.7  # QUIC wins the bulk of realistic pages


def test_extension_abr_over_fluctuating_bandwidth(benchmark):
    """ABR x transport (extension): over Fig. 11's fluctuating link, the
    transport with steadier goodput sustains the higher average quality
    with fewer downward switches."""

    def run():
        from repro.netem import BandwidthSchedule, Simulator, build_path, mbps
        from repro.quic import open_quic_pair, quic_config
        from repro.tcp import open_tcp_pair, tcp_config
        from repro.video import AbrVideoPlayer

        out = {}
        for protocol in ("quic", "tcp"):
            sim = Simulator()
            scn = emulated(100.0).with_(queue_bytes=100_000)
            path = build_path(sim, scn, seed=4)
            sched = BandwidthSchedule(
                sim, [path.bottleneck_down, path.bottleneck_up],
                mbps(5.0), mbps(50.0), period=1.0)
            sched.start()
            handler = lambda m: m["size"]  # noqa: E731
            if protocol == "quic":
                client, _ = open_quic_pair(sim, path.client, path.server,
                                           quic_config(34),
                                           request_handler=handler, seed=4)
            else:
                client, _ = open_tcp_pair(sim, path.client, path.server,
                                          tcp_config(),
                                          request_handler=handler, seed=4)
            player = AbrVideoPlayer(sim, client, protocol=protocol)
            player.start()
            sim.run(until=60.0)
            metrics = player.finalize()
            out[protocol] = (player.mean_level(), player.switches_down,
                             metrics.rebuffer_count)
        return out

    out = run_once(benchmark, run)
    lines = ["ABR over 5-50 Mbps fluctuating link, 60 s sessions:"]
    for protocol, (level, downs, rebufs) in out.items():
        lines.append(f"  {protocol:<5} mean ladder rung {level:4.2f}, "
                     f"down-switches {downs}, rebuffers {rebufs}")
    save_result("extension_abr", "\n".join(lines))
    assert out["quic"][0] >= out["tcp"][0] - 0.3  # >= quality, roughly

"""Ablations of the design choices DESIGN.md calls out.

Each test turns one QUIC/TCP mechanism off (or swaps it) and verifies the
direction of its effect, isolating the contribution of the features the
paper credits for QUIC's behaviour.
"""

from repro.core.runner import (
    compare_quic_variants,
    measure_plts,
    run_bulk_transfer,
    run_fairness,
    run_page_load,
)
from repro.core.stats import mean
from repro.http import page, single_object_page
from repro.netem import emulated, fairness_bottleneck, reordering_scenario
from repro.quic import quic_config
from repro.tcp import tcp_config

from ..harness import bench_runs, run_once, save_result


def test_ablation_hybrid_slow_start(benchmark):
    """HSS off: many-small-objects pages speed up (the Sec. 5.2 root
    cause), at the price of slow-start overshoot elsewhere."""

    def run():
        scenario = emulated(50.0)
        web_page = page(200, 10 * 1024)
        on_cfg = quic_config(34)
        off_cfg = quic_config(34)
        off_cfg.cc.hybrid_slow_start = False
        on = measure_plts(scenario, web_page, "quic", runs=4, quic_cfg=on_cfg)
        off = measure_plts(scenario, web_page, "quic", runs=4, quic_cfg=off_cfg)
        return mean(on), mean(off)

    with_hss, without_hss = run_once(benchmark, run)
    save_result("ablation_hss",
                f"200x10KB @50Mbps PLT: HSS on {with_hss:.3f}s, "
                f"HSS off {without_hss:.3f}s")
    assert without_hss < with_hss


def test_ablation_pacing(benchmark):
    """Pacing off: slow-start bursts overflow the droptail queue, causing
    more loss events on a small-buffer path."""

    def run():
        # A short transfer into a shallow queue: the initial flight's
        # burstiness is the whole story (the regime pacing targets).
        scenario = emulated(10.0).with_(queue_bytes=15_000)
        results = {}
        for pacing in (True, False):
            cfg = quic_config(34)
            if not pacing:
                cfg.cc.pacing_gain_slow_start = None
                cfg.cc.pacing_gain_ca = None
            out = run_bulk_transfer(scenario, 150_000, "quic", seed=3,
                                    quic_cfg=cfg)
            results[pacing] = out
        return results

    results = run_once(benchmark, run)
    save_result("ablation_pacing",
                f"150 KB @10Mbps/15KB queue: paced losses "
                f"{results[True].losses} (PLT {results[True].elapsed:.3f}s), "
                f"unpaced losses {results[False].losses} "
                f"(PLT {results[False].elapsed:.3f}s)")
    assert results[False].losses > results[True].losses
    assert results[True].elapsed <= results[False].elapsed


def test_ablation_tlp(benchmark):
    """TLP off: losing the *last* packets of a flow costs a full RTO
    (>= 200 ms) instead of ~2 SRTT — exactly the tail losses TLP exists
    for (paper Sec. 2.1)."""

    def run():
        from repro.netem import Simulator, build_path
        from repro.quic import open_quic_pair

        size = 200_000
        times = {}
        for tlp in (True, False):
            # A small MACW keeps the sender wire-paced (bytes_sent tracks
            # the wire), so the injected drop hits the true tail; the deep
            # queue removes incidental losses.
            cfg = quic_config(34, macw_packets=20)
            cfg.tlp_enabled = tlp
            sim = Simulator()
            scenario = emulated(10.0).with_(queue_bytes=10_000_000)
            path = build_path(sim, scenario, seed=3)
            client, server = open_quic_pair(
                sim, path.client, path.server, cfg,
                request_handler=lambda m: m["size"], seed=3,
            )
            done = {}
            client.connect()
            client.request({"size": size}, lambda s, m, t: done.update({1: t}))

            def arm_tail_drop():
                # Once the server has nearly finished sending, kill the
                # last packets on the wire: a pure tail loss.
                stream = server.send_streams.get(1)
                if stream is not None and stream.bytes_sent >= size - 3 * 1350:
                    path.bottleneck_down.drop_next(3)
                    return
                sim.schedule(0.002, arm_tail_drop)

            sim.schedule(0.002, arm_tail_drop)
            assert sim.run_until(lambda: 1 in done, timeout=30.0)
            times[tlp] = done[1]
        return times

    times = run_once(benchmark, run)
    save_result("ablation_tlp",
                f"tail-loss repair: with TLP {times[True]:.3f}s, "
                f"RTO only {times[False]:.3f}s")
    assert times[True] < times[False]


def test_ablation_n_connection_emulation(benchmark):
    """N=2 emulation makes QUIC measurably more aggressive than N=1,
    but even N=1 stays unfair (Sec. 5.1: 'N had little impact')."""

    def run():
        shares = {}
        for n in (1, 2):
            cfg = quic_config(34)
            cfg.cc.num_emulated_connections = n
            result = run_fairness(n_quic=1, n_tcp=1, duration=30.0, seed=1,
                                  quic_cfg=cfg)
            shares[n] = result.quic_share()
        return shares

    shares = run_once(benchmark, run)
    save_result("ablation_n_emulation",
                f"QUIC share vs one TCP: N=1 {shares[1] * 100:.0f}%, "
                f"N=2 {shares[2] * 100:.0f}%")
    assert shares[1] > 0.5  # unfair even with N=1 (the paper's point)
    assert shares[2] >= shares[1] - 0.05


def test_ablation_tcp_dsack(benchmark):
    """DSACK adaptation is what saves TCP under reordering."""

    def run():
        scenario = reordering_scenario()
        out = {}
        for dsack in (True, False):
            cfg = tcp_config(dsack=dsack)
            out[dsack] = run_bulk_transfer(scenario, 5_000_000, "tcp",
                                           seed=1, tcp_cfg=cfg)
        return out

    out = run_once(benchmark, run)
    save_result(
        "ablation_tcp_dsack",
        f"5 MB reordered path: DSACK on {out[True].elapsed:.2f}s "
        f"({out[True].false_losses} spurious detected), "
        f"off {out[False].elapsed:.2f}s "
        f"({out[False].losses} retransmits, spurious invisible)")
    assert out[True].elapsed <= out[False].elapsed
    # Without DSACK the spurious retransmits still happen — the sender
    # just cannot *see* them, so it keeps retransmitting needlessly.
    assert out[False].losses >= out[True].losses


def test_ablation_prr(benchmark):
    """PRR vs instant-halving recovery under random loss."""

    def run():
        scenario = emulated(50.0, loss_pct=1.0)
        results = {}
        for prr in (True, False):
            cfg = quic_config(34)
            cfg.cc.prr = prr
            results[prr] = mean(measure_plts(
                scenario, single_object_page(2_000_000), "quic", runs=4,
                quic_cfg=cfg))
        return results

    results = run_once(benchmark, run)
    save_result("ablation_prr",
                f"2 MB @50Mbps+1%loss: PRR {results[True]:.3f}s, "
                f"halving {results[False]:.3f}s")
    # Both must complete sanely; PRR should not be (much) worse.
    assert results[True] < results[False] * 1.25


def test_ablation_chromium52_bug(benchmark):
    """The ssthresh bug forces an early slow-start exit and a slow ramp."""

    def run():
        scenario = emulated(100.0)
        web_page = single_object_page(10 * 1024 * 1024)
        fixed = run_page_load(scenario, web_page, "quic", seed=1,
                              quic_cfg=quic_config(34, calibrated=True)).plt
        buggy = run_page_load(scenario, web_page, "quic", seed=1,
                              quic_cfg=quic_config(34, calibrated=False)).plt
        return fixed, buggy

    fixed, buggy = run_once(benchmark, run)
    save_result("ablation_chromium52_bug",
                f"10 MB @100Mbps: calibrated {fixed:.3f}s, "
                f"public/buggy {buggy:.3f}s")
    assert buggy > fixed * 1.4


def test_ablation_fec(benchmark):
    """FEC (removed from QUIC in early 2016): reproduces Carlucci et
    al.'s finding — the bandwidth tax makes performance worse, with or
    without loss, which is why Google removed it."""

    def run():
        out = {}
        for loss in (0.0, 1.0):
            for fec in (False, True):
                cfg = quic_config(34)
                cfg.fec_enabled = fec
                result = run_bulk_transfer(
                    emulated(20.0, loss_pct=loss), 2_000_000, "quic",
                    seed=3, quic_cfg=cfg)
                out[(loss, fec)] = result.elapsed
        return out

    out = run_once(benchmark, run)
    save_result(
        "ablation_fec",
        "\n".join(
            f"loss={loss:3.1f}% fec={str(fec):<5} elapsed {elapsed:.3f}s"
            for (loss, fec), elapsed in sorted(out.items())
        ),
    )
    assert out[(0.0, True)] > out[(0.0, False)]   # pure overhead, no loss
    assert out[(1.0, True)] > out[(1.0, False)] * 0.9  # no win under loss

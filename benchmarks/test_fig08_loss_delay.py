"""Fig. 8 — PLT heatmaps with added loss and delay (a-f).

Paper shapes: QUIC wins under loss (a: better recovery, no HOL) and under
added delay for small/medium objects (b, c: 0-RTT); the many-small-objects
weakness persists under impairments (d-f).
"""

from repro.core.runner import build_plt_heatmap
from repro.http import page, single_object_page
from repro.netem import emulated

from .harness import bench_runs, full_scale, run_once, save_result

RATES = (5.0, 50.0, 100.0)


def _sizes():
    kbs = (5, 100, 1000, 10_000) if not full_scale() \
        else (5, 10, 100, 200, 500, 1000, 10_000)
    return [single_object_page(kb * 1024) for kb in kbs]


def _counts():
    ns = (1, 100, 200) if not full_scale() else (1, 2, 5, 10, 100, 200)
    return [page(n, 10 * 1024) for n in ns]


def _heatmap(title, pages, *, loss_pct=0.0, delay_ms=0.0):
    scenarios = [emulated(rate, loss_pct=loss_pct, extra_delay_ms=delay_ms)
                 for rate in RATES]
    return build_plt_heatmap(title, scenarios, pages, runs=bench_runs())


def test_fig08a_sizes_with_loss(benchmark):
    heatmap = run_once(
        benchmark, _heatmap,
        "Fig. 8a — object sizes, 1% added loss", _sizes(), loss_pct=1.0)
    save_result("fig08a_sizes_loss1pct", heatmap.render())
    assert heatmap.fraction_favoring_treatment() >= 0.8
    assert heatmap.mean_pct_diff() > 15


def test_fig08b_sizes_with_50ms_delay(benchmark):
    heatmap = run_once(
        benchmark, _heatmap,
        "Fig. 8b — object sizes, +50 ms delay", _sizes(), delay_ms=50.0)
    save_result("fig08b_sizes_delay50ms", heatmap.render())
    assert heatmap.fraction_favoring_treatment() >= 0.8


def test_fig08c_sizes_with_100ms_delay(benchmark):
    heatmap = run_once(
        benchmark, _heatmap,
        "Fig. 8c — object sizes, +100 ms delay", _sizes(), delay_ms=100.0)
    save_result("fig08c_sizes_delay100ms", heatmap.render())
    assert heatmap.fraction_favoring_treatment() >= 0.8


def test_fig08d_counts_with_loss(benchmark):
    heatmap = run_once(
        benchmark, _heatmap,
        "Fig. 8d — object counts, 1% added loss", _counts(), loss_pct=1.0)
    save_result("fig08d_counts_loss1pct", heatmap.render())
    # QUIC's no-HOL multiplexing should win clearly under loss.
    assert heatmap.mean_pct_diff() > 10


def test_fig08e_counts_with_50ms_delay(benchmark):
    heatmap = run_once(
        benchmark, _heatmap,
        "Fig. 8e — object counts, +50 ms delay", _counts(), delay_ms=50.0)
    save_result("fig08e_counts_delay50ms", heatmap.render())
    _assert_many_small_weakness(heatmap)


def test_fig08f_counts_with_100ms_delay(benchmark):
    heatmap = run_once(
        benchmark, _heatmap,
        "Fig. 8f — object counts, +100 ms delay", _counts(), delay_ms=100.0)
    save_result("fig08f_counts_delay100ms", heatmap.render())
    _assert_many_small_weakness(heatmap)


def _assert_many_small_weakness(heatmap):
    """In the high-latency count grids, the 200-object column is QUIC's
    worst column (the paper: delay cannot compensate there)."""
    single = [c for (row, col), c in heatmap.cells.items() if col.startswith("1x")]
    many = [c for (row, col), c in heatmap.cells.items() if col.startswith("200x")]
    single_avg = sum(c.pct_diff for c in single) / len(single)
    many_avg = sum(c.pct_diff for c in many) / len(many)
    assert many_avg < single_avg

"""Measure the results store: cold-vs-warm wall clock and hit rate.

Runs one ExperimentSpec grid twice against a fresh store: the cold pass
executes everything and fills the store; the warm pass must be served
entirely from it.  A third, *resumed* pass — against a store holding
only half the grid — measures the interrupted-sweep case.  Asserts the
cache-correctness contract along the way (warm pass: 100% hits and
byte-identical ``ExperimentResult.to_json()``), so the exit code doubles
as the ``make check`` store smoke.

Writes ``benchmarks/results/store_hit_rate.txt`` and a machine-readable
``BENCH_store.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/store_hit_rate.py [--runs 2] [--jobs 1]
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro.core.experiment import (
    ExperimentSpec,
    ScenarioSpec,
    WorkloadSpec,
    experiment_requests,
    run_experiment,
)
from repro.core.executor import run_requests
from repro.store import ResultStore, RunCache

RESULTS = Path(__file__).parent / "results" / "store_hit_rate.txt"
BENCH_JSON = Path(__file__).parent.parent / "BENCH_store.json"


def bench_spec(runs: int) -> ExperimentSpec:
    return ExperimentSpec(
        "store-hit-rate",
        description="cold/warm/resumed wall clock for the results store",
        scenarios=[ScenarioSpec(10.0), ScenarioSpec(50.0, loss_pct=1.0)],
        workloads=[WorkloadSpec(1, 200), WorkloadSpec(10, 10)],
        runs=runs,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=2,
                        help="seeded rounds per cell (default 2)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    args = parser.parse_args()

    spec = bench_spec(args.runs)
    total = (len(spec.scenarios) * len(spec.workloads)
             * len(spec.protocols) * spec.runs)
    print(f"spec {spec.name!r}: {total} runs per pass")

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "bench-store.sqlite")

        cache = RunCache(store)
        start = time.perf_counter()
        cold_result = run_experiment(spec, jobs=args.jobs, store=cache)
        cold_s = time.perf_counter() - start
        cold_stats = cache.session_stats
        print(f"cold pass:    {cold_s:7.2f} s  "
              f"({cold_stats[0]} hits / {cold_stats[1]} misses)")

        cache = RunCache(store)
        start = time.perf_counter()
        warm_result = run_experiment(spec, jobs=args.jobs, store=cache)
        warm_s = time.perf_counter() - start
        warm_stats = cache.session_stats
        print(f"warm pass:    {warm_s:7.2f} s  "
              f"({warm_stats[0]} hits / {warm_stats[1]} misses)")

        identical = warm_result.to_json() == cold_result.to_json()
        all_hits = warm_stats == (total, 0, 0)

        # Resumed pass: a store holding only every other run of the grid
        # (as if the sweep was killed halfway).
        half_store = ResultStore(Path(tmp) / "half-store.sqlite")
        half_cache = RunCache(half_store)
        flat = [request for _, requests in experiment_requests(spec)
                for request in requests]
        run_requests(flat[: total // 2], jobs=args.jobs, store=half_cache)
        half_cache = RunCache(half_store)
        start = time.perf_counter()
        resumed_result = run_experiment(spec, jobs=args.jobs,
                                        store=half_cache)
        resumed_s = time.perf_counter() - start
        resumed_stats = half_cache.session_stats
        print(f"resumed pass: {resumed_s:7.2f} s  "
              f"({resumed_stats[0]} hits / {resumed_stats[1]} misses)")
        resumed_identical = resumed_result.to_json() == cold_result.to_json()

    ok = identical and all_hits and resumed_identical
    speedup = cold_s / warm_s if warm_s else float("inf")
    print(f"warm speedup: {speedup:.1f}x, "
          f"byte-identical: {identical and resumed_identical}, "
          f"warm pass all hits: {all_hits}")

    lines = [
        "Results store: cold vs warm vs resumed wall clock",
        "=================================================",
        "",
        f"spec: {spec.name} ({total} runs per pass, jobs={args.jobs})",
        f"host CPU count: {os.cpu_count()}",
        "",
        f"  cold    (empty store)   {cold_s:8.2f} s   "
        f"{cold_stats[0]:3d} hits / {cold_stats[1]:3d} misses",
        f"  warm    (full store)    {warm_s:8.2f} s   "
        f"{warm_stats[0]:3d} hits / {warm_stats[1]:3d} misses",
        f"  resumed (half store)    {resumed_s:8.2f} s   "
        f"{resumed_stats[0]:3d} hits / {resumed_stats[1]:3d} misses",
        "",
        f"  warm speedup            {speedup:8.1f} x",
        f"  results byte-identical  {identical and resumed_identical}",
        "",
        "A run key covers configuration, seed and the source fingerprint,",
        "so a warm sweep re-executes nothing and an interrupted sweep",
        "resumes from exactly the cells it was missing.",
    ]
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text("\n".join(lines) + "\n")
    print(f"written to {RESULTS}")
    BENCH_JSON.write_text(json.dumps({
        "benchmark": "store_hit_rate",
        "runs_total": total,
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "resumed_seconds": round(resumed_s, 4),
        "warm_speedup": round(speedup, 2),
        "warm_hit_rate": (warm_stats[0] / total) if total else 0.0,
        "resumed_hits": resumed_stats[0],
        "resumed_misses": resumed_stats[1],
        "results_identical": identical and resumed_identical,
    }, indent=2) + "\n")
    print(f"written to {BENCH_JSON}")
    if not ok:
        print("STORE SMOKE FAILED: warm pass was not 100% cache hits with "
              "byte-identical results")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

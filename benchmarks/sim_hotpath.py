"""Simulator hot-path microbenchmarks -> BENCH_sim.json.

Measures the three numbers the hot-path optimisation work is judged by:

* events/sec   — raw event-loop throughput,
* packets/sec  — the netem data path (rate limit + loss + jitter),
* PLT wall     — one canonical QUIC+TCP page-load pair.

The committed ``BENCH_sim.json`` carries a ``baseline`` section (the
same numbers measured on the pre-optimisation tree) and the computed
speedups.  ``scripts/bench_diff.py`` gates CI on regressions of the
``current`` section.

Usage::

    PYTHONPATH=src python benchmarks/sim_hotpath.py [--quick] \
        [--baseline BENCH_sim.json] [--out BENCH_sim.json]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.core.bench import run_benchmarks, write_payload

DEFAULT_OUT = Path(__file__).parent.parent / "BENCH_sim.json"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=200_000,
                        help="events for the event-loop microbenchmark")
    parser.add_argument("--packets", type=int, default=30_000,
                        help="packets for the link microbenchmark")
    parser.add_argument("--repeat", type=int, default=3,
                        help="samples per benchmark (best is kept)")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes, one sample — fast but too noisy "
                             "to gate on; for local iteration only")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="previous BENCH_sim.json to compute speedups "
                             "against (its 'current' section)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT})")
    args = parser.parse_args()

    if args.quick:
        args.events = min(args.events, 50_000)
        args.packets = min(args.packets, 8_000)
        args.repeat = 1

    baseline = None
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())

    payload = run_benchmarks(events=args.events, packets=args.packets,
                             repeat=args.repeat, baseline=baseline)
    current = payload["current"]
    print(f"events/sec:      {current['events_per_sec']:>12,.0f}")
    print(f"packets/sec:     {current['packets_per_sec']:>12,.0f}")
    print(f"PLT pair wall:   {current['plt_wall_seconds']:>12.4f} s "
          f"(quic={current['plt_quic']:.4f}s tcp={current['plt_tcp']:.4f}s)")
    for metric, factor in payload.get("speedup", {}).items():
        print(f"speedup {metric}: {factor:.2f}x")
    write_payload(payload, str(args.out))
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Fig. 15 — QUIC 37 with MACW 430 vs the new default 2000.

Paper shape: with MACW clamped to 430, QUIC 37 performs identically to
QUIC 34; with its real default of 2000 it gains further on large
transfers over high-bandwidth paths (the window was the binding cap).
"""

from repro.core.heatmap import Heatmap
from repro.core.runner import measure_plts
from repro.core.comparison import Comparison
from repro.core.stats import mean
from repro.http import single_object_page
from repro.netem import emulated
from repro.quic import quic_config

from .harness import bench_runs, run_once, save_result

RATES = (50.0, 100.0)
SIZES_KB = (1000, 10_000, 30_000)


def _grid():
    """For each cell: PLTs under MACW=430 and MACW=2000 (both QUIC 37)."""
    heatmap = Heatmap(
        "Fig. 15 — QUIC37 MACW=2000 vs MACW=430 (positive = 2000 faster)",
        row_labels=[f"{r:g}Mbps" for r in RATES],
        col_labels=[f"1x{kb}KB" for kb in SIZES_KB],
        treatment="MACW2000",
        baseline="MACW430",
    )
    runs = bench_runs()
    cfg_430 = quic_config(37, macw_packets=430)
    cfg_2000 = quic_config(37, macw_packets=2000)
    v34_delta = []
    for rate in RATES:
        # Add enough delay that the BDP can exceed 430 packets (580 KB).
        scenario = emulated(rate, extra_delay_ms=50)
        for kb in SIZES_KB:
            page = single_object_page(kb * 1024)
            big = measure_plts(scenario, page, "quic", runs=runs,
                               quic_cfg=cfg_2000)
            small = measure_plts(scenario, page, "quic", runs=runs,
                                 quic_cfg=cfg_430)
            heatmap.put(f"{rate:g}Mbps", f"1x{kb}KB",
                        Comparison(f"{rate}/{kb}", big, small))
            v34 = measure_plts(scenario, page, "quic", runs=3,
                               quic_cfg=quic_config(34))
            v34_delta.append(abs(mean(small) - mean(v34)) / mean(v34))
    return heatmap, v34_delta


def test_fig15_macw(benchmark):
    heatmap, v34_delta = run_once(benchmark, _grid)
    text = heatmap.render() + (
        "\n\nQUIC37@MACW430 vs QUIC34 mean |PLT delta|: "
        f"{mean(v34_delta) * 100:.2f}% (paper: 'almost identical')"
    )
    save_result("fig15_macw", text)

    # Same MACW -> versions 34 and 37 are interchangeable.
    assert mean(v34_delta) < 0.05
    # The larger MACW helps the big-transfer, high-BDP cells.
    big_cell = heatmap.get("100Mbps", "1x30000KB")
    assert big_cell.pct_diff > 5

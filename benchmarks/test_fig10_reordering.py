"""Fig. 10 — packet reordering vs the NACK threshold.

The paper's setup: 10 MB download, 112 ms RTT with 10 ms jitter (netem's
per-packet delay assignment reorders packets).  Shape: QUIC at the default
threshold (3) is far slower than TCP; raising the threshold progressively
restores QUIC; TCP's DSACK adaptation keeps it robust throughout.
"""

from repro.core.rootcause import loss_report
from repro.core.runner import run_bulk_transfer
from repro.netem import reordering_scenario
from repro.quic import quic_config

from .harness import run_once, save_result

SIZE = 10 * 1024 * 1024
THRESHOLDS = (3, 10, 25, 50)


def _sweep():
    scenario = reordering_scenario()
    rows = []
    for threshold in THRESHOLDS:
        cfg = quic_config(34)
        cfg.nack_threshold = threshold
        result = run_bulk_transfer(scenario, SIZE, "quic", seed=1,
                                   quic_cfg=cfg)
        rows.append((f"QUIC nack={threshold}", result))
    cfg = quic_config(34)
    cfg.adaptive_nack_threshold = True
    rows.append(("QUIC adaptive",
                 run_bulk_transfer(scenario, SIZE, "quic", seed=1,
                                   quic_cfg=cfg)))
    cfg = quic_config(34)
    cfg.time_based_loss = True
    rows.append(("QUIC time-based",
                 run_bulk_transfer(scenario, SIZE, "quic", seed=1,
                                   quic_cfg=cfg)))
    rows.append(("TCP (DSACK)",
                 run_bulk_transfer(scenario, SIZE, "tcp", seed=1)))
    return rows


def test_fig10_reordering_nack_threshold(benchmark):
    rows = run_once(benchmark, _sweep)
    lines = ["Fig. 10 — 10 MB download, 112 ms RTT + 10 ms jitter "
             "(reordering)", ""]
    for label, result in rows:
        lines.append(
            f"{label:<18} elapsed {result.elapsed:7.2f}s  "
            f"tput {result.throughput_mbps:6.2f} Mbps  "
            f"losses {result.losses:5d}  false {result.false_losses:5d}"
        )
    save_result("fig10_reordering", "\n".join(lines))

    by_label = dict(rows)
    default = by_label["QUIC nack=3"]
    best = by_label["QUIC nack=50"]
    tcp = by_label["TCP (DSACK)"]
    # Default QUIC melts down on false losses; TCP does not.
    assert default.elapsed > tcp.elapsed * 1.5
    assert default.false_losses > 100
    # Raising the threshold monotonically (roughly) restores QUIC.
    elapsed = [by_label[f"QUIC nack={t}"].elapsed for t in THRESHOLDS]
    assert elapsed[-1] < elapsed[0] / 2
    assert best.false_losses < default.false_losses / 3
    # The experimental fixes work too.
    assert by_label["QUIC adaptive"].elapsed < default.elapsed
    assert by_label["QUIC time-based"].elapsed < default.elapsed

"""Fig. 12 — QUIC vs TCP on the MotoG and Nexus 6 (WiFi rates).

Paper shape: on phones QUIC's gains diminish across the board; on the
older MotoG at 50 Mbps QUIC's advantage disappears or reverses for large
objects (the 100 Mbps row is omitted, as the paper's phones could not
exceed ~50 Mbps over WiFi).
"""

from repro.core.runner import build_plt_heatmap, compare_page_load
from repro.devices import DESKTOP, MOTOG, NEXUS6
from repro.http import single_object_page
from repro.netem import emulated

from .harness import bench_runs, run_once, save_result

RATES = (5.0, 10.0, 50.0)
SIZES_KB = (100, 1000, 10_000)


def _device_heatmap(device):
    return build_plt_heatmap(
        f"Fig. 12 — QUIC34 vs TCP on {device.name}",
        [emulated(rate) for rate in RATES],
        [single_object_page(kb * 1024) for kb in SIZES_KB],
        runs=max(bench_runs() - 1, 3),
        device=device,
    )


def _all_devices():
    return {device.name: _device_heatmap(device)
            for device in (DESKTOP, NEXUS6, MOTOG)}


def test_fig12_mobile_heatmaps(benchmark):
    heatmaps = run_once(benchmark, _all_devices)
    text = "\n\n".join(hm.render() for hm in heatmaps.values())
    save_result("fig12_mobile", text)

    desktop = heatmaps["desktop"]
    nexus6 = heatmaps["nexus6"]
    motog = heatmaps["motog"]
    # Gains diminish with device age (mean advantage ordering).
    assert desktop.mean_pct_diff() > nexus6.mean_pct_diff() >= motog.mean_pct_diff() - 1
    assert motog.mean_pct_diff() < desktop.mean_pct_diff() - 5
    # MotoG at 50 Mbps / 10 MB: the advantage disappears or reverses.
    worst = motog.get("50Mbps+0ms+0%loss", "1x10000KB")
    assert worst.pct_diff < 0 or not worst.significant()

"""Table 4 / Fig. 4 — QUIC vs TCP fairness on a 5 Mbps bottleneck.

Paper shape: QUIC takes ~2.71 Mbps vs TCP's 1.62 (QUIC vs 1 TCP); even
against 2 or 4 TCP flows QUIC keeps more than half the bottleneck.
"""

from repro.core.runner import run_fairness
from repro.core.stats import mean, sample_std

from .harness import bench_runs, run_once, save_result

DURATION = 40.0


def _fairness_table():
    rows = []
    runs = max(bench_runs() // 2, 3)
    for label, n_quic, n_tcp in (
        ("QUIC vs QUIC", 2, 0),
        ("QUIC vs TCP", 1, 1),
        ("QUIC vs TCPx2", 1, 2),
        ("QUIC vs TCPx4", 1, 4),
    ):
        samples = {}
        shares = []
        for seed in range(runs):
            result = run_fairness(n_quic=n_quic, n_tcp=n_tcp,
                                  duration=DURATION, seed=seed)
            for flow, mbps in result.average_mbps.items():
                samples.setdefault(flow, []).append(mbps)
            shares.append(result.quic_share())
        rows.append((label, samples, mean(shares)))
    return rows


def test_tab04_fairness(benchmark):
    rows = run_once(benchmark, _fairness_table)
    lines = [
        "Table 4 — avg throughput (Mbps) on a 5 Mbps link, buffer=30 KB",
        f"(paper: QUIC 2.71 vs TCP 1.62; QUIC >50% even vs TCPx2/x4)", "",
    ]
    for label, samples, quic_share in rows:
        lines.append(f"{label}  (QUIC share of bytes: {quic_share * 100:.0f}%)")
        for flow in sorted(samples):
            vals = samples[flow]
            lines.append(f"    {flow:<8} {mean(vals):5.2f} "
                         f"({sample_std(vals):4.2f})")
    save_result("tab04_fairness", "\n".join(lines))

    table = {label: (samples, share) for label, samples, share in rows}
    # QUIC vs QUIC is fair.
    qq = table["QUIC vs QUIC"][0]
    flows = sorted(qq)
    assert mean(qq[flows[0]]) > 0.25 * 5.0 and mean(qq[flows[1]]) > 0.25 * 5.0
    # QUIC vs TCP: QUIC well above its fair share.
    qt = table["QUIC vs TCP"][0]
    assert mean(qt["quic"]) > 1.3 * mean(qt["tcp"])
    # Majority share against two TCP flows (paper: 2.8 vs 0.7+0.96).
    assert table["QUIC vs TCPx2"][1] > 0.5
    # Against four TCP flows the paper still measures >50%; our simulated
    # TCP recovers a little better at tiny windows, so QUIC lands at
    # ~40% — still double its 20% fair share (deviation documented in
    # EXPERIMENTS.md).
    assert table["QUIC vs TCPx4"][1] > 0.35

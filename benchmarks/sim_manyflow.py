"""Thousand-flow fast-path benchmark -> BENCH_manyflow.json.

Runs the manyflow cell (1000 mixed QUIC/TCP flows sharing one 100 Mbps
bottleneck) twice — batched link delivery vs per-packet scheduling
(``batch_quantum=0``) — and records:

* ``speedup_vs_per_packet`` — the fast-path acceptance number (the
  gate requires >= 3x),
* ``events_per_sec``        — logical events through the batched run,
* ``results_identical``     — the batching contract: both runs must
  produce bit-identical simulated outcomes,
* ``outcome``               — the fixed-seed metrics themselves, so
  ``scripts/bench_diff.py`` can cross-check behaviour between commits.

Usage::

    PYTHONPATH=src python benchmarks/sim_manyflow.py [--quick] \
        [--baseline BENCH_manyflow.json] [--out BENCH_manyflow.json]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.core.bench import run_manyflow_benchmark, write_payload

DEFAULT_OUT = Path(__file__).parent.parent / "BENCH_manyflow.json"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flows", type=int, default=1000,
                        help="concurrent flows (default 1000)")
    parser.add_argument("--aqm", default="droptail",
                        help="bottleneck queue discipline")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--duration", type=float, default=300.0,
                        help="simulated-seconds cap")
    parser.add_argument("--repeat", type=int, default=1,
                        help="samples (best speedup kept)")
    parser.add_argument("--quick", action="store_true",
                        help="200 flows — fast but not the gated cell; "
                             "for local iteration only")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="previous BENCH_manyflow.json to compute a "
                             "rate speedup against")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT})")
    args = parser.parse_args()

    if args.quick:
        args.flows = min(args.flows, 200)
        args.repeat = 1

    baseline = None
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())

    payload = run_manyflow_benchmark(
        flows=args.flows, repeat=args.repeat, aqm=args.aqm,
        seed=args.seed, duration=args.duration, baseline=baseline)
    print(f"flows:                {payload['flows']:>10,}")
    print(f"batched wall:         {payload['batched_seconds']:>10.3f} s")
    print(f"per-packet wall:      {payload['per_packet_seconds']:>10.3f} s")
    print(f"speedup:              {payload['speedup_vs_per_packet']:>10.2f} x")
    print(f"events/sec (batched): {payload['events_per_sec']:>10,.0f}")
    print(f"results identical:    {payload['results_identical']!s:>10}")
    if not payload["results_identical"]:
        print("ERROR: batched and per-packet outcomes diverged")
        return 1
    write_payload(payload, str(args.out))
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

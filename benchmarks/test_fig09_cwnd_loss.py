"""Fig. 9 — congestion window over time at 100 Mbps with 1% loss.

Paper shape: QUIC recovers from loss events faster and sustains a larger
average window than TCP under the same conditions.
"""

from repro.core.runner import run_bulk_transfer
from repro.core.stats import mean
from repro.netem import emulated

from .harness import run_once, save_result

SCENARIO = emulated(100.0, loss_pct=1.0)
SIZE = 10 * 1024 * 1024


def _transfers():
    quic = run_bulk_transfer(SCENARIO, SIZE, "quic", seed=1)
    tcp = run_bulk_transfer(SCENARIO, SIZE, "tcp", seed=1)
    return quic, tcp


def test_fig09_cwnd_under_loss(benchmark):
    quic, tcp = run_once(benchmark, _transfers)
    lines = ["Fig. 9 — cwnd over time, 100 Mbps + 1% loss, 10 MB transfer", ""]
    for result in (quic, tcp):
        cwnds = [c / 1350 for _, c in result.cwnd_series]
        lines.append(
            f"{result.protocol:<5} elapsed {result.elapsed:6.2f}s  "
            f"tput {result.throughput_mbps:5.2f} Mbps  "
            f"mean cwnd {mean(cwnds):5.1f} pkts  "
            f"losses {result.losses}"
        )
    save_result("fig09_cwnd_loss", "\n".join(lines))

    q_cwnd = mean([c for _, c in quic.cwnd_series])
    t_cwnd = mean([c for _, c in tcp.cwnd_series])
    assert q_cwnd > t_cwnd           # larger average window
    assert quic.elapsed < tcp.elapsed  # and a faster transfer

"""Fig. 7 — QUIC with vs without 0-RTT connection establishment.

Paper shape: the 0-RTT gain is large for small objects and fades to
insignificance as objects grow and/or bandwidth drops (connection
establishment becomes a negligible PLT fraction).
"""

from repro.core.heatmap import Heatmap
from repro.core.runner import compare_quic_variants
from repro.http import single_object_page
from repro.netem import emulated
from repro.quic import quic_config

from .harness import bench_runs, run_once, save_result

RATES = (5.0, 10.0, 50.0, 100.0)
SIZES_KB = (5, 100, 1000, 10_000)


def _zero_rtt_heatmap():
    heatmap = Heatmap(
        "Fig. 7 — QUIC 0-RTT on vs off (positive = 0-RTT faster)",
        row_labels=[f"{r:g}Mbps" for r in RATES],
        col_labels=[f"1x{kb}KB" for kb in SIZES_KB],
        treatment="0-RTT",
        baseline="no-0-RTT",
    )
    with_0rtt = quic_config(34, zero_rtt=True)
    without = quic_config(34, zero_rtt=False)
    for rate in RATES:
        for kb in SIZES_KB:
            cell = compare_quic_variants(
                emulated(rate), single_object_page(kb * 1024),
                treatment_cfg=with_0rtt, baseline_cfg=without,
                runs=bench_runs(),
            )
            heatmap.put(f"{rate:g}Mbps", f"1x{kb}KB", cell)
    return heatmap


def test_fig07_zero_rtt_benefit(benchmark):
    heatmap = run_once(benchmark, _zero_rtt_heatmap)
    save_result("fig07_zero_rtt", heatmap.render())

    # Small objects: the saved round trip is a large PLT fraction.
    small = heatmap.get("100Mbps", "1x5KB")
    assert small.significant() and small.pct_diff > 15
    # 10 MB objects: the benefit is small or insignificant.
    for rate in RATES:
        big = heatmap.get(f"{rate:g}Mbps", "1x10000KB")
        assert (not big.significant()) or big.pct_diff < 10
    # Monotone trend along each row: gains shrink with object size.
    for rate in RATES:
        row = [heatmap.get(f"{rate:g}Mbps", f"1x{kb}KB").pct_diff
               for kb in SIZES_KB]
        assert row[0] > row[-1]

"""Fig. 17 — QUIC (direct) vs proxied TCP.

Paper shape: a split TCP proxy recovers much of QUIC's edge in low-loss /
low-latency cells and under loss, but QUIC still wins on high-delay links
(0-RTT beats even a halved handshake for small objects).
"""

from repro.core.comparison import Comparison
from repro.core.heatmap import Heatmap
from repro.core.runner import measure_plts
from repro.http import single_object_page
from repro.netem import emulated

from .harness import bench_runs, run_once, save_result

SIZES_KB = (10, 200, 1000)
CONDITIONS = (
    ("base-36ms", dict()),
    ("loss-1pct", dict(loss_pct=1.0)),
    ("delay+100ms", dict(extra_delay_ms=100.0)),
)


def _grid(quic_direct: bool, proxied_protocol: str, treatment: str):
    heatmap = Heatmap(
        f"QUIC direct vs proxied {proxied_protocol.upper()} "
        f"(positive = {treatment} faster)",
        row_labels=[name for name, _ in CONDITIONS],
        col_labels=[f"1x{kb}KB" for kb in SIZES_KB],
        treatment=treatment,
        baseline=f"{proxied_protocol}-proxied",
    )
    runs = bench_runs()
    for name, kwargs in CONDITIONS:
        scenario = emulated(10.0, **kwargs)
        for kb in SIZES_KB:
            page = single_object_page(kb * 1024)
            quic = measure_plts(scenario, page, "quic", runs=runs)
            proxied = measure_plts(scenario, page, proxied_protocol,
                                   runs=runs, proxied=True)
            heatmap.put(name, f"1x{kb}KB",
                        Comparison(f"{name}/{kb}", quic, proxied))
    return heatmap


def test_fig17_quic_vs_proxied_tcp(benchmark):
    heatmap = run_once(benchmark, _grid, True, "tcp", "QUIC")
    save_result("fig17_tcp_proxy", heatmap.render())

    # High delay: QUIC still wins (0-RTT).
    high_delay_small = heatmap.get("delay+100ms", "1x10KB")
    assert high_delay_small.pct_diff > 0
    # The proxy recovers most of TCP's gap for handshake-bound sizes:
    # unproxied, 200 KB at 10 Mbps is ~+54% for QUIC (Fig. 6); with a
    # split proxy the margin collapses.
    base_mid = heatmap.get("base-36ms", "1x200KB")
    assert base_mid.pct_diff < 20
    # ...and under loss the gap closes across sizes (the paper: proxies
    # help TCP "primarily in lossy scenarios").
    for col in ("1x10KB", "1x200KB", "1x1000KB"):
        lossy = heatmap.get("loss-1pct", col)
        assert (not lossy.significant()) or lossy.pct_diff < 25

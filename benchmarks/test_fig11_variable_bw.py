"""Fig. 11 — variable bandwidth: 50-150 Mbps re-drawn every second.

Paper shape: downloading a 210 MB object, QUIC averages ~79 Mbps vs TCP's
~46 Mbps — QUIC's unambiguous ACKs track capacity changes faster.

The default bench scales the object to 30 MB to keep runtime modest;
``REPRO_FULL=1`` restores the paper's 210 MB.
"""

from repro.core.runner import run_bulk_transfer
from repro.core.stats import mean, sample_std
from repro.netem import variable_bandwidth_scenario

from .harness import full_scale, run_once, save_result

RUNS = 4


def _variable_bw_runs():
    size = (210 if full_scale() else 30) * 1024 * 1024
    scenario = variable_bandwidth_scenario()
    results = {"quic": [], "tcp": []}
    for protocol in results:
        for seed in range(RUNS):
            result = run_bulk_transfer(
                scenario, size, protocol, seed=seed,
                variable_bw=(50.0, 150.0, 1.0),
            )
            results[protocol].append(result.throughput_mbps)
    return size, results


def test_fig11_variable_bandwidth(benchmark):
    size, results = run_once(benchmark, _variable_bw_runs)
    lines = [
        f"Fig. 11 — {size // (1024 * 1024)} MB download, bandwidth "
        f"fluctuating 50-150 Mbps every 1 s",
        "(paper, 210 MB: QUIC 79 Mbps (sd 31) vs TCP 46 Mbps (sd 12))",
        "",
    ]
    for protocol, tputs in results.items():
        lines.append(f"{protocol:<5} avg throughput "
                     f"{mean(tputs):6.2f} Mbps (sd {sample_std(tputs):5.2f})")
    save_result("fig11_variable_bw", "\n".join(lines))

    assert mean(results["quic"]) > mean(results["tcp"]) * 1.10

"""Fig. 5 — congestion-window timelines on the shared 5 Mbps bottleneck.

Paper shape: competing over the same link, QUIC sustains a larger
congestion window than TCP and grows it back faster after losses.
"""

from repro.core.instrumentation import Trace
from repro.core.stats import mean
from repro.netem import Simulator, build_bottleneck, fairness_bottleneck
from repro.quic import open_quic_pair, quic_config
from repro.tcp import open_tcp_pair, tcp_config

from .harness import run_once, save_result

DURATION = 30.0


def _competing_cwnd_series():
    sim = Simulator()
    net, clients, servers, _link = build_bottleneck(
        sim, fairness_bottleneck(), 2, seed=1
    )
    qtrace = Trace("quic", enabled=True, cwnd_min_interval=0.1)
    ttrace = Trace("tcp", enabled=True, cwnd_min_interval=0.1)
    handler = lambda m: m["size"]  # noqa: E731
    qc, _qs = open_quic_pair(sim, clients[0], servers[0], quic_config(34),
                             request_handler=handler, server_trace=qtrace,
                             seed=1, flow_id="quic")
    tc, _ts = open_tcp_pair(sim, clients[1], servers[1], tcp_config(),
                            request_handler=handler, server_trace=ttrace,
                            seed=2, flow_id="tcp")
    blob = 100_000_000
    qc.connect()
    qc.request({"size": blob}, lambda *a: None)
    tc.connect(lambda now: tc.request({"size": blob}, lambda *a: None))
    sim.run(until=DURATION)
    return qtrace.series("cwnd"), ttrace.series("cwnd")


def _render(series, label, bucket=2.0):
    from collections import defaultdict

    rows = defaultdict(list)
    for t, cwnd in series:
        rows[int(t / bucket)].append(cwnd / 1350)
    out = [label]
    for b in sorted(rows):
        vals = rows[b]
        bar = "#" * max(int(mean(vals)), 1)
        out.append(f"  t={b * bucket:5.1f}s cwnd={mean(vals):6.1f} pkts {bar}")
    return "\n".join(out)


def test_fig05_cwnd_timeline(benchmark):
    quic_series, tcp_series = run_once(benchmark, _competing_cwnd_series)
    text = "\n\n".join([
        "Fig. 5 — cwnd over time, QUIC vs TCP sharing a 5 Mbps bottleneck",
        _render(quic_series, "QUIC cwnd"),
        _render(tcp_series, "TCP cwnd"),
    ])
    save_result("fig05_cwnd_timeline", text)

    # Steady-state (post-slow-start) averages: QUIC holds the larger window.
    q_steady = [c for t, c in quic_series if t > 5.0]
    t_steady = [c for t, c in tcp_series if t > 5.0]
    assert mean(q_steady) > mean(t_steady)

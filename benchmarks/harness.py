"""Benchmark-harness helpers.

Every ``benchmarks/test_*.py`` module regenerates one table or figure of
the paper.  Conventions:

* Each bench runs its experiment once through ``benchmark.pedantic``
  (the interesting output is the reproduced table, not the wall time,
  but pytest-benchmark still records how long the reproduction takes).
* The reproduced table/series is printed and saved under
  ``benchmarks/results/`` so ``bench_output.txt`` plus that directory
  capture the full reproduction.
* ``REPRO_BENCH_RUNS`` (default 5) controls measurement rounds per cell;
  the paper uses >= 10 — set it to 10+ for publication-grade output.
* ``REPRO_FULL=1`` switches the large experiments (e.g. Fig. 11's 210 MB
  object) to full paper scale.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_runs(default: int = 5) -> int:
    """Measurement rounds per cell (paper: at least 10)."""
    return int(os.environ.get("REPRO_BENCH_RUNS", default))


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


def save_result(name: str, text: str) -> None:
    """Print a reproduced table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)

"""Tests for the trace/instrumentation layer (Sec. 4.2)."""

import pytest

from repro.core.instrumentation import CWND, STATE, Trace, merge_state_sequences


class TestStateLogging:
    def test_sequence_recorded(self):
        trace = Trace("t", enabled=True)
        trace.log_state(0.0, "Init")
        trace.log_state(0.1, "SlowStart")
        trace.log_state(0.5, "CongestionAvoidance")
        assert trace.state_sequence() == ["Init", "SlowStart", "CongestionAvoidance"]

    def test_repeated_state_not_duplicated(self):
        trace = Trace("t", enabled=True)
        trace.log_state(0.0, "SlowStart")
        trace.log_state(0.1, "SlowStart")
        assert trace.state_sequence() == ["SlowStart"]

    def test_dwell_accounting(self):
        trace = Trace("t", enabled=True)
        trace.log_state(0.0, "A")
        trace.log_state(1.0, "B")
        trace.log_state(3.0, "A")
        trace.close(4.0)
        assert trace.dwell == {"A": pytest.approx(2.0), "B": pytest.approx(2.0)}

    def test_dwell_fractions_sum_to_one(self):
        trace = Trace("t", enabled=True)
        trace.log_state(0.0, "A")
        trace.log_state(1.0, "B")
        trace.close(10.0)
        fractions = trace.dwell_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["B"] == pytest.approx(0.9)

    def test_dwell_tracked_even_when_disabled(self):
        trace = Trace("t", enabled=False)
        trace.log_state(0.0, "A")
        trace.log_state(2.0, "B")
        trace.close(3.0)
        assert trace.dwell["A"] == pytest.approx(2.0)
        assert len(trace) == 0  # no records stored

    def test_state_intervals(self):
        trace = Trace("t", enabled=True)
        trace.log_state(0.0, "A")
        trace.log_state(1.0, "B")
        trace.close(2.5)
        assert trace.state_intervals() == [("A", 0.0, 1.0), ("B", 1.0, 2.5)]

    def test_close_idempotent(self):
        trace = Trace("t", enabled=True)
        trace.log_state(0.0, "A")
        trace.close(1.0)
        trace.close(5.0)
        assert trace.dwell["A"] == pytest.approx(1.0)


class TestGenericRecords:
    def test_counters_and_series(self):
        trace = Trace("t", enabled=True)
        trace.log(0.1, "loss", 5)
        trace.log(0.2, "loss", 9)
        trace.log(0.3, "rtt", 0.05)
        assert trace.count("loss") == 2
        assert trace.series("loss") == [(0.1, 5), (0.2, 9)]

    def test_counters_kept_when_disabled(self):
        trace = Trace("t", enabled=False)
        trace.log(0.1, "loss", 5)
        assert trace.count("loss") == 1
        assert trace.series("loss") == []

    def test_cwnd_downsampling(self):
        trace = Trace("t", enabled=True, cwnd_min_interval=0.1)
        for i in range(100):
            trace.log_cwnd(i * 0.01, 1000 + i)
        samples = trace.series(CWND)
        assert 9 <= len(samples) <= 11

    def test_cwnd_every_change_when_interval_zero(self):
        trace = Trace("t", enabled=True, cwnd_min_interval=0.0)
        trace.log_cwnd(0.0, 1)
        trace.log_cwnd(0.0, 2)
        assert len(trace.series(CWND)) == 2


def test_merge_state_sequences_skips_empty():
    t1 = Trace(enabled=True)
    t1.log_state(0.0, "A")
    t2 = Trace(enabled=True)
    assert merge_state_sequences([t1, t2]) == [["A"]]

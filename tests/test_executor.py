"""Tests for the parallel experiment executor (repro.core.executor)."""

import os
import pickle
import time

import pytest

from repro.core.executor import (
    ProtocolSpec,
    RunFailure,
    RunRecord,
    RunRequest,
    execute_request,
    resolve_jobs,
    run_requests,
)
from repro.core.experiment import (
    ExperimentSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_experiment,
)
from repro.core.runner import measure_plts
from repro.http import single_object_page
from repro.netem import emulated
from repro.netem.profiles import CELLULAR_PROFILES, Scenario
from repro.quic import quic_config
from repro.tcp import tcp_config

SCN = emulated(10.0)
PAGE = single_object_page(20_000)


def req(seed=0, **overrides):
    kwargs = dict(scenario=SCN, page=PAGE, protocol=ProtocolSpec.quic(),
                  seed=seed)
    kwargs.update(overrides)
    return RunRequest(**kwargs)


# ----------------------------------------------------------------------
# injectable run functions (module-level: must be picklable for jobs > 1)
# ----------------------------------------------------------------------
def _instant_run(request):
    return RunRecord(request=request, plt=float(request.seed), complete=True)


def _sleepy_run(request):
    time.sleep(10.0)
    return RunRecord(request=request, plt=1.0, complete=True)


def _flaky_marker_run(request):
    marker = os.environ["REPRO_TEST_FLAKY_MARKER"]
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("transient failure")
    return RunRecord(request=request, plt=3.0, complete=True)


class TestProtocolSpec:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            ProtocolSpec("sctp")

    def test_rejects_mismatched_config(self):
        with pytest.raises(TypeError):
            ProtocolSpec("quic", tcp_config())
        with pytest.raises(TypeError):
            ProtocolSpec("tcp", quic_config(34))

    def test_constructors(self):
        assert ProtocolSpec.quic(version=37).config.version == 37
        assert ProtocolSpec.tcp().resolved_config() == tcp_config()
        assert ProtocolSpec.of("quic").name == "quic"
        spec = ProtocolSpec.quic()
        assert ProtocolSpec.of(spec) is spec

    def test_default_config_resolved_lazily(self):
        spec = ProtocolSpec.quic()
        assert spec.config is None
        assert spec.resolved_config().version == 34


class TestRunRequest:
    def test_pickles_round_trip(self):
        request = req(seed=3, protocol=ProtocolSpec.quic(version=36),
                      trace=True)
        assert pickle.loads(pickle.dumps(request)) == request

    def test_execute_in_process(self):
        record = req(seed=1).execute()
        assert record.ok
        assert record.plt > 0
        assert record.metrics["bytes"] == PAGE.total_bytes

    def test_trace_metrics_included(self):
        record = req(seed=1, trace=True).execute()
        assert any(key.startswith("dwell:") for key in record.metrics)

    def test_incomplete_run_is_structured_failure(self):
        # A timeout in *simulated* time must surface as a failure record,
        # not an exception.
        record = execute_request(req(seed=1, timeout=0.001))
        assert not record.ok
        assert record.failure.kind == "incomplete"
        with pytest.raises(RuntimeError):
            record.require()


class TestScenarioSpecRoundTrip:
    def test_to_spec_from_spec_identity(self):
        for scenario in [SCN, CELLULAR_PROFILES["verizon-3g"].scenario()]:
            rebuilt = Scenario.from_spec(scenario.to_spec())
            assert rebuilt == scenario

    def test_from_spec_rejects_unknown_fields(self):
        spec = SCN.to_spec()
        spec["bandwdith"] = 10.0  # typo'd field
        with pytest.raises(ValueError, match="bandwdith"):
            Scenario.from_spec(spec)


class TestSerialParallelParity:
    def test_run_requests_parallel_matches_serial(self):
        requests = [req(seed=s) for s in range(4)]
        serial = run_requests(requests, jobs=1)
        parallel = run_requests(requests, jobs=2)
        assert [r.plt for r in serial] == [r.plt for r in parallel]
        assert all(r.ok for r in parallel)

    def test_order_is_request_order_not_completion_order(self):
        requests = [req(seed=s) for s in range(8)]
        records = run_requests(requests, jobs=4, chunk_size=1,
                               run_fn=_instant_run)
        assert [r.request.seed for r in records] == list(range(8))

    def test_measure_plts_parallel_matches_serial(self):
        serial = measure_plts(SCN, PAGE, ProtocolSpec.quic(), runs=4, jobs=1)
        parallel = measure_plts(SCN, PAGE, ProtocolSpec.quic(), runs=4, jobs=4)
        assert serial == parallel

    def test_run_experiment_json_identical_across_worker_counts(self):
        spec = ExperimentSpec(
            "parity",
            scenarios=[ScenarioSpec(10.0), ScenarioSpec(50.0)],
            workloads=[WorkloadSpec(1, 20)],
            runs=2,
        )
        assert (run_experiment(spec, jobs=1).to_json()
                == run_experiment(spec, jobs=4).to_json())


class TestTimeout:
    def test_parallel_timeout_yields_failure_not_hang(self):
        start = time.perf_counter()
        records = run_requests([req()], jobs=2, wall_timeout=0.3,
                               run_fn=_sleepy_run, retries=0)
        elapsed = time.perf_counter() - start
        assert elapsed < 8.0  # nowhere near the 10 s sleep
        assert records[0].failure is not None
        assert records[0].failure.kind == "timeout"

    def test_serial_timeout_yields_failure(self):
        records = run_requests([req()], jobs=1, wall_timeout=0.2,
                               run_fn=_sleepy_run, retries=0)
        assert records[0].failure.kind == "timeout"

    def test_timeouts_are_not_retried(self):
        records = run_requests([req()], jobs=1, wall_timeout=0.2,
                               run_fn=_sleepy_run, retries=3)
        assert records[0].attempts == 1


class TestRetry:
    def test_retry_recovers_transient_failure_serial(self):
        calls = {"n": 0}

        def flaky(request):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return RunRecord(request=request, plt=2.0, complete=True)

        record = run_requests([req()], jobs=1, retries=1, run_fn=flaky)[0]
        assert record.ok
        assert record.attempts == 2

    def test_retry_recovers_transient_failure_parallel(self, tmp_path):
        marker = tmp_path / "flaky-marker"
        os.environ["REPRO_TEST_FLAKY_MARKER"] = str(marker)
        try:
            record = run_requests([req()], jobs=2, retries=1,
                                  run_fn=_flaky_marker_run)[0]
        finally:
            del os.environ["REPRO_TEST_FLAKY_MARKER"]
        assert record.ok
        assert record.attempts == 2

    def test_bounded_retries_exhaust_into_error_record(self):
        def always_broken(request):
            raise RuntimeError("permanent")

        record = run_requests([req()], jobs=1, retries=2,
                              run_fn=always_broken)[0]
        assert record.failure.kind == "error"
        assert "permanent" in record.failure.message
        assert record.attempts == 3  # initial + 2 retries

    def test_one_bad_run_does_not_poison_the_batch(self):
        def broken_seed_one(request):
            if request.seed == 1:
                raise RuntimeError("boom")
            return RunRecord(request=request, plt=1.0, complete=True)

        records = run_requests([req(seed=s) for s in range(3)], jobs=1,
                               retries=0, run_fn=broken_seed_one)
        assert [r.ok for r in records] == [True, False, True]


class TestKnobs:
    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_serial_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_SERIAL", "1")
        # Closures are unpicklable, so this only works if the env var
        # really forces the in-process path despite jobs=4.
        seen = []

        def local_fn(request):
            seen.append(request.seed)
            return RunRecord(request=request, plt=1.0, complete=True)

        records = run_requests([req(seed=s) for s in range(3)], jobs=4,
                               run_fn=local_fn)
        assert seen == [0, 1, 2]
        assert all(r.ok for r in records)

    def test_progress_callback_sees_every_record(self):
        seen = []
        with pytest.warns(DeprecationWarning, match="iter_runs"):
            run_requests([req(seed=s) for s in range(5)], jobs=2,
                         chunk_size=2, run_fn=_instant_run,
                         progress=seen.append)
        assert sorted(r.request.seed for r in seen) == list(range(5))

    def test_empty_request_list(self):
        assert run_requests([], jobs=4) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            run_requests([req(), req(seed=1)], jobs=2, chunk_size=0)


class TestDeprecationShims:
    def test_quic_cfg_kwarg_warns_but_works(self):
        with pytest.warns(DeprecationWarning):
            plts = measure_plts(SCN, PAGE, "quic", runs=1,
                                quic_cfg=quic_config(34))
        assert len(plts) == 1

    def test_protocolspec_plus_cfg_kwarg_is_an_error(self):
        with pytest.raises(TypeError):
            measure_plts(SCN, PAGE, ProtocolSpec.quic(), runs=1,
                         quic_cfg=quic_config(34))

"""Tests for the ABR extension player."""

import pytest

from repro.netem import BandwidthSchedule, Simulator, build_path, emulated, mbps
from repro.video import AbrVideoPlayer
from repro.video.catalog import QUALITIES

from .conftest import make_quic_pair


def run_abr(scenario, seconds=40.0, variable=None, seed=1, **kw):
    sim = Simulator()
    path, client, _server = (lambda p: (p[0], p[1], p[2]))(
        make_quic_pair(sim, scenario, seed=seed))
    if variable:
        lo, hi = variable
        sched = BandwidthSchedule(sim, [path.bottleneck_down],
                                  mbps(lo), mbps(hi), period=2.0)
        sched.start()
    player = AbrVideoPlayer(sim, client, protocol="quic", **kw)
    player.start()
    sim.run(until=seconds)
    return player, player.finalize()


class TestAbr:
    def test_upswitches_on_fat_pipe(self):
        player, metrics = run_abr(emulated(100.0))
        assert player.switches_up >= 2
        assert player.current_quality in ("hd720", "hd2160")
        assert metrics.rebuffer_count == 0

    def test_stays_low_on_thin_pipe(self):
        player, _metrics = run_abr(emulated(0.5), seconds=60.0)
        assert player.current_quality in ("tiny", "medium")
        assert player.switches_up <= 1

    def test_downswitches_when_bandwidth_collapses(self):
        sim = Simulator()
        path, client, _server = make_quic_pair(sim, emulated(50.0), seed=2)
        player = AbrVideoPlayer(sim, client, protocol="quic",
                                start_quality="hd720")
        player.start()
        sim.run(until=15.0)
        path.bottleneck_down.set_rate(mbps(0.4))
        path.bottleneck_up.set_rate(mbps(0.4))
        sim.run(until=60.0)
        assert player.switches_down >= 1
        assert player.current_quality in ("tiny", "medium")

    def test_switches_one_rung_at_a_time(self):
        player, _ = run_abr(emulated(100.0))
        levels = [QUALITIES.index(q) for _, q in player.quality_history]
        for a, b in zip(levels, levels[1:]):
            assert abs(a - b) <= 1

    def test_history_and_mean_level(self):
        player, _ = run_abr(emulated(20.0))
        assert len(player.quality_history) > 3
        assert 0.0 <= player.mean_level() <= len(QUALITIES) - 1

    def test_unknown_start_quality(self):
        sim = Simulator()
        _path, client, _server = make_quic_pair(sim, emulated(10.0))
        with pytest.raises(KeyError):
            AbrVideoPlayer(sim, client, start_quality="8k")

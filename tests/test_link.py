"""Unit tests for the netem-style link: rate, queue, delay, jitter, loss."""

import random

import pytest

from repro.netem.link import BandwidthSchedule, Link, mbps
from repro.netem.packet import Packet
from repro.netem.sim import Simulator


def collect(link):
    received = []
    link.attach(lambda p: received.append((link.sim.now, p)))
    return received


def pkt(size=1000, pid=None):
    return Packet("a", "b", size)


class TestRateLimiting:
    def test_serialization_delay(self):
        sim = Simulator()
        link = Link(sim, rate_bps=8000.0, delay=0.0)  # 1000 bytes/sec
        received = collect(link)
        link.send(pkt(size=500))
        sim.run()
        assert received[0][0] == pytest.approx(0.5)

    def test_back_to_back_packets_queue(self):
        sim = Simulator()
        link = Link(sim, rate_bps=8000.0, delay=0.0)
        received = collect(link)
        link.send(pkt(size=500))
        link.send(pkt(size=500))
        sim.run()
        assert [t for t, _ in received] == pytest.approx([0.5, 1.0])

    def test_infinite_rate_no_delay(self):
        sim = Simulator()
        link = Link(sim, rate_bps=None, delay=0.0)
        received = collect(link)
        link.send(pkt())
        sim.run()
        assert received[0][0] == 0.0

    def test_propagation_delay_added(self):
        sim = Simulator()
        link = Link(sim, rate_bps=8000.0, delay=0.25)
        received = collect(link)
        link.send(pkt(size=500))
        sim.run()
        assert received[0][0] == pytest.approx(0.75)

    def test_mbps_helper(self):
        assert mbps(10) == 10_000_000.0

    def test_set_rate_affects_next_transmission(self):
        sim = Simulator()
        link = Link(sim, rate_bps=8000.0, delay=0.0)
        received = collect(link)
        link.send(pkt(size=1000))  # 1 s at 8 kbit/s
        sim.run()
        link.set_rate(16000.0)
        link.send(pkt(size=1000))  # 0.5 s at 16 kbit/s
        sim.run()
        assert received[1][0] - received[0][0] == pytest.approx(0.5)

    def test_throughput_approaches_rate(self):
        sim = Simulator()
        link = Link(sim, rate_bps=mbps(10), delay=0.0, queue_bytes=10**9)
        received = collect(link)
        n, size = 500, 1250
        for _ in range(n):
            link.send(pkt(size=size))
        sim.run()
        elapsed = received[-1][0]
        assert n * size * 8 / elapsed == pytest.approx(10e6, rel=0.01)


class TestQueue:
    def test_droptail_overflow(self):
        sim = Simulator()
        link = Link(sim, rate_bps=8000.0, delay=0.0, queue_bytes=1500)
        received = collect(link)
        for _ in range(5):
            link.send(pkt(size=1000))
        sim.run()
        # One in flight + one queued fit; the rest drop.
        assert link.stats.dropped_packets == 3
        assert len(received) == 2

    def test_backlog_bytes(self):
        sim = Simulator()
        link = Link(sim, rate_bps=8000.0, delay=0.0, queue_bytes=10_000)
        collect(link)
        link.send(pkt(size=1000))
        link.send(pkt(size=1000))
        # First packet dequeued for transmission; second still queued.
        assert link.backlog_bytes == 1000
        sim.run()
        assert link.backlog_bytes == 0


class TestLoss:
    def test_zero_loss_delivers_all(self):
        sim = Simulator()
        link = Link(sim, rate_bps=None, delay=0.0, loss_rate=0.0)
        received = collect(link)
        for _ in range(100):
            link.send(pkt())
        sim.run()
        assert len(received) == 100

    def test_loss_rate_statistics(self):
        sim = Simulator()
        link = Link(sim, rate_bps=None, delay=0.0, loss_rate=0.1,
                    rng=random.Random(42))
        received = collect(link)
        n = 5000
        for _ in range(n):
            link.send(pkt())
        sim.run()
        observed = 1 - len(received) / n
        assert observed == pytest.approx(0.1, abs=0.02)
        assert link.stats.lost_packets == n - len(received)

    def test_invalid_loss_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, rate_bps=None, delay=0.0, loss_rate=1.0)


class TestJitterAndReordering:
    def test_jitter_causes_reordering(self):
        sim = Simulator()
        link = Link(sim, rate_bps=mbps(100), delay=0.1, jitter=0.05,
                    rng=random.Random(7))
        received = collect(link)
        ids = []
        for i in range(200):
            p = Packet("a", "b", 1350)
            ids.append(p.packet_id)
            link.send(p)
        sim.run()
        out_ids = [p.packet_id for _, p in received]
        assert out_ids != ids  # reordered
        assert sorted(out_ids) == sorted(ids)  # nothing lost
        assert link.stats.reordered_packets > 0

    def test_no_jitter_preserves_order(self):
        sim = Simulator()
        link = Link(sim, rate_bps=mbps(100), delay=0.1)
        received = collect(link)
        ids = []
        for _ in range(100):
            p = Packet("a", "b", 1350)
            ids.append(p.packet_id)
            link.send(p)
        sim.run()
        assert [p.packet_id for _, p in received] == ids
        assert link.stats.reordered_packets == 0

    def test_explicit_reorder_prob(self):
        sim = Simulator()
        link = Link(sim, rate_bps=mbps(100), delay=0.05,
                    reorder_prob=0.2, reorder_extra=0.05,
                    rng=random.Random(3))
        received = collect(link)
        for _ in range(500):
            link.send(pkt(size=1350))
        sim.run()
        assert link.stats.reordered_packets > 0


class TestBandwidthSchedule:
    def test_rates_stay_in_range_and_history_recorded(self):
        sim = Simulator()
        link = Link(sim, rate_bps=mbps(100), delay=0.0)
        collect(link)
        sched = BandwidthSchedule(sim, [link], mbps(50), mbps(150),
                                  period=1.0, rng=random.Random(5))
        sched.start()
        sim.run(until=10.0)
        sched.stop()
        assert len(sched.history) >= 10
        for _t, rate in sched.history:
            assert mbps(50) <= rate <= mbps(150)
        assert mbps(50) <= link.rate_bps <= mbps(150)

    def test_stop_halts_redraws(self):
        sim = Simulator()
        link = Link(sim, rate_bps=mbps(100), delay=0.0)
        sched = BandwidthSchedule(sim, [link], mbps(50), mbps(150), period=1.0)
        sched.start()
        sim.run(until=2.5)
        sched.stop()
        n = len(sched.history)
        sim.run(until=10.0)
        assert len(sched.history) == n

    def test_invalid_parameters(self):
        sim = Simulator()
        link = Link(sim, rate_bps=None, delay=0.0)
        with pytest.raises(ValueError):
            BandwidthSchedule(sim, [link], 0, mbps(10))
        with pytest.raises(ValueError):
            BandwidthSchedule(sim, [link], mbps(10), mbps(5))


class TestStats:
    def test_counters_consistent(self):
        sim = Simulator()
        link = Link(sim, rate_bps=8000.0, delay=0.0, queue_bytes=2000,
                    loss_rate=0.3, rng=random.Random(1))
        received = collect(link)
        for _ in range(50):
            link.send(pkt(size=1000))
        sim.run()
        s = link.stats
        assert s.enqueued_packets + s.dropped_packets == 50
        assert s.delivered_packets + s.lost_packets == s.enqueued_packets
        assert s.delivered_packets == len(received)
        assert set(s.as_dict()) >= {"enqueued_packets", "delivered_bytes"}

"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.netem.sim import Event, SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(0.3, fired.append, "c")
        sim.schedule(0.1, fired.append, "a")
        sim.schedule(0.2, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self, sim):
        fired = []
        for tag in range(10):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(0.5, lambda: None)

    def test_zero_delay_allowed(self, sim):
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]

    def test_nested_scheduling(self, sim):
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(0.1, fired.append, "inner")

        sim.schedule(0.1, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == pytest.approx(0.2)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(0.1, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_twice_is_noop(self, sim):
        event = sim.schedule(0.1, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_cancel_from_earlier_event(self, sim):
        fired = []
        later = sim.schedule(0.2, fired.append, "later")
        sim.schedule(0.1, later.cancel)
        sim.run()
        assert fired == []

    def test_pending_events_excludes_cancelled(self, sim):
        event = sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None)
        event.cancel()
        assert sim.pending_events() == 1


class TestRun:
    def test_run_until_time_stops_and_advances_clock(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_predicate(self, sim):
        counter = []
        for i in range(10):
            sim.schedule(0.1 * (i + 1), counter.append, i)
        satisfied = sim.run_until(lambda: len(counter) >= 3, timeout=10.0)
        assert satisfied
        assert len(counter) == 3

    def test_run_until_timeout_returns_false(self, sim):
        satisfied = sim.run_until(lambda: False, timeout=1.0)
        assert not satisfied
        assert sim.now == 1.0

    def test_run_until_predicate_already_true(self, sim):
        assert sim.run_until(lambda: True, timeout=5.0)
        assert sim.now == 0.0

    def test_max_events_guard(self, sim):
        def loop():
            sim.schedule(0.001, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(0.1 * i, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_not_reentrant(self, sim):
        def recurse():
            sim.run()

        sim.schedule(0.1, recurse)
        with pytest.raises(SimulationError):
            sim.run()


class TestEvent:
    def test_event_ordering_dunder(self):
        a = Event(1.0, 0, lambda: None, ())
        b = Event(1.0, 1, lambda: None, ())
        c = Event(0.5, 2, lambda: None, ())
        assert c < a < b

    def test_pending_property(self, sim):
        event = sim.schedule(0.1, lambda: None)
        assert event.pending
        event.cancel()
        assert not event.pending

"""Tests for nodes, routing, scenarios, and canned topologies."""

import pytest

from repro.netem import (
    CELLULAR_PROFILES,
    Network,
    Packet,
    Scenario,
    Simulator,
    build_bottleneck,
    build_path,
    build_proxy_path,
    emulated,
    fairness_bottleneck,
    mbps,
    reordering_scenario,
)


class TestNetworkRouting:
    def make_line(self, sim):
        net = Network(sim)
        for name in ("a", "b", "c"):
            net.add_node(name)
        net.duplex_link("a", "b", rate_bps=None, delay=0.01)
        net.duplex_link("b", "c", rate_bps=None, delay=0.02)
        net.build_routes()
        return net

    def test_multi_hop_delivery(self):
        sim = Simulator()
        net = self.make_line(sim)
        got = []
        net.node("c").register_handler(lambda p: got.append(sim.now))
        net.node("a").send(Packet("a", "c", 100))
        sim.run()
        assert got == [pytest.approx(0.03)]

    def test_reverse_direction(self):
        sim = Simulator()
        net = self.make_line(sim)
        got = []
        net.node("a").register_handler(lambda p: got.append(sim.now))
        net.node("c").send(Packet("c", "a", 100))
        sim.run()
        assert got == [pytest.approx(0.03)]

    def test_local_delivery(self):
        sim = Simulator()
        net = self.make_line(sim)
        got = []
        net.node("a").register_handler(lambda p: got.append(p))
        net.node("a").send(Packet("x", "a", 100))
        assert len(got) == 1

    def test_no_route_counted(self):
        sim = Simulator()
        net = self.make_line(sim)
        net.node("a").send(Packet("a", "nowhere", 100))
        assert net.node("a").no_route_drops == 1

    def test_shortest_path_by_delay(self):
        sim = Simulator()
        net = Network(sim)
        for name in ("a", "b", "c"):
            net.add_node(name)
        # Direct a-c is slower than a-b-c.
        net.duplex_link("a", "c", rate_bps=None, delay=0.1)
        net.duplex_link("a", "b", rate_bps=None, delay=0.01)
        net.duplex_link("b", "c", rate_bps=None, delay=0.01)
        net.build_routes()
        got = []
        net.node("c").register_handler(lambda p: got.append(sim.now))
        net.node("a").send(Packet("a", "c", 100))
        sim.run()
        assert got == [pytest.approx(0.02)]

    def test_duplicate_node_rejected(self):
        net = Network(Simulator())
        net.add_node("a")
        with pytest.raises(ValueError):
            net.add_node("a")

    def test_link_before_nodes_rejected(self):
        net = Network(Simulator())
        net.add_node("a")
        with pytest.raises(KeyError):
            net.duplex_link("a", "ghost", rate_bps=None, delay=0.0)


class TestScenario:
    def test_emulated_units(self):
        scn = emulated(10.0, extra_delay_ms=50, loss_pct=1.0, jitter_ms=10)
        assert scn.rate_bps == mbps(10)
        assert scn.extra_delay == pytest.approx(0.050)
        assert scn.loss_rate == pytest.approx(0.01)
        assert scn.jitter == pytest.approx(0.010)
        assert scn.total_rtt == pytest.approx(0.036 + 0.050)

    def test_queue_autosize_is_bdp_based(self):
        scn = emulated(100.0)
        bdp = 100e6 * 0.036 / 8
        assert scn.effective_queue_bytes() == int(1.5 * bdp)

    def test_queue_autosize_floor(self):
        scn = emulated(1.0)
        assert scn.effective_queue_bytes() == 32_000

    def test_explicit_queue_respected(self):
        scn = fairness_bottleneck()
        assert scn.effective_queue_bytes() == 30_000
        assert scn.rate_mbps == 5.0

    def test_unlimited_rate(self):
        scn = emulated(None)
        assert scn.rate_bps is None
        assert scn.effective_queue_bytes() is None

    def test_with_copies(self):
        scn = emulated(10.0)
        scn2 = scn.with_(loss_rate=0.05)
        assert scn2.loss_rate == 0.05
        assert scn.loss_rate == 0.0

    def test_describe_mentions_key_facts(self):
        text = reordering_scenario().describe()
        assert "112" in text and "jitter" in text

    def test_cellular_profiles_match_table5(self):
        v3g = CELLULAR_PROFILES["verizon-3g"]
        assert v3g.throughput_mbps == 0.17
        assert v3g.rtt_ms == 109.0
        s_lte = CELLULAR_PROFILES["sprint-lte"]
        assert s_lte.throughput_mbps == 2.4
        assert s_lte.loss_pct == 0.02
        scn = s_lte.scenario()
        assert scn.rate_mbps == 2.4
        assert scn.reorder_prob == pytest.approx(0.0013)


class TestCannedTopologies:
    def test_build_path_rtt(self):
        sim = Simulator()
        scn = emulated(None, extra_delay_ms=0).with_(rtt_run_variation=0.0)
        path = build_path(sim, scn, seed=1)
        got = []
        path.server.register_handler(lambda p: got.append(sim.now))
        path.client.send(Packet("client", "server", 100))
        sim.run()
        # One-way delay should be half the scenario RTT.
        assert got[0] == pytest.approx(0.018, abs=1e-6)

    def test_rtt_run_variation_differs_per_seed(self):
        delays = set()
        for seed in range(5):
            sim = Simulator()
            path = build_path(sim, emulated(None), seed=seed)
            got = []
            path.server.register_handler(lambda p: got.append(sim.now))
            path.client.send(Packet("client", "server", 100))
            sim.run()
            delays.add(round(got[0], 9))
        assert len(delays) == 5
        for d in delays:
            assert d == pytest.approx(0.018, rel=0.025)

    def test_build_path_applies_rate_cap(self):
        sim = Simulator()
        path = build_path(sim, emulated(10.0), seed=1)
        assert path.bottleneck_up.rate_bps == mbps(10)
        assert path.bottleneck_down.rate_bps == mbps(10)

    def test_proxy_path_structure(self):
        sim = Simulator()
        path = build_proxy_path(sim, emulated(10.0, extra_delay_ms=100), seed=1)
        assert path.proxy is not None
        got = []
        path.server.register_handler(lambda p: got.append(sim.now))
        path.client.send(Packet("client", "server", 100))
        sim.run()
        # End-to-end one-way delay is preserved (~ RTT/2).
        assert got[0] == pytest.approx(0.136 / 2, rel=0.05)

    def test_bottleneck_shares_one_link(self):
        sim = Simulator()
        net, clients, servers, down = build_bottleneck(
            sim, fairness_bottleneck(), n_pairs=3, seed=1
        )
        assert len(clients) == len(servers) == 3
        got = []
        clients[2].register_handler(lambda p: got.append(p))
        servers[2].send(Packet("server2", "client2", 500))
        sim.run()
        assert len(got) == 1
        assert down.stats.delivered_packets == 1

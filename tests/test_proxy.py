"""Tests for split-connection proxies (Sec. 5.5)."""

import pytest

from repro.core.runner import run_page_load
from repro.http import page, single_object_page
from repro.netem import Simulator, build_proxy_path, emulated
from repro.proxy import SplitConnectionProxy, install_proxy
from repro.quic import quic_config
from repro.tcp import tcp_config
from repro.http import PageLoader, page_request_handler


def proxied_load(protocol, web_page, scenario, seed=1):
    sim = Simulator()
    path = build_proxy_path(sim, scenario, seed=seed)
    proxy = SplitConnectionProxy(
        sim, path, protocol, page_request_handler(web_page),
        quic_cfg=quic_config(34), tcp_cfg=tcp_config(), seed=seed,
    )
    loader = PageLoader(sim, proxy.client, web_page, protocol)
    loader.start()
    assert sim.run_until(lambda: loader.done, timeout=120.0)
    return loader.result, proxy


HIGH_DELAY = emulated(10.0, extra_delay_ms=100)


class TestForwarding:
    @pytest.mark.parametrize("protocol", ["quic", "tcp"])
    def test_page_completes_through_proxy(self, protocol):
        result, proxy = proxied_load(protocol, page(3, 50_000), HIGH_DELAY)
        assert result.complete
        assert proxy.forwarded_bytes >= 3 * 50_000

    @pytest.mark.parametrize("protocol", ["quic", "tcp"])
    def test_large_object_streams_through(self, protocol):
        """Cut-through forwarding: PLT must be far below 2x the direct
        time (store-and-forward would double it)."""
        size = 2_000_000
        direct = run_page_load(HIGH_DELAY, single_object_page(size), protocol,
                               seed=1).plt
        result, _ = proxied_load(protocol, single_object_page(size), HIGH_DELAY)
        assert result.plt < direct * 1.6

    def test_proxy_requires_proxy_path(self):
        sim = Simulator()
        from repro.netem import build_path

        path = build_path(sim, HIGH_DELAY, seed=1)
        with pytest.raises(ValueError):
            SplitConnectionProxy(sim, path, "tcp", lambda m: 100,
                                 tcp_cfg=tcp_config())

    def test_unknown_protocol_rejected(self):
        sim = Simulator()
        path = build_proxy_path(sim, HIGH_DELAY, seed=1)
        with pytest.raises(ValueError):
            SplitConnectionProxy(sim, path, "sctp", lambda m: 100)

    def test_missing_config_rejected(self):
        sim = Simulator()
        path = build_proxy_path(sim, HIGH_DELAY, seed=1)
        with pytest.raises(ValueError):
            SplitConnectionProxy(sim, path, "quic", lambda m: 100)


class TestPaperEffects:
    def test_tcp_proxy_helps_on_high_delay(self):
        """Split handshakes + per-leg recovery shrink TCP's PLT (Fig. 17)."""
        web_page = single_object_page(100_000)
        direct = run_page_load(HIGH_DELAY, web_page, "tcp", seed=1).plt
        result, _ = proxied_load("tcp", web_page, HIGH_DELAY)
        assert result.plt < direct

    def test_quic_proxy_hurts_small_objects(self):
        """The unoptimized QUIC proxy loses 0-RTT: small objects suffer
        (Fig. 18's blue cells)."""
        web_page = single_object_page(10_000)
        direct = run_page_load(HIGH_DELAY, web_page, "quic", seed=1).plt
        result, _ = proxied_load("quic", web_page, HIGH_DELAY)
        assert result.plt > direct

    def test_quic_proxy_legs_disable_zero_rtt(self):
        _, proxy = proxied_load("quic", single_object_page(10_000), HIGH_DELAY)
        assert proxy.client.config.zero_rtt is False
        assert proxy.right_client.config.zero_rtt is False

    def test_runner_proxied_flag(self):
        out = run_page_load(HIGH_DELAY, single_object_page(50_000), "tcp",
                            seed=2, proxied=True)
        assert out.result.complete
        assert len(out.proxy_connections) == 2


class TestInstallHelper:
    def test_install_proxy_returns_endpoints(self):
        sim = Simulator()
        path = build_proxy_path(sim, HIGH_DELAY, seed=3)
        client, origin, (left, right) = install_proxy(
            sim, path, "tcp", lambda m: m["size"], tcp_cfg=tcp_config(),
        )
        assert client.node.name == "client"
        assert origin.node.name == "server"
        assert left.node.name == "proxy" and right.node.name == "proxy"

"""Integration tests: the paper's key findings must hold in the simulator.

Each test encodes one bullet from the paper's Sec. 1 findings list (or a
Sec. 5 claim) as an executable assertion on *shape* — who wins, roughly
by how much, and why.  These are the repository's ground truth; the
benchmark harness reproduces the full tables and figures on top of the
same machinery.
"""

import pytest

from repro.core.runner import (
    compare_page_load,
    compare_quic_variants,
    run_bulk_transfer,
    run_fairness,
    run_page_load,
)
from repro.devices import DESKTOP, MOTOG
from repro.http import page, single_object_page
from repro.netem import emulated, fairness_bottleneck, reordering_scenario
from repro.quic import quic_config

RUNS = 5  # reduced from the paper's 10 to keep the suite fast


class TestDesktopFindings:
    def test_quic_outperforms_tcp_on_clean_links(self):
        """Finding 1: 'QUIC outperforms TCP+HTTPS in nearly every scenario'."""
        cell = compare_page_load(
            emulated(10.0), single_object_page(200 * 1024), runs=RUNS)
        assert cell.winner == "quic"
        assert cell.pct_diff > 10

    def test_quic_gain_largest_for_small_objects(self):
        """0-RTT dominates when the transfer is a handful of packets."""
        small = compare_page_load(
            emulated(10.0), single_object_page(5 * 1024), runs=RUNS)
        large = compare_page_load(
            emulated(10.0), single_object_page(1024 * 1024), runs=RUNS)
        assert small.pct_diff > large.pct_diff

    def test_quic_outperforms_under_loss(self):
        """Fig. 8a: better loss recovery and no transport HOL blocking.

        Random loss makes individual runs noisy, so this uses more
        rounds and checks the effect size plus a relaxed significance
        level (the full bench uses the paper's 10+ rounds per cell)."""
        cell = compare_page_load(
            emulated(50.0, loss_pct=1.0), single_object_page(1024 * 1024),
            runs=14)
        assert cell.quic_mean < cell.tcp_mean
        assert cell.pct_diff > 25
        assert cell.ttest.p_value < 0.05

    def test_many_small_objects_is_quics_weak_spot(self):
        """Sec. 5.2: large numbers of small objects favour TCP (HSS exit).

        The gain must at least collapse versus the single-object case."""
        single = compare_page_load(
            emulated(50.0), page(1, 10 * 1024), runs=RUNS)
        many = compare_page_load(
            emulated(50.0), page(200, 10 * 1024), runs=RUNS)
        assert many.pct_diff < single.pct_diff - 5

    def test_zero_rtt_benefit_isolated(self):
        """Fig. 7: 0-RTT helps small objects; insignificant for 10 MB."""
        small = compare_quic_variants(
            emulated(10.0), single_object_page(10 * 1024),
            treatment_cfg=quic_config(34, zero_rtt=True),
            baseline_cfg=quic_config(34, zero_rtt=False), runs=RUNS)
        big = compare_quic_variants(
            emulated(10.0), single_object_page(10 * 1024 * 1024),
            treatment_cfg=quic_config(34, zero_rtt=True),
            baseline_cfg=quic_config(34, zero_rtt=False), runs=RUNS)
        assert small.pct_diff > 10
        assert big.pct_diff < 5


class TestReorderingFinding:
    def test_quic_collapses_under_reordering_tcp_does_not(self):
        """Finding 2 / Fig. 10: jitter-reordered packets are false losses
        for QUIC's fixed NACK threshold; TCP's DSACK adapts."""
        scn = reordering_scenario()
        quic = run_bulk_transfer(scn, 10 * 1024 * 1024, "quic", seed=1)
        tcp = run_bulk_transfer(scn, 10 * 1024 * 1024, "tcp", seed=1)
        assert quic.elapsed > tcp.elapsed * 1.5
        assert quic.false_losses > 100

    def test_raising_nack_threshold_restores_quic(self):
        """Fig. 10: larger thresholds progressively repair performance."""
        scn = reordering_scenario()
        elapsed = {}
        for threshold in (3, 50):
            cfg = quic_config(34)
            cfg.nack_threshold = threshold
            result = run_bulk_transfer(scn, 10 * 1024 * 1024, "quic",
                                       seed=1, quic_cfg=cfg)
            elapsed[threshold] = result.elapsed
        assert elapsed[50] < elapsed[3] / 2


class TestFairnessFinding:
    def test_quic_takes_twice_its_share(self):
        """Table 4: ~2.71 vs 1.62 Mbps on a 5 Mbps bottleneck."""
        result = run_fairness(n_quic=1, n_tcp=1, duration=30.0, seed=1)
        assert result.average_mbps["quic"] > result.average_mbps["tcp"] * 1.3

    def test_quic_holds_majority_against_two_tcp(self):
        """Table 4: QUIC keeps >50% even vs TCPx2."""
        result = run_fairness(n_quic=1, n_tcp=2, duration=30.0, seed=1)
        assert result.quic_share() > 0.5

    def test_two_quic_flows_are_fair(self):
        """Sec. 5.1: QUIC vs QUIC is fair."""
        result = run_fairness(n_quic=2, n_tcp=0, duration=30.0, seed=1)
        rates = sorted(result.average_mbps.values())
        assert rates[0] > rates[1] * 0.6


class TestVariableBandwidthFinding:
    def test_quic_tracks_fluctuating_bandwidth_better(self):
        """Fig. 11: unambiguous ACKs track capacity changes faster."""
        scn = emulated(100.0)
        size = 30 * 1024 * 1024
        scn = scn.with_(queue_bytes=100_000)  # short queue, as in Fig. 11
        quic_tputs, tcp_tputs = [], []
        for seed in (1, 2):
            quic_tputs.append(run_bulk_transfer(
                scn, size, "quic", seed=seed,
                variable_bw=(50.0, 150.0, 1.0)).throughput_mbps)
            tcp_tputs.append(run_bulk_transfer(
                scn, size, "tcp", seed=seed,
                variable_bw=(50.0, 150.0, 1.0)).throughput_mbps)
        assert sum(quic_tputs) > sum(tcp_tputs)


class TestMobileFinding:
    def test_quic_gains_diminish_on_motog(self):
        """Finding 3 / Fig. 12: gains shrink or reverse on a slow phone."""
        scn = emulated(50.0)
        web_page = single_object_page(10 * 1024 * 1024)
        desktop = compare_page_load(scn, web_page, runs=3)
        motog = compare_page_load(scn, web_page, runs=3, device=MOTOG)
        assert motog.pct_diff < desktop.pct_diff - 10

    def test_root_cause_is_application_limited_dwell(self):
        """Fig. 13: the server parks in ApplicationLimited on the MotoG."""
        scn = emulated(50.0)
        web_page = single_object_page(10 * 1024 * 1024)
        desktop = run_page_load(scn, web_page, "quic", seed=1, trace=True)
        motog = run_page_load(scn, web_page, "quic", seed=1, trace=True,
                              device=MOTOG)
        d = desktop.server_trace.dwell_fractions().get("ApplicationLimited", 0)
        m = motog.server_trace.dwell_fractions().get("ApplicationLimited", 0)
        assert m > 0.4
        assert d < 0.15


class TestCalibrationFinding:
    def test_macw_dominates_large_transfer_throughput(self):
        """Secs. 4.1/5.4: MACW 107 vs 430 vs 2000 orders throughput."""
        scn = emulated(100.0)
        size = 10 * 1024 * 1024
        results = {}
        for macw in (107, 430, 2000):
            cfg = quic_config(37, macw_packets=macw)
            results[macw] = run_bulk_transfer(scn, size, "quic", seed=1,
                                              quic_cfg=cfg).elapsed
        assert results[107] > results[430]
        assert results[430] >= results[2000] * 0.95

    def test_versions_25_to_34_identical_with_same_config(self):
        """Sec. 5.4: same configuration -> near-identical performance."""
        scn = emulated(10.0)
        plts = {}
        for version in (25, 30, 34):
            out = run_page_load(scn, single_object_page(1024 * 1024), "quic",
                                seed=1, quic_cfg=quic_config(version))
            plts[version] = out.plt
        values = list(plts.values())
        assert max(values) - min(values) < 0.01 * max(values)

    def test_quic37_default_differs_only_via_macw(self):
        """Fig. 15: QUIC 37 at MACW 430 matches QUIC 34."""
        scn = emulated(100.0)
        web_page = single_object_page(10 * 1024 * 1024)
        v34 = run_page_load(scn, web_page, "quic", seed=1,
                            quic_cfg=quic_config(34)).plt
        v37_clamped = run_page_load(scn, web_page, "quic", seed=1,
                                    quic_cfg=quic_config(37, macw_packets=430)).plt
        assert v37_clamped == pytest.approx(v34, rel=0.08)


class TestProxyFindings:
    def test_tcp_proxy_closes_the_gap(self):
        """Sec. 5.5: a TCP proxy helps TCP at high delay."""
        scn = emulated(10.0, extra_delay_ms=100)
        web_page = single_object_page(200 * 1024)
        direct = run_page_load(scn, web_page, "tcp", seed=1).plt
        proxied = run_page_load(scn, web_page, "tcp", seed=1, proxied=True).plt
        assert proxied < direct

    def test_quic_proxy_hurts_small_objects(self):
        """Fig. 18: losing 0-RTT costs small transfers."""
        scn = emulated(10.0, extra_delay_ms=100)
        web_page = single_object_page(10 * 1024)
        direct = run_page_load(scn, web_page, "quic", seed=1).plt
        proxied = run_page_load(scn, web_page, "quic", seed=1, proxied=True).plt
        assert proxied > direct

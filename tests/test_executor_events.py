"""Tests for the streaming execution API (iter_runs + RunEvents).

Covers the event-stream contract, worker-direct store write-back across
a real 4-process pool, parent-pipe payload bounds, retry-counter
reconciliation, and mid-sweep report parity (kill / live-render /
resume / byte-identical final report).
"""

import os
import pickle

import pytest

from repro.core.executor import (
    EVENT_KINDS,
    EVENT_WIRE_BOUND,
    TERMINAL_EVENTS,
    ProtocolSpec,
    RunEvent,
    RunFailure,
    RunRecord,
    RunRequest,
    iter_runs,
    run_requests,
)
from repro.core.report import build_store_report
from repro.http import single_object_page
from repro.netem import emulated
from repro.store import RunCache, ShardStore, open_store

SCN = emulated(10.0)
PAGE = single_object_page(20_000)


def req(seed=0, **overrides):
    kwargs = dict(scenario=SCN, page=PAGE, protocol=ProtocolSpec.quic(),
                  seed=seed)
    kwargs.update(overrides)
    return RunRequest(**kwargs)


# ----------------------------------------------------------------------
# injectable run functions (module-level: must be picklable for jobs > 1)
# ----------------------------------------------------------------------
def _instant_run(request):
    return RunRecord(request=request, plt=float(request.seed) / 10.0 + 0.1,
                     complete=True)


def _failing_run(request):
    return RunRecord(request=request, plt=None, complete=False,
                     failure=RunFailure("error", "boom " * 200))


def _flaky_once_run(request):
    marker = os.environ["REPRO_TEST_EVENT_MARKER"] + f".{request.seed}"
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("transient failure")
    return RunRecord(request=request, plt=1.0, complete=True)


class TestEventStreamContract:
    def test_one_terminal_event_per_request(self):
        requests = [req(seed=s) for s in range(6)]
        events = list(iter_runs(requests, run_fn=_instant_run))
        terminal = [e for e in events if e.terminal]
        assert sorted(e.index for e in terminal) == list(range(6))
        assert len(terminal) == len(requests)
        for event in events:
            assert event.kind in EVENT_KINDS
            assert (event.kind in TERMINAL_EVENTS) == event.terminal

    def test_miss_start_precedes_terminal(self):
        events = list(iter_runs([req(seed=s) for s in range(4)],
                                run_fn=_instant_run))
        started = set()
        for event in events:
            if event.kind == "miss-start":
                started.add(event.index)
            elif event.terminal:
                assert event.index in started
        assert started == set(range(4))

    def test_require_matches_record_semantics(self):
        ok = [e for e in iter_runs([req()], run_fn=_instant_run)
              if e.terminal][0]
        assert ok.ok and ok.require() == pytest.approx(0.1)
        bad = [e for e in iter_runs([req()], run_fn=_failing_run)
               if e.terminal][0]
        assert not bad.ok
        with pytest.raises(RuntimeError, match="failed"):
            bad.require()

    def test_failure_messages_are_clipped(self):
        bad = [e for e in iter_runs([req()], run_fn=_failing_run)
               if e.terminal][0]
        assert bad.failure_kind == "error"
        assert len(bad.failure_message) <= 300

    def test_events_carry_no_records_by_default(self):
        for event in iter_runs([req(seed=s) for s in range(3)],
                               run_fn=_instant_run):
            assert event.record is None

    def test_keep_records_attaches_terminal_records(self):
        events = list(iter_runs([req(seed=s) for s in range(3)],
                                run_fn=_instant_run, keep_records=True))
        for event in events:
            if event.terminal:
                assert event.record is not None
                assert event.record.request.seed == event.index
            else:
                assert event.record is None

    def test_hits_stream_first_in_request_order(self, tmp_path):
        cache = RunCache(tmp_path / "store.sqlite")
        list(iter_runs([req(seed=s) for s in (1, 3)], run_fn=_instant_run,
                       store=cache))
        events = list(iter_runs([req(seed=s) for s in range(4)],
                                run_fn=_instant_run, store=cache))
        hits = [e for e in events if e.kind == "hit"]
        assert [e.index for e in hits] == [1, 3]
        assert all(e.cached and e.stored for e in hits)
        assert events[:2] == hits  # hits before any miss activity

    def test_events_are_frozen_and_labelled(self):
        event = next(iter(iter_runs([req()], run_fn=_instant_run)))
        with pytest.raises(AttributeError):
            event.kind = "hit"
        assert "quic" in event.label and SCN.name in event.label


class TestRetryAccounting:
    def test_retry_event_per_attempt_reconciles_counters(self, tmp_path,
                                                         monkeypatch):
        monkeypatch.setenv("REPRO_TEST_EVENT_MARKER",
                           str(tmp_path / "marker"))
        cache = RunCache(tmp_path / "store.sqlite")
        events = list(iter_runs([req(seed=s) for s in range(3)],
                                run_fn=_flaky_once_run, retries=2,
                                store=cache))
        retries = [e for e in events if e.kind == "retry"]
        assert len(retries) == 3  # one failed first attempt per seed
        assert cache.retries == len(retries)
        terminal = [e for e in events if e.terminal]
        assert all(e.ok and e.attempts == 2 for e in terminal)
        assert cache.session_stats == (0, 3, 3)

    def test_no_retry_events_without_retries(self):
        events = list(iter_runs([req(), req(seed=1)], run_fn=_instant_run))
        assert not [e for e in events if e.kind == "retry"]


class TestWorkerDirectWriteBack:
    def test_four_process_pool_writes_store_directly(self, tmp_path):
        """jobs=4 pool: records land in the store from the workers; the
        parent pipe carries only payload-free, size-bounded events."""
        cache = RunCache(ShardStore(tmp_path / "shards"))
        requests = [req(seed=s) for s in range(40)]
        events = list(iter_runs(requests, jobs=4, chunk_size=2,
                                run_fn=_instant_run, store=cache,
                                force_pool=True))
        terminal = [e for e in events if e.terminal]
        assert sorted(e.index for e in terminal) == list(range(40))
        # no payloads crossed the parent pipe...
        assert all(e.record is None for e in events)
        for event in events:
            assert len(pickle.dumps(event)) <= EVENT_WIRE_BOUND
        # ...yet every record is in the store, written by the workers.
        assert all(e.stored for e in terminal)
        assert len(cache.store) == 40
        assert cache.writes == 40
        assert cache.store.counters()["writes"] == 40
        # no torn/lost records: every row decodes back to its seed
        seeds = set()
        for key in cache.store.keys():
            record = cache.store.get(key)
            assert record is not None
            seeds.add(record.request.seed)
        assert seeds == set(range(40))

    def test_memory_store_pool_still_persists(self, tmp_path):
        # an in-memory store cannot be reopened by workers: records must
        # ride back to the parent, which writes them itself.
        cache = RunCache(open_store(":memory:"))
        events = list(iter_runs([req(seed=s) for s in range(8)], jobs=4,
                                chunk_size=2, run_fn=_instant_run,
                                store=cache, force_pool=True))
        assert len(cache.store) == 8
        assert all(e.record is None for e in events)
        assert all(e.stored for e in events if e.terminal)

    def test_pool_and_serial_stores_are_identical(self, tmp_path):
        serial = RunCache(ShardStore(tmp_path / "serial"))
        pooled = RunCache(ShardStore(tmp_path / "pooled"))
        requests = [req(seed=s) for s in range(10)]
        list(iter_runs(requests, run_fn=_instant_run, store=serial))
        list(iter_runs(requests, jobs=4, chunk_size=3, run_fn=_instant_run,
                       store=pooled, force_pool=True))
        assert set(serial.store.keys()) == set(pooled.store.keys())


class TestMidSweepReportParity:
    def _requests(self):
        return [req(seed=s, protocol=ProtocolSpec.of(p))
                for s in range(100) for p in ("quic", "tcp")]

    def test_kill_render_resume_is_byte_identical(self, tmp_path):
        requests = self._requests()

        # uninterrupted control sweep into its own store
        control = RunCache(ShardStore(tmp_path / "control"))
        list(iter_runs(requests, run_fn=_instant_run, store=control))
        expected = build_store_report(control.store).replace(
            str(control.store.path), "STORE")

        # interrupted sweep: kill the generator at ~50%
        cache = RunCache(ShardStore(tmp_path / "interrupted"))
        stream = iter_runs(requests, run_fn=_instant_run, store=cache)
        landed = 0
        for event in stream:
            if event.terminal:
                landed += 1
            if landed >= 100:
                break
        stream.close()
        assert 0 < len(cache.store) < len(requests)

        # a live report renders cleanly mid-sweep and says so
        live = build_store_report(cache.store, live=True)
        assert "Live view" in live
        assert "## Store summary" in live

        # resume: only the missing runs execute, the rest are hits
        resumed = RunCache(cache.store)
        events = list(iter_runs(requests, run_fn=_instant_run,
                                store=resumed))
        hits, misses, _ = resumed.session_stats
        assert hits == landed and hits + misses == len(requests)
        assert len([e for e in events if e.terminal]) == len(requests)

        final = build_store_report(cache.store).replace(
            str(cache.store.path), "STORE")
        assert final == expected
        assert "Live view" not in final

    def test_live_report_labels_partial_cells(self, tmp_path):
        cache = RunCache(ShardStore(tmp_path / "partial"))
        # 3 runs of quic, 1 run of tcp: the tcp cell is partial
        list(iter_runs([req(seed=s) for s in range(3)], run_fn=_instant_run,
                       store=cache))
        list(iter_runs([req(protocol=ProtocolSpec.of("tcp"))],
                       run_fn=_instant_run, store=cache))
        text = build_store_report(cache.store, live=True)
        assert "Live view" in text
        assert "1/3 run(s)" in text

    def test_live_report_on_complete_grid(self, tmp_path):
        cache = RunCache(ShardStore(tmp_path / "full"))
        list(iter_runs([req(seed=s) for s in range(3)], run_fn=_instant_run,
                       store=cache))
        text = build_store_report(cache.store, live=True)
        assert "looks complete" in text


class TestRunRequestsCompatibility:
    def test_wrapper_returns_records_in_request_order(self):
        records = run_requests([req(seed=s) for s in range(5)],
                               run_fn=_instant_run)
        assert [r.request.seed for r in records] == list(range(5))

    def test_progress_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="iter_runs"):
            run_requests([req()], run_fn=_instant_run,
                         progress=lambda record: None)

    def test_no_warning_without_progress(self, recwarn):
        run_requests([req()], run_fn=_instant_run)
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]

    @pytest.mark.parametrize("force_pool", [False, True])
    def test_progress_path_reconciles_retry_events(self, tmp_path,
                                                   monkeypatch, force_pool):
        """Regression guard: the deprecated progress= path must account
        retries identically to the event stream — per failed attempt,
        on both the serial and the pool code path."""
        monkeypatch.setenv("REPRO_TEST_EVENT_MARKER",
                           str(tmp_path / f"marker-{force_pool}"))
        cache = RunCache(tmp_path / "store.sqlite")
        seen = []
        with pytest.warns(DeprecationWarning):
            records = run_requests([req(seed=s) for s in range(3)],
                                   run_fn=_flaky_once_run, retries=2,
                                   jobs=2 if force_pool else 1,
                                   force_pool=force_pool, store=cache,
                                   progress=seen.append)
        assert len(seen) == len(records) == 3
        assert all(r.complete and r.attempts == 2 for r in records)
        # counter == sum of failed attempts == what retry events report
        assert cache.retries == sum(r.attempts - 1 for r in records) == 3
        assert cache.session_stats == (0, 3, 3)


class TestValidation:
    def test_rejects_bad_retries(self):
        with pytest.raises(ValueError):
            list(iter_runs([req()], retries=-1))

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_runs([req(), req(seed=1)], jobs=2, chunk_size=0))

    def test_empty_request_list(self):
        assert list(iter_runs([])) == []

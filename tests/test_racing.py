"""Tests for Chrome-style QUIC/TCP connection racing."""

import pytest

from repro.http import RacingLoader, page, page_request_handler
from repro.netem import Simulator, build_path, emulated
from repro.quic import open_quic_pair, quic_config
from repro.tcp import open_tcp_pair, tcp_config


def make_race(scenario, *, zero_rtt=True, blackhole_quic=False, seed=1):
    sim = Simulator()
    path = build_path(sim, scenario, seed=seed)
    web_page = page(2, 20 * 1024)
    handler = page_request_handler(web_page)
    quic_client, _ = open_quic_pair(
        sim, path.client, path.server, quic_config(34, zero_rtt=zero_rtt),
        request_handler=handler, seed=seed,
    )
    tcp_client, _ = open_tcp_pair(
        sim, path.client, path.server, tcp_config(),
        request_handler=handler, seed=seed,
    )
    if blackhole_quic:
        # A UDP-dropping middlebox: QUIC packets never arrive.
        original = path.client.send

        def filtered(packet):
            conn_id = getattr(packet.payload, "conn_id", "")
            if str(conn_id).startswith("quic"):
                return  # dropped
            original(packet)

        path.client.send = filtered
    racer = RacingLoader(sim, quic_client, tcp_client, web_page)
    racer.start()
    return sim, racer


class TestRacing:
    def test_quic_wins_with_zero_rtt(self):
        sim, racer = make_race(emulated(10.0))
        assert racer.winner == "quic"
        assert sim.run_until(lambda: racer.done, timeout=30.0)
        assert racer.result.protocol == "quic"

    def test_quic_wins_without_zero_rtt(self):
        """1-RTT REJ round still beats TCP's 3-RTT handshake."""
        sim, racer = make_race(emulated(10.0), zero_rtt=False)
        assert sim.run_until(lambda: racer.done, timeout=30.0)
        assert racer.winner == "quic"

    def test_falls_back_to_tcp_when_quic_blocked(self):
        """ISP blocks UDP: Chrome falls back to TCP (paper footnote 2).

        Without a cached config QUIC must wait for a REJ that never
        arrives, so TCP's completed handshake wins the race.  (With 0-RTT
        QUIC *believes* it is ready instantly; real Chrome detects the
        silent failure with timeouts outside this model's scope.)"""
        sim, racer = make_race(emulated(10.0), zero_rtt=False,
                               blackhole_quic=True)
        assert sim.run_until(lambda: racer.done, timeout=30.0)
        assert racer.winner == "tcp"
        assert racer.result.complete

    def test_loser_connection_closed(self):
        sim, racer = make_race(emulated(10.0))
        sim.run_until(lambda: racer.done, timeout=30.0)
        assert racer.tcp_connection.closed

    def test_result_before_winner_raises(self):
        sim = Simulator()
        path = build_path(sim, emulated(10.0), seed=1)
        web_page = page(1, 1024)
        handler = page_request_handler(web_page)
        quic_client, _ = open_quic_pair(
            sim, path.client, path.server,
            quic_config(34, zero_rtt=False), request_handler=handler,
        )
        tcp_client, _ = open_tcp_pair(
            sim, path.client, path.server, tcp_config(),
            request_handler=handler,
        )
        racer = RacingLoader(sim, quic_client, tcp_client, web_page)
        with pytest.raises(RuntimeError):
            _ = racer.result

"""The example scripts must at least import and expose main().

(Their full runs are exercised manually / in CI with longer budgets;
importability catches API drift cheaply.)"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None))

"""Tests for XOR FEC (the removed GQUIC feature, kept for ablation)."""

import pytest

from repro.netem import Simulator, emulated
from repro.quic import quic_config
from repro.quic.fec import FecDecoder, FecEncoder, FecFrame, FecPacketPayload
from repro.quic.frames import StreamFrame
from repro.transport.util import RangeSet

from .conftest import make_quic_pair, quic_download


def frames_for(pkt_num):
    return [StreamFrame(1, pkt_num * 1000, 1000)]


class TestEncoder:
    def test_group_completes_after_n_packets(self):
        enc = FecEncoder(group_size=3)
        assert enc.on_packet_sent(1, frames_for(1), 1000) is None
        assert enc.on_packet_sent(2, frames_for(2), 1200) is None
        payload = enc.on_packet_sent(3, frames_for(3), 1100)
        assert payload is not None
        assert set(payload.members) == {1, 2, 3}
        # FEC packet sized to the largest member (XOR width).
        assert payload.size_bytes == 1200 + 16

    def test_ack_only_packets_not_protected(self):
        enc = FecEncoder(group_size=2)
        assert enc.on_packet_sent(1, [], 50) is None
        assert enc.on_packet_sent(2, frames_for(2), 1000) is None
        payload = enc.on_packet_sent(3, frames_for(3), 1000)
        assert payload is not None
        assert set(payload.members) == {2, 3}

    def test_groups_are_disjoint(self):
        enc = FecEncoder(group_size=2)
        enc.on_packet_sent(1, frames_for(1), 1000)
        first = enc.on_packet_sent(2, frames_for(2), 1000)
        enc.on_packet_sent(3, frames_for(3), 1000)
        second = enc.on_packet_sent(4, frames_for(4), 1000)
        assert set(first.members) == {1, 2}
        assert set(second.members) == {3, 4}
        assert second.group_id == first.group_id + 1

    def test_flush_emits_partial_group(self):
        enc = FecEncoder(group_size=5)
        enc.on_packet_sent(1, frames_for(1), 1000)
        enc.on_packet_sent(2, frames_for(2), 1000)
        payload = enc.flush()
        assert payload is not None and set(payload.members) == {1, 2}

    def test_flush_needs_two_members(self):
        enc = FecEncoder(group_size=5)
        enc.on_packet_sent(1, frames_for(1), 1000)
        assert enc.flush() is None

    def test_min_group_size(self):
        with pytest.raises(ValueError):
            FecEncoder(group_size=1)


class TestDecoder:
    def payload(self):
        return FecPacketPayload(1, {n: frames_for(n) for n in (1, 2, 3)}, 1016)

    def test_revives_single_missing(self):
        dec = FecDecoder()
        received = RangeSet([(1, 2), (3, 4)])  # 2 missing
        revived = dec.on_fec_packet(self.payload(), received)
        assert revived is not None
        num, frames = revived
        assert num == 2
        assert frames[0].offset == 2000
        assert dec.revived_packets == 1

    def test_useless_when_all_received(self):
        dec = FecDecoder()
        received = RangeSet([(1, 4)])
        assert dec.on_fec_packet(self.payload(), received) is None
        assert dec.unhelpful_fec_packets == 1

    def test_useless_when_two_missing(self):
        dec = FecDecoder()
        received = RangeSet([(1, 2)])
        assert dec.on_fec_packet(self.payload(), received) is None


class TestEndToEnd:
    def test_fec_disabled_by_default(self, sim):
        _, client, server = make_quic_pair(sim, emulated(10.0))
        assert server.fec_encoder is None
        assert client.fec_decoder is None

    def test_fec_transfer_completes_and_revives(self, sim):
        cfg = quic_config(34)
        cfg.fec_enabled = True
        _, client, server = make_quic_pair(
            sim, emulated(20.0, loss_pct=2.0), cfg=cfg, seed=3)
        quic_download(sim, client, 2_000_000, timeout=120.0)
        assert server.fec_encoder.fec_packets_built > 0
        assert client.fec_decoder.revived_packets > 0

    def test_fec_packets_are_congestion_charged(self, sim):
        """FEC rides inside the congestion window (GQUIC behaviour), so
        the data-packet count grows by roughly the group overhead."""
        cfg = quic_config(34)
        cfg.fec_enabled = True
        cfg.fec_group_size = 5
        _, client, server = make_quic_pair(sim, emulated(20.0), cfg=cfg, seed=3)
        quic_download(sim, client, 2_000_000, timeout=120.0)
        data_pkts = 2_000_000 // 1338 + 1
        fec_pkts = server.fec_encoder.fec_packets_built
        # ~1 per 5 protected packets (retransmissions are protected too,
        # so the count sits somewhat above the pure-data estimate).
        assert data_pkts / 5 <= fec_pkts <= data_pkts / 3
        # They are tracked like data: nothing left dangling in flight.
        sim.run(until=sim.now + 2.0)
        assert server.bytes_in_flight == 0

    def test_fec_bandwidth_tax_slows_clean_transfers(self):
        """The reason GQUIC removed FEC: pure overhead without loss."""
        times = {}
        for fec in (False, True):
            sim = Simulator()
            cfg = quic_config(34)
            cfg.fec_enabled = fec
            _, client, _ = make_quic_pair(sim, emulated(20.0), cfg=cfg, seed=3)
            times[fec] = quic_download(sim, client, 2_000_000, timeout=120.0)
        assert times[True] > times[False]

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.rate == 10.0
        assert args.runs == 10
        assert args.device == "desktop"
        assert args.jobs == 1

    def test_jobs_flag_on_parallel_commands(self):
        parser = build_parser()
        assert parser.parse_args(["compare", "--jobs", "4"]).jobs == 4
        assert parser.parse_args(["heatmap", "--jobs", "0"]).jobs == 0
        assert parser.parse_args(
            ["spec", "--file", "x.json", "--jobs", "2"]).jobs == 2


class TestCommands:
    def test_versions(self, capsys):
        assert main(["versions"]) == 0
        out = capsys.readouterr().out
        assert "QUIC 34" in out and "MACW=430" in out
        assert "QUIC 37" in out and "MACW=2000" in out

    def test_compare(self, capsys):
        assert main(["compare", "--rate", "10", "--size-kb", "50",
                     "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "QUIC" in out and "TCP" in out and "p=" in out

    def test_compare_multi_object(self, capsys):
        assert main(["compare", "--rate", "10", "--size-kb", "10",
                     "--objects", "5", "--runs", "2"]) == 0
        assert "5x10KB" in capsys.readouterr().out

    def test_heatmap(self, capsys):
        assert main(["heatmap", "--rates", "10", "--sizes-kb", "10,100",
                     "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "1x10KB" in out and "1x100KB" in out

    def test_compare_parallel_matches_serial(self, capsys):
        argv = ["compare", "--rate", "10", "--size-kb", "50", "--runs", "4"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_fairness(self, capsys):
        assert main(["fairness", "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "quic" in out and "tcp" in out and "share" in out

    def test_bulk_with_nack_override(self, capsys):
        assert main(["bulk", "--protocol", "quic", "--size-mb", "0.5",
                     "--rate", "20", "--nack-threshold", "10"]) == 0
        out = capsys.readouterr().out
        assert "Mbps" in out and "losses=" in out

    def test_bulk_tcp(self, capsys):
        assert main(["bulk", "--protocol", "tcp", "--size-mb", "0.5",
                     "--rate", "20"]) == 0
        assert "tcp:" in capsys.readouterr().out

    def test_statemachine_writes_dot(self, tmp_path, capsys):
        out_file = tmp_path / "fsm.dot"
        assert main(["statemachine", "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "digraph" in out_file.read_text()
        assert "SlowStart" in capsys.readouterr().out

    def test_video(self, capsys):
        assert main(["video", "--quality", "medium", "--rate", "50",
                     "--loss", "0", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "quic" in out and "tcp" in out


class TestSpecCommand:
    def test_spec_runs_file(self, tmp_path, capsys):
        import json

        spec = {
            "name": "cli-spec",
            "scenarios": [{"rate_mbps": 10.0}],
            "workloads": [{"objects": 1, "size_kb": 20}],
            "runs": 2,
        }
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec))
        out_file = tmp_path / "result.json"
        assert main(["spec", "--file", str(spec_file),
                     "--out", str(out_file)]) == 0
        assert "cli-spec" in capsys.readouterr().out
        assert out_file.exists()
        from repro.core.experiment import ExperimentResult

        restored = ExperimentResult.from_json(out_file.read_text())
        assert len(restored.samples) == 2


class TestManyflowCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["manyflow"])
        assert args.flows == 1000
        assert args.aqm == "droptail"
        assert args.arrival_rate == 50.0
        assert args.jobs == 1

    def test_profile_workload_choice(self):
        args = build_parser().parse_args(
            ["bench", "--profile", "5", "--profile-workload", "manyflow"])
        assert args.profile == 5
        assert args.profile_workload == "manyflow"

    def test_small_run_and_cache_replay(self, capsys, tmp_path):
        argv = ["manyflow", "--flows", "20", "--duration", "120",
                "--cache", str(tmp_path / "store")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "manyflow-20f-droptail" in out
        assert "jain=" in out
        assert "20/20 flows" in out
        assert main(argv) == 0
        assert "(cached)" in capsys.readouterr().out

    def test_cc_axis_defaults_to_reno(self):
        args = build_parser().parse_args(["manyflow"])
        assert args.cc == "reno"

    def test_cc_axis_runs_each_kernel(self, capsys):
        assert main(["manyflow", "--flows", "15", "--duration", "60",
                     "--cc", "reno,cubic"]) == 0
        out = capsys.readouterr().out
        # Multi-kernel sweeps tag each line; only non-default kernels
        # suffix the label (default runs stay bit-identical).
        assert "manyflow-15f-droptail, manyflow-15f-droptail-cubic" in out
        assert "reno seed 0" in out
        assert "cubic seed 0" in out

    def test_unknown_cc_is_rejected(self):
        with pytest.raises(SystemExit, match="vegas"):
            main(["manyflow", "--cc", "vegas"])

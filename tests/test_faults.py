"""Tests for deterministic fault injection and integrity hardening.

Covers the repro.faults surfaces (FaultPlan/FaultSpec semantics,
FaultyStore torn writes / transient errors / latency), the store
integrity layer (per-row checksums, torn-line accounting, fsck
detect/repair/quarantine on both backends, counter-ledger
reconciliation), and the fabric's graceful degradation (5xx retry,
dropped/truncated/stalled replies, the write-path circuit breaker with
local spill + resync, the hung-worker watchdog, and plan-scheduled
worker kills) — plus the acceptance criteria: a SIGKILL during shard
auto-compaction loses nothing, and the ``repro serve`` /
``repro store fsck`` CLI paths behave.
"""

import json
import multiprocessing
import os
import signal
import socket
import time
import warnings

import pytest

from repro.core.executor import ProtocolSpec, RunRecord, RunRequest
from repro.core.report import build_store_report
from repro.fabric import (
    FabricConnectionError,
    RemoteStore,
    StoreServer,
    iter_fabric_runs,
)
from repro.faults import SURFACE_KINDS, FaultPlan, FaultSpec, FaultyStore
from repro.http import single_object_page
from repro.netem import emulated
from repro.store import (
    ShardStore,
    SqliteStore,
    fingerprint_for,
    fsck,
    row_check,
    run_key,
)
from repro.store.fsck import QUARANTINE_NAME

SCN = emulated(10.0)
PAGE = single_object_page(20_000)


def req(seed=0, **overrides):
    kwargs = dict(scenario=SCN, page=PAGE, protocol=ProtocolSpec.quic(),
                  seed=seed)
    kwargs.update(overrides)
    return RunRequest(**kwargs)


def _instant_run(request):
    return RunRecord(request=request, plt=float(request.seed) / 10.0 + 0.1,
                     complete=True)


def _keyed(seed=0):
    """A request with its genuine content address (fsck-verifiable)."""
    request = req(seed=seed)
    return request, run_key(request, fingerprint=fingerprint_for(request))


def _store_with_rows(store, n=4):
    for seed in range(n):
        request, key = _keyed(seed)
        store.put(key, _instant_run(request),
                  fingerprint=fingerprint_for(request))
    return store


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan semantics
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_unknown_surface_rejected(self):
        with pytest.raises(ValueError, match="unknown fault surface"):
            FaultSpec("disk", "torn_write")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="no fault kind"):
            FaultSpec("http", "torn_write")

    def test_negative_after_rejected(self):
        with pytest.raises(ValueError, match="after"):
            FaultSpec("store", "latency", after=-1)

    def test_every_advertised_kind_constructs(self):
        for surface, kinds in SURFACE_KINDS.items():
            for kind in kinds:
                FaultSpec(surface, kind)


class TestFaultPlan:
    def test_fires_on_the_nth_surface_operation(self):
        plan = FaultPlan([FaultSpec("store", "os_error", after=2)])
        assert plan.take("store", "put") is None
        assert plan.take("store", "get") is None
        event = plan.take("store", "put")
        assert event is not None and event.spec.kind == "os_error"
        assert event.op == "put"

    def test_op_filter_counts_only_matching_operations(self):
        plan = FaultPlan([FaultSpec("store", "os_error", op="put", after=1)])
        assert plan.take("store", "get") is None   # filtered out
        assert plan.take("store", "put") is None   # put count 0 < 1
        assert plan.take("store", "get") is None
        assert plan.take("store", "put") is not None  # put count 1

    def test_each_spec_fires_exactly_once(self):
        plan = FaultPlan([FaultSpec("store", "os_error")])
        assert plan.take("store") is not None
        assert all(plan.take("store") is None for _ in range(5))
        assert plan.pending() == 0

    def test_at_most_one_fault_per_operation_shadowed_fires_later(self):
        plan = FaultPlan([FaultSpec("store", "os_error", after=0),
                          FaultSpec("store", "os_error", after=0)])
        first = plan.take("store")
        second = plan.take("store")
        assert first is not None and second is not None
        assert first.sequence == 0 and second.sequence == 1
        assert plan.pending() == 0

    def test_surfaces_count_independently(self):
        plan = FaultPlan([FaultSpec("http", "error_500", after=1)])
        for _ in range(5):
            assert plan.take("store", "put") is None
        assert plan.take("http", "/records") is None
        assert plan.take("http", "/records") is not None

    def test_seeded_plans_are_replayable(self):
        a = FaultPlan.seeded(7, count=8)
        b = FaultPlan.seeded(7, count=8)
        assert a.schedule() == b.schedule()
        assert a.schedule() != FaultPlan.seeded(8, count=8).schedule()

    def test_identically_driven_plans_fire_identically(self):
        ops = [("store", "put"), ("http", "/records"), ("store", "get"),
               ("worker", "0"), ("http", "/fetch")] * 8
        a = FaultPlan.seeded(3, count=6, horizon=20)
        b = FaultPlan.seeded(3, count=6, horizon=20)
        for surface, op in ops:
            a.take(surface, op)
            b.take(surface, op)
        assert a.fired() == b.fired()
        assert len(a.fired()) > 0


# ----------------------------------------------------------------------
# FaultyStore: the store surface
# ----------------------------------------------------------------------
class TestFaultyStore:
    def test_latency_sleeps_then_succeeds(self, tmp_path):
        plan = FaultPlan([FaultSpec("store", "latency", param=0.05)])
        store = FaultyStore(ShardStore(tmp_path / "s"), plan)
        request, key = _keyed()
        start = time.monotonic()
        store.put(key, _instant_run(request),
                  fingerprint=fingerprint_for(request))
        assert time.monotonic() - start >= 0.05
        assert store.get(key) is not None

    def test_os_error_raises_without_touching_the_store(self, tmp_path):
        plan = FaultPlan([FaultSpec("store", "os_error", op="put")])
        store = FaultyStore(ShardStore(tmp_path / "s"), plan)
        request, key = _keyed()
        with pytest.raises(OSError, match="injected"):
            store.put(key, _instant_run(request),
                  fingerprint=fingerprint_for(request))
        assert store.get(key) is None
        assert fsck(store.inner).clean  # no debris either
        store.put(key, _instant_run(request),
                  fingerprint=fingerprint_for(request))  # one-shot: retry lands
        assert store.get(key) is not None

    def test_torn_write_leaves_crash_debris_and_raises(self, tmp_path):
        plan = FaultPlan([FaultSpec("store", "torn_write", op="put")])
        inner = ShardStore(tmp_path / "s")
        store = FaultyStore(inner, plan)
        request, key = _keyed()
        with pytest.raises(OSError, match="torn"):
            store.put(key, _instant_run(request),
                  fingerprint=fingerprint_for(request))
        shard_text = inner._data_path(inner.shard_of(key)).read_text()
        assert shard_text and not shard_text.endswith("\n")  # a torn tail
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert store.get(key) is None
            store.put(key, _instant_run(request),
                  fingerprint=fingerprint_for(request))  # the idempotent retry
            assert store.get(key) is not None      # ...converges
            report = fsck(inner, repair=True)
            assert report.quarantined == 1
            assert fsck(inner).clean
        assert store.get(key) is not None  # repair kept the good row

    def test_put_many_torn_write_fails_whole_batch(self, tmp_path):
        plan = FaultPlan([FaultSpec("store", "torn_write", op="put_many")])
        inner = ShardStore(tmp_path / "s")
        store = FaultyStore(inner, plan)
        entries = []
        for seed in range(3):
            request, key = _keyed(seed)
            entries.append((key, _instant_run(request),
                            fingerprint_for(request)))
        with pytest.raises(OSError, match="torn"):
            store.put_many(entries)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert store.put_many(entries) == 3
            assert all(store.get(key) is not None for key, _r, _f in entries)

    def test_torn_write_on_sqlite_degrades_to_plain_failure(self, tmp_path):
        plan = FaultPlan([FaultSpec("store", "torn_write", op="put")])
        inner = SqliteStore(tmp_path / "s.sqlite")
        store = FaultyStore(inner, plan)
        request, key = _keyed()
        with pytest.raises(OSError):
            store.put(key, _instant_run(request),
                  fingerprint=fingerprint_for(request))
        assert fsck(inner).clean  # a transaction cannot half-land
        store.put(key, _instant_run(request),
                  fingerprint=fingerprint_for(request))
        assert fsck(inner).clean


# ----------------------------------------------------------------------
# torn-tail healing + torn-line accounting (ShardStore)
# ----------------------------------------------------------------------
class TestTornLines:
    def _torn_store(self, tmp_path):
        store = _store_with_rows(ShardStore(tmp_path / "s"), n=3)
        shard = store._shards()[0]
        path = store._data_path(shard)
        path.write_text(path.read_text() + '{"key": "half-a-li')
        store._cache.clear()
        return store, shard

    def test_append_after_torn_tail_heals_the_ledger(self, tmp_path):
        store, shard = self._torn_store(tmp_path)
        # A new row landing in the torn shard must NOT glue onto the
        # fragment: the fragment stays skipped, the new row stays live.
        seed = 99
        while True:
            request, key = _keyed(seed=seed)
            if store.shard_of(key) == shard:
                break
            seed += 1
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            store.put(key, _instant_run(request),
                      fingerprint=fingerprint_for(request))
            assert store.get(key) is not None
            assert len(store) == 4  # 3 seeded + the healed append
        text = store._data_path(shard).read_text()
        assert text.endswith("\n")

    def test_torn_lines_warn_once_per_shard_and_count(self, tmp_path):
        store, shard = self._torn_store(tmp_path)
        with pytest.warns(RuntimeWarning, match="torn line"):
            store.keys()
        assert store.torn_lines == {shard: 1}
        with warnings.catch_warnings():  # second parse: no second warning
            warnings.simplefilter("error", RuntimeWarning)
            store._cache.clear()
            store.keys()

    def test_stats_surface_torn_lines(self, tmp_path):
        store, shard = self._torn_store(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            stats = store.stats()
        assert stats["torn_lines"] == 1
        assert stats["torn_by_shard"] == {shard: 1}
        assert stats["live_rows"] == 3

    def test_fsck_repair_clears_the_torn_count(self, tmp_path):
        store, shard = self._torn_store(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = fsck(store, repair=True)
            assert report.quarantined == 1
            assert fsck(store).clean
        assert store.torn_lines == {}


# ----------------------------------------------------------------------
# checksums on disk
# ----------------------------------------------------------------------
class TestChecksums:
    def test_shard_lines_carry_a_verifiable_check(self, tmp_path):
        store = _store_with_rows(ShardStore(tmp_path / "s"), n=2)
        for shard in store._shards():
            for line in store._data_path(shard).read_text().splitlines():
                raw = json.loads(line)
                assert raw["check"] == row_check(raw["key"], raw["record"])

    def test_sqlite_rows_carry_a_verifiable_checksum(self, tmp_path):
        store = _store_with_rows(SqliteStore(tmp_path / "s.sqlite"), n=2)
        for key, record_json, checksum in store._db.execute(
                "SELECT key, record, checksum FROM runs"):
            assert checksum == row_check(key, json.loads(record_json))

    def test_row_check_is_order_insensitive_but_content_sensitive(self):
        record = {"plt": 1.0, "complete": True}
        assert (row_check("k", record)
                == row_check("k", {"complete": True, "plt": 1.0}))
        assert row_check("k", record) != row_check("k", {"plt": 1.1,
                                                         "complete": True})
        assert row_check("k", record) != row_check("j", record)


# ----------------------------------------------------------------------
# fsck: detect, repair, quarantine
# ----------------------------------------------------------------------
def _flip_one_row(lines):
    """Silently corrupt the first row's payload, keeping it parseable."""
    raw = json.loads(lines[0])
    raw["record"]["plt"] = 424242.0
    lines[0] = json.dumps(raw, sort_keys=True)
    return raw["key"], lines


class TestFsckShards:
    def test_pristine_store_is_clean(self, tmp_path):
        store = _store_with_rows(ShardStore(tmp_path / "s"))
        report = fsck(store)
        assert report.clean
        assert report.rows == 4 and report.verified == 4
        assert report.backend == "shards"

    def test_detects_and_quarantines_silent_corruption(self, tmp_path):
        store = _store_with_rows(ShardStore(tmp_path / "s"))
        shard = store._shards()[0]
        path = store._data_path(shard)
        bad_key, lines = _flip_one_row(path.read_text().splitlines())
        path.write_text("\n".join(lines) + "\n")
        store._cache.clear()

        report = fsck(store)
        assert not report.clean
        assert [i.key for i in report.checksum_failures] == [bad_key]
        assert report.quarantined == 0  # detect-only pass moves nothing

        repaired = fsck(store, repair=True)
        assert repaired.quarantined == 1
        sidecar = tmp_path / "s" / QUARANTINE_NAME
        assert sidecar.exists()
        entry = json.loads(sidecar.read_text().splitlines()[0])
        assert entry["reason"] == "checksum" and entry["shard"] == shard
        assert store.counters()["quarantined"] == 1
        assert fsck(store).clean
        assert store.get(bad_key) is None  # set aside, not silently kept

    def test_key_mismatch_is_advisory_and_never_quarantined(self, tmp_path):
        store = ShardStore(tmp_path / "s")
        request, _key = _keyed()
        store.put("aaaa1111", _instant_run(request))  # synthetic key
        report = fsck(store, repair=True)
        assert [i.kind for i in report.key_mismatches] == ["key_mismatch"]
        assert report.quarantined == 0
        assert store.get("aaaa1111") is not None  # the row survives repair

    def test_counter_ledger_reconciled(self, tmp_path):
        store = ShardStore(tmp_path / "s")
        store.bump_counter("hits", 3)
        ledger = tmp_path / "s" / "counters.jsonl"
        ledger.write_text(ledger.read_text() + "{torn counter li\n")
        report = fsck(store)
        assert report.counter_torn == 1
        repaired = fsck(store, repair=True)
        assert repaired.counter_torn == 0  # reconciled
        assert store.counters()["hits"] == 3  # totals preserved
        assert fsck(store).clean


class TestFsckSqlite:
    def test_detects_and_quarantines_silent_corruption(self, tmp_path):
        store = _store_with_rows(SqliteStore(tmp_path / "s.sqlite"))
        bad_key = store.keys()[0]
        row = store.row(bad_key)
        record = dict(row[3])
        record["plt"] = 424242.0
        store._db.execute("UPDATE runs SET record = ? WHERE key = ?",
                          (json.dumps(record), bad_key))
        store._db.commit()

        report = fsck(store)
        assert [i.key for i in report.checksum_failures] == [bad_key]
        repaired = fsck(store, repair=True)
        assert repaired.quarantined == 1
        sidecar = tmp_path / "s.sqlite.quarantine.jsonl"
        assert sidecar.exists()
        assert store.counters()["quarantined"] == 1
        assert fsck(store).clean
        assert store.get(bad_key) is None

    def test_remote_store_is_refused(self):
        with pytest.raises(ValueError, match="local store"):
            fsck(RemoteStore("http://127.0.0.1:9", check_schema=False))


# ----------------------------------------------------------------------
# acceptance: SIGKILL during auto-compaction loses nothing
# ----------------------------------------------------------------------
def _churn_keys(count=6):
    """Genuine content-addressed keys that all land in one shard."""
    picked = []
    seed = 0
    first_shard = None
    while len(picked) < count:
        request = req(seed=seed)
        key = run_key(request, fingerprint=fingerprint_for(request))
        shard = ShardStore.shard_of(key)
        if first_shard is None:
            first_shard = shard
        if shard == first_shard:
            picked.append((key, request))
        seed += 1
    return picked


def _compaction_churn(path, keyed):
    """Overwrite a small key set forever, forcing frequent compactions."""
    store = ShardStore(path, compact_ratio=0.3, compact_min_lines=24)
    i = 0
    while True:
        key, request = keyed[i % len(keyed)]
        store.put(key, _instant_run(request),
                  fingerprint=fingerprint_for(request))
        store.bump_counter("churn")
        if i % 8 == 0:
            store._cache.clear()
            store.keys()  # the read path is what triggers auto-compaction
        i += 1


class TestKillDuringCompaction:
    def test_sigkill_mid_compaction_loses_nothing(self, tmp_path):
        keyed = _churn_keys()
        path = str(tmp_path / "churn")
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_compaction_churn, args=(path, keyed),
                            daemon=True)
        child.start()
        deadline = time.monotonic() + 10.0
        store_dir = tmp_path / "churn"
        # Wait until compaction has provably run at least once.
        while time.monotonic() < deadline:
            counters = store_dir / "counters.jsonl"
            if counters.exists() and "compactions" in counters.read_text():
                break
            time.sleep(0.02)
        time.sleep(0.1)  # let it keep churning, then murder it mid-flight
        os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=5.0)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            store = ShardStore(path)
            # No lost rows, no duplicates: every key exactly once, every
            # record decodable.
            assert sorted(store.keys()) == sorted(k for k, _ in keyed)
            assert len(store) == len(keyed)
            for key, request in keyed:
                record = store.get(key)
                assert record is not None and record.complete
            # The kill may have torn an append or a counter line; fsck
            # --repair quarantines the debris and reconciles the ledger.
            fsck(store, repair=True)
            verify = fsck(store)
        assert verify.clean
        assert verify.rows == len(keyed)
        counters = store.counters()  # the ledger still sums
        assert counters.get("churn", 0) >= 1


# ----------------------------------------------------------------------
# fabric degradation: retry, faulted server, circuit breaker
# ----------------------------------------------------------------------
class TestHttpFaultSurface:
    def _put_one(self, remote, seed=0):
        request, key = _keyed(seed)
        remote.put(key, _instant_run(request),
                   fingerprint=fingerprint_for(request))
        return key

    def test_scheduled_500_is_retried_transparently(self, tmp_path):
        plan = FaultPlan([FaultSpec("http", "error_500")])
        with StoreServer(ShardStore(tmp_path / "s"), port=0,
                         fault_plan=plan) as server:
            remote = RemoteStore(server.url, backoff=0.01)
            key = self._put_one(remote)
            assert remote.get(key) is not None
        assert plan.pending() == 0

    def test_dropped_and_truncated_replies_are_transient(self, tmp_path):
        plan = FaultPlan([FaultSpec("http", "drop"),
                          FaultSpec("http", "truncate")])
        with StoreServer(ShardStore(tmp_path / "s"), port=0,
                         fault_plan=plan) as server:
            remote = RemoteStore(server.url, backoff=0.01)
            self._put_one(remote, seed=0)
            self._put_one(remote, seed=1)
            assert len(remote) == 2
        assert plan.pending() == 0

    def test_stall_delays_but_succeeds(self, tmp_path):
        plan = FaultPlan([FaultSpec("http", "stall", param=0.1)])
        with StoreServer(ShardStore(tmp_path / "s"), port=0,
                         fault_plan=plan) as server:
            remote = RemoteStore(server.url)
            start = time.monotonic()
            self._put_one(remote)
            assert time.monotonic() - start >= 0.1
        assert plan.pending() == 0

    def test_persistent_500s_exhaust_retries_loudly(self, tmp_path):
        plan = FaultPlan([FaultSpec("http", "error_500") for _ in range(6)])
        with StoreServer(ShardStore(tmp_path / "s"), port=0,
                         fault_plan=plan) as server:
            remote = RemoteStore(server.url, retries=1, backoff=0.01)
            with pytest.raises(FabricConnectionError, match="HTTP 500"):
                self._put_one(remote)

    def test_healthz_is_exempt_from_faults(self, tmp_path):
        plan = FaultPlan([FaultSpec("http", "error_500", after=0)])
        with StoreServer(ShardStore(tmp_path / "s"), port=0,
                         fault_plan=plan) as server:
            remote = RemoteStore(server.url, retries=0)
            assert "key_schema_version" in remote.healthz()
            assert plan.pending() == 1  # the handshake consumed no fault


class TestBackoffJitter:
    def test_jitter_is_deterministic_per_process_and_url(self):
        a = RemoteStore("http://127.0.0.1:9", check_schema=False)
        b = RemoteStore("http://127.0.0.1:9", check_schema=False)
        c = RemoteStore("http://127.0.0.1:10", check_schema=False)
        seq_a = [a._jitter.random() for _ in range(3)]
        seq_b = [b._jitter.random() for _ in range(3)]
        seq_c = [c._jitter.random() for _ in range(3)]
        assert seq_a == seq_b      # replayable within one process
        assert seq_a != seq_c      # decorrelated across endpoints


class TestCircuitBreaker:
    def test_without_spill_path_failures_stay_loud(self):
        remote = RemoteStore("http://127.0.0.1:9", retries=0)
        with pytest.raises(FabricConnectionError, match="repro serve"):
            remote.upload_rows([("k", None, "", {"x": 1})])

    def test_open_spill_then_resync_converges(self, tmp_path):
        central = ShardStore(tmp_path / "central")
        server = StoreServer(central, port=0)
        server.start()
        port = server.port

        remote = RemoteStore(server.url, retries=0, timeout=2.0,
                             spill_path=str(tmp_path / "spill"),
                             breaker_threshold=1, breaker_cooldown=0.05)
        request0, key0 = _keyed(0)
        remote.put(key0, _instant_run(request0))  # healthy write
        server._httpd.shutdown()  # the server goes away mid-sweep
        server._httpd.server_close()

        request1, key1 = _keyed(1)
        remote.put(key1, _instant_run(request1))  # degrades, no exception
        assert remote.circuit_opens == 1
        assert remote.spilled_rows == 1
        if remote._circuit_open():  # a write during the open window
            request2, key2 = _keyed(2)
            remote.put(key2, _instant_run(request2))  # spills, no probe
        spill = ShardStore(tmp_path / "spill")
        assert len(spill) >= 1  # the write-ahead spill holds the rows
        spill.close()

        time.sleep(0.1)  # past the cooldown: next write half-opens
        revived = StoreServer(ShardStore(tmp_path / "central"), port=port)
        revived.start()
        try:
            request3, key3 = _keyed(3)
            remote.put(key3, _instant_run(request3))  # probe + resync
            assert remote.resynced_rows >= 1
            assert key1 in revived.store  # the spilled row caught up
            assert key3 in revived.store
            assert len(ShardStore(tmp_path / "spill")) == 0  # drained
        finally:
            revived.shutdown()


# ----------------------------------------------------------------------
# coordinator: watchdog + scheduled worker kills
# ----------------------------------------------------------------------
class TestCoordinatorDegradation:
    def _grid(self, n):
        return [req(seed=s, protocol=ProtocolSpec.of(p))
                for s in range(n // 2) for p in ("quic", "tcp")]

    def _control_report(self, tmp_path, requests):
        control = ShardStore(tmp_path / "control")
        for request in requests:
            key = run_key(request, fingerprint=fingerprint_for(request))
            control.put(key, _instant_run(request),
                        fingerprint=fingerprint_for(request))
        return build_store_report(control).replace(str(control.path),
                                                   "STORE")

    def test_hung_worker_is_killed_and_respawned(self, tmp_path):
        flag = tmp_path / "hung-once"

        def _hang_once(request):
            if not flag.exists():  # fork start method: closures are fine
                flag.write_text("x")
                time.sleep(60)
            return _instant_run(request)

        requests = self._grid(6)
        with StoreServer(ShardStore(tmp_path / "central"), port=0) as server:
            events = list(iter_fabric_runs(
                requests, server.url, workers=1, sync_every=1,
                run_fn=_hang_once, workdir=str(tmp_path / "wd"),
                progress_timeout=1.0))
            terminal = [e for e in events if e.terminal]
            assert sorted(e.index for e in terminal) == list(
                range(len(requests)))
            fabric = build_store_report(server.store).replace(
                str(server.store.path), "STORE")
        assert flag.exists()  # the first spawn genuinely hung
        assert fabric == self._control_report(tmp_path, requests)

    def test_plan_scheduled_kill_still_byte_identical(self, tmp_path):
        plan = FaultPlan([FaultSpec("worker", "kill", op="0", after=3)])
        requests = self._grid(20)
        expected = self._control_report(tmp_path, requests)
        with StoreServer(ShardStore(tmp_path / "central"), port=0) as server:
            events = list(iter_fabric_runs(
                requests, server.url, workers=2, sync_every=2,
                run_fn=_instant_run, workdir=str(tmp_path / "wd"),
                fault_plan=plan))
            terminal = [e for e in events if e.terminal]
            assert sorted(e.index for e in terminal) == list(
                range(len(requests)))
            assert len(terminal) == len(requests)  # no duplicates
            fabric = build_store_report(server.store).replace(
                str(server.store.path), "STORE")
        fired = plan.fired()
        assert [f["kind"] for f in fired] == ["kill"]
        assert fabric == expected


# ----------------------------------------------------------------------
# CLI: fsck exit codes + friendly serve errors
# ----------------------------------------------------------------------
class TestCli:
    def test_fsck_exit_codes_detect_then_repair(self, tmp_path, capsys):
        from repro.cli import main

        store = _store_with_rows(ShardStore(tmp_path / "s"))
        shard = store._shards()[0]
        path = store._data_path(shard)
        _bad_key, lines = _flip_one_row(path.read_text().splitlines())
        path.write_text("\n".join(lines) + "\n")
        store.close()

        assert main(["store", "--store", str(tmp_path / "s"), "fsck"]) == 1
        out = capsys.readouterr().out
        assert "checksum failure" in out and "--repair" in out

        assert main(["store", "--store", str(tmp_path / "s"), "fsck",
                     "--repair"]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out

        assert main(["store", "--store", str(tmp_path / "s"), "fsck"]) == 0

    def test_stats_surface_quarantined_and_torn(self, tmp_path, capsys):
        from repro.cli import main

        store = _store_with_rows(ShardStore(tmp_path / "s"))
        shard = store._shards()[0]
        path = store._data_path(shard)
        path.write_text(path.read_text() + '{"torn')
        store.close()

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert main(["store", "--store", str(tmp_path / "s"),
                         "stats"]) == 0
        out = capsys.readouterr().out
        assert "torn" in out

    def test_serve_port_in_use_is_one_friendly_line(self, tmp_path):
        from repro.cli import main

        ShardStore(tmp_path / "s").close()
        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(SystemExit) as exc:
                main(["serve", "--store", str(tmp_path / "s"),
                      "--port", str(port)])
            message = str(exc.value)
            assert message.startswith("error:")
            assert "pick a different --port" in message
        finally:
            blocker.close()

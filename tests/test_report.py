"""Tests for the Markdown reproduction-report builder."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.core.aggregate import (
    aggregate_cells,
    render_cell_table,
    select_records,
    write_store_results,
)
from repro.core.executor import ProtocolSpec, RunRecord, RunRequest
from repro.core.report import (
    EXPERIMENT_INDEX,
    build_report,
    build_store_report,
    collect_sections,
    extra_results,
    missing_experiments,
)
from repro.http import single_object_page
from repro.netem import emulated
from repro.store import RunCache, SqliteStore, run_key


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "fig10_reordering.txt").write_text("QUIC nack=3 slow\n")
    (tmp_path / "tab04_fairness.txt").write_text("QUIC 3.9 TCP 1.1\n")
    (tmp_path / "ablation_fec.txt").write_text("fec slower\n")
    return tmp_path


class TestReport:
    def test_sections_loaded(self, results_dir):
        sections = collect_sections(results_dir)
        assert {s.stem for s in sections} == {"fig10_reordering",
                                              "tab04_fairness"}

    def test_missing_listed(self, results_dir):
        missing = missing_experiments(results_dir)
        assert "fig06a_plt_sizes" in missing
        assert "fig10_reordering" not in missing

    def test_extras_listed(self, results_dir):
        assert extra_results(results_dir) == ["ablation_fec"]

    def test_markdown_structure(self, results_dir):
        text = build_report(results_dir)
        assert text.startswith("# Reproduction report")
        assert "| Fig. 10 |" in text
        assert "QUIC nack=3 slow" in text
        assert "### ablation_fec" in text
        assert "*not run*" in text

    def test_empty_dir(self, tmp_path):
        text = build_report(tmp_path)
        assert "no results yet" in text

    def test_index_covers_all_paper_artifacts(self):
        artifacts = {a for a, _ in EXPERIMENT_INDEX.values()}
        for needed in ("Fig. 2", "Fig. 3a", "Table 4 / Fig. 4", "Fig. 5",
                       "Fig. 6a", "Fig. 7", "Fig. 8a", "Fig. 9", "Fig. 10",
                       "Fig. 11", "Fig. 12", "Fig. 13", "Fig. 14 / Table 5",
                       "Fig. 15", "Table 6", "Fig. 17", "Fig. 18",
                       "Sec. 5.4"):
            assert needed in artifacts

    def test_cli_report_command(self, results_dir, tmp_path, capsys):
        out = tmp_path / "REPORT.md"
        assert main(["report", "--results", str(results_dir),
                     "--out", str(out)]) == 0
        assert out.exists()
        assert "Reproduction report" in out.read_text()


def _record(scenario, page, protocol, seed, plt):
    request = RunRequest(scenario=scenario, page=page, protocol=protocol,
                         seed=seed)
    return RunRecord(request=request, plt=plt, complete=True,
                     metrics={"plt": plt})


@pytest.fixture
def store(tmp_path):
    """A small store: one scenario/page cell, QUIC and TCP, 3 seeds."""
    backend = SqliteStore(tmp_path / "report.sqlite")
    scenario = emulated(10.0)
    page = single_object_page(20_000)
    for seed, (q_plt, t_plt) in enumerate([(0.7, 1.3), (0.8, 1.2),
                                           (0.9, 1.4)]):
        for protocol, plt in ((ProtocolSpec.quic(), q_plt),
                              (ProtocolSpec.tcp(), t_plt)):
            record = _record(scenario, page, protocol, seed, plt)
            backend.put(run_key(record.request), record)
    return backend


class TestStoreReport:
    def test_structure(self, store):
        text = build_store_report(store)
        assert text.startswith("# Reproduction report")
        assert "6 cached run(s) across 2 cell(s)" in text
        assert "no re-execution" in text
        assert "## Store summary" in text
        assert "QUIC/TCP median PLT ratio" in text  # the ratio block

    def test_aggregates_are_correct(self, store):
        records = select_records(store)
        cells = {(c.protocol): c for c in aggregate_cells(records)}
        assert cells["quic"].runs == 3
        assert cells["quic"].median_plt == pytest.approx(0.8)
        assert cells["tcp"].median_plt == pytest.approx(1.3)

    def test_empty_store_is_friendly(self, tmp_path):
        text = build_store_report(SqliteStore(tmp_path / "empty.sqlite"))
        assert "no decodable records" in text
        assert "--cache" in text

    def test_table_parity_with_results_file_path(self, store, tmp_path):
        # Acceptance: for an identical result set, the store-backed
        # report embeds the very table the benchmarks-file path writes.
        written = write_store_results(store, tmp_path)
        file_table = written.read_text().rstrip("\n")
        report = build_store_report(store)
        assert file_table in report
        cells = aggregate_cells(select_records(store))
        assert render_cell_table(cells) == file_table

    def test_cached_sweep_reports_without_rerun(self, tmp_path):
        # End to end: executor --cache writes the store, report reads it.
        from repro.core.executor import run_requests

        cache = RunCache(SqliteStore(tmp_path / "sweep.sqlite"))
        requests = [RunRequest(scenario=emulated(10.0),
                               page=single_object_page(20_000),
                               protocol=proto, seed=s)
                    for proto in (ProtocolSpec.quic(), ProtocolSpec.tcp())
                    for s in range(2)]
        run_requests(requests, store=cache)
        text = build_store_report(cache.store)
        assert "4 cached run(s)" in text

    def test_cli_from_store(self, store, tmp_path, capsys):
        out = tmp_path / "STORE_REPORT.md"
        assert main(["report", "--from-store", store.path,
                     "--out", str(out)]) == 0
        assert out.read_text() == build_store_report(store) + "\n"

    def test_cli_from_store_missing_is_friendly(self, tmp_path, capsys):
        assert main(["report", "--from-store",
                     str(tmp_path / "nope.sqlite")]) == 0
        assert "no results store" in capsys.readouterr().out

    def test_cli_from_store_live(self, store, capsys):
        assert main(["report", "--from-store", store.path, "--live"]) == 0
        out = capsys.readouterr().out
        assert "Live view" in out
        assert "## Store summary" in out

    def test_cli_live_requires_from_store(self, results_dir):
        with pytest.raises(SystemExit, match="--from-store"):
            main(["report", "--results", str(results_dir), "--live"])

    def test_live_report_differs_only_by_banner(self, store):
        plain = build_store_report(store)
        live = build_store_report(store, live=True)
        assert "Live view" not in plain
        assert "Live view" in live
        # the table body is untouched by the live banner
        assert plain.split("## Store summary")[1] == \
            live.split("## Store summary")[1]

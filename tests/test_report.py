"""Tests for the Markdown reproduction-report builder."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.core.report import (
    EXPERIMENT_INDEX,
    build_report,
    collect_sections,
    extra_results,
    missing_experiments,
)


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "fig10_reordering.txt").write_text("QUIC nack=3 slow\n")
    (tmp_path / "tab04_fairness.txt").write_text("QUIC 3.9 TCP 1.1\n")
    (tmp_path / "ablation_fec.txt").write_text("fec slower\n")
    return tmp_path


class TestReport:
    def test_sections_loaded(self, results_dir):
        sections = collect_sections(results_dir)
        assert {s.stem for s in sections} == {"fig10_reordering",
                                              "tab04_fairness"}

    def test_missing_listed(self, results_dir):
        missing = missing_experiments(results_dir)
        assert "fig06a_plt_sizes" in missing
        assert "fig10_reordering" not in missing

    def test_extras_listed(self, results_dir):
        assert extra_results(results_dir) == ["ablation_fec"]

    def test_markdown_structure(self, results_dir):
        text = build_report(results_dir)
        assert text.startswith("# Reproduction report")
        assert "| Fig. 10 |" in text
        assert "QUIC nack=3 slow" in text
        assert "### ablation_fec" in text
        assert "*not run*" in text

    def test_empty_dir(self, tmp_path):
        text = build_report(tmp_path)
        assert "no results yet" in text

    def test_index_covers_all_paper_artifacts(self):
        artifacts = {a for a, _ in EXPERIMENT_INDEX.values()}
        for needed in ("Fig. 2", "Fig. 3a", "Table 4 / Fig. 4", "Fig. 5",
                       "Fig. 6a", "Fig. 7", "Fig. 8a", "Fig. 9", "Fig. 10",
                       "Fig. 11", "Fig. 12", "Fig. 13", "Fig. 14 / Table 5",
                       "Fig. 15", "Table 6", "Fig. 17", "Fig. 18",
                       "Sec. 5.4"):
            assert needed in artifacts

    def test_cli_report_command(self, results_dir, tmp_path, capsys):
        out = tmp_path / "REPORT.md"
        assert main(["report", "--results", str(results_dir),
                     "--out", str(out)]) == 0
        assert out.exists()
        assert "Reproduction report" in out.read_text()

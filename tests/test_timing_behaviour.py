"""Timing-level behavioural tests: pacing on the wire, delayed ACKs,
TLP/RTO scheduling — the clock-sensitive mechanics."""

import pytest

from repro.netem import Packet, Simulator, build_path, emulated
from repro.quic import open_quic_pair, quic_config
from repro.tcp import open_tcp_pair, tcp_config

from .conftest import make_quic_pair, make_tcp_pair


def arrival_times(link):
    times = []
    link.on_deliver = lambda now, p: times.append(now)
    return times


class TestPacingOnTheWire:
    def test_paced_quic_spreads_initial_window(self):
        """After the 10-packet burst allowance, departures are spaced."""
        sim = Simulator()
        scn = emulated(100.0).with_(queue_bytes=10_000_000,
                                    rtt_run_variation=0.0)
        path, client, server = make_quic_pair(sim, scn)
        times = arrival_times(path.bottleneck_down)
        client.connect()
        client.request({"size": 500_000}, lambda *a: None)
        sim.run(until=0.05)  # first flight only
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert len(gaps) > 10
        spaced = [g for g in gaps[10:] if g > 1e-9]
        assert spaced, "expected paced (non-zero) departure gaps"

    def test_unpaced_tcp_bursts_back_to_back(self):
        """TCP's initial window leaves as a line-rate burst."""
        sim = Simulator()
        scn = emulated(100.0).with_(queue_bytes=10_000_000,
                                    rtt_run_variation=0.0)
        path, client, server = make_tcp_pair(sim, scn)
        times = arrival_times(path.bottleneck_down)
        client.connect(lambda now: client.request({"size": 500_000},
                                                  lambda *a: None))
        sim.run(until=0.2)
        gaps = [b - a for a, b in zip(times, times[1:])]
        serialization = (1350 + 12 + 40) * 8 / 100e6
        line_rate = [g for g in gaps if g <= serialization * 1.01]
        assert len(line_rate) >= len(gaps) * 0.5


class TestDelayedAckTimer:
    def test_tcp_lone_segment_acked_after_timeout(self):
        """A single odd segment waits ~40 ms for the delayed-ACK timer."""
        sim = Simulator()
        scn = emulated(10.0).with_(rtt_run_variation=0.0)
        path, client, server = make_tcp_pair(sim, scn)
        done = {}
        client.connect(lambda now: client.request(
            {"size": 600}, lambda m, meta, t: done.update({1: t})))
        sim.run_until(lambda: 1 in done, timeout=5.0)
        t_done = done[1]
        # Wait for the final ACK of the lone response segment.
        sim.run(until=t_done + 0.2)
        assert server._snd_una == server._snd_nxt

    def test_quic_ack_timer_quarter_of_tcp(self):
        """QUIC's 25 ms delayed-ACK bound vs TCP's 40 ms (config check +
        observable single-packet behaviour)."""
        assert quic_config(34).ack_delay_timer == pytest.approx(0.025)
        assert tcp_config().delayed_ack_timeout == pytest.approx(0.040)


class TestRetransmissionTimers:
    def test_quic_tlp_fires_around_two_srtt(self):
        sim = Simulator()
        scn = emulated(10.0).with_(queue_bytes=10_000_000,
                                   rtt_run_variation=0.0)
        path, client, server = make_quic_pair(
            sim, scn, cfg=quic_config(34, macw_packets=20))
        done = {}
        client.connect()
        client.request({"size": 100_000}, lambda s, m, t: done.update({1: t}))

        def arm():
            stream = server.send_streams.get(1)
            if stream is not None and stream.bytes_sent >= 100_000 - 3 * 1350:
                path.bottleneck_down.drop_next(3)
                return
            sim.schedule(0.002, arm)

        sim.schedule(0.002, arm)
        assert sim.run_until(lambda: 1 in done, timeout=30.0)
        assert server.stats.tlp_probes >= 1
        # TLP repaired the tail well before a 200 ms RTO would have.
        # (clean PLT ~0.17 s; with the drop it stays under RTO territory)
        assert done[1] < 0.45

    def test_tcp_min_rto_enforced(self):
        sim = Simulator()
        scn = emulated(10.0).with_(queue_bytes=10_000_000,
                                   rtt_run_variation=0.0)
        path, client, server = make_tcp_pair(sim, scn)
        done = {}
        client.connect(lambda now: client.request(
            {"size": 100_000}, lambda m, meta, t: done.update({1: t})))
        sim.run(until=0.15)
        before = sim.now
        # Kill the next 10 wire packets: the tail of the flight dies but
        # later retransmissions survive.
        path.bottleneck_down.drop_next(10)
        assert sim.run_until(lambda: 1 in done, timeout=30.0)
        if server.stats.rto_fires:
            # Recovery had to wait at least (roughly) the 200 ms RTO floor.
            assert done[1] - before >= 0.15

"""Property-based end-to-end tests: transfers survive arbitrary chaos.

These hypothesis tests throw randomized network impairments at full
QUIC and TCP transfers and check the invariants that must *always* hold:
completion, byte conservation, non-negative accounting, determinism.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netem import Simulator, build_path, emulated
from repro.quic import open_quic_pair, quic_config
from repro.tcp import open_tcp_pair, tcp_config

SLOW_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

impairments = st.fixed_dictionaries({
    "rate": st.sampled_from([5.0, 10.0, 50.0]),
    "loss_pct": st.sampled_from([0.0, 0.5, 2.0]),
    "delay_ms": st.sampled_from([0.0, 50.0]),
    "jitter_ms": st.sampled_from([0.0, 5.0]),
    "size": st.integers(1_000, 600_000),
    "seed": st.integers(0, 10_000),
})


def scenario_from(params):
    return emulated(
        params["rate"],
        loss_pct=params["loss_pct"],
        extra_delay_ms=params["delay_ms"],
        jitter_ms=params["jitter_ms"],
    )


@SLOW_SETTINGS
@given(impairments)
def test_quic_transfer_always_completes_exactly(params):
    sim = Simulator()
    path = build_path(sim, scenario_from(params), seed=params["seed"])
    client, server = open_quic_pair(
        sim, path.client, path.server, quic_config(34),
        request_handler=lambda m: m["size"], seed=params["seed"],
    )
    done = {}
    client.connect()
    client.request({"size": params["size"]},
                   lambda s, m, t: done.update({s: t}))
    assert sim.run_until(lambda: len(done) == 1, timeout=300.0,
                         max_events=5_000_000)
    # Byte conservation: the client consumed exactly the object once.
    stream = client.recv_streams[next(iter(done))]
    assert stream.bytes_received == params["size"]
    assert stream.consumed == params["size"]
    # Accounting invariants.
    sim.run(until=sim.now + 2.0)
    assert server.bytes_in_flight >= 0
    assert client.bytes_in_flight >= 0


@SLOW_SETTINGS
@given(impairments)
def test_tcp_transfer_always_completes_exactly(params):
    sim = Simulator()
    path = build_path(sim, scenario_from(params), seed=params["seed"])
    client, server = open_tcp_pair(
        sim, path.client, path.server, tcp_config(),
        request_handler=lambda m: m["size"], seed=params["seed"],
    )
    done = {}
    client.connect(lambda now: client.request(
        {"size": params["size"]}, lambda m, meta, t: done.update({m: t})))
    assert sim.run_until(lambda: len(done) == 1, timeout=300.0,
                         max_events=5_000_000)
    # The in-order stream delivered exactly the response bytes to the app.
    assert client._delivered_app_bytes == params["size"]
    # The receiver's ordered stream has no holes left behind.
    assert client._rcv_frontier == client._rcv_ranges.total()


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(impairments)
def test_runs_are_deterministic(params):
    """The same seed must produce byte-identical outcomes."""
    results = []
    for _ in range(2):
        sim = Simulator()
        path = build_path(sim, scenario_from(params), seed=params["seed"])
        client, _server = open_quic_pair(
            sim, path.client, path.server, quic_config(34),
            request_handler=lambda m: m["size"], seed=params["seed"],
        )
        done = {}
        client.connect()
        client.request({"size": params["size"]},
                       lambda s, m, t: done.update({s: t}))
        assert sim.run_until(lambda: len(done) == 1, timeout=300.0)
        results.append((next(iter(done.values())), sim.events_processed))
    assert results[0] == results[1]

"""Tests for the host mux and endpoint plumbing."""

import pytest

from repro.netem import Network, Packet, Simulator
from repro.transport.base import HostMux, TransportEndpoint, fresh_conn_id, mux_for


class FakePayload:
    def __init__(self, conn_id):
        self.conn_id = conn_id


def make_net():
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    net.add_node("b")
    net.duplex_link("a", "b", rate_bps=None, delay=0.001)
    net.build_routes()
    return sim, net


class TestHostMux:
    def test_dispatch_by_conn_id(self):
        sim, net = make_net()
        mux = mux_for(net.node("b"))
        got = []
        mux.register("c1", got.append)
        net.node("a").send(Packet("a", "b", 100, payload=FakePayload("c1")))
        sim.run()
        assert len(got) == 1

    def test_unknown_conn_goes_to_listener(self):
        sim, net = make_net()
        mux = mux_for(net.node("b"))
        listened = []
        mux.set_listener(listened.append)
        net.node("a").send(Packet("a", "b", 100, payload=FakePayload("ghost")))
        sim.run()
        assert len(listened) == 1

    def test_unroutable_counted_without_listener(self):
        sim, net = make_net()
        mux = mux_for(net.node("b"))
        net.node("a").send(Packet("a", "b", 100, payload=FakePayload("ghost")))
        sim.run()
        assert mux.unroutable == 1

    def test_duplicate_registration_rejected(self):
        _sim, net = make_net()
        mux = mux_for(net.node("b"))
        mux.register("c1", lambda p: None)
        with pytest.raises(ValueError):
            mux.register("c1", lambda p: None)

    def test_unregister_frees_id(self):
        _sim, net = make_net()
        mux = mux_for(net.node("b"))
        mux.register("c1", lambda p: None)
        mux.unregister("c1")
        mux.register("c1", lambda p: None)  # no error

    def test_mux_for_is_idempotent(self):
        _sim, net = make_net()
        assert mux_for(net.node("a")) is mux_for(net.node("a"))


class TestEndpoint:
    def test_fresh_conn_ids_unique(self):
        ids = {fresh_conn_id("x") for _ in range(100)}
        assert len(ids) == 100

    def test_emit_adds_header_overhead(self):
        sim, net = make_net()

        class Probe(TransportEndpoint):
            def on_packet(self, packet):
                pass

        got = []
        net.node("b").register_handler(lambda p: got.append(p))
        # Replace handler after mux creation: rewire explicitly instead.
        probe = Probe(sim, net.node("a"), "probe-1", "b")
        mux_b = mux_for(net.node("b"))
        mux_b.set_listener(got.append)
        probe.emit(FakePayload("probe-1"), 1000)
        sim.run()
        assert got[-1].size_bytes == 1040

    def test_close_unregisters(self):
        sim, net = make_net()

        class Probe(TransportEndpoint):
            def on_packet(self, packet):
                pass

        probe = Probe(sim, net.node("a"), "p1", "b")
        probe.close()
        probe.close()  # idempotent
        mux = mux_for(net.node("a"))
        assert mux._endpoints.get("p1") is None

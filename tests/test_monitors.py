"""Tests for the flow throughput monitor (Fig. 4/11 data source)."""

import pytest

from repro.core.monitors import FlowThroughputMonitor
from repro.netem import Packet, Simulator, build_bottleneck, fairness_bottleneck


def setup_bottleneck():
    sim = Simulator()
    net, clients, servers, down = build_bottleneck(
        sim, fairness_bottleneck(), 2, seed=1)
    for c in clients:
        c.register_handler(lambda p: None)
    return sim, clients, servers, down


class TestFlowThroughputMonitor:
    def test_invalid_interval(self):
        sim, _c, _s, down = setup_bottleneck()
        with pytest.raises(ValueError):
            FlowThroughputMonitor(down, interval=0)

    def test_per_flow_accounting(self):
        sim, clients, servers, down = setup_bottleneck()
        monitor = FlowThroughputMonitor(down, interval=0.5)
        for i in range(20):
            servers[0].send(Packet("server0", "client0", 1000, flow_id="a"))
            servers[1].send(Packet("server1", "client1", 500, flow_id="b"))
        sim.run()
        assert monitor.flows() == ["a", "b"]
        assert monitor.total_bytes("a") == 20_000
        assert monitor.total_bytes("b") == 10_000

    def test_average_mbps_over_duration(self):
        sim, clients, servers, down = setup_bottleneck()
        monitor = FlowThroughputMonitor(down, interval=0.5)

        def send(i=0):
            if i >= 100:
                return
            servers[0].send(Packet("server0", "client0", 1250, flow_id="a"))
            sim.schedule(0.01, send, i + 1)

        send()
        sim.run()
        # 100 * 1250 B over 2 seconds = 0.5 Mbps.
        assert monitor.average_mbps("a", duration=2.0) == pytest.approx(0.5, rel=0.05)

    def test_series_buckets(self):
        sim, clients, servers, down = setup_bottleneck()
        monitor = FlowThroughputMonitor(down, interval=0.25)

        def send(i=0):
            if i >= 40:
                return
            servers[0].send(Packet("server0", "client0", 1000, flow_id="a"))
            sim.schedule(0.05, send, i + 1)

        send()
        sim.run()
        series = monitor.series_mbps("a")
        assert len(series) >= 6
        for t, mbps in series:
            assert mbps >= 0

    def test_unknown_flow(self):
        sim, _c, _s, down = setup_bottleneck()
        monitor = FlowThroughputMonitor(down)
        assert monitor.average_mbps("ghost") == 0.0
        assert monitor.series_mbps("ghost") == []
        assert monitor.total_bytes("ghost") == 0

    def test_missing_flow_id_bucketed_as_unknown(self):
        sim, clients, servers, down = setup_bottleneck()
        monitor = FlowThroughputMonitor(down)
        servers[0].send(Packet("server0", "client0", 1000))
        sim.run()
        assert monitor.flows() == ["unknown"]

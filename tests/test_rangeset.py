"""Unit and property-based tests for the interval set backing both transports."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.util import RangeSet


class TestBasics:
    def test_empty(self):
        rs = RangeSet()
        assert rs.total() == 0
        assert not rs
        assert len(rs) == 0
        assert rs.max_covered() is None

    def test_single_add(self):
        rs = RangeSet()
        assert rs.add(5, 10) == 5
        assert rs.total() == 5
        assert rs.ranges() == [(5, 10)]

    def test_empty_or_inverted_add_is_noop(self):
        rs = RangeSet()
        assert rs.add(5, 5) == 0
        assert rs.add(7, 3) == 0
        assert rs.total() == 0

    def test_disjoint_adds(self):
        rs = RangeSet([(0, 5), (10, 15)])
        assert rs.total() == 10
        assert len(rs) == 2

    def test_adjacent_ranges_merge(self):
        rs = RangeSet()
        rs.add(0, 5)
        rs.add(5, 10)
        assert rs.ranges() == [(0, 10)]

    def test_overlapping_adds_count_only_new(self):
        rs = RangeSet()
        rs.add(0, 10)
        assert rs.add(5, 15) == 5
        assert rs.ranges() == [(0, 15)]

    def test_bridging_add_merges_three(self):
        rs = RangeSet([(0, 5), (10, 15)])
        assert rs.add(4, 11) == 5
        assert rs.ranges() == [(0, 15)]

    def test_fully_contained_add(self):
        rs = RangeSet([(0, 100)])
        assert rs.add(10, 20) == 0
        assert rs.ranges() == [(0, 100)]


class TestQueries:
    def test_contains(self):
        rs = RangeSet([(5, 10)])
        assert not rs.contains(4)
        assert rs.contains(5)
        assert rs.contains(9)
        assert not rs.contains(10)

    def test_containing(self):
        rs = RangeSet([(5, 10), (20, 30)])
        assert rs.containing(7) == (5, 10)
        assert rs.containing(20) == (20, 30)
        assert rs.containing(15) is None
        assert rs.containing(10) is None

    def test_covers(self):
        rs = RangeSet([(0, 10), (20, 30)])
        assert rs.covers(0, 10)
        assert rs.covers(2, 8)
        assert not rs.covers(5, 25)
        assert not rs.covers(15, 18)
        assert rs.covers(7, 7)  # empty range always covered

    def test_overlaps(self):
        rs = RangeSet([(10, 20)])
        assert rs.overlaps(15, 25)
        assert rs.overlaps(5, 11)
        assert not rs.overlaps(0, 10)
        assert not rs.overlaps(20, 30)
        assert not rs.overlaps(5, 5)

    def test_contiguous_from(self):
        rs = RangeSet([(0, 10), (15, 20)])
        assert rs.contiguous_from(0) == 10
        assert rs.contiguous_from(15) == 20
        assert rs.contiguous_from(12) == 12
        assert rs.contiguous_from(10) == 10

    def test_contiguous_from_merges_through(self):
        rs = RangeSet([(0, 10)])
        rs.add(10, 20)
        assert rs.contiguous_from(0) == 20

    def test_gaps(self):
        rs = RangeSet([(5, 10), (15, 20)])
        assert rs.gaps(0, 25) == [(0, 5), (10, 15), (20, 25)]
        assert rs.gaps(5, 20) == [(10, 15)]
        assert rs.gaps(6, 9) == []
        assert RangeSet().gaps(3, 7) == [(3, 7)]

    def test_max_covered(self):
        rs = RangeSet([(0, 5), (10, 20)])
        assert rs.max_covered() == 20

    def test_equality(self):
        assert RangeSet([(0, 5)]) == RangeSet([(0, 3), (3, 5)])
        assert RangeSet([(0, 5)]) != RangeSet([(0, 6)])


# ----------------------------------------------------------------------
# property-based tests against a naive set-of-integers model
# ----------------------------------------------------------------------
ranges_strategy = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 60)).map(
        lambda t: (t[0], t[0] + t[1])
    ),
    min_size=0,
    max_size=30,
)


def naive(ranges):
    covered = set()
    for lo, hi in ranges:
        covered.update(range(lo, hi))
    return covered


@settings(max_examples=200, deadline=None)
@given(ranges_strategy)
def test_total_matches_naive_model(ranges):
    rs = RangeSet()
    for lo, hi in ranges:
        rs.add(lo, hi)
    assert rs.total() == len(naive(ranges))


@settings(max_examples=200, deadline=None)
@given(ranges_strategy, st.integers(0, 260))
def test_contains_matches_naive_model(ranges, probe):
    rs = RangeSet(ranges)
    assert rs.contains(probe) == (probe in naive(ranges))


@settings(max_examples=200, deadline=None)
@given(ranges_strategy)
def test_ranges_are_sorted_disjoint_nonempty(ranges):
    rs = RangeSet(ranges)
    out = rs.ranges()
    for lo, hi in out:
        assert lo < hi
    for (l1, h1), (l2, h2) in zip(out, out[1:]):
        assert h1 < l2  # strictly disjoint, non-adjacent


@settings(max_examples=200, deadline=None)
@given(ranges_strategy, st.integers(0, 260))
def test_contiguous_from_matches_naive(ranges, origin):
    covered = naive(ranges)
    expected = origin
    while expected in covered:
        expected += 1
    assert RangeSet(ranges).contiguous_from(origin) == expected


@settings(max_examples=200, deadline=None)
@given(ranges_strategy, st.integers(0, 150), st.integers(0, 110))
def test_gaps_partition_matches_naive(ranges, lo, span):
    hi = lo + span
    rs = RangeSet(ranges)
    covered = naive(ranges)
    gap_points = set()
    for g_lo, g_hi in rs.gaps(lo, hi):
        assert lo <= g_lo < g_hi <= hi
        gap_points.update(range(g_lo, g_hi))
    expected = {p for p in range(lo, hi) if p not in covered}
    assert gap_points == expected


@settings(max_examples=200, deadline=None)
@given(ranges_strategy)
def test_add_return_value_sums_to_total(ranges):
    rs = RangeSet()
    added = sum(rs.add(lo, hi) for lo, hi in ranges)
    assert added == rs.total()


@settings(max_examples=100, deadline=None)
@given(ranges_strategy, st.randoms(use_true_random=False))
def test_insertion_order_irrelevant(ranges, rnd):
    rs1 = RangeSet(ranges)
    shuffled = list(ranges)
    rnd.shuffle(shuffled)
    rs2 = RangeSet(shuffled)
    assert rs1 == rs2

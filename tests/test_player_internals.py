"""White-box tests for the video player's buffer/playback clock."""

import pytest

from repro.netem import Simulator, emulated
from repro.video import VideoPlayer, one_hour_video

from .conftest import make_quic_pair


def make_player(sim, scenario, quality="medium", **kw):
    _path, client, _server = make_quic_pair(sim, scenario)
    player = VideoPlayer(sim, client, one_hour_video(quality),
                         protocol="quic", **kw)
    return player


class TestStartupAndResume:
    def test_playback_starts_after_startup_segments(self):
        sim = Simulator()
        player = make_player(sim, emulated(20.0), startup_segments=3)
        player.start()
        sim.run(until=5.0)
        metrics = player.finalize()
        # Three 2-second segments buffered before start.
        assert metrics.time_to_start is not None
        assert metrics.time_to_start > 0

    def test_pipeline_depth_controls_outstanding(self):
        sim = Simulator()
        player = make_player(sim, emulated(1.0), pipeline_depth=2,
                             quality="hd720")
        player.start()
        sim.run(until=0.05)
        assert player._outstanding <= 2

    def test_resume_threshold_after_stall(self):
        sim = Simulator()
        # hd720 at 2 Mbps: cannot sustain 2.5 Mbps, stalls periodically.
        player = make_player(sim, emulated(2.0), quality="hd720",
                             resume_segments=2)
        player.start()
        sim.run(until=40.0)
        metrics = player.finalize()
        assert metrics.rebuffer_count >= 1
        assert metrics.stalled_seconds > 0


class TestAccountingIdentities:
    @pytest.mark.parametrize("rate", [2.0, 20.0])
    def test_time_budget_identity(self, rate):
        """played + stalled + time-to-start <= wall clock."""
        sim = Simulator()
        player = make_player(sim, emulated(rate), quality="hd720")
        player.start()
        horizon = 30.0
        sim.run(until=horizon)
        metrics = player.finalize()
        used = metrics.played_seconds + metrics.stalled_seconds
        if metrics.time_to_start is not None:
            used += metrics.time_to_start
        assert used <= horizon + 0.25

    def test_loaded_fraction_matches_segment_count(self):
        sim = Simulator()
        player = make_player(sim, emulated(20.0))
        player.start()
        sim.run(until=20.0)
        metrics = player.finalize()
        expected = (player._downloaded_segments
                    * player.video.segment_duration / 3600 * 100)
        assert metrics.video_loaded_pct == pytest.approx(expected)

    def test_finalize_idempotent_snapshot(self):
        sim = Simulator()
        player = make_player(sim, emulated(20.0))
        player.start()
        sim.run(until=10.0)
        first = player.finalize()
        second = player.finalize()
        assert second.played_seconds == pytest.approx(first.played_seconds)
        assert second.rebuffer_count == first.rebuffer_count

    def test_no_rebuffer_counted_at_video_end(self):
        """Running out of *video* is not a rebuffer event."""
        sim = Simulator()
        _path, client, _server = make_quic_pair(sim, emulated(50.0))
        from repro.video.catalog import Video

        tiny_clip = Video(quality="medium", duration=8.0,
                          segment_duration=2.0, bitrate=0.75e6)
        player = VideoPlayer(sim, client, tiny_clip, protocol="quic")
        player.start()
        sim.run(until=30.0)
        metrics = player.finalize()
        assert metrics.rebuffer_count == 0
        assert metrics.played_seconds == pytest.approx(8.0, abs=0.5)

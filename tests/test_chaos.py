"""Chaos tests: the system must stay correct under adversarial timing.

These complement the per-module suites with cross-cutting scenarios:
mid-transfer rate collapse, repeated blackholes, proxy chains under loss,
and many concurrent connections sharing nodes.
"""

import pytest

from repro.http import PageLoader, page, page_request_handler, single_object_page
from repro.netem import Simulator, build_path, build_proxy_path, emulated, mbps
from repro.proxy import SplitConnectionProxy
from repro.quic import open_quic_pair, quic_config
from repro.tcp import open_tcp_pair, tcp_config

from .conftest import make_quic_pair, make_tcp_pair, quic_download, tcp_download


class TestRateCollapse:
    @pytest.mark.parametrize("protocol", ["quic", "tcp"])
    def test_survives_100x_rate_drop(self, protocol):
        sim = Simulator()
        if protocol == "quic":
            path, client, _ = make_quic_pair(sim, emulated(100.0), seed=5)
        else:
            path, client, _ = make_tcp_pair(sim, emulated(100.0), seed=5)
        done = {}
        if protocol == "quic":
            client.connect()
            client.request({"size": 3_000_000},
                           lambda s, m, t: done.update({1: t}))
        else:
            client.connect(lambda now: client.request(
                {"size": 3_000_000}, lambda m, meta, t: done.update({1: t})))
        sim.run(until=0.1)
        path.bottleneck_down.set_rate(mbps(1.0))
        path.bottleneck_up.set_rate(mbps(1.0))
        assert sim.run_until(lambda: 1 in done, timeout=120.0)

    @pytest.mark.parametrize("protocol", ["quic", "tcp"])
    def test_survives_rate_restoration(self, protocol):
        sim = Simulator()
        if protocol == "quic":
            path, client, _ = make_quic_pair(sim, emulated(1.0), seed=5)
        else:
            path, client, _ = make_tcp_pair(sim, emulated(1.0), seed=5)
        done = {}
        if protocol == "quic":
            client.connect()
            client.request({"size": 3_000_000},
                           lambda s, m, t: done.update({1: t}))
        else:
            client.connect(lambda now: client.request(
                {"size": 3_000_000}, lambda m, meta, t: done.update({1: t})))
        sim.run(until=2.0)
        path.bottleneck_down.set_rate(mbps(100.0))
        path.bottleneck_up.set_rate(mbps(100.0))
        assert sim.run_until(lambda: 1 in done, timeout=120.0)
        # The restored rate must actually get used.
        assert done[1] < 8.0


class TestRepeatedBlackholes:
    def test_quic_survives_three_blackholes(self):
        sim = Simulator()
        path, client, server = make_quic_pair(sim, emulated(10.0), seed=6)
        done = {}
        client.connect()
        client.request({"size": 1_000_000}, lambda s, m, t: done.update({1: t}))
        for start in (0.2, 0.7, 1.2):
            sim.run(until=start)
            path.bottleneck_down.loss_rate = 0.999
            sim.run(until=start + 0.15)
            path.bottleneck_down.loss_rate = 0.0
        assert sim.run_until(lambda: 1 in done, timeout=120.0)

    def test_tcp_survives_three_blackholes(self):
        sim = Simulator()
        path, client, server = make_tcp_pair(sim, emulated(10.0), seed=6)
        done = {}
        client.connect(lambda now: client.request(
            {"size": 1_000_000}, lambda m, meta, t: done.update({1: t})))
        for start in (0.3, 0.9, 1.5):
            sim.run(until=start)
            path.bottleneck_down.loss_rate = 0.999
            sim.run(until=start + 0.15)
            path.bottleneck_down.loss_rate = 0.0
        assert sim.run_until(lambda: 1 in done, timeout=120.0)


class TestProxyUnderStress:
    @pytest.mark.parametrize("protocol", ["quic", "tcp"])
    def test_proxied_multiplexed_page_under_loss(self, protocol):
        sim = Simulator()
        scn = emulated(10.0, loss_pct=2.0, extra_delay_ms=50)
        path = build_proxy_path(sim, scn, seed=7)
        web_page = page(20, 30 * 1024)
        proxy = SplitConnectionProxy(
            sim, path, protocol, page_request_handler(web_page),
            quic_cfg=quic_config(34), tcp_cfg=tcp_config(), seed=7,
        )
        loader = PageLoader(sim, proxy.client, web_page, protocol)
        loader.start()
        assert sim.run_until(lambda: loader.done, timeout=240.0)
        assert proxy.forwarded_bytes >= web_page.total_bytes


class TestManyConnections:
    def test_ten_quic_connections_share_one_path(self):
        sim = Simulator()
        path = build_path(sim, emulated(50.0), seed=8)
        done = {}
        for i in range(10):
            client, _server = open_quic_pair(
                sim, path.client, path.server, quic_config(34),
                request_handler=lambda m: m["size"], seed=100 + i,
                flow_id=f"c{i}",
            )
            client.connect()
            client.request({"size": 200_000, "i": i},
                           lambda s, m, t: done.update({m["i"]: t}))
        assert sim.run_until(lambda: len(done) == 10, timeout=120.0)

    def test_mixed_protocol_connections_coexist(self):
        sim = Simulator()
        path = build_path(sim, emulated(50.0), seed=9)
        done = {}
        qc, _ = open_quic_pair(sim, path.client, path.server, quic_config(34),
                               request_handler=lambda m: m["size"], seed=1)
        tc, _ = open_tcp_pair(sim, path.client, path.server, tcp_config(),
                              request_handler=lambda m: m["size"], seed=2)
        qc.connect()
        qc.request({"size": 400_000}, lambda s, m, t: done.update({"q": t}))
        tc.connect(lambda now: tc.request(
            {"size": 400_000}, lambda m, meta, t: done.update({"t": t})))
        assert sim.run_until(lambda: len(done) == 2, timeout=60.0)

"""Tests for PRR, Hybrid Slow Start, and the pacer."""

import pytest

from repro.transport.cc.hybrid_slow_start import HybridSlowStart
from repro.transport.cc.pacing import Pacer
from repro.transport.cc.prr import ProportionalRateReduction

MSS = 1350


class TestPrr:
    def test_proportional_phase_limits_sending(self):
        # cwnd 20 MSS at loss, ssthresh 14 MSS, everything in flight.
        prr = ProportionalRateReduction(14 * MSS, 20 * MSS, 20 * MSS, MSS)
        assert prr.can_send(20 * MSS) == 0  # nothing delivered yet
        prr.on_ack(2 * MSS)
        allowed = prr.can_send(18 * MSS)
        # sndcnt ~= delivered * ssthresh / RecoverFS = 2 * 14/20 = 1.4 MSS
        assert 1 * MSS <= allowed <= 2 * MSS

    def test_sent_bytes_reduce_budget(self):
        prr = ProportionalRateReduction(14 * MSS, 20 * MSS, 20 * MSS, MSS)
        prr.on_ack(4 * MSS)
        first = prr.can_send(16 * MSS)
        prr.on_sent(first)
        assert prr.can_send(16 * MSS + first) <= MSS

    def test_ssrb_rebound_when_flight_below_ssthresh(self):
        prr = ProportionalRateReduction(14 * MSS, 20 * MSS, 20 * MSS, MSS)
        prr.on_ack(10 * MSS)
        # in flight collapsed below ssthresh: slow-start rebound applies,
        # bounded by the gap to ssthresh.
        allowed = prr.can_send(5 * MSS)
        assert 0 < allowed <= 9 * MSS

    def test_total_sent_converges_to_ssthresh(self):
        # Simulate a full recovery: acks arrive, we always send the budget.
        prr = ProportionalRateReduction(10 * MSS, 20 * MSS, 20 * MSS, MSS)
        in_flight = 20 * MSS
        sent_total = 0
        for _ in range(20):
            prr.on_ack(MSS)
            in_flight -= MSS
            budget = prr.can_send(in_flight)
            prr.on_sent(budget)
            in_flight += budget
            sent_total += budget
        assert in_flight == pytest.approx(10 * MSS, abs=2 * MSS)

    def test_never_negative(self):
        prr = ProportionalRateReduction(10 * MSS, 20 * MSS, 20 * MSS, MSS)
        prr.on_sent(50 * MSS)
        assert prr.can_send(50 * MSS) == 0


class TestHybridSlowStart:
    def run_round(self, hss, now, rtt, baseline, srtt=0.05, cwnd=64,
                  samples=None):
        exited = False
        for i in range(samples or hss.SAMPLES_PER_ROUND):
            exited = hss.on_rtt_sample(now + i * 1e-4, rtt, baseline, srtt, cwnd)
        return exited

    def test_no_exit_on_flat_rtt(self):
        hss = HybridSlowStart()
        for round_idx in range(5):
            assert not self.run_round(hss, round_idx * 0.06, 0.05, 0.05)

    def test_exits_on_delay_increase(self):
        hss = HybridSlowStart()
        self.run_round(hss, 0.0, 0.050, 0.050)
        exited = self.run_round(hss, 0.1, 0.080, 0.050)
        assert exited
        assert hss.exited
        assert hss.exit_time is not None

    def test_threshold_clamped_to_min_4ms(self):
        hss = HybridSlowStart()
        # baseline 8ms -> raw threshold 1ms, clamped to 4ms; +3ms must NOT exit.
        self.run_round(hss, 0.0, 0.008, 0.008, srtt=0.008)
        assert not self.run_round(hss, 0.05, 0.011, 0.008, srtt=0.008)
        # +5ms exceeds the clamp: exit.
        assert self.run_round(hss, 0.1, 0.013, 0.008, srtt=0.008)

    def test_threshold_clamped_to_max_16ms(self):
        hss = HybridSlowStart()
        # baseline 400ms -> raw threshold 50ms, clamped to 16ms.
        self.run_round(hss, 0.0, 0.400, 0.400, srtt=0.4)
        assert self.run_round(hss, 0.5, 0.420, 0.400, srtt=0.4)

    def test_no_exit_below_low_window(self):
        hss = HybridSlowStart()
        self.run_round(hss, 0.0, 0.05, 0.05, cwnd=8)
        assert not self.run_round(hss, 0.1, 0.2, 0.05, cwnd=8)

    def test_needs_enough_samples(self):
        hss = HybridSlowStart()
        self.run_round(hss, 0.0, 0.05, 0.05)
        assert not self.run_round(hss, 0.1, 0.2, 0.05, samples=3)

    def test_restart_rearms(self):
        hss = HybridSlowStart()
        self.run_round(hss, 0.0, 0.05, 0.05)
        assert self.run_round(hss, 0.1, 0.09, 0.05)
        hss.restart()
        assert not hss.exited
        self.run_round(hss, 1.0, 0.05, 0.05)
        assert self.run_round(hss, 1.1, 0.09, 0.05)


class TestPacer:
    def test_initial_burst_unpaced(self):
        pacer = Pacer(initial_burst_packets=3)
        rate = 1350 / 0.01  # 10 ms per packet
        times = [pacer.release_time(0.0, 1350, rate) for _ in range(3)]
        assert times == [0.0, 0.0, 0.0]

    def test_spacing_after_burst(self):
        pacer = Pacer(initial_burst_packets=0, lump_packets=1)
        rate = 1350 / 0.01
        t1 = pacer.release_time(0.0, 1350, rate)
        t2 = pacer.release_time(0.0, 1350, rate)
        t3 = pacer.release_time(0.0, 1350, rate)
        assert t1 == 0.0
        assert t2 == pytest.approx(0.01)
        assert t3 == pytest.approx(0.02)

    def test_none_rate_disables_pacing(self):
        pacer = Pacer(initial_burst_packets=0)
        assert pacer.release_time(1.0, 1350, None) == 1.0
        assert pacer.release_time(1.0, 1350, None) == 1.0

    def test_idle_resets_schedule(self):
        pacer = Pacer(initial_burst_packets=0, lump_packets=1)
        rate = 1350 / 0.01
        pacer.release_time(0.0, 1350, rate)
        pacer.release_time(0.0, 1350, rate)
        # Much later: no stale backlog of release times.
        t = pacer.release_time(10.0, 1350, rate)
        assert t == 10.0

    def test_rate_respected_over_many_packets(self):
        pacer = Pacer(initial_burst_packets=0, lump_packets=1)
        rate = 1350 / 0.001
        last = 0.0
        for _ in range(100):
            last = pacer.release_time(0.0, 1350, rate)
        assert last == pytest.approx(0.099, rel=0.05)

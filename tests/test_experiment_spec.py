"""Tests for declarative experiment specs and their execution."""

import json

import pytest

from repro.core.experiment import (
    ExperimentResult,
    ExperimentSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_experiment,
)


def tiny_spec(**overrides):
    kwargs = dict(
        name="tiny",
        scenarios=[ScenarioSpec(rate_mbps=10.0)],
        workloads=[WorkloadSpec(objects=1, size_kb=50)],
        runs=2,
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestSpecValidation:
    def test_requires_scenarios_and_workloads(self):
        with pytest.raises(ValueError):
            ExperimentSpec("x", [], [WorkloadSpec()])
        with pytest.raises(ValueError):
            ExperimentSpec("x", [ScenarioSpec()], [])

    def test_rejects_unknown_device(self):
        with pytest.raises(ValueError):
            tiny_spec(device="iphone99")

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            tiny_spec(protocols=("quic", "sctp"))

    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            tiny_spec(runs=0)


class TestSerialisation:
    def test_spec_json_round_trip(self):
        spec = tiny_spec(
            scenarios=[ScenarioSpec(10.0, loss_pct=1.0),
                       ScenarioSpec(50.0, delay_ms=50.0)],
            workloads=[WorkloadSpec(1, 100), WorkloadSpec(200, 10)],
            device="motog",
            quic_version=37,
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec

    def test_from_json_applies_defaults(self):
        raw = {
            "name": "d",
            "scenarios": [{"rate_mbps": 5.0}],
            "workloads": [{"objects": 1, "size_kb": 10}],
        }
        spec = ExperimentSpec.from_json(json.dumps(raw))
        assert spec.runs == 10
        assert spec.protocols == ("quic", "tcp")
        assert spec.device == "desktop"

    def test_labels(self):
        assert WorkloadSpec(200, 10).label == "200x10KB"
        assert "5Mbps" in ScenarioSpec(5.0).label


class TestSchemaVersion:
    def test_default_schema_version_round_trips(self):
        spec = tiny_spec()
        assert spec.schema_version == 1
        assert ExperimentSpec.from_json(spec.to_json()).schema_version == 1

    def test_rejects_newer_schema_version(self):
        raw = json.loads(tiny_spec().to_json())
        raw["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            ExperimentSpec.from_json(json.dumps(raw))

    def test_rejects_invalid_schema_version(self):
        with pytest.raises(ValueError):
            tiny_spec(schema_version=0)
        with pytest.raises(ValueError):
            tiny_spec(schema_version="1")

    def test_rejects_unknown_top_level_key(self):
        raw = json.loads(tiny_spec().to_json())
        raw["worklods"] = raw["workloads"]  # typo'd key
        with pytest.raises(ValueError) as excinfo:
            ExperimentSpec.from_json(json.dumps(raw))
        # The error should both name the bad key and list valid ones.
        assert "worklods" in str(excinfo.value)
        assert "workloads" in str(excinfo.value)

    def test_rejects_unknown_scenario_key(self):
        raw = json.loads(tiny_spec().to_json())
        raw["scenarios"][0]["rate"] = 10.0
        with pytest.raises(ValueError, match="rate"):
            ExperimentSpec.from_json(json.dumps(raw))

    def test_rejects_unknown_workload_key(self):
        raw = json.loads(tiny_spec().to_json())
        raw["workloads"][0]["size"] = 50
        with pytest.raises(ValueError, match="size"):
            ExperimentSpec.from_json(json.dumps(raw))

    def test_rejects_non_object_payload(self):
        with pytest.raises(ValueError):
            ExperimentSpec.from_json("[1, 2, 3]")

    def test_missing_required_keys_named(self):
        with pytest.raises(ValueError, match="scenarios"):
            ExperimentSpec.from_json(json.dumps({"name": "x"}))


class TestExecution:
    def test_run_fills_every_cell(self):
        spec = tiny_spec(
            scenarios=[ScenarioSpec(10.0), ScenarioSpec(50.0)],
            workloads=[WorkloadSpec(1, 20)],
        )
        result = run_experiment(spec)
        assert len(result.samples) == 2 * 1 * 2  # scenarios x loads x protos
        for values in result.samples.values():
            assert len(values) == 2
            assert all(v > 0 for v in values)

    def test_heatmap_and_comparisons(self):
        result = run_experiment(tiny_spec(runs=3))
        hm = result.heatmap()
        assert len(hm.cells) == 1
        cell = result.comparison(
            result.spec.scenarios[0].label, result.spec.workloads[0].label)
        assert cell.quic_mean > 0 and cell.tcp_mean > 0

    def test_progress_callback_invoked(self):
        calls = []
        run_experiment(tiny_spec(), progress=lambda key, plts: calls.append(key))
        assert len(calls) == 2

    def test_result_json_round_trip(self):
        result = run_experiment(tiny_spec())
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.spec == result.spec
        assert restored.samples == result.samples

    def test_summary_rows(self):
        result = run_experiment(tiny_spec())
        rows = result.summary_rows()
        assert len(rows) == 2
        assert any("quic" in row for row in rows)

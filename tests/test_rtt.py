"""Tests for the RTT estimator (RFC 6298 + windowed minimum)."""

import pytest

from repro.transport.rtt import RttEstimator


class TestSrtt:
    def test_first_sample_initialises(self):
        est = RttEstimator(initial_rtt=0.1)
        est.on_sample(0.05, now=0.0)
        assert est.smoothed_rtt() == pytest.approx(0.05)
        assert est.rttvar == pytest.approx(0.025)

    def test_before_samples_uses_initial(self):
        est = RttEstimator(initial_rtt=0.2)
        assert est.smoothed_rtt() == 0.2

    def test_ewma_update(self):
        est = RttEstimator()
        est.on_sample(0.1, now=0.0)
        est.on_sample(0.2, now=0.1)
        # srtt = 7/8*0.1 + 1/8*0.2
        assert est.smoothed_rtt() == pytest.approx(0.1125)

    def test_converges_to_stable_rtt(self):
        est = RttEstimator()
        for i in range(100):
            est.on_sample(0.05, now=i * 0.05)
        assert est.smoothed_rtt() == pytest.approx(0.05, rel=1e-3)
        assert est.rttvar < 0.001

    def test_nonpositive_sample_ignored(self):
        est = RttEstimator()
        est.on_sample(-0.1, now=0.0)
        est.on_sample(0.0, now=0.0)
        assert est.samples == 0


class TestAckDelay:
    def test_ack_delay_subtracted(self):
        est = RttEstimator()
        est.on_sample(0.05, now=0.0)  # establishes min 0.05
        est.on_sample(0.10, now=0.1, ack_delay=0.04)
        assert est.latest == pytest.approx(0.06)

    def test_ack_delay_not_pushed_below_min(self):
        est = RttEstimator()
        est.on_sample(0.05, now=0.0)
        # Subtracting would give 0.02 < min 0.05: keep the raw sample.
        est.on_sample(0.06, now=0.1, ack_delay=0.04)
        assert est.latest == pytest.approx(0.06)


class TestMinRtt:
    def test_min_tracks_smallest(self):
        est = RttEstimator()
        for rtt in (0.08, 0.05, 0.09):
            est.on_sample(rtt, now=0.0)
        assert est.min_rtt() == pytest.approx(0.05)

    def test_window_expires_old_min(self):
        est = RttEstimator(min_rtt_window=1.0)
        est.on_sample(0.01, now=0.0)
        for i in range(20):
            est.on_sample(0.05, now=0.2 + i * 0.2)
        assert est.min_rtt() == pytest.approx(0.05)

    def test_min_uses_raw_not_ack_delay_adjusted(self):
        est = RttEstimator()
        est.on_sample(0.10, now=0.0, ack_delay=0.0)
        assert est.min_rtt() == pytest.approx(0.10)


class TestRto:
    def test_rto_floor(self):
        est = RttEstimator()
        for i in range(50):
            est.on_sample(0.01, now=i * 0.01)
        assert est.retransmission_timeout(min_rto=0.2) == 0.2

    def test_rto_tracks_variance(self):
        est = RttEstimator()
        est.on_sample(0.1, now=0.0)
        rto = est.retransmission_timeout(min_rto=0.0)
        assert rto == pytest.approx(0.1 + 4 * 0.05)

    def test_rto_ceiling(self):
        est = RttEstimator()
        est.on_sample(50.0, now=0.0)
        assert est.retransmission_timeout(max_rto=60.0) == 60.0

    def test_invalid_initial_rtt(self):
        with pytest.raises(ValueError):
            RttEstimator(initial_rtt=0.0)

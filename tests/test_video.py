"""Tests for the video catalog, player, and QoE metrics (Table 6)."""

import pytest

from repro.netem import Simulator, emulated
from repro.video import (
    QUALITIES,
    QUALITY_BITRATES,
    VideoPlayer,
    measure_video_qoe,
    one_hour_video,
    play_video_once,
)

from .conftest import make_quic_pair, make_tcp_pair


class TestCatalog:
    def test_quality_ladder_ordered(self):
        rates = [QUALITY_BITRATES[q] for q in QUALITIES]
        assert rates == sorted(rates)

    def test_one_hour_video_segments(self):
        video = one_hour_video("hd720", segment_duration=2.0)
        assert video.segment_count == 1800
        seg = video.segment(0)
        assert seg.size_bytes == int(2.5e6 * 2 / 8)

    def test_segment_bounds(self):
        video = one_hour_video("tiny")
        with pytest.raises(IndexError):
            video.segment(video.segment_count)

    def test_unknown_quality(self):
        with pytest.raises(KeyError):
            one_hour_video("hd9000")


def run_player(scenario, quality, seconds=30.0, protocol="quic", **player_kw):
    sim = Simulator()
    if protocol == "quic":
        _, client, _ = make_quic_pair(sim, scenario)
    else:
        _, client, _ = make_tcp_pair(sim, scenario)
    player = VideoPlayer(sim, client, one_hour_video(quality),
                         protocol=protocol, **player_kw)
    player.start()
    sim.run(until=seconds)
    return player.finalize()


class TestPlayer:
    def test_fast_link_low_quality_never_rebuffers(self):
        metrics = run_player(emulated(100.0), "medium")
        assert metrics.rebuffer_count == 0
        assert metrics.time_to_start is not None
        assert metrics.time_to_start < 1.0
        assert metrics.buffer_play_ratio_pct < 10.0

    def test_starved_player_rebuffers(self):
        # 4K at 5 Mbps: the 35 Mbps ladder cannot be sustained.
        metrics = run_player(emulated(5.0), "hd2160", seconds=30.0)
        assert metrics.rebuffer_count > 0
        assert metrics.stalled_seconds > 0

    def test_played_plus_stalled_bounded_by_wallclock(self):
        metrics = run_player(emulated(5.0), "hd720", seconds=30.0)
        total = metrics.played_seconds + metrics.stalled_seconds
        assert total <= 30.0 + 1e-6

    def test_buffer_cap_bounds_loaded_fraction(self):
        """The preload cap limits 'fraction loaded' for tiny quality
        (Table 6's tiny row: ~33.8% for both protocols)."""
        metrics = run_player(emulated(100.0), "tiny", seconds=60.0,
                             max_buffer_ahead=1200.0)
        expected_cap = (1200.0 + 60.0) / 3600.0 * 100
        assert metrics.video_loaded_pct <= expected_cap + 2.0
        assert metrics.video_loaded_pct > 25.0

    def test_higher_quality_loads_smaller_fraction(self):
        low = run_player(emulated(50.0), "medium", seconds=30.0)
        high = run_player(emulated(50.0), "hd2160", seconds=30.0)
        assert high.video_loaded_pct < low.video_loaded_pct

    def test_time_to_start_grows_with_quality(self):
        low = run_player(emulated(20.0), "tiny")
        high = run_player(emulated(20.0), "hd2160")
        assert high.time_to_start > low.time_to_start

    def test_tcp_player_works(self):
        metrics = run_player(emulated(100.0), "hd720", protocol="tcp")
        assert metrics.played_seconds > 20.0

    def test_metrics_row_renders(self):
        metrics = run_player(emulated(100.0), "medium")
        text = metrics.row()
        assert "medium" in text and "rebuffers" in text


class TestQoEHarness:
    def test_play_video_once(self):
        metrics = play_video_once(emulated(100.0, loss_pct=1.0), "hd720",
                                  "quic", seed=1, test_seconds=20.0)
        assert metrics.quality == "hd720"
        assert metrics.protocol == "quic"

    def test_aggregate_over_runs(self):
        agg = measure_video_qoe("medium", "quic", runs=3,
                                scenario=emulated(50.0), test_seconds=15.0)
        assert len(agg.runs) == 3
        m, sd = agg.stat("video_loaded_pct")
        assert m > 0
        assert "medium" in agg.row()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            play_video_once(emulated(10.0), "tiny", "sctp")

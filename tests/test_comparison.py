"""Tests for Comparison cells and Heatmap grids."""

import pytest

from repro.core.comparison import Comparison
from repro.core.heatmap import Heatmap


def cell(quic, tcp, label="cell"):
    return Comparison(label, quic, tcp)


class TestComparison:
    def test_pct_diff_paper_convention(self):
        c = cell([0.8] * 5, [1.0] * 5)
        assert c.pct_diff == pytest.approx(20.0)
        assert c.winner == "quic"

    def test_tcp_win(self):
        c = cell([1.2] * 5, [1.0] * 5)
        assert c.pct_diff == pytest.approx(-20.0)
        assert c.winner == "tcp"

    def test_inconclusive_when_noisy(self):
        quic = [1.0, 1.4, 0.7, 1.2, 0.9]
        tcp = [1.1, 0.8, 1.3, 0.9, 1.15]
        c = cell(quic, tcp)
        assert c.winner == "inconclusive"
        assert c.cell_text().strip() == "·"

    def test_cell_text_for_significant_cell(self):
        c = cell([0.8] * 5, [1.0] * 5)
        assert "+20%" in c.cell_text()

    def test_describe_mentions_p_value(self):
        text = cell([0.8] * 5, [1.0] * 5).describe()
        assert "p=" in text and "quic" in text.lower()

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            Comparison("x", [], [1.0])


class TestHeatmap:
    def make(self):
        hm = Heatmap("t", ["5Mbps", "10Mbps"], ["small", "large"])
        hm.put("5Mbps", "small", cell([0.8] * 5, [1.0] * 5))
        hm.put("5Mbps", "large", cell([1.2] * 5, [1.0] * 5))
        hm.put("10Mbps", "small", cell([1.0, 1.4, 0.7, 1.2, 0.9],
                                       [1.1, 0.8, 1.3, 0.9, 1.15]))
        return hm

    def test_put_outside_grid_rejected(self):
        hm = self.make()
        with pytest.raises(KeyError):
            hm.put("99Mbps", "small", cell([1], [1]))

    def test_get(self):
        hm = self.make()
        assert hm.get("5Mbps", "small").pct_diff == pytest.approx(20.0)
        assert hm.get("10Mbps", "large") is None

    def test_render_contains_labels_and_cells(self):
        text = self.make().render()
        assert "5Mbps" in text and "large" in text
        assert "+20%" in text and "-20%" in text
        assert "·" in text  # the inconclusive cell
        assert "-" in text  # the missing cell

    def test_fraction_favoring_treatment(self):
        hm = self.make()
        # Two significant cells, one favouring QUIC.
        assert hm.fraction_favoring_treatment() == pytest.approx(0.5)

    def test_significant_cells(self):
        assert len(self.make().significant_cells()) == 2

    def test_mean_pct_diff(self):
        hm = Heatmap("t", ["r"], ["a", "b"])
        hm.put("r", "a", cell([0.8] * 5, [1.0] * 5))
        hm.put("r", "b", cell([0.6] * 5, [1.0] * 5))
        assert hm.mean_pct_diff() == pytest.approx(30.0)

"""Tests for packet capture and path characterisation."""

import pytest

from repro.netem import (
    CELLULAR_PROFILES,
    PacketCapture,
    Packet,
    Simulator,
    build_path,
    characterize_scenario,
    emulated,
)


def flood(sim, path, n=500, size=1400, interval=0.001):
    path.server.register_handler(lambda p: None)

    state = {"sent": 0}

    def tick():
        if state["sent"] >= n:
            return
        path.client.send(Packet("client", "server", size, flow_id="f"))
        state["sent"] += 1
        sim.schedule(interval, tick)

    tick()
    sim.run()


class TestPacketCapture:
    def test_records_deliveries(self):
        sim = Simulator()
        path = build_path(sim, emulated(100.0), seed=1)
        capture = PacketCapture(path.bottleneck_up)
        flood(sim, path, n=50)
        assert len(capture.records) == 50
        chars = capture.characterize()
        assert chars.delivered_packets == 50
        assert chars.loss_pct == 0.0
        assert chars.reordering_pct == 0.0

    def test_loss_measured(self):
        sim = Simulator()
        path = build_path(sim, emulated(100.0, loss_pct=10.0), seed=1)
        capture = PacketCapture(path.bottleneck_up)
        flood(sim, path, n=2000)
        chars = capture.characterize()
        assert chars.loss_pct == pytest.approx(10.0, abs=2.5)

    def test_reordering_measured(self):
        sim = Simulator()
        path = build_path(sim, emulated(100.0, jitter_ms=10.0), seed=1)
        capture = PacketCapture(path.bottleneck_up)
        flood(sim, path, n=500, interval=0.0005)
        chars = capture.characterize()
        assert chars.reordering_pct > 5.0
        assert chars.mean_reorder_depth >= 1.0

    def test_throughput_respects_cap(self):
        sim = Simulator()
        path = build_path(sim, emulated(10.0), seed=1)
        capture = PacketCapture(path.bottleneck_up)
        flood(sim, path, n=3000, interval=0.0005)  # offered ~22 Mbps
        chars = capture.characterize()
        assert chars.throughput_mbps == pytest.approx(10.0, rel=0.1)
        assert chars.dropped_packets > 0

    def test_csv_export(self):
        sim = Simulator()
        path = build_path(sim, emulated(100.0), seed=1)
        capture = PacketCapture(path.bottleneck_up)
        flood(sim, path, n=5)
        text = capture.to_csv()
        lines = text.strip().splitlines()
        assert lines[0].startswith("time,src,dst")
        assert len(lines) == 6

    def test_detach_restores_link(self):
        sim = Simulator()
        path = build_path(sim, emulated(100.0), seed=1)
        capture = PacketCapture(path.bottleneck_up)
        capture.detach()
        flood(sim, path, n=10)
        assert len(capture.records) == 0

    def test_max_records_bounds_memory(self):
        sim = Simulator()
        path = build_path(sim, emulated(100.0), seed=1)
        capture = PacketCapture(path.bottleneck_up, max_records=10)
        flood(sim, path, n=100)
        assert len(capture.records) == 10
        assert capture.characterize().delivered_packets == 100


class TestScenarioCharacterisation:
    """Close the paper's measure-then-emulate loop: the emulated cell
    profiles must exhibit (approximately) their Table 5 characteristics."""

    def test_emulated_loss_round_trips(self):
        chars = characterize_scenario(emulated(10.0, loss_pct=2.0),
                                      duration=30.0, seed=2)
        assert chars.loss_pct == pytest.approx(2.0, abs=0.8)

    def test_emulated_rate_round_trips(self):
        chars = characterize_scenario(emulated(5.0), duration=20.0, seed=1)
        assert chars.throughput_mbps == pytest.approx(5.0, rel=0.1)

    @pytest.mark.parametrize("name", ["sprint-lte", "verizon-lte"])
    def test_cellular_profiles_exhibit_their_spec(self, name):
        profile = CELLULAR_PROFILES[name]
        chars = characterize_scenario(profile.scenario(), duration=30.0,
                                      seed=3)
        assert chars.throughput_mbps == pytest.approx(
            profile.throughput_mbps, rel=0.15)
        assert chars.loss_pct == pytest.approx(profile.loss_pct, abs=0.25)

    def test_3g_reordering_exceeds_lte(self):
        g3 = characterize_scenario(
            CELLULAR_PROFILES["sprint-3g"].scenario(), duration=40.0, seed=4)
        lte = characterize_scenario(
            CELLULAR_PROFILES["sprint-lte"].scenario(), duration=40.0, seed=4)
        assert g3.reordering_pct > lte.reordering_pct


class TestCharacterizeEdgeCases:
    """Degenerate captures must yield well-defined characteristics —
    zeros, not ZeroDivisionError — so measurement tooling can run
    unconditionally (e.g. on a link a flow never used)."""

    def test_empty_capture(self):
        sim = Simulator()
        path = build_path(sim, emulated(10.0), seed=1)
        capture = PacketCapture(path.bottleneck_up)
        sim.run(until=1.0)  # no traffic at all
        chars = capture.characterize()
        assert chars.delivered_packets == 0
        assert chars.delivered_bytes == 0
        assert chars.duration == 0.0
        assert chars.throughput_mbps == 0.0
        assert chars.loss_pct == 0.0
        assert chars.reordering_pct == 0.0
        assert chars.mean_reorder_depth == 0.0
        assert chars.describe()  # renders without dividing by zero

    def test_single_packet_flow(self):
        sim = Simulator()
        path = build_path(sim, emulated(10.0), seed=1)
        capture = PacketCapture(path.bottleneck_up)
        flood(sim, path, n=1)
        chars = capture.characterize()
        assert chars.delivered_packets == 1
        # One delivery means zero observation window: throughput must
        # degrade to 0, not to a division by zero.
        assert chars.duration == 0.0
        assert chars.throughput_mbps == 0.0
        assert chars.loss_pct == 0.0
        assert chars.reordering_pct == 0.0
        assert chars.mean_reorder_depth == 0.0

    def test_all_dropped_flow(self):
        sim = Simulator()
        path = build_path(sim, emulated(10.0), seed=1)
        capture = PacketCapture(path.bottleneck_up)
        path.bottleneck_up.drop_next(50)  # deterministic total loss
        flood(sim, path, n=50)
        chars = capture.characterize()
        assert chars.delivered_packets == 0
        assert chars.lost_packets == 50
        assert chars.loss_pct == 100.0
        assert chars.throughput_mbps == 0.0
        assert chars.reordering_pct == 0.0
        assert chars.describe()

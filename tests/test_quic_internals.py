"""White-box tests for QUIC connection internals: ACK blocks, flow
control granting, packet packing, and handshake message flow."""

import pytest

from repro.netem import Simulator, emulated
from repro.quic import quic_config
from repro.quic.frames import AckFrame, MaxDataFrame, StreamFrame

from .conftest import MEDIUM, make_quic_pair, quic_download


class TestAckGeneration:
    def test_ack_every_second_packet(self, sim):
        _, client, server = make_quic_pair(sim, MEDIUM)
        quic_download(sim, client, 200_000)
        # Client acks ~every 2nd retransmittable packet.
        data_packets = server.stats.data_packets_sent
        acks = client.stats.acks_sent
        assert acks >= data_packets // 2 - 5
        assert acks <= data_packets + 5

    def test_ack_blocks_reflect_gaps(self, sim):
        _, client, server = make_quic_pair(sim, MEDIUM)
        # Simulate receiving packets 1,2,4,5 (3 missing).
        client._record_received(0.1, 1, True)
        client._record_received(0.1, 2, True)
        client._record_received(0.2, 4, True)
        client._record_received(0.2, 5, True)
        ack = client._make_ack_frame()
        assert ack.largest_acked == 5
        assert (4, 5) in ack.blocks and (1, 2) in ack.blocks

    def test_ack_delay_measured_from_largest(self, sim):
        _, client, _ = make_quic_pair(sim, MEDIUM)
        client._record_received(0.0, 1, True)
        sim.run(until=0.030)
        ack = client._make_ack_frame()
        assert ack.ack_delay == pytest.approx(0.030)

    def test_block_count_capped(self, sim):
        cfg = quic_config(34)
        cfg.max_ack_blocks = 4
        _, client, _ = make_quic_pair(sim, MEDIUM, cfg=cfg)
        for num in range(1, 41, 2):  # 20 isolated packets = 20 ranges
            client._record_received(0.1, num, True)
        ack = client._make_ack_frame()
        assert len(ack.blocks) == 4
        assert ack.largest_acked == 39


class TestFlowControlGrants:
    def test_conn_window_update_sent_at_half(self, sim):
        cfg = quic_config(34)
        cfg.conn_flow_window = 100_000
        cfg.conn_flow_window_cap = 100_000  # no auto-tune
        _, client, server = make_quic_pair(sim, MEDIUM, cfg=cfg)
        quic_download(sim, client, 300_000)
        # The transfer exceeded the initial window: updates were granted.
        assert client._conn_granted > 100_000
        assert server._peer_conn_limit == client._conn_granted

    def test_auto_tune_doubles_on_frequent_updates(self, sim):
        cfg = quic_config(34)
        cfg.conn_flow_window = 50_000
        cfg.conn_flow_window_cap = 1_000_000
        _, client, _ = make_quic_pair(sim, emulated(50.0), cfg=cfg)
        quic_download(sim, client, 2_000_000)
        assert client._conn_window > 50_000  # grew toward the cap

    def test_window_cap_respected(self, sim):
        cfg = quic_config(34)
        cfg.conn_flow_window = 50_000
        cfg.conn_flow_window_cap = 120_000
        _, client, _ = make_quic_pair(sim, emulated(50.0), cfg=cfg)
        quic_download(sim, client, 2_000_000)
        assert client._conn_window <= 120_000

    def test_sender_never_exceeds_peer_limit(self, sim):
        cfg = quic_config(34)
        cfg.conn_flow_window = 64_000
        cfg.conn_flow_window_cap = 128_000
        _, client, server = make_quic_pair(sim, MEDIUM, cfg=cfg)
        quic_download(sim, client, 500_000)
        assert server._conn_new_bytes_sent <= server._peer_conn_limit


class TestPacketPacking:
    def test_small_requests_bundle_into_one_packet(self, sim):
        """Several small request frames share a packet (multiplexing)."""
        _, client, server = make_quic_pair(sim, MEDIUM)
        done = {}
        client.connect()
        for i in range(4):
            client.request({"size": 5_000, "i": i},
                           lambda s, m, t: done.update({m["i"]: t}),
                           request_bytes=120)
        sim.run_until(lambda: len(done) == 4, timeout=30.0)
        # 4 x (120+12) request bytes + CHLO fit in far fewer packets
        # than 1 + 4 (the CHLO packet carries request frames too).
        assert client.stats.data_packets_sent <= 3

    def test_mtu_respected(self, sim):
        _, client, server = make_quic_pair(sim, MEDIUM)
        quic_download(sim, client, 100_000)
        mtu = server.config.mss
        # No emitted data packet exceeds the MSS payload budget.
        assert server.stats.bytes_sent <= server.stats.packets_sent * (mtu + 60)


class TestHandshakeMessages:
    def test_zero_rtt_sends_full_chlo_only(self, sim):
        _, client, server = make_quic_pair(sim, MEDIUM)
        quic_download(sim, client, 10_000)
        assert server._server_ready_at is not None

    def test_rej_flow_without_cached_config(self, sim):
        cfg = quic_config(34, zero_rtt=False)
        _, client, server = make_quic_pair(sim, MEDIUM, cfg=cfg)
        ready = {}
        client.connect(lambda now: ready.update({"t": now}))
        sim.run_until(lambda: "t" in ready, timeout=5.0)
        # Ready after ~1 RTT (inchoate CHLO -> REJ).
        assert ready["t"] == pytest.approx(0.036, rel=0.2)

    def test_requests_queued_until_rej(self, sim):
        cfg = quic_config(34, zero_rtt=False)
        _, client, _ = make_quic_pair(sim, MEDIUM, cfg=cfg)
        client.connect()
        client.request({"size": 1000}, lambda *a: None)
        assert len(client._request_queue) == 1
        sim.run(until=0.1)
        assert len(client._request_queue) == 0

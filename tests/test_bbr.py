"""Tests for the simplified BBR controller (Fig. 3b support)."""

import pytest

from repro.core.instrumentation import Trace
from repro.transport.cc.bbr import BBR, DRAIN_GAIN, STARTUP_GAIN
from repro.transport.cc.interface import BBRState
from repro.transport.rtt import RttEstimator

MSS = 1350


def make_bbr(trace=None):
    rtt = RttEstimator(initial_rtt=0.05)
    rtt.on_sample(0.05, now=0.0)
    return BBR(rtt, mss=MSS, trace=trace), rtt


def feed_acks(bbr, rtt, start, count, interval=0.005, acked=2 * MSS,
              rtt_sample=0.05):
    t = start
    for _ in range(count):
        rtt.on_sample(rtt_sample, now=t)
        bbr.on_rtt_sample(t, rtt_sample)
        bbr.on_ack(t, acked, cwnd_limited=True)
        t += interval
    return t


class TestStateProgression:
    def test_starts_in_startup(self):
        bbr, _ = make_bbr()
        assert bbr.state == BBRState.STARTUP.value

    def test_startup_to_drain_on_bw_plateau(self):
        bbr, rtt = make_bbr()
        bbr.on_connection_start(0.0)
        # Constant delivery rate: the max filter stops growing -> Drain.
        feed_acks(bbr, rtt, 0.0, 60)
        assert bbr.state in (BBRState.DRAIN.value, BBRState.PROBE_BW.value)

    def test_reaches_probe_bw(self):
        bbr, rtt = make_bbr()
        bbr.on_connection_start(0.0)
        feed_acks(bbr, rtt, 0.0, 300)
        assert bbr.state == BBRState.PROBE_BW.value

    def test_probe_rtt_after_min_rtt_window(self):
        bbr, rtt = make_bbr()
        bbr.on_connection_start(0.0)
        t = feed_acks(bbr, rtt, 0.0, 300)
        # Keep acking with a higher RTT for > 10 s so the min expires.
        feed_acks(bbr, rtt, t, 2500, interval=0.005, rtt_sample=0.08)
        trace_states = {BBRState.PROBE_RTT.value, BBRState.PROBE_BW.value,
                        BBRState.STARTUP.value}
        assert bbr.state in trace_states

    def test_recovery_on_loss_and_exit_on_ack(self):
        bbr, rtt = make_bbr()
        bbr.on_connection_start(0.0)
        feed_acks(bbr, rtt, 0.0, 50)
        bbr.on_congestion_event(0.5, in_flight=10 * MSS)
        assert bbr.state == BBRState.RECOVERY.value
        assert bbr.cwnd == 10 * MSS
        bbr.on_ack(0.55, 2 * MSS, cwnd_limited=True)
        assert bbr.state != BBRState.RECOVERY.value


class TestRates:
    def test_pacing_rate_positive_before_samples(self):
        bbr, _ = make_bbr()
        assert bbr.pacing_rate() > 0

    def test_startup_gain_applied(self):
        bbr, rtt = make_bbr()
        bbr.on_connection_start(0.0)
        feed_acks(bbr, rtt, 0.0, 10)
        bw = bbr._bandwidth()
        assert bw > 0
        if bbr.state == BBRState.STARTUP.value:
            assert bbr.pacing_rate() == pytest.approx(STARTUP_GAIN * bw)

    def test_cwnd_tracks_bdp(self):
        bbr, rtt = make_bbr()
        bbr.on_connection_start(0.0)
        feed_acks(bbr, rtt, 0.0, 400)
        bdp = bbr._bandwidth() * rtt.min_rtt()
        assert bbr.cwnd <= 2.5 * bdp + 4 * MSS

    def test_can_send_respects_cwnd(self):
        bbr, _ = make_bbr()
        assert bbr.can_send_bytes(bbr.cwnd) == 0
        assert bbr.can_send_bytes(0) == bbr.cwnd


class TestTracing:
    def test_states_logged_for_inference(self):
        trace = Trace("bbr", enabled=True)
        bbr, rtt = make_bbr(trace=trace)
        bbr.on_connection_start(0.0)
        feed_acks(bbr, rtt, 0.0, 300)
        seq = trace.state_sequence()
        assert seq[0] == BBRState.STARTUP.value
        assert BBRState.DRAIN.value in seq
        assert BBRState.PROBE_BW.value in seq

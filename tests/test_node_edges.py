"""Additional routing and node edge cases."""

import pytest

from repro.netem import Network, Packet, Simulator


def diamond():
    """a - {b,c} - d with asymmetric delays."""
    sim = Simulator()
    net = Network(sim)
    for name in ("a", "b", "c", "d"):
        net.add_node(name)
    net.duplex_link("a", "b", rate_bps=None, delay=0.010)
    net.duplex_link("b", "d", rate_bps=None, delay=0.010)
    net.duplex_link("a", "c", rate_bps=None, delay=0.001)
    net.duplex_link("c", "d", rate_bps=None, delay=0.001)
    net.build_routes()
    return sim, net


class TestRoutingEdges:
    def test_diamond_prefers_low_delay_branch(self):
        sim, net = diamond()
        got = []
        net.node("d").register_handler(lambda p: got.append(sim.now))
        net.node("a").send(Packet("a", "d", 100))
        sim.run()
        assert got[0] == pytest.approx(0.002)

    def test_intermediate_forwarding_no_handler_needed(self):
        sim, net = diamond()
        got = []
        net.node("d").register_handler(lambda p: got.append(p))
        # c has no local handler but must forward transit traffic.
        net.node("a").send(Packet("a", "d", 100))
        sim.run()
        assert len(got) == 1
        assert net.node("c").no_route_drops == 0

    def test_delivery_to_router_without_handler_counts_drop(self):
        sim, net = diamond()
        net.node("a").send(Packet("a", "b", 100))
        sim.run()
        assert net.node("b").no_route_drops == 1

    def test_rebuild_routes_after_topology_growth(self):
        sim, net = diamond()
        net.add_node("e")
        net.duplex_link("d", "e", rate_bps=None, delay=0.001)
        net.build_routes()
        got = []
        net.node("e").register_handler(lambda p: got.append(sim.now))
        net.node("a").send(Packet("a", "e", 100))
        sim.run()
        assert got and got[0] == pytest.approx(0.003)

    def test_node_repr_distinguishes_roles(self):
        sim, net = diamond()
        net.node("d").register_handler(lambda p: None)
        assert "host" in repr(net.node("d"))
        assert "router" in repr(net.node("b"))

    def test_many_flows_keep_distinct_paths(self):
        sim, net = diamond()
        seen = []
        net.node("d").register_handler(lambda p: seen.append(p.flow_id))
        for i in range(20):
            net.node("a").send(Packet("a", "d", 100, flow_id=f"f{i}"))
        sim.run()
        assert sorted(seen) == sorted(f"f{i}" for i in range(20))

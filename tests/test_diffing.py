"""Tests for state-machine differencing (the Sec. 5.4 longitudinal tool)."""

import pytest

from repro.core.diffing import ModelDiff, diff_models, version_stability_report
from repro.core.statemachine import StateMachineModel, infer_from_sequences
from repro.core.instrumentation import Trace
from repro.core.statemachine import infer


def model_from(*sequences):
    return infer_from_sequences(sequences)


class TestDiffModels:
    def test_identical_models_empty_diff(self):
        a = model_from(["Init", "SlowStart", "CA"])
        b = model_from(["Init", "SlowStart", "CA"])
        diff = diff_models(a, b)
        assert diff.is_empty
        assert "no behavioural change" in diff.render()

    def test_added_and_removed_states(self):
        a = model_from(["Init", "SlowStart"])
        b = model_from(["Init", "SlowStart", "Recovery"])
        diff = diff_models(a, b)
        assert diff.states_added == {"Recovery"}
        assert diff.states_removed == set()
        back = diff_models(b, a)
        assert back.states_removed == {"Recovery"}

    def test_transition_changes(self):
        a = model_from(["Init", "SlowStart", "CA"])
        b = model_from(["Init", "SlowStart", "CA"], ["Init", "CA"])
        diff = diff_models(a, b)
        assert ("Init", "CA") in diff.transitions_added

    def test_probability_shift_detected(self):
        a = model_from(*([["SS", "CA"]] * 9 + [["SS", "Recovery"]]))
        b = model_from(*([["SS", "CA"]] * 5 + [["SS", "Recovery"]] * 5))
        diff = diff_models(a, b)
        assert ("SS", "CA") in diff.probability_shifts
        pa, pb = diff.probability_shifts[("SS", "CA")]
        assert pa == pytest.approx(0.9) and pb == pytest.approx(0.5)

    def test_small_probability_wobble_ignored(self):
        a = model_from(*([["SS", "CA"]] * 9 + [["SS", "Recovery"]]))
        b = model_from(*([["SS", "CA"]] * 8 + [["SS", "Recovery"]]))
        assert diff_models(a, b).is_empty

    def test_dwell_shift_detected(self):
        def traced(app_limited_seconds):
            t = Trace(enabled=True)
            t.log_state(0.0, "CA")
            t.log_state(5.0, "AppLimited")
            t.close(5.0 + app_limited_seconds)
            return t

        a = infer([traced(0.5)])
        b = infer([traced(9.0)])
        diff = diff_models(a, b)
        assert "AppLimited" in diff.dwell_shifts
        assert "dwell AppLimited" in diff.render()


class TestVersionStabilityReport:
    def test_reports_identical_versions(self):
        models = {25: model_from(["Init", "SS", "CA"]),
                  30: model_from(["Init", "SS", "CA"]),
                  34: model_from(["Init", "SS", "CA"])}
        report = version_stability_report(models)
        assert report.count("identical") == 2
        assert "CHANGED" not in report

    def test_flags_changed_version(self):
        models = {25: model_from(["Init", "SS", "CA"]),
                  37: model_from(["Init", "SS", "CA", "CAMaxed"])}
        report = version_stability_report(models)
        assert "CHANGED" in report
        assert "+ state CAMaxed" in report

    def test_custom_baseline(self):
        models = {25: model_from(["A", "B"]), 34: model_from(["A", "B"])}
        report = version_stability_report(models, baseline=34)
        assert "vs QUIC 34" in report

    def test_validation(self):
        with pytest.raises(ValueError):
            version_stability_report({})
        with pytest.raises(KeyError):
            version_stability_report({25: model_from(["A"])}, baseline=99)


class TestEndToEndDiff:
    def test_desktop_vs_motog_diff_flags_app_limited(self):
        from repro.core.runner import run_page_load
        from repro.devices import MOTOG
        from repro.http import single_object_page
        from repro.netem import emulated

        scn = emulated(50.0)
        page = single_object_page(5 * 1024 * 1024)
        desktop = run_page_load(scn, page, "quic", seed=1, trace=True)
        motog = run_page_load(scn, page, "quic", seed=1, trace=True,
                              device=MOTOG)
        diff = diff_models(infer([desktop.server_trace]),
                           infer([motog.server_trace]),
                           label_a="desktop", label_b="motog")
        assert "ApplicationLimited" in diff.dwell_shifts

"""Behavioural tests for the QUIC connection."""

import pytest

from repro.devices import MOTOG
from repro.netem import emulated
from repro.quic import quic_config

from .conftest import FAST, JITTERY, LOSSY, MEDIUM, SLOW, make_quic_pair, quic_download


class TestBasicTransfer:
    def test_small_transfer_completes(self, sim):
        _, client, server = make_quic_pair(sim, MEDIUM)
        elapsed = quic_download(sim, client, 100_000)
        assert 0.1 < elapsed < 1.0

    def test_transfer_time_scales_with_size(self, sim):
        _, client, _ = make_quic_pair(sim, MEDIUM)
        t_small = quic_download(sim, client, 50_000)
        sim2 = type(sim)()
        _, client2, _ = make_quic_pair(sim2, MEDIUM)
        t_large = quic_download(sim2, client2, 2_000_000)
        assert t_large > t_small * 3

    def test_throughput_near_link_rate(self, sim):
        _, client, _ = make_quic_pair(sim, MEDIUM)
        size = 5_000_000
        elapsed = quic_download(sim, client, size)
        assert size * 8 / elapsed / 1e6 > 7.5  # > 75% of the 10 Mbps cap

    def test_no_losses_on_big_clean_queue(self, sim):
        scn = emulated(10.0).with_(queue_bytes=10_000_000)
        _, client, server = make_quic_pair(sim, scn)
        quic_download(sim, client, 1_000_000)
        assert server.loss_detector.losses_declared == 0

    def test_delivery_log_monotone(self, sim):
        _, client, _ = make_quic_pair(sim, MEDIUM)
        quic_download(sim, client, 500_000)
        log = client.delivery_log
        assert log[-1][1] == 500_000
        assert all(b1 <= b2 for (_, b1), (_, b2) in zip(log, log[1:]))


class TestHandshake:
    def test_zero_rtt_request_in_first_flight(self, sim):
        """With 0-RTT the response arrives ~1 RTT + serialization later."""
        _, client, _ = make_quic_pair(sim, emulated(100.0))
        elapsed = quic_download(sim, client, 5_000)
        assert elapsed < 2.2 * 0.036 + 0.02

    def test_non_zero_rtt_costs_one_extra_round(self, sim):
        cfg = quic_config(34, zero_rtt=False)
        _, client, _ = make_quic_pair(sim, emulated(100.0), cfg=cfg)
        elapsed = quic_download(sim, client, 5_000)
        assert elapsed > 2 * 0.036

    def test_zero_rtt_faster_than_one_rtt(self):
        from repro.netem import Simulator

        times = {}
        for zero_rtt in (True, False):
            sim = Simulator()
            cfg = quic_config(34, zero_rtt=zero_rtt)
            _, client, _ = make_quic_pair(sim, emulated(100.0), cfg=cfg)
            times[zero_rtt] = quic_download(sim, client, 5_000)
        saved = times[False] - times[True]
        assert saved == pytest.approx(0.036, abs=0.015)

    def test_handshake_ready_time_recorded(self, sim):
        _, client, _ = make_quic_pair(sim, MEDIUM)
        client.connect()
        assert client.handshake_ready_time == sim.now


class TestMultiplexing:
    def test_concurrent_requests_share_connection(self, sim):
        _, client, _ = make_quic_pair(sim, MEDIUM)
        done = {}
        client.connect()
        for i in range(10):
            client.request({"size": 50_000, "i": i},
                           lambda s, m, t: done.update({m["i"]: t}))
        assert sim.run_until(lambda: len(done) == 10, timeout=30.0)

    def test_mspc_limits_concurrency(self, sim):
        cfg = quic_config(34)
        cfg.max_streams_per_connection = 2
        _, client, _ = make_quic_pair(sim, MEDIUM, cfg=cfg)
        done = {}
        client.connect()
        for i in range(6):
            client.request({"size": 20_000, "i": i},
                           lambda s, m, t: done.update({m["i"]: t}))
        assert client._active_requests == 2
        assert len(client._request_queue) == 4
        assert sim.run_until(lambda: len(done) == 6, timeout=30.0)

    def test_mspc_one_serialises_requests(self):
        """MSPC=1 forces sequential fetches (paper: 'worsens performance')."""
        from repro.netem import Simulator

        times = {}
        for mspc in (1, 100):
            sim = Simulator()
            cfg = quic_config(34)
            cfg.max_streams_per_connection = mspc
            _, client, _ = make_quic_pair(sim, emulated(10.0), cfg=cfg)
            done = {}
            client.connect()
            for i in range(10):
                client.request({"size": 30_000, "i": i},
                               lambda s, m, t: done.update({m["i"]: t}))
            assert sim.run_until(lambda: len(done) == 10, timeout=60.0)
            times[mspc] = max(done.values())
        assert times[1] > times[100] * 1.5


class TestLossRecovery:
    def test_random_loss_recovered(self, sim):
        _, client, server = make_quic_pair(sim, LOSSY)
        quic_download(sim, client, 1_000_000)
        assert server.loss_detector.losses_declared > 0
        assert server.loss_detector.false_losses == 0

    def test_tail_loss_recovered_by_probe(self, sim):
        """Drop everything after a point: TLP/RTO must repair the tail."""
        scn = emulated(10.0)
        path, client, server = make_quic_pair(sim, scn)
        done = {}
        client.connect()
        client.request({"size": 200_000}, lambda s, m, t: done.update({1: t}))
        # Let most of the transfer happen, then blackhole briefly.
        sim.run(until=0.1)
        original_loss = path.bottleneck_down.loss_rate
        path.bottleneck_down.loss_rate = 0.9999
        sim.run(until=0.25)
        path.bottleneck_down.loss_rate = original_loss
        assert sim.run_until(lambda: 1 in done, timeout=30.0)
        assert server.stats.tlp_probes + server.stats.rto_fires > 0

    def test_reordering_triggers_false_losses(self, sim):
        _, client, server = make_quic_pair(sim, JITTERY)
        quic_download(sim, client, 2_000_000)
        assert server.loss_detector.false_losses > 0

    def test_higher_nack_threshold_reduces_false_losses(self):
        from repro.netem import Simulator

        false = {}
        for threshold in (3, 50):
            sim = Simulator()
            cfg = quic_config(34)
            cfg.nack_threshold = threshold
            _, client, server = make_quic_pair(sim, JITTERY, cfg=cfg)
            quic_download(sim, client, 2_000_000)
            false[threshold] = server.loss_detector.false_losses
        assert false[50] < false[3] / 2

    def test_adaptive_threshold_converges(self, sim):
        cfg = quic_config(34)
        cfg.adaptive_nack_threshold = True
        _, client, server = make_quic_pair(sim, JITTERY, cfg=cfg)
        quic_download(sim, client, 2_000_000)
        assert server.loss_detector.threshold > 3


class TestFlowControl:
    def test_slow_consumer_blocks_sender(self, sim):
        _, client, server = make_quic_pair(sim, emulated(50.0), device=MOTOG)
        quic_download(sim, client, 5_000_000, timeout=60.0)
        assert server.stats.flow_blocked_events > 0

    def test_window_updates_unblock(self, sim):
        """Transfer far larger than the initial windows still completes."""
        cfg = quic_config(34)
        cfg.conn_flow_window = 64_000
        cfg.conn_flow_window_cap = 256_000
        cfg.stream_flow_window = 32_000
        cfg.stream_flow_window_cap = 128_000
        _, client, server = make_quic_pair(sim, MEDIUM, cfg=cfg)
        elapsed = quic_download(sim, client, 2_000_000, timeout=60.0)
        assert elapsed < 60.0

    def test_fast_consumer_never_blocked(self, sim):
        _, client, server = make_quic_pair(sim, MEDIUM)
        quic_download(sim, client, 1_000_000)
        assert server.stats.flow_blocked_events == 0


class TestStats:
    def test_packet_accounting(self, sim):
        _, client, server = make_quic_pair(sim, MEDIUM)
        quic_download(sim, client, 500_000)
        assert server.stats.data_packets_sent >= 500_000 // 1350
        sim.run(until=sim.now + 1.0)  # drain the final ACKs
        assert server.bytes_in_flight == 0
        assert client.stats.packets_received > 0

    def test_trace_records_states(self, sim):
        from repro.core.instrumentation import Trace

        trace = Trace("server", enabled=True)
        _, client, server = make_quic_pair(sim, MEDIUM, server_trace=trace)
        quic_download(sim, client, 500_000)
        states = trace.state_sequence()
        assert states[0] == "Init"
        assert "SlowStart" in states

"""Tests for the thousand-flow fast path (``repro.core.manyflow``).

Covers the batching contract (batched delivery is bit-identical to
per-packet scheduling), end-to-end completion, AQM fairness ordering,
the executor/store integration, and the config codec.
"""

from __future__ import annotations

import pytest

from repro.core.executor import run_requests
from repro.core.manyflow import (
    DEFAULT_BATCH_QUANTUM,
    ManyflowConfig,
    ManyflowEngine,
    build_flows,
    manyflow_requests,
    manyflow_scenario,
)
from repro.core.report import build_store_report
from repro.store import ResultStore, request_from_dict, request_to_dict


def small_config(**overrides):
    base = dict(flows=40, duration=120.0)
    base.update(overrides)
    return ManyflowConfig(**base)


def run_metrics(config, seed=0, batch_quantum=DEFAULT_BATCH_QUANTUM):
    engine = ManyflowEngine(manyflow_scenario(), config, seed=seed,
                            batch_quantum=batch_quantum)
    return engine.run()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ManyflowConfig(flows=0)
        with pytest.raises(ValueError):
            ManyflowConfig(tcp_share=1.5)
        with pytest.raises(ValueError):
            ManyflowConfig(aqm="wred")

    def test_label_names_flows_and_aqm(self):
        assert ManyflowConfig(flows=64, aqm="fq_codel").label == \
            "manyflow-64f-fq_codel"

    def test_with_overrides(self):
        cfg = small_config().with_(aqm="codel")
        assert cfg.aqm == "codel"
        assert cfg.flows == 40


class TestBuildFlows:
    def test_deterministic_per_seed(self):
        cfg = small_config()
        assert build_flows(cfg, 7) == build_flows(cfg, 7)
        assert build_flows(cfg, 7) != build_flows(cfg, 8)

    def test_protocol_mix_is_exact(self):
        _arrivals, _sizes, protos = build_flows(small_config(), 0)
        # Bresenham striping: a 50 % share of 40 flows is exactly 20.
        assert sum(protos) == 20

    def test_arrivals_sorted_sizes_positive(self):
        arrivals, sizes, _protos = build_flows(small_config(), 3)
        assert list(arrivals) == sorted(arrivals)
        assert all(s >= 1400 for s in sizes)


class TestEngine:
    def test_all_flows_complete(self):
        metrics = run_metrics(small_config())
        assert metrics["flows_completed"] == 40
        assert metrics["plt_p50"] > 0

    def test_batched_identical_to_per_packet(self):
        """The tentpole contract: batch_quantum only changes how many
        heap wakeups the run costs, never any simulated outcome."""
        cfg = small_config(flows=60)
        batched = run_metrics(cfg, seed=1)
        per_packet = run_metrics(cfg, seed=1, batch_quantum=0.0)
        assert batched["heap_events"] < per_packet["heap_events"]
        for key in batched:
            if key == "heap_events":
                continue
            assert batched[key] == per_packet[key], key

    def test_fq_codel_improves_fairness_over_droptail(self):
        droptail = run_metrics(small_config(flows=80, arrival_rate=400.0))
        fq = run_metrics(small_config(flows=80, arrival_rate=400.0,
                                      aqm="fq_codel"))
        assert fq["jain_index"] > droptail["jain_index"]

    def test_engine_rejects_jitter(self):
        scenario = manyflow_scenario()
        scenario = scenario.with_(jitter=0.005)
        with pytest.raises(ValueError):
            ManyflowEngine(scenario, small_config())

    def test_run_is_once_only(self):
        engine = ManyflowEngine(manyflow_scenario(), small_config())
        engine.run()
        with pytest.raises(RuntimeError):
            engine.run()


class TestExecutorIntegration:
    def test_requests_and_store_round_trip(self, tmp_path):
        cfg = small_config()
        requests = manyflow_requests(cfg, seeds=(0, 1))
        store = ResultStore(tmp_path / "store")
        records = run_requests(requests, store=store)
        assert len(records) == 2
        assert all(r.complete for r in records)
        assert all("jain_index" in r.metrics for r in records)
        # Second pass is served from the store.
        again = run_requests(requests, store=store)
        assert all(r.cached for r in again)
        assert [r.plt for r in again] == [r.plt for r in records]

    def test_store_report_renders_fairness_table(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_requests(manyflow_requests(small_config()), store=store)
        report = build_store_report(store)
        assert "Fairness (Jain index" in report
        assert "manyflow-40f-droptail" in report

    def test_request_codec_round_trips_manyflow(self):
        request = manyflow_requests(small_config(aqm="codel"))[0]
        decoded = request_from_dict(request_to_dict(request))
        assert decoded.manyflow == request.manyflow
        assert request_to_dict(decoded) == request_to_dict(request)

    def test_request_codec_round_trips_cc_kernel(self):
        # ManyflowConfig.cc is a plain kernel-name string; the codec's
        # nested-CC-config special case must not touch it.
        request = manyflow_requests(small_config(cc="bbr"))[0]
        decoded = request_from_dict(request_to_dict(request))
        assert decoded.manyflow.cc == "bbr"
        assert decoded == request

    def test_plain_request_still_decodes(self):
        request = manyflow_requests(small_config())[0]
        raw = request_to_dict(request)
        raw.pop("manyflow")
        assert request_from_dict(raw).manyflow is None

"""Tests for mahimahi-style trace-driven bandwidth."""

import pytest

from repro.netem import (
    BandwidthTrace,
    Simulator,
    TraceDrivenLink,
    build_path,
    emulated,
    lte_like_trace,
    saw_tooth_trace,
)
from repro.netem.tracebw import MTU_BYTES

from .conftest import make_quic_pair, quic_download


class TestBandwidthTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthTrace(0.0, [1e6])
        with pytest.raises(ValueError):
            BandwidthTrace(0.1, [])
        with pytest.raises(ValueError):
            BandwidthTrace(0.1, [-1.0])

    def test_rate_at_loops(self):
        trace = BandwidthTrace(1.0, [1e6, 2e6])
        assert trace.rate_at(0.5) == 1e6
        assert trace.rate_at(1.5) == 2e6
        assert trace.rate_at(2.5) == 1e6  # looped

    def test_mean_and_duration(self):
        trace = BandwidthTrace(0.5, [1e6, 3e6])
        assert trace.duration == 1.0
        assert trace.mean_rate_bps() == 2e6

    def test_from_delivery_timestamps(self):
        # 10 grants in the first 100 ms: 10 * 1500 B * 8 / 0.1 s.
        stamps = list(range(0, 100, 10))
        trace = BandwidthTrace.from_delivery_timestamps(stamps, interval=0.1)
        assert trace.rates_bps[0] == pytest.approx(10 * MTU_BYTES * 8 / 0.1)

    def test_timestamp_round_trip_preserves_mean(self):
        trace = BandwidthTrace(0.1, [12e6] * 20)
        stamps = trace.to_delivery_timestamps()
        back = BandwidthTrace.from_delivery_timestamps(stamps, interval=0.1)
        assert back.mean_rate_bps() == pytest.approx(trace.mean_rate_bps(),
                                                     rel=0.05)

    def test_empty_timestamps_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace.from_delivery_timestamps([])


class TestGenerators:
    def test_saw_tooth_bounds(self):
        trace = saw_tooth_trace(2.0, 10.0, duration=10.0)
        assert min(trace.rates_bps) >= 2e6 - 1
        assert max(trace.rates_bps) <= 10e6 + 1

    def test_saw_tooth_validation(self):
        with pytest.raises(ValueError):
            saw_tooth_trace(10.0, 2.0)

    def test_lte_like_statistics(self):
        trace = lte_like_trace(mean_mbps=8.0, duration=120.0, seed=1)
        mean = trace.mean_rate_bps() / 1e6
        assert 5.0 < mean < 12.0  # log-normal around the target
        assert any(rate == 0.0 for rate in trace.rates_bps)  # outages

    def test_lte_like_seeded(self):
        a = lte_like_trace(seed=7)
        b = lte_like_trace(seed=7)
        assert a.rates_bps == b.rates_bps


class TestTraceDrivenLink:
    def test_rates_applied_each_interval(self):
        sim = Simulator()
        path = build_path(sim, emulated(100.0), seed=1)
        trace = BandwidthTrace(0.5, [5e6, 20e6])
        driver = TraceDrivenLink(sim, [path.bottleneck_down], trace)
        driver.start()
        sim.run(until=2.1)
        driver.stop()
        assert len(driver.applied) >= 4
        assert path.bottleneck_down.rate_bps in (5e6, 20e6)

    def test_zero_rate_becomes_epsilon_stall(self):
        sim = Simulator()
        path = build_path(sim, emulated(100.0), seed=1)
        trace = BandwidthTrace(1.0, [0.0])
        driver = TraceDrivenLink(sim, [path.bottleneck_down], trace)
        driver.start()
        sim.run(until=0.5)
        assert path.bottleneck_down.rate_bps == TraceDrivenLink.EPSILON_BPS

    def test_transfer_over_lte_trace_completes(self):
        sim = Simulator()
        path, client, _server = make_quic_pair(sim, emulated(100.0), seed=2)
        trace = lte_like_trace(mean_mbps=8.0, duration=60.0, seed=2)
        driver = TraceDrivenLink(
            sim, [path.bottleneck_down, path.bottleneck_up], trace)
        driver.start()
        elapsed = quic_download(sim, client, 2_000_000, timeout=120.0)
        driver.stop()
        # ~8 Mbps mean: a 2 MB object needs at least ~2 s.
        assert elapsed > 1.5

"""White-box tests for TCP connection internals: rwnd advertising,
segment packing, SACK scoreboard, and message framing."""

import pytest

from repro.netem import Simulator, emulated
from repro.tcp import tcp_config
from repro.tcp.segment import TcpSegment

from .conftest import MEDIUM, make_tcp_pair, tcp_download


class TestReceiveWindow:
    def test_initial_rwnd_is_buffer(self, sim):
        cfg = tcp_config(receive_buffer=500_000)
        _, client, _ = make_tcp_pair(sim, MEDIUM, cfg=cfg)
        assert client._advertise_rwnd() == 500_000

    def test_rwnd_shrinks_with_unprocessed_backlog(self, sim):
        cfg = tcp_config(receive_buffer=500_000)
        _, client, _ = make_tcp_pair(sim, MEDIUM, cfg=cfg)
        # Simulate stored-but-unprocessed bytes.
        client._rcv_total = 120_000
        client._app_processed = 20_000
        assert client._advertise_rwnd() == 400_000

    def test_rwnd_never_negative(self, sim):
        cfg = tcp_config(receive_buffer=10_000)
        _, client, _ = make_tcp_pair(sim, MEDIUM, cfg=cfg)
        client._rcv_total = 50_000
        assert client._advertise_rwnd() == 0

    def test_sender_respects_peer_rwnd(self, sim):
        cfg = tcp_config(receive_buffer=40_000)
        _, client, server = make_tcp_pair(sim, emulated(100.0), cfg=cfg)
        tcp_download(sim, client, 500_000)
        # Outstanding unacked never exceeded the advertised window.
        assert server._snd_nxt - server._snd_una <= 40_000 + 1350


class TestSegmentPacking:
    def test_multiple_messages_share_a_segment(self, sim):
        _, client, server = make_tcp_pair(sim, MEDIUM)
        server.send_message(400, ("resp", 1, None))
        server.send_message(400, ("resp", 2, None))
        record = server._segmentize(1350)
        assert record is not None
        assert len(record.pieces) == 2
        assert record.length == 800

    def test_segment_respects_mss(self, sim):
        _, _client, server = make_tcp_pair(sim, MEDIUM)
        server.send_message(10_000, ("resp", 1, None))
        record = server._segmentize(1350)
        assert record.length == 1350

    def test_roundrobin_rotates_between_messages(self, sim):
        cfg = tcp_config(scheduler="roundrobin")
        _, _client, server = make_tcp_pair(sim, MEDIUM, cfg=cfg)
        server.send_message(5_000, ("resp", 1, None))
        server.send_message(5_000, ("resp", 2, None))
        first = server._segmentize(1350)
        second = server._segmentize(1350)
        assert first.pieces[0].msg_id != second.pieces[0].msg_id

    def test_fifo_finishes_first_message_first(self, sim):
        cfg = tcp_config(scheduler="fifo")
        _, _client, server = make_tcp_pair(sim, MEDIUM, cfg=cfg)
        m1 = server.send_message(3_000, ("resp", 1, None))
        server.send_message(3_000, ("resp", 2, None))
        ids = []
        for _ in range(4):
            record = server._segmentize(1350)
            ids.extend(p.msg_id for p in record.pieces)
        assert ids[0] == m1 and ids[1] == m1 and ids[2] == m1

    def test_fin_flag_on_last_piece(self, sim):
        _, _client, server = make_tcp_pair(sim, MEDIUM)
        server.send_message(2_000, ("resp", 1, None))
        first = server._segmentize(1350)
        second = server._segmentize(1350)
        assert not first.pieces[-1].fin
        assert second.pieces[-1].fin


class TestSackScoreboard:
    def test_apply_sack_frees_flight_once(self, sim):
        _, _client, server = make_tcp_pair(sim, MEDIUM)
        server._ready = True
        server.send_message(5_000, ("resp", 1, None))
        record = server._segmentize(1350)
        server._transmit_record(record, retransmit=False)
        flight = server.bytes_in_flight
        assert server._apply_sack(record.seq, record.end) == record.length
        assert server.bytes_in_flight == flight - record.length
        # Applying the same SACK again frees nothing.
        assert server._apply_sack(record.seq, record.end) == 0

    def test_bytes_sacked_above(self, sim):
        _, _client, server = make_tcp_pair(sim, MEDIUM)
        server._sacked.add(5_000, 8_000)
        server._sacked.add(10_000, 11_000)
        assert server._bytes_sacked_above(0) == 4_000
        assert server._bytes_sacked_above(6_000) == 3_000
        assert server._bytes_sacked_above(9_000) == 1_000
        assert server._bytes_sacked_above(20_000) == 0


class TestMessageFraming:
    def test_streaming_message_lifecycle(self, sim):
        _, _client, server = make_tcp_pair(sim, MEDIUM)
        mid = server.send_streaming_message(("resp", 1, None))
        server.message_append(mid, 1_000)
        record = server._segmentize(1350)
        assert record.length == 1_000
        assert not record.pieces[-1].fin
        server.message_finish(mid)
        fin_record = server._segmentize(1350)
        assert fin_record.pieces[-1].fin

    def test_append_after_finish_rejected(self, sim):
        _, _client, server = make_tcp_pair(sim, MEDIUM)
        mid = server.send_streaming_message(("resp", 1, None))
        server.message_finish(mid)
        with pytest.raises((RuntimeError, KeyError)):
            server.message_append(mid, 100)

    def test_finish_after_data_sent_adds_trailer(self, sim):
        _, _client, server = make_tcp_pair(sim, MEDIUM)
        mid = server.send_streaming_message(("resp", 1, None))
        server.message_append(mid, 500)
        server._segmentize(1350)  # drain the 500 bytes
        server.message_finish(mid)
        trailer = server._segmentize(1350)
        assert trailer is not None
        assert trailer.length == 1
        assert trailer.pieces[-1].fin

"""Tests for server calibration (Sec. 4.1, Fig. 2)."""

import pytest

from repro.core.calibration import (
    GAEFrontend,
    calibrate_macw,
    measure_server_configuration,
    uncalibrated_vs_calibrated,
)
from repro.netem import emulated
from repro.quic import quic_config


class TestGAEFrontend:
    def test_wait_times_variable_and_positive(self):
        frontend = GAEFrontend(None, seed=1)
        waits = [frontend.wait_time() for _ in range(50)]
        assert all(w >= frontend.base_wait for w in waits)
        assert max(waits) - min(waits) > 0.05  # the Fig. 2 variability

    def test_seeded_reproducibility(self):
        a = GAEFrontend(None, seed=9)
        b = GAEFrontend(None, seed=9)
        assert [a.wait_time() for _ in range(5)] == \
            [b.wait_time() for _ in range(5)]


class TestServerMeasurement:
    def test_gae_like_inflates_wait(self):
        scenario = emulated(100.0)
        cfg = quic_config(34)
        plain = measure_server_configuration(
            "ec2", cfg, scenario=scenario, size_bytes=1_000_000, runs=3)
        gae = measure_server_configuration(
            "gae", cfg, scenario=scenario, size_bytes=1_000_000, runs=3,
            gae_like=True)
        assert gae.mean_wait > plain.mean_wait * 3
        assert "wait" in gae.describe()

    def test_uncalibrated_download_slower(self):
        """Fig. 2's left vs right bars: the public default (small MACW +
        ssthresh bug) downloads a 10 MB object much slower."""
        bars = uncalibrated_vs_calibrated(
            scenario=emulated(100.0), size_bytes=10 * 1024 * 1024, runs=2)
        by_label = {m.label: m for m in bars}
        public = by_label["public default (MACW=107,bug)"]
        calibrated = by_label["calibrated EC2 (MACW=430)"]
        assert public.mean_download > calibrated.mean_download * 1.4


class TestMacwCalibration:
    def test_search_selects_reference_macw(self):
        result = calibrate_macw(
            candidates=(107, 430),
            scenario=emulated(100.0),
            size_bytes=5 * 1024 * 1024,
            runs=2,
        )
        assert result.best_macw == 430
        assert "selected" in result.describe()

    def test_candidate_plts_ordered_by_macw(self):
        result = calibrate_macw(
            candidates=(107, 430),
            scenario=emulated(100.0),
            size_bytes=5 * 1024 * 1024,
            runs=2,
        )
        plts = dict(result.candidates)
        assert plts[107] > plts[430]

"""Golden-seed determinism gate for the hot path.

The hot-path optimisation contract (see docs/PERFORMANCE.md) is that the
simulator may get *faster* but never *different*: for a fixed seed, every
metric and the total event count are byte-identical to the unoptimised
reference implementation.  The constants below were captured on that
reference tree; any change to the event loop, the netem layer or the
transports that alters behaviour — a reordered RNG draw, a skipped
event, a float computed in a different order — fails these tests loudly.

Two fixed cells cover the paths the optimisations touch:

* QUIC over a lossy, jittery link — loss draws, jitter draws, packet
  reordering, ACK-range bookkeeping, 0-RTT handshake.
* TCP on a MotoG over a lossy link — the PacketProcessor device model
  (per-packet cost jitter draws), droptail overflow, SACK recovery and a
  retransmitted (timer-driven) handshake.

Exact ``==`` on floats is deliberate: bit-identity is the guarantee.
"""

from __future__ import annotations

from repro.core.bench import bench_plt
from repro.core.runner import run_page_load
from repro.devices import MOTOG
from repro.http.objects import page
from repro.netem.profiles import emulated


def _link_counts(stats):
    return (stats.enqueued_packets, stats.enqueued_bytes,
            stats.dropped_packets, stats.lost_packets,
            stats.delivered_packets, stats.delivered_bytes,
            stats.reordered_packets)


class TestGoldenQuic:
    """20 Mbps, +20 ms, 0.5 % loss, 2 ms jitter; 10 x 100 KB; seed 0."""

    def _run(self):
        scenario = emulated(20.0, extra_delay_ms=20.0, loss_pct=0.5,
                            jitter_ms=2.0)
        return run_page_load(scenario, page(10, 100 * 1024), "quic", seed=0)

    def test_exact_metrics(self):
        out = self._run()
        assert out.result.plt == 1.706718879842138
        assert out.result.handshake_ready_at == 0.0
        assert out.sim.events_processed == 5893

    def test_exact_link_counters(self):
        out = self._run()
        assert _link_counts(out.path.bottleneck_up.stats) == (
            595, 52094, 0, 1, 583, 51030, 103)
        assert _link_counts(out.path.bottleneck_down.stats) == (
            1045, 1088018, 0, 3, 1042, 1085058, 310)


class TestGoldenTcp:
    """10 Mbps, +10 ms, 1 % loss; 6 x 80 KB on a MotoG; seed 3."""

    def _run(self):
        scenario = emulated(10.0, extra_delay_ms=10.0, loss_pct=1.0)
        return run_page_load(scenario, page(6, 80 * 1024), "tcp", seed=3,
                             device=MOTOG)

    def test_exact_metrics(self):
        out = self._run()
        assert out.result.plt == 1.9992743918294384
        assert out.result.handshake_ready_at == 1.1676615640906947
        assert out.sim.events_processed == 2849

    def test_exact_link_counters(self):
        out = self._run()
        assert _link_counts(out.path.bottleneck_up.stats) == (
            272, 27314, 0, 4, 268, 26946, 0)
        assert _link_counts(out.path.bottleneck_down.stats) == (
            374, 517688, 84, 3, 371, 514792, 0)


class TestCanonicalBenchCell:
    """The BENCH_sim.json canonical cell is itself a golden pair.

    This ties the perf numbers to behaviour: if the benchmark's PLT or
    event count drifts, the committed BENCH_sim.json comparison is
    comparing different work and the perf gate is void.
    """

    def test_canonical_plt_pair(self):
        sample = bench_plt()
        assert sample["plt_quic"] == 0.7314250558227289
        assert sample["plt_tcp"] == 1.2991408814263505
        assert sample["events_quic"] == 4419
        assert sample["events_tcp"] == 5957

    def test_repeatability_in_process(self):
        first = bench_plt()
        second = bench_plt()
        assert first["plt_quic"] == second["plt_quic"]
        assert first["plt_tcp"] == second["plt_tcp"]
        assert first["events_quic"] == second["events_quic"]
        assert first["events_tcp"] == second["events_tcp"]


class TestManyflowDeterminism:
    """The thousand-flow fast path honours the same contract: a fixed
    (config, seed) pair yields identical arrival schedules and metrics
    whether runs execute serially, in a worker pool, or against a
    fabric store server."""

    def _requests(self):
        from repro.core.manyflow import ManyflowConfig, manyflow_requests

        config = ManyflowConfig(flows=30, duration=120.0)
        return manyflow_requests(config, seeds=(0, 1, 2, 3))

    def _cc_requests(self):
        # One request per pluggable kernel, so the executor / store /
        # fabric contracts below cover the whole CC axis.  A lossy link
        # is what separates the kernels: without drops all three ride
        # the same slow-start trajectory.
        from repro.core.manyflow import (ManyflowConfig, manyflow_requests,
                                         manyflow_scenario)
        from repro.transport.cc import KERNEL_NAMES

        scenario = manyflow_scenario(rate_mbps=20.0, loss_rate=0.01)
        requests = []
        for cc in KERNEL_NAMES:
            config = ManyflowConfig(flows=30, duration=90.0, cc=cc)
            requests.extend(manyflow_requests(config, scenario=scenario,
                                              seeds=(0, 1)))
        return requests

    def test_build_flows_is_pure(self):
        from repro.core.manyflow import ManyflowConfig, build_flows

        config = ManyflowConfig(flows=50)
        first = build_flows(config, 5)
        second = build_flows(config, 5)
        assert first == second
        arrivals, sizes, protos = first
        assert len(arrivals) == len(sizes) == len(protos) == 50

    def test_serial_matches_pool(self):
        from repro.core.executor import run_requests

        requests = self._requests()
        serial = run_requests(requests, jobs=1)
        pooled = run_requests(requests, jobs=2, force_pool=True)
        assert [r.metrics for r in serial] == [r.metrics for r in pooled]
        assert [r.plt for r in serial] == [r.plt for r in pooled]

    def test_fabric_store_matches_serial(self, tmp_path):
        from repro.core.executor import run_requests
        from repro.fabric import RemoteStore, StoreServer
        from repro.store import ShardStore

        requests = self._requests()
        serial = run_requests(requests, jobs=1)
        with StoreServer(ShardStore(tmp_path / "central"), port=0) as srv:
            remote = run_requests(requests, store=RemoteStore(srv.url))
            # Warm-cache pass replays the same records from the server.
            cached = run_requests(requests, store=RemoteStore(srv.url))
        assert [r.metrics for r in remote] == [r.metrics for r in serial]
        assert all(r.cached for r in cached)
        assert [r.metrics for r in cached] == [r.metrics for r in serial]

    def test_cc_axis_serial_matches_pool(self):
        from repro.core.executor import run_requests

        requests = self._cc_requests()
        serial = run_requests(requests, jobs=1)
        pooled = run_requests(requests, jobs=2, force_pool=True)
        assert [r.metrics for r in serial] == [r.metrics for r in pooled]
        # Distinct kernels must actually be running distinct dynamics —
        # a silent fall-through to reno would pass the equality above.
        by_cc = {r.request.manyflow.cc: r.metrics for r in serial
                 if r.request.seed == 0}
        assert len({m["plt_p50"] for m in by_cc.values()}) == 3

    def test_cc_axis_fabric_store_round_trips(self, tmp_path):
        from repro.core.executor import run_requests
        from repro.fabric import RemoteStore, StoreServer
        from repro.store import ShardStore

        requests = self._cc_requests()
        serial = run_requests(requests, jobs=1)
        with StoreServer(ShardStore(tmp_path / "central"), port=0) as srv:
            remote = run_requests(requests, store=RemoteStore(srv.url))
            cached = run_requests(requests, store=RemoteStore(srv.url))
        assert [r.metrics for r in remote] == [r.metrics for r in serial]
        assert all(r.cached for r in cached)
        assert [r.request.manyflow.cc for r in cached] == \
            [r.request.manyflow.cc for r in serial]

"""Tests for QUIC stream send/receive state machines."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quic.streams import RecvStream, SendStream

WINDOW = 1_000_000


class TestSendStream:
    def test_chunks_in_order(self):
        s = SendStream(1, 3000, WINDOW)
        chunks = []
        while s.has_data_to_send:
            chunks.append(s.next_chunk(1350))
        offsets = [c[0] for c in chunks]
        assert offsets == [0, 1350, 2700]
        assert chunks[-1][2] is True  # fin on last chunk

    def test_fin_only_on_final_chunk(self):
        s = SendStream(1, 2000, WINDOW)
        first = s.next_chunk(1350)
        second = s.next_chunk(1350)
        assert first[2] is False
        assert second[2] is True
        assert second[1] == 650

    def test_meta_attached_to_first_chunk_only(self):
        s = SendStream(1, 3000, WINDOW, meta={"obj": 7})
        first = s.next_chunk(1350)
        second = s.next_chunk(1350)
        assert first[3] == {"obj": 7}
        assert second[3] is None

    def test_stream_flow_limit_blocks_new_data(self):
        s = SendStream(1, 10_000, flow_window=2000)
        s.next_chunk(1350)
        chunk = s.next_chunk(1350)
        assert chunk[1] == 650  # clipped at the 2000-byte flow limit
        assert s.next_chunk(1350) is None
        assert s.flow_blocked

    def test_flow_limit_raise_unblocks(self):
        s = SendStream(1, 10_000, flow_window=1000)
        s.next_chunk(1350)
        assert s.next_chunk(1350) is None
        s.flow_limit = 5000
        assert s.next_chunk(1350) is not None

    def test_conn_credit_limits_new_data(self):
        s = SendStream(1, 10_000, WINDOW)
        chunk = s.next_chunk(1350, new_data_limit=500)
        assert chunk[1] == 500

    def test_retransmission_goes_first_and_ignores_flow_limit(self):
        s = SendStream(1, 10_000, flow_window=4000)
        sent = []
        for _ in range(3):
            sent.append(s.next_chunk(1350))
        s.on_range_lost(0, 1350, False)
        nxt = s.next_chunk(1350, new_data_limit=0)
        assert nxt[0] == 0 and nxt[1] == 1350

    def test_acked_range_not_retransmitted(self):
        s = SendStream(1, 5000, WINDOW)
        s.next_chunk(1350)
        s.on_range_acked(0, 1350, False)
        s.on_range_lost(0, 1350, False)
        nxt = s.next_chunk(1350)
        assert nxt[0] == 1350  # continues with new data

    def test_fin_lost_and_resent(self):
        s = SendStream(1, 1000, WINDOW)
        offset, length, fin, _ = s.next_chunk(1350)
        assert fin
        s.on_range_lost(offset, length, True)
        again = s.next_chunk(1350)
        assert again[2] is True

    def test_fully_acked(self):
        s = SendStream(1, 2000, WINDOW)
        c1 = s.next_chunk(1350)
        c2 = s.next_chunk(1350)
        s.on_range_acked(c1[0], c1[1], c1[2])
        assert not s.fully_acked
        s.on_range_acked(c2[0], c2[1], c2[2])
        assert s.fully_acked

    def test_streaming_append_and_finish(self):
        s = SendStream(1, 0, WINDOW, finalized=False)
        assert not s.has_data_to_send
        s.append(1000)
        chunk = s.next_chunk(1350)
        assert chunk[1] == 1000 and chunk[2] is False  # no fin yet
        assert not s.has_data_to_send
        s.finish()
        assert s.has_data_to_send
        bare_fin = s.next_chunk(1350)
        assert bare_fin[1] == 0 and bare_fin[2] is True

    def test_append_to_finalized_rejected(self):
        s = SendStream(1, 100, WINDOW)
        with pytest.raises(RuntimeError):
            s.append(10)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SendStream(1, -5, WINDOW)


class TestRecvStream:
    def test_in_order_completion(self):
        r = RecvStream(1, WINDOW)
        r.on_frame(0.1, 0, 1350, False, None)
        r.on_frame(0.2, 1350, 650, True, None)
        assert r.complete
        assert r.completed_at == 0.2
        assert r.bytes_received == 2000

    def test_out_of_order_completion(self):
        r = RecvStream(1, WINDOW)
        r.on_frame(0.1, 1350, 650, True, None)
        assert not r.complete
        r.on_frame(0.2, 0, 1350, False, None)
        assert r.complete

    def test_duplicate_bytes_not_counted(self):
        r = RecvStream(1, WINDOW)
        assert r.on_frame(0.1, 0, 1000, False, None) == 1000
        assert r.on_frame(0.2, 0, 1000, False, None) == 0

    def test_meta_from_first_carrying_frame(self):
        r = RecvStream(1, WINDOW)
        r.on_frame(0.1, 0, 100, False, {"obj": 3})
        r.on_frame(0.2, 100, 100, False, None)
        assert r.meta == {"obj": 3}

    def test_first_byte_timestamp(self):
        r = RecvStream(1, WINDOW)
        r.on_frame(0.5, 0, 10, False, None)
        r.on_frame(0.9, 10, 10, False, None)
        assert r.first_byte_at == 0.5

    def test_zero_length_fin(self):
        r = RecvStream(1, WINDOW)
        r.on_frame(0.1, 0, 1000, False, None)
        r.on_frame(0.2, 1000, 0, True, None)
        assert r.complete
        assert r.fin_offset == 1000


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 50_000), st.randoms(use_true_random=False))
def test_property_any_delivery_order_completes(total, rnd):
    """Chunks delivered in any order complete exactly once with all bytes."""
    s = SendStream(1, total, 10**9)
    chunks = []
    while s.has_data_to_send:
        chunks.append(s.next_chunk(1350))
    rnd.shuffle(chunks)
    r = RecvStream(1, 10**9)
    for i, (offset, length, fin, meta) in enumerate(chunks):
        r.on_frame(float(i), offset, length, fin, meta)
    assert r.complete
    assert r.bytes_received == total


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 30_000), st.randoms(use_true_random=False),
       st.integers(1, 8))
def test_property_loss_and_retransmission_still_complete(total, rnd, loss_mod):
    """Randomly 'lose' chunks; after retransmission the receiver completes."""
    s = SendStream(1, total, 10**9)
    r = RecvStream(1, 10**9)
    time = 0.0
    pending = []
    while s.has_data_to_send:
        pending.append(s.next_chunk(1350))
    lost = [c for i, c in enumerate(pending) if i % loss_mod == 0]
    delivered = [c for i, c in enumerate(pending) if i % loss_mod != 0]
    for offset, length, fin, meta in delivered:
        time += 0.01
        r.on_frame(time, offset, length, fin, meta)
    for offset, length, fin, meta in lost:
        s.on_range_lost(offset, length, fin)
    while s.has_data_to_send:
        chunk = s.next_chunk(1350)
        time += 0.01
        r.on_frame(time, chunk[0], chunk[1], chunk[2], chunk[3])
    assert r.complete
    assert r.bytes_received == total

"""Tests for queue disciplines (DropTail / RED / CoDel)."""

import random

import pytest

from repro.netem import Link, Packet, Simulator, mbps
from repro.netem.queues import CoDel, DropTail, RED


def pkt(size=1000):
    return Packet("a", "b", size)


class TestDropTail:
    def test_accepts_until_limit(self):
        q = DropTail(2500)
        assert q.enqueue(0.0, pkt())
        assert q.enqueue(0.0, pkt())
        assert not q.enqueue(0.0, pkt())
        assert q.backlog_bytes == 2000

    def test_unbounded(self):
        q = DropTail(None)
        for _ in range(1000):
            assert q.enqueue(0.0, pkt())

    def test_fifo_order(self):
        q = DropTail(None)
        a, b = pkt(), pkt()
        q.enqueue(0.0, a)
        q.enqueue(0.0, b)
        assert q.dequeue(0.0) is a
        assert q.dequeue(0.0) is b
        assert q.dequeue(0.0) is None

    def test_drop_hook_invoked(self):
        dropped = []
        q = DropTail(500)
        q.on_drop = dropped.append
        q.enqueue(0.0, pkt())
        assert dropped and dropped[0].size_bytes == 1000


class TestRed:
    def test_validation(self):
        with pytest.raises(ValueError):
            RED(0)
        with pytest.raises(ValueError):
            RED(1000, min_threshold=900, max_threshold=500)

    def test_no_early_drops_when_queue_short(self):
        q = RED(100_000, rng=random.Random(1))
        for _ in range(10):
            assert q.enqueue(0.0, pkt())
        assert q.early_drops == 0

    def test_early_drops_as_average_climbs(self):
        q = RED(100_000, rng=random.Random(1))
        accepted = 0
        for _ in range(200):
            if q.enqueue(0.0, pkt()):
                accepted += 1
        assert q.early_drops > 0
        assert accepted < 200
        # But RED never exceeds the hard limit either.
        assert q.backlog_bytes <= 100_000

    def test_dequeue_drains(self):
        q = RED(100_000, rng=random.Random(1))
        q.enqueue(0.0, pkt())
        assert q.dequeue(0.0) is not None
        assert q.backlog_bytes == 0


class TestCoDel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoDel(target=0)

    def test_no_drops_when_sojourn_low(self):
        q = CoDel(target=0.005, interval=0.1)
        for t in range(100):
            q.enqueue(t * 0.001, pkt())
            q.dequeue(t * 0.001 + 0.001)  # 1 ms sojourn
        assert q.codel_drops == 0

    def test_drops_under_persistent_standing_queue(self):
        q = CoDel(target=0.005, interval=0.05)
        dropped = []
        q.on_drop = dropped.append
        # Build a standing queue, then dequeue slowly: sojourn >> target.
        for i in range(400):
            q.enqueue(i * 0.0001, pkt())
        t = 1.0
        out = 0
        while True:
            packet = q.dequeue(t)
            if packet is None:
                break
            out += 1
            t += 0.01
        assert q.codel_drops > 0
        assert out + q.codel_drops == 400

    def test_hard_limit_respected(self):
        q = CoDel(limit_bytes=2000)
        assert q.enqueue(0.0, pkt())
        assert q.enqueue(0.0, pkt())
        assert not q.enqueue(0.0, pkt())


class TestLinkIntegration:
    def run_flood(self, queue, n=300, rate=mbps(5)):
        sim = Simulator()
        link = Link(sim, rate_bps=rate, delay=0.01, queue=queue)
        got = []
        link.attach(lambda p: got.append(p))
        for _ in range(n):
            link.send(pkt(1250))
        sim.run()
        return sim, link, got

    def test_red_link_drops_early(self):
        queue = RED(60_000, rng=random.Random(2))
        _sim, link, got = self.run_flood(queue)
        assert link.stats.dropped_packets > 0
        assert len(got) + link.stats.dropped_packets == 300

    def test_codel_link_sheds_standing_queue(self):
        """A one-shot flood builds a standing queue; CoDel sheds part of
        it to cap sojourn time, and every packet is accounted for."""
        codel_q = CoDel(target=0.005, interval=0.05)
        _sim, link, codel_got = self.run_flood(codel_q, n=600)
        assert codel_q.codel_drops > 0
        assert len(codel_got) + link.stats.dropped_packets == 600
        assert link.stats.dropped_packets == codel_q.codel_drops


# ----------------------------------------------------------------------
# FQ-CoDel
# ----------------------------------------------------------------------

from repro.netem.queues import AQM_NAMES, FQCoDel, make_queue


def flow_pkt(flow, size=1000):
    return Packet("a", "b", size, flow_id=flow)


class TestFQCoDel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FQCoDel(target=0)
        with pytest.raises(ValueError):
            FQCoDel(quantum=0)
        with pytest.raises(ValueError):
            FQCoDel(flows=0)

    def test_fifo_within_flow(self):
        q = FQCoDel()
        a, b = flow_pkt("x"), flow_pkt("x")
        q.enqueue(0.0, a)
        q.enqueue(0.0, b)
        assert q.dequeue(0.0) is a
        assert q.dequeue(0.0) is b
        assert q.dequeue(0.0) is None
        assert q.backlog_bytes == 0

    def test_new_flow_served_ahead_of_exhausted_old_flow(self):
        """The sparse-flow advantage: a freshly active flow is served
        as soon as the bulk flow exhausts its quantum."""
        q = FQCoDel()
        for _ in range(6):
            q.enqueue(0.0, flow_pkt("bulk"))
        # Two 1000 B dequeues exhaust bulk's 1514 B quantum.
        assert q.dequeue(0.0).flow_id == "bulk"
        assert q.dequeue(0.0).flow_id == "bulk"
        q.enqueue(0.0, flow_pkt("sparse"))
        assert q.dequeue(0.0).flow_id == "sparse"

    def test_drr_interleaves_competing_flows(self):
        q = FQCoDel()
        for _ in range(20):
            q.enqueue(0.0, flow_pkt("a"))
            q.enqueue(0.0, flow_pkt("b"))
        served = [q.dequeue(0.0).flow_id for _ in range(40)]
        assert q.dequeue(0.0) is None
        # Both flows appear early and get equal total service.
        assert {"a", "b"} <= set(served[:6])
        assert served.count("a") == served.count("b") == 20

    def test_overflow_head_drops_from_fattest_flow(self):
        q = FQCoDel(limit_bytes=10_000)
        dropped = []
        q.on_drop = dropped.append
        for _ in range(9):
            q.enqueue(0.0, flow_pkt("fat"))
        q.enqueue(0.0, flow_pkt("thin"))
        assert not dropped
        # One byte over the limit: the victim is fat's head packet,
        # not the arriving thin packet.
        assert q.enqueue(0.0, flow_pkt("thin"))
        assert [p.flow_id for p in dropped] == ["fat"]
        assert q.overflow_drops == 1
        assert q.backlog_bytes == 10_000

    def test_per_flow_codel_sheds_standing_queue(self):
        q = FQCoDel(target=0.005, interval=0.05)
        for i in range(400):
            q.enqueue(i * 0.0001, flow_pkt(str(i % 4)))
        t, out = 1.0, 0
        while q.dequeue(t) is not None:
            out += 1
            t += 0.01
        assert q.codel_drops > 0
        assert out + q.codel_drops == 400
        assert q.backlog_bytes == 0


class TestMakeQueue:
    def test_names_round_trip(self):
        assert isinstance(make_queue("droptail", 50_000), DropTail)
        assert isinstance(make_queue("red", 50_000), RED)
        assert isinstance(make_queue("codel", 50_000), CoDel)
        assert isinstance(make_queue("fq_codel", 50_000), FQCoDel)
        assert isinstance(make_queue("fq-codel", 50_000), FQCoDel)

    def test_every_advertised_name_builds(self):
        for name in AQM_NAMES:
            assert make_queue(name, 100_000) is not None

    def test_red_requires_limit(self):
        with pytest.raises(ValueError):
            make_queue("red", None)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_queue("wred", 50_000)


# ----------------------------------------------------------------------
# Drop accounting invariant (all disciplines)
# ----------------------------------------------------------------------

class DropLedger:
    """Shadow byte ledger that checks the drop-accounting contract.

    At ``on_drop`` time the discipline must have already removed the
    victim from ``backlog_bytes`` (post-accept drops) or never counted
    it (rejected arrivals) — and each drop fires the hook exactly once.
    """

    def __init__(self, queue):
        self.queue = queue
        self.bytes = 0
        self.drops = []
        self.delivered = []
        self.accepted = []
        queue.on_drop = self._on_drop

    def _on_drop(self, packet):
        assert all(d is not packet for d in self.drops), "drop fired twice"
        backlog = self.queue.backlog_bytes
        assert backlog in (self.bytes, self.bytes - packet.size_bytes), (
            "backlog still counts the dropped packet at on_drop time")
        self.bytes = backlog
        self.drops.append(packet)

    def enqueue(self, now, packet):
        accepted = self.queue.enqueue(now, packet)
        if accepted:
            self.bytes += packet.size_bytes
            self.accepted.append(packet)
        assert self.queue.backlog_bytes == self.bytes
        return accepted

    def dequeue(self, now):
        packet = self.queue.dequeue(now)
        if packet is not None:
            assert all(d is not packet for d in self.drops), (
                "dropped packet later dequeued")
            self.bytes -= packet.size_bytes
            self.delivered.append(packet)
        assert self.queue.backlog_bytes == self.bytes
        return packet


def _pressured_queues():
    return [
        pytest.param(lambda: DropTail(5_000), id="droptail"),
        pytest.param(lambda: RED(20_000, rng=random.Random(3)), id="red"),
        pytest.param(lambda: CoDel(target=0.005, interval=0.05,
                                   limit_bytes=50_000), id="codel"),
        pytest.param(lambda: FQCoDel(target=0.005, interval=0.05,
                                     limit_bytes=20_000), id="fq_codel"),
    ]


class TestDropAccounting:
    @pytest.mark.parametrize("factory", _pressured_queues())
    def test_backlog_excludes_drops_exactly_once(self, factory):
        """Flood then drain slowly: every discipline drops somewhere
        (arrival rejection, early drop, sojourn drop, or overflow
        head-drop) and the ledger must balance throughout."""
        ledger = DropLedger(factory())
        for i in range(500):
            ledger.enqueue(i * 0.0001, flow_pkt(str(i % 7)))
        t = 1.0
        while ledger.dequeue(t) is not None:
            t += 0.01
        assert ledger.drops, "workload produced no drops"
        assert ledger.queue.backlog_bytes == 0
        # Conservation: every accepted packet came out exactly once,
        # as a delivery or as a post-accept drop.
        accepted_ids = {id(p) for p in ledger.accepted}
        delivered_ids = {id(p) for p in ledger.delivered}
        dropped_ids = {id(p) for p in ledger.drops}
        assert len(delivered_ids) == len(ledger.delivered)
        assert len(dropped_ids) == len(ledger.drops)
        assert not (delivered_ids & dropped_ids)
        assert accepted_ids == delivered_ids | (dropped_ids & accepted_ids)

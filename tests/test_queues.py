"""Tests for queue disciplines (DropTail / RED / CoDel)."""

import random

import pytest

from repro.netem import Link, Packet, Simulator, mbps
from repro.netem.queues import CoDel, DropTail, RED


def pkt(size=1000):
    return Packet("a", "b", size)


class TestDropTail:
    def test_accepts_until_limit(self):
        q = DropTail(2500)
        assert q.enqueue(0.0, pkt())
        assert q.enqueue(0.0, pkt())
        assert not q.enqueue(0.0, pkt())
        assert q.backlog_bytes == 2000

    def test_unbounded(self):
        q = DropTail(None)
        for _ in range(1000):
            assert q.enqueue(0.0, pkt())

    def test_fifo_order(self):
        q = DropTail(None)
        a, b = pkt(), pkt()
        q.enqueue(0.0, a)
        q.enqueue(0.0, b)
        assert q.dequeue(0.0) is a
        assert q.dequeue(0.0) is b
        assert q.dequeue(0.0) is None

    def test_drop_hook_invoked(self):
        dropped = []
        q = DropTail(500)
        q.on_drop = dropped.append
        q.enqueue(0.0, pkt())
        assert dropped and dropped[0].size_bytes == 1000


class TestRed:
    def test_validation(self):
        with pytest.raises(ValueError):
            RED(0)
        with pytest.raises(ValueError):
            RED(1000, min_threshold=900, max_threshold=500)

    def test_no_early_drops_when_queue_short(self):
        q = RED(100_000, rng=random.Random(1))
        for _ in range(10):
            assert q.enqueue(0.0, pkt())
        assert q.early_drops == 0

    def test_early_drops_as_average_climbs(self):
        q = RED(100_000, rng=random.Random(1))
        accepted = 0
        for _ in range(200):
            if q.enqueue(0.0, pkt()):
                accepted += 1
        assert q.early_drops > 0
        assert accepted < 200
        # But RED never exceeds the hard limit either.
        assert q.backlog_bytes <= 100_000

    def test_dequeue_drains(self):
        q = RED(100_000, rng=random.Random(1))
        q.enqueue(0.0, pkt())
        assert q.dequeue(0.0) is not None
        assert q.backlog_bytes == 0


class TestCoDel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoDel(target=0)

    def test_no_drops_when_sojourn_low(self):
        q = CoDel(target=0.005, interval=0.1)
        for t in range(100):
            q.enqueue(t * 0.001, pkt())
            q.dequeue(t * 0.001 + 0.001)  # 1 ms sojourn
        assert q.codel_drops == 0

    def test_drops_under_persistent_standing_queue(self):
        q = CoDel(target=0.005, interval=0.05)
        dropped = []
        q.on_drop = dropped.append
        # Build a standing queue, then dequeue slowly: sojourn >> target.
        for i in range(400):
            q.enqueue(i * 0.0001, pkt())
        t = 1.0
        out = 0
        while True:
            packet = q.dequeue(t)
            if packet is None:
                break
            out += 1
            t += 0.01
        assert q.codel_drops > 0
        assert out + q.codel_drops == 400

    def test_hard_limit_respected(self):
        q = CoDel(limit_bytes=2000)
        assert q.enqueue(0.0, pkt())
        assert q.enqueue(0.0, pkt())
        assert not q.enqueue(0.0, pkt())


class TestLinkIntegration:
    def run_flood(self, queue, n=300, rate=mbps(5)):
        sim = Simulator()
        link = Link(sim, rate_bps=rate, delay=0.01, queue=queue)
        got = []
        link.attach(lambda p: got.append(p))
        for _ in range(n):
            link.send(pkt(1250))
        sim.run()
        return sim, link, got

    def test_red_link_drops_early(self):
        queue = RED(60_000, rng=random.Random(2))
        _sim, link, got = self.run_flood(queue)
        assert link.stats.dropped_packets > 0
        assert len(got) + link.stats.dropped_packets == 300

    def test_codel_link_sheds_standing_queue(self):
        """A one-shot flood builds a standing queue; CoDel sheds part of
        it to cap sojourn time, and every packet is accounted for."""
        codel_q = CoDel(target=0.005, interval=0.05)
        _sim, link, codel_got = self.run_flood(codel_q, n=600)
        assert codel_q.codel_drops > 0
        assert len(codel_got) + link.stats.dropped_packets == 600
        assert link.stats.dropped_packets == codel_q.codel_drops

"""Tests for the statistics module, cross-checked against scipy."""

import math
import random

import pytest
import scipy.stats

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    ALPHA,
    mean,
    percent_difference,
    regularized_incomplete_beta,
    sample_std,
    sample_variance,
    student_t_sf,
    welch_t_test,
)


class TestSummaries:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_sample_variance_known_value(self):
        assert sample_variance([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == \
            pytest.approx(32 / 7)

    def test_variance_of_singleton_is_zero(self):
        assert sample_variance([3.0]) == 0.0

    def test_std_is_sqrt_of_variance(self):
        data = [1.0, 2.0, 6.0]
        assert sample_std(data) == pytest.approx(math.sqrt(sample_variance(data)))


class TestSpecialFunctions:
    @pytest.mark.parametrize("a,b,x", [
        (0.5, 0.5, 0.3), (2.0, 3.0, 0.5), (10.0, 1.0, 0.9),
        (5.0, 0.5, 0.01), (30.0, 0.5, 0.99),
    ])
    def test_incomplete_beta_matches_scipy(self, a, b, x):
        ours = regularized_incomplete_beta(a, b, x)
        theirs = scipy.stats.beta.cdf(x, a, b)
        assert ours == pytest.approx(theirs, abs=1e-10)

    def test_incomplete_beta_bounds(self):
        assert regularized_incomplete_beta(2, 3, 0.0) == 0.0
        assert regularized_incomplete_beta(2, 3, 1.0) == 1.0

    @pytest.mark.parametrize("t,df", [
        (0.0, 5), (1.0, 1), (2.5, 10), (-1.7, 7), (4.0, 30), (0.3, 2.5),
    ])
    def test_t_sf_matches_scipy(self, t, df):
        assert student_t_sf(t, df) == pytest.approx(
            scipy.stats.t.sf(t, df), abs=1e-10
        )

    def test_t_sf_invalid_df(self):
        with pytest.raises(ValueError):
            student_t_sf(1.0, 0)


class TestWelch:
    def test_matches_scipy_on_fixed_samples(self):
        a = [0.52, 0.49, 0.55, 0.51, 0.50, 0.53]
        b = [0.61, 0.58, 0.65, 0.60, 0.62, 0.59]
        ours = welch_t_test(a, b)
        theirs = scipy.stats.ttest_ind(a, b, equal_var=False)
        assert ours.t_statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-7)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_scipy_on_random_samples(self, seed):
        rng = random.Random(seed)
        n1 = rng.randint(3, 30)
        n2 = rng.randint(3, 30)
        a = [rng.gauss(1.0, 0.3) for _ in range(n1)]
        b = [rng.gauss(1.0 + rng.uniform(-0.5, 0.5), 0.4) for _ in range(n2)]
        ours = welch_t_test(a, b)
        theirs = scipy.stats.ttest_ind(a, b, equal_var=False)
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=1e-7)
        assert ours.degrees_of_freedom > 0

    def test_identical_samples_not_significant(self):
        a = [1.0, 1.0, 1.0]
        result = welch_t_test(a, list(a))
        assert result.p_value == 1.0
        assert not result.significant()

    def test_zero_variance_different_means_significant(self):
        result = welch_t_test([1.0, 1.0, 1.0], [2.0, 2.0, 2.0])
        assert result.p_value == 0.0
        assert result.significant()

    def test_tiny_samples_inconclusive(self):
        result = welch_t_test([1.0], [2.0, 3.0])
        assert result.p_value == 1.0

    def test_clearly_different_distributions_significant(self):
        rng = random.Random(1)
        a = [rng.gauss(1.0, 0.05) for _ in range(10)]
        b = [rng.gauss(2.0, 0.05) for _ in range(10)]
        assert welch_t_test(a, b).significant(ALPHA)

    def test_noisy_identical_distributions_not_significant(self):
        rng = random.Random(2)
        a = [rng.gauss(1.0, 0.3) for _ in range(10)]
        b = [rng.gauss(1.0, 0.3) for _ in range(10)]
        assert not welch_t_test(a, b).significant(ALPHA)

    def test_symmetry(self):
        a = [1.0, 1.2, 0.9, 1.1]
        b = [1.5, 1.4, 1.6, 1.7]
        assert welch_t_test(a, b).p_value == pytest.approx(
            welch_t_test(b, a).p_value
        )


class TestPercentDifference:
    def test_positive_when_treatment_smaller(self):
        # QUIC PLT 0.8 vs TCP 1.0 -> +20% (QUIC faster), paper convention.
        assert percent_difference([1.0], [0.8]) == pytest.approx(20.0)

    def test_negative_when_treatment_larger(self):
        assert percent_difference([1.0], [1.3]) == pytest.approx(-30.0)

    def test_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            percent_difference([0.0], [1.0])

"""Tests for workloads, the page loader, and HAR-style timings."""

import pytest

from repro.http import (
    COUNT_GRID,
    KB,
    SIZE_GRID_BYTES,
    PageLoader,
    WebObject,
    WebPage,
    count_grid_pages,
    page,
    page_request_handler,
    single_object_page,
    size_grid_pages,
    sized_request_handler,
)
from repro.netem import Simulator, emulated

from .conftest import MEDIUM, make_quic_pair, make_tcp_pair


class TestWorkloads:
    def test_page_constructor(self):
        p = page(5, 10 * KB)
        assert p.object_count == 5
        assert p.total_bytes == 50 * KB
        assert p.name == "5x10KB"

    def test_single_object_page(self):
        p = single_object_page(200 * KB)
        assert p.object_count == 1
        assert p.objects[0].size_bytes == 200 * KB

    def test_size_grid_matches_table2(self):
        sizes = [p.objects[0].size_bytes for p in size_grid_pages()]
        assert sizes == [s * KB for s in (5, 10, 100, 200, 500, 1000, 10_000)]

    def test_count_grid_isolates_count(self):
        pages = count_grid_pages()
        assert [p.object_count for p in pages] == list(COUNT_GRID)
        assert len({p.objects[0].size_bytes for p in pages}) == 1

    def test_invalid_workloads_rejected(self):
        with pytest.raises(ValueError):
            page(0, 100)
        with pytest.raises(ValueError):
            WebObject(0, 0)


class TestServerHandlers:
    def test_page_handler_serves_by_id(self):
        p = page(3, 1000)
        handler = page_request_handler(p)
        assert handler({"obj": 1}) == 1000

    def test_page_handler_unknown_object(self):
        handler = page_request_handler(page(1, 1000))
        with pytest.raises(KeyError):
            handler({"obj": 9})

    def test_sized_handler_echoes(self):
        assert sized_request_handler()({"size": 123}) == 123


class TestPageLoader:
    def load(self, protocol, web_page, scenario=MEDIUM):
        sim = Simulator()
        handler = page_request_handler(web_page)
        if protocol == "quic":
            _, client, _ = make_quic_pair(sim, scenario, handler=handler)
        else:
            _, client, _ = make_tcp_pair(sim, scenario, handler=handler)
        loader = PageLoader(sim, client, web_page, protocol)
        loader.start()
        assert sim.run_until(lambda: loader.done, timeout=60.0)
        return loader.result

    def test_quic_page_load(self):
        result = self.load("quic", page(5, 20 * KB))
        assert result.complete
        assert result.plt > 0
        assert all(t.completed_at is not None for t in result.timings)

    def test_tcp_page_load(self):
        result = self.load("tcp", page(5, 20 * KB))
        assert result.complete
        # TCP PLT includes the 3-RTT handshake.
        assert result.plt > 3 * 0.036

    def test_plt_is_last_object_completion(self):
        result = self.load("quic", page(4, 50 * KB))
        assert result.plt == max(t.completed_at for t in result.timings)

    def test_har_timings_per_object(self):
        result = self.load("quic", page(3, 10 * KB))
        assert len(result.timings) == 3
        for timing in result.timings:
            assert timing.protocol == "quic"
            assert timing.elapsed is not None and timing.elapsed > 0

    def test_quic_requests_issued_at_time_zero(self):
        """0-RTT: requests leave immediately, before any round trip."""
        result = self.load("quic", page(2, 10 * KB))
        assert all(t.requested_at == result.started_at for t in result.timings)

    def test_tcp_requests_wait_for_handshake(self):
        result = self.load("tcp", page(2, 10 * KB))
        assert result.handshake_ready_at is not None
        assert all(t.requested_at >= result.handshake_ready_at
                   for t in result.timings)

    def test_plt_raises_until_finished(self):
        sim = Simulator()
        p = page(1, 10 * KB)
        _, client, _ = make_quic_pair(sim, MEDIUM,
                                      handler=page_request_handler(p))
        loader = PageLoader(sim, client, p, "quic")
        with pytest.raises(RuntimeError):
            _ = loader.result.plt

    def test_bigger_page_takes_longer(self):
        small = self.load("quic", page(1, 10 * KB))
        big = self.load("quic", page(1, 1000 * KB))
        assert big.plt > small.plt

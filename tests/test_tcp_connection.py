"""Behavioural tests for the TCP(+TLS, HTTP/2 framing) connection."""

import pytest

from repro.devices import MOTOG
from repro.netem import Simulator, emulated
from repro.tcp import tcp_config

from .conftest import FAST, JITTERY, LOSSY, MEDIUM, make_tcp_pair, tcp_download


class TestHandshake:
    def test_three_rtts_before_first_byte(self, sim):
        """TCP + 2-RTT TLS: readiness at ~3 RTT (paper's comparison point)."""
        _, client, _ = make_tcp_pair(sim, emulated(100.0))
        ready = {}
        client.connect(lambda now: ready.update({"t": now}))
        sim.run_until(lambda: "t" in ready, timeout=5.0)
        assert ready["t"] == pytest.approx(3 * 0.036, rel=0.15)

    def test_tls13_style_one_rtt_option(self, sim):
        cfg = tcp_config(tls_rtts=1)
        _, client, _ = make_tcp_pair(sim, emulated(100.0), cfg=cfg)
        ready = {}
        client.connect(lambda now: ready.update({"t": now}))
        sim.run_until(lambda: "t" in ready, timeout=5.0)
        assert ready["t"] == pytest.approx(2 * 0.036, rel=0.15)

    def test_handshake_survives_loss(self, sim):
        """Handshake control packets are retried on a timer."""
        scn = emulated(10.0, loss_pct=20.0)
        _, client, _ = make_tcp_pair(sim, scn, seed=5)
        ready = {}
        client.connect(lambda now: ready.update({"t": now}))
        assert sim.run_until(lambda: "t" in ready, timeout=30.0)

    def test_requests_queue_until_ready(self, sim):
        _, client, _ = make_tcp_pair(sim, MEDIUM)
        done = {}
        # Issue the request immediately; it must wait for the handshake.
        client.connect(None)
        client.request({"size": 10_000}, lambda m, meta, t: done.update({m: t}))
        assert sim.run_until(lambda: len(done) == 1, timeout=10.0)
        assert next(iter(done.values())) > 3 * 0.036


class TestBasicTransfer:
    def test_transfer_completes(self, sim):
        _, client, _ = make_tcp_pair(sim, MEDIUM)
        elapsed = tcp_download(sim, client, 100_000)
        assert 0.1 < elapsed < 2.0

    def test_throughput_near_link_rate(self, sim):
        _, client, _ = make_tcp_pair(sim, MEDIUM)
        size = 5_000_000
        elapsed = tcp_download(sim, client, size)
        assert size * 8 / elapsed / 1e6 > 7.0

    def test_multiple_objects_multiplexed(self, sim):
        _, client, _ = make_tcp_pair(sim, MEDIUM)
        done = {}
        client.connect(lambda now: [
            client.request({"size": 50_000, "i": i},
                           lambda m, meta, t: done.update({meta["i"]: t}))
            for i in range(10)
        ])
        assert sim.run_until(lambda: len(done) == 10, timeout=30.0)

    def test_roundrobin_interleaves_completions(self, sim):
        """Fair DATA scheduling: equal objects finish at similar times."""
        _, client, _ = make_tcp_pair(sim, MEDIUM)
        done = {}
        client.connect(lambda now: [
            client.request({"size": 200_000, "i": i},
                           lambda m, meta, t: done.update({meta["i"]: t}))
            for i in range(4)
        ])
        sim.run_until(lambda: len(done) == 4, timeout=30.0)
        spread = max(done.values()) - min(done.values())
        total = max(done.values())
        assert spread < total * 0.25

    def test_fifo_scheduler_serialises(self, sim):
        cfg = tcp_config(scheduler="fifo")
        _, client, _ = make_tcp_pair(sim, MEDIUM, cfg=cfg)
        order = []
        client.connect(lambda now: [
            client.request({"size": 200_000, "i": i},
                           lambda m, meta, t: order.append((meta["i"], t)))
            for i in range(3)
        ])
        sim.run_until(lambda: len(order) == 3, timeout=30.0)
        # FIFO finishes one whole response before the next (the order of
        # the responses themselves depends on server think-time noise).
        times = sorted(t for _, t in order)
        assert times[1] - times[0] > 0.05
        assert times[2] - times[1] > 0.05


class TestHeadOfLineBlocking:
    def test_loss_on_stream_delays_all_messages(self):
        """The HOL property: under loss, *all* objects slow down together
        (QUIC's independent streams do not; see integration tests)."""
        results = {}
        for loss in (0.0, 2.0):
            sim = Simulator()
            _, client, _ = make_tcp_pair(sim, emulated(10.0, loss_pct=loss),
                                         seed=3)
            done = {}
            client.connect(lambda now: [
                client.request({"size": 100_000, "i": i},
                               lambda m, meta, t: done.update({meta["i"]: t}))
                for i in range(5)
            ])
            assert sim.run_until(lambda: len(done) == 5, timeout=60.0)
            results[loss] = min(done.values())  # even the *first* finisher
        assert results[2.0] > results[0.0] * 1.3

    def test_in_order_delivery_enforced(self, sim):
        """Bytes are only delivered up to the first gap."""
        path, client, server = make_tcp_pair(sim, MEDIUM)
        done = {}
        client.connect(lambda now: client.request(
            {"size": 500_000}, lambda m, meta, t: done.update({m: t})))
        sim.run(until=0.3)
        frontier = client._rcv_frontier
        total_seen = client._rcv_ranges.total()
        assert frontier <= total_seen or total_seen == 0


class TestLossRecovery:
    def test_fast_retransmit_repairs_random_loss(self, sim):
        _, client, server = make_tcp_pair(sim, LOSSY)
        tcp_download(sim, client, 1_000_000)
        assert server.stats.retransmits > 0
        assert server.stats.spurious_retransmits == 0

    def test_rto_repairs_tail_loss(self, sim):
        path, client, server = make_tcp_pair(sim, MEDIUM)
        done = {}
        client.connect(lambda now: client.request(
            {"size": 200_000}, lambda m, meta, t: done.update({1: t})))
        sim.run(until=0.3)
        path.bottleneck_down.loss_rate = 0.9999
        sim.run(until=0.5)
        path.bottleneck_down.loss_rate = 0.0
        assert sim.run_until(lambda: 1 in done, timeout=60.0)
        assert server.stats.rto_fires > 0

    def test_dsack_adapts_dupthresh_under_reordering(self, sim):
        _, client, server = make_tcp_pair(sim, JITTERY)
        tcp_download(sim, client, 2_000_000)
        assert server.dupthresh > 3
        assert server.stats.spurious_retransmits > 0

    def test_dsack_disabled_keeps_dupthresh(self, sim):
        cfg = tcp_config(dsack=False)
        _, client, server = make_tcp_pair(sim, JITTERY, cfg=cfg)
        tcp_download(sim, client, 2_000_000)
        assert server.dupthresh == 3

    def test_reordering_without_dsack_hurts_more(self):
        times = {}
        for dsack in (True, False):
            sim = Simulator()
            cfg = tcp_config(dsack=dsack)
            _, client, _ = make_tcp_pair(sim, JITTERY, cfg=cfg)
            times[dsack] = tcp_download(sim, client, 2_000_000, timeout=120.0)
        assert times[False] > times[True]


class TestReceiveWindow:
    def test_tiny_buffer_throttles_throughput(self, sim):
        cfg = tcp_config(receive_buffer=32_000)
        _, client, _ = make_tcp_pair(sim, emulated(100.0), cfg=cfg)
        elapsed = tcp_download(sim, client, 1_000_000)
        # rwnd-limited: ~ rwnd/RTT = 32 KB / 36 ms ~= 7 Mbps << 100 Mbps.
        rate = 1_000_000 * 8 / elapsed / 1e6
        assert rate < 12.0

    def test_slow_device_barely_affects_tcp(self):
        """The kernel keeps ACKing: phones hurt TCP far less than QUIC."""
        times = {}
        from repro.devices import DESKTOP

        for device in (DESKTOP, MOTOG):
            sim = Simulator()
            _, client, _ = make_tcp_pair(sim, emulated(50.0), device=device)
            times[device.name] = tcp_download(sim, client, 5_000_000)
        assert times["motog"] < times["desktop"] * 1.35


class TestAckBehaviour:
    def test_delayed_acks_roughly_half_of_segments(self, sim):
        _, client, server = make_tcp_pair(sim, MEDIUM)
        tcp_download(sim, client, 1_000_000)
        segments = server.stats.segments_sent
        acks = client.stats.acks_sent
        assert acks < segments * 0.75

    def test_dupacks_sent_immediately_on_gap(self, sim):
        _, client, server = make_tcp_pair(sim, LOSSY)
        tcp_download(sim, client, 500_000)
        # With loss, ack count rises above the delayed-ack baseline.
        assert client.stats.acks_sent > 0
        assert client.stats.dsacks_sent >= 0

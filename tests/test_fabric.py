"""Tests for the distributed sweep fabric (repro.fabric).

Covers the HTTP wire protocol, the RemoteStore backend contract (via
open_store/resolve_store/merge_into), executor integration against a
served store, the work-sharing coordinator — including the acceptance
criteria: a 2-worker sweep byte-identical to a single-process run, a
kill-worker-at-50%/respawn sweep still byte-identical, and overlapping
concurrent uploads with no lost/torn/duplicated records — plus the
friendly connection-refused / schema-mismatch errors.
"""

import json
import multiprocessing
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

import repro.fabric.server as server_module
from repro.core.executor import (
    ProtocolSpec,
    RunRecord,
    RunRequest,
    iter_runs,
)
from repro.core.report import build_store_report
from repro.fabric import (
    FabricConnectionError,
    FabricWorkerError,
    RemoteStore,
    SchemaMismatchError,
    StoreServer,
    iter_fabric_runs,
    run_fabric_sweep,
)
from repro.http import single_object_page
from repro.netem import emulated
from repro.store import (
    KEY_SCHEMA_VERSION,
    RunCache,
    ShardStore,
    fingerprint_for,
    is_store_url,
    merge_into,
    open_store,
    resolve_store,
    run_key,
    store_kind_at,
)

SCN = emulated(10.0)
PAGE = single_object_page(20_000)


def req(seed=0, **overrides):
    kwargs = dict(scenario=SCN, page=PAGE, protocol=ProtocolSpec.quic(),
                  seed=seed)
    kwargs.update(overrides)
    return RunRequest(**kwargs)


def _instant_run(request):
    return RunRecord(request=request, plt=float(request.seed) / 10.0 + 0.1,
                     complete=True)


def _slow_run(request):
    time.sleep(0.02)
    return _instant_run(request)


@pytest.fixture
def server(tmp_path):
    with StoreServer(ShardStore(tmp_path / "central"), port=0) as srv:
        yield srv


@pytest.fixture
def remote(server):
    return RemoteStore(server.url)


def _seed_rows(n, run=_instant_run):
    rows = []
    for seed in range(n):
        request = req(seed=seed)
        fingerprint = fingerprint_for(request)
        key = run_key(request, fingerprint=fingerprint)
        record = run(request)
        rows.append((key, request, fingerprint, record))
    return rows


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------
class TestWireProtocol:
    def test_healthz_reports_schema_version(self, remote):
        info = remote.healthz()
        assert info["ok"] is True
        assert info["key_schema_version"] == KEY_SCHEMA_VERSION
        assert info["kind"] == "shards"
        assert info["runs"] == 0

    def test_put_get_roundtrip_and_404(self, remote):
        key, request, fingerprint, record = _seed_rows(1)[0]
        assert remote.get(key) is None
        remote.put(key, record, fingerprint=fingerprint)
        stored = remote.get(key)
        assert stored is not None
        assert stored.plt == record.plt
        assert stored.request.seed == request.seed
        assert key in remote
        assert "0" * 64 not in remote
        assert len(remote) == 1

    def test_missing_is_batched_set_difference(self, remote):
        rows = _seed_rows(4)
        for key, _request, fingerprint, record in rows[:2]:
            remote.put(key, record, fingerprint=fingerprint)
        keys = [key for key, *_ in rows]
        assert set(remote.missing(keys)) == set(keys[2:])
        assert remote.missing(keys[:2]) == []

    def test_bulk_upload_fetch_preserve_created(self, remote):
        rows = _seed_rows(3)
        from repro.store import record_to_dict

        uploaded = remote.upload_rows(
            [(key, 1000.0 + i, fingerprint, record_to_dict(record))
             for i, (key, _req, fingerprint, record) in enumerate(rows)])
        assert uploaded == 3
        fetched = remote.fetch([key for key, *_ in rows])
        assert {row[0]: row[1] for row in fetched} == {
            rows[i][0]: 1000.0 + i for i in range(3)}

    def test_stats_counters_delete_gc(self, remote):
        key, _request, fingerprint, record = _seed_rows(1)[0]
        remote.put(key, record, fingerprint=fingerprint, created=100.0)
        remote.bump_counter("hits", 3)
        assert remote.counters()["hits"] == 3
        assert remote.fingerprints() == {fingerprint: 1}
        assert remote.keys() == [key]
        assert remote.gc(60.0, now=1000.0, dry_run=True) == 1
        assert len(remote) == 1  # dry run dropped nothing
        assert remote.delete(key) is True
        assert remote.delete(key) is False
        assert len(remote) == 0

    def test_items_rows_stream_the_sync_dialect(self, remote):
        key, request, fingerprint, record = _seed_rows(1)[0]
        remote.put(key, record, fingerprint=fingerprint, created=42.0)
        items = list(remote.items())
        assert items[0][0] == key and items[0][1] == 42.0
        assert items[0][2] == fingerprint
        rows = list(remote.rows())
        assert rows[0][0] == key and request.page.name in rows[0][3]

    def test_unknown_paths_and_malformed_bodies(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/nope")
        assert err.value.code == 404
        request = urllib.request.Request(
            server.url + "/missing", data=b"not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400

    def test_sqlite_backed_server(self, tmp_path):
        # handler threads share the sqlite connection under the server
        # lock; check_same_thread=False makes that legal.
        with StoreServer(tmp_path / "central.sqlite", port=0) as srv:
            remote = RemoteStore(srv.url)
            key, _request, fingerprint, record = _seed_rows(1)[0]
            remote.put(key, record, fingerprint=fingerprint)
            assert remote.healthz()["kind"] == "sqlite"
            assert remote.get(key).plt == record.plt


# ----------------------------------------------------------------------
# backend integration: open_store / resolve_store / merge_into
# ----------------------------------------------------------------------
class TestBackendIntegration:
    def test_open_store_recognises_urls(self, server):
        store = open_store(server.url)
        assert isinstance(store, RemoteStore)
        assert store.kind == "http" and store.path == server.url
        assert is_store_url(server.url)
        assert not is_store_url("/tmp/store.sqlite")
        assert store_kind_at(server.url) == "http"

    def test_open_store_rejects_conflicting_backend(self, server):
        with pytest.raises(ValueError, match="http"):
            open_store(server.url, backend="shards")
        with pytest.raises(ValueError, match="URL"):
            open_store("plain/path", backend="http")

    def test_resolve_store_pings_on_must_exist(self, server):
        assert resolve_store(server.url, must_exist=True).kind == "http"
        dead = "http://127.0.0.1:9"
        with pytest.raises(FabricConnectionError, match="repro serve"):
            resolve_store(dead, must_exist=True)

    def test_merge_into_remote_uses_batched_path(self, tmp_path, server,
                                                 remote):
        local = ShardStore(tmp_path / "local")
        cache = RunCache(local)
        list(iter_runs([req(seed=s) for s in range(6)],
                       run_fn=_instant_run, store=cache))
        assert merge_into(remote, local) == (6, 0)
        assert merge_into(remote, local) == (0, 6)  # idempotent
        assert set(remote.keys()) == set(local.keys())

    def test_merge_from_remote_into_local(self, tmp_path, remote):
        for key, _request, fingerprint, record in _seed_rows(4):
            remote.put(key, record, fingerprint=fingerprint)
        local = ShardStore(tmp_path / "pulled")
        assert merge_into(local, remote.path) == (4, 0)
        assert set(local.keys()) == set(remote.keys())


# ----------------------------------------------------------------------
# executor against a served store
# ----------------------------------------------------------------------
class TestExecutorOverRemote:
    def test_serial_sweep_misses_then_hits(self, remote):
        requests = [req(seed=s) for s in range(5)]
        cold = list(iter_runs(requests, run_fn=_instant_run,
                              store=RunCache(remote)))
        assert all(e.stored for e in cold if e.terminal)
        warm_cache = RunCache(RemoteStore(remote.path))
        warm = list(iter_runs(requests, run_fn=_instant_run,
                              store=warm_cache))
        assert [e.kind for e in warm] == ["hit"] * 5
        assert warm_cache.session_stats[0] == 5

    def test_pool_workers_write_back_over_http(self, remote):
        # writeback=(url, "http"): pool workers reopen the RemoteStore
        # by URL and bulk-upload their chunks directly.
        requests = [req(seed=s) for s in range(12)]
        cache = RunCache(remote)
        events = list(iter_runs(requests, jobs=2, chunk_size=3,
                                run_fn=_instant_run, store=cache,
                                force_pool=True))
        terminal = [e for e in events if e.terminal]
        assert sorted(e.index for e in terminal) == list(range(12))
        assert all(e.stored for e in terminal)
        assert all(e.record is None for e in events)
        assert len(remote) == 12


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------
class TestCoordinator:
    def _grid(self, n=40):
        return [req(seed=s, protocol=ProtocolSpec.of(p))
                for s in range(n // 2) for p in ("quic", "tcp")]

    def _control_report(self, tmp_path, requests):
        control = RunCache(ShardStore(tmp_path / "control"))
        list(iter_runs(requests, run_fn=_instant_run, store=control))
        return build_store_report(control.store).replace(
            str(control.store.path), "STORE")

    def test_two_worker_sweep_byte_identical_report(self, tmp_path, server):
        requests = self._grid()
        expected = self._control_report(tmp_path, requests)
        events = list(iter_fabric_runs(requests, server.url, workers=2,
                                       sync_every=4, run_fn=_instant_run,
                                       workdir=str(tmp_path / "wd")))
        terminal = [e for e in events if e.terminal]
        assert sorted(e.index for e in terminal) == list(
            range(len(requests)))
        assert len(terminal) == len(requests)
        fabric = build_store_report(server.store).replace(
            str(server.store.path), "STORE")
        assert fabric == expected

    def test_rerun_is_all_hits(self, tmp_path, server):
        requests = self._grid(12)
        run_fabric_sweep(requests, server.url, workers=2,
                         run_fn=_instant_run)
        summary = run_fabric_sweep(requests, server.url, workers=2,
                                   run_fn=_instant_run)
        assert summary == {"requests": 12, "hits": 12, "completed": 0,
                           "failed": 0, "retries": 0}

    def test_killed_worker_resumes_byte_identical(self, tmp_path, server):
        requests = self._grid(60)
        expected = self._control_report(tmp_path, requests)

        pids = {}
        spawns = []

        def on_start(worker_id, pid):
            pids[worker_id] = pid
            spawns.append(worker_id)

        terminal_count = 0
        killed = False
        stream = iter_fabric_runs(requests, server.url, workers=2,
                                  sync_every=4, run_fn=_slow_run,
                                  workdir=str(tmp_path / "wd"),
                                  on_worker_start=on_start)
        seen = []
        for event in stream:
            if event.terminal:
                terminal_count += 1
                seen.append(event.index)
            if not killed and terminal_count >= len(requests) // 2:
                os.kill(pids[0], signal.SIGKILL)
                killed = True
        assert killed
        assert len(spawns) > 2  # worker 0 was respawned
        assert sorted(seen) == list(range(len(requests)))
        assert len(seen) == len(requests)  # no duplicated terminals
        fabric = build_store_report(server.store).replace(
            str(server.store.path), "STORE")
        assert fabric == expected

    def test_coordinator_kill_then_full_rerun_resumes(self, tmp_path,
                                                      server):
        # killing the *coordinator* (generator close) loses nothing
        # either: a rerun's /missing probe shrinks to the absent cells.
        requests = self._grid(40)
        expected = self._control_report(tmp_path, requests)
        stream = iter_fabric_runs(requests, server.url, workers=2,
                                  sync_every=2, run_fn=_slow_run)
        landed = 0
        for event in stream:
            if event.terminal:
                landed += 1
            if landed >= 10:
                break
        stream.close()
        summary = run_fabric_sweep(requests, server.url, workers=2,
                                   run_fn=_instant_run)
        assert summary["hits"] >= 1  # the pre-kill uploads were kept
        assert summary["requests"] == len(requests)
        fabric = build_store_report(server.store).replace(
            str(server.store.path), "STORE")
        assert fabric == expected

    def test_worker_exception_raises_fabric_error(self, server):
        def _boom(request):  # fork start method: closures are fine
            raise SystemExit(3)

        with pytest.raises(FabricWorkerError, match="worker"):
            list(iter_fabric_runs([req(seed=s) for s in range(4)],
                                  server.url, workers=1, run_fn=_boom,
                                  max_restarts=0))

    def test_unreachable_server_fails_before_spawning(self):
        with pytest.raises(FabricConnectionError, match="repro serve"):
            list(iter_fabric_runs([req()], "http://127.0.0.1:9",
                                  workers=2, run_fn=_instant_run))

    def test_empty_request_list(self, server):
        assert list(iter_fabric_runs([], server.url)) == []


# ----------------------------------------------------------------------
# concurrent remote access
# ----------------------------------------------------------------------
def _upload_range(url, start, stop, out):
    from repro.store import record_to_dict

    remote = RemoteStore(url)
    rows = []
    for seed in range(start, stop):
        request = req(seed=seed)
        fingerprint = fingerprint_for(request)
        key = run_key(request, fingerprint=fingerprint)
        rows.append((key, None, fingerprint,
                     record_to_dict(_instant_run(request))))
    out.put(remote.upload_rows(rows))


class TestConcurrentRemoteAccess:
    def test_overlapping_uploads_no_lost_torn_duplicated(self, remote):
        """Two processes bulk-upload overlapping key ranges; the server
        ends with exactly the union, every row intact."""
        ctx = multiprocessing.get_context()
        out = ctx.Queue()
        writers = [ctx.Process(target=_upload_range,
                               args=(remote.path, 0, 30, out)),
                   ctx.Process(target=_upload_range,
                               args=(remote.path, 20, 50, out))]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        assert out.get(timeout=5) == 30
        assert out.get(timeout=5) == 30
        # union of [0,30) and [20,50): exactly 50 keys, none torn
        assert len(remote) == 50
        seeds = set()
        for key in remote.keys():
            record = remote.get(key)
            assert record is not None and record.complete
            assert record.plt == pytest.approx(
                record.request.seed / 10.0 + 0.1)
            seeds.add(record.request.seed)
        assert seeds == set(range(50))


# ----------------------------------------------------------------------
# friendly errors
# ----------------------------------------------------------------------
class TestFriendlyErrors:
    def test_connection_refused_names_repro_serve(self):
        dead = RemoteStore("http://127.0.0.1:9", retries=0)
        with pytest.raises(FabricConnectionError) as err:
            dead.healthz()
        message = str(err.value)
        assert "repro serve" in message
        assert "127.0.0.1:9" in message

    def test_schema_mismatch_refuses_before_data_moves(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setattr(server_module, "KEY_SCHEMA_VERSION", 99)
        with StoreServer(ShardStore(tmp_path / "old"), port=0) as srv:
            remote = RemoteStore(srv.url)
            with pytest.raises(SchemaMismatchError) as err:
                remote.missing(["0" * 64])
            message = str(err.value)
            assert "v99" in message
            assert f"v{KEY_SCHEMA_VERSION}" in message
            assert len(srv.store) == 0
            # the raw handshake itself stays readable for diagnostics
            assert remote.healthz()["key_schema_version"] == 99
            # ...and uploads are refused too
            key, _request, fingerprint, record = _seed_rows(1)[0]
            with pytest.raises(SchemaMismatchError):
                remote.put(key, record, fingerprint=fingerprint)
            assert len(srv.store) == 0

    def test_cli_reports_fabric_errors_actionably(self, capsys):
        from repro.cli import main

        code = main(["report", "--from-store", "http://127.0.0.1:9"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "repro serve" in err

    def test_cli_serve_rejects_url_store(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="local"):
            main(["serve", "--store", "http://127.0.0.1:9"])

    def test_cli_rejects_cache_plus_store_url(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="not both"):
            main(["compare", "--runs", "1",
                  "--cache", str(tmp_path / "x.sqlite"),
                  "--store-url", "http://127.0.0.1:9"])


# ----------------------------------------------------------------------
# CLI end-to-end (report --from-store over HTTP)
# ----------------------------------------------------------------------
class TestCliOverRemote:
    def test_report_from_store_url(self, tmp_path, server, capsys):
        from repro.cli import main

        requests = [req(seed=s) for s in range(4)]
        run_fabric_sweep(requests, server.url, workers=2,
                         run_fn=_instant_run)
        assert main(["report", "--from-store", server.url]) == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out
        assert server.url in out

    def test_store_stats_over_url(self, server, remote, capsys):
        from repro.cli import main

        key, _request, fingerprint, record = _seed_rows(1)[0]
        remote.put(key, record, fingerprint=fingerprint)
        assert main(["store", "--store", server.url, "stats"]) == 0
        out = capsys.readouterr().out
        assert "[http]" in out and "1 stored" in out

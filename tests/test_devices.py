"""Tests for device CPU models and the packet processor."""

import random

import pytest

from repro.devices import (
    DESKTOP,
    DEVICE_PROFILES,
    MOTOG,
    NEXUS6,
    DeviceProfile,
    PacketProcessor,
)
from repro.netem.sim import Simulator


class TestProfiles:
    def test_registry(self):
        assert set(DEVICE_PROFILES) == {"desktop", "nexus6", "motog"}

    def test_desktop_is_free(self):
        assert DESKTOP.quic_packet_cost == 0.0
        assert DESKTOP.quic_consume_cost == 0.0

    def test_phone_ordering(self):
        """Older phone = slower: MotoG > Nexus6 > desktop on every cost."""
        for attr in ("quic_packet_cost", "quic_consume_cost",
                     "tcp_packet_cost", "crypto_setup_cost"):
            assert getattr(MOTOG, attr) >= getattr(NEXUS6, attr) > \
                getattr(DESKTOP, attr) - 1e-12

    def test_quic_costs_exceed_tcp(self):
        """Userspace QUIC consume path costs more than kernel TCP."""
        for profile in (NEXUS6, MOTOG):
            assert profile.quic_consume_cost > profile.tcp_packet_cost

    def test_packet_cost_lookup(self):
        assert MOTOG.packet_cost("quic") == MOTOG.quic_packet_cost
        assert MOTOG.packet_cost("tcp") == MOTOG.tcp_packet_cost
        with pytest.raises(ValueError):
            MOTOG.packet_cost("sctp")


class TestPacketProcessor:
    def test_zero_cost_is_inline(self):
        sim = Simulator()
        out = []
        proc = PacketProcessor(sim, 0.0, out.append)
        proc.submit("a")
        assert out == ["a"]  # no event needed
        assert sim.pending_events() == 0

    def test_items_processed_in_fifo_order(self):
        sim = Simulator()
        out = []
        proc = PacketProcessor(sim, 0.001, out.append, cost_jitter=0.0)
        for item in ("a", "b", "c"):
            proc.submit(item)
        sim.run()
        assert out == ["a", "b", "c"]

    def test_per_item_cost_serialises(self):
        sim = Simulator()
        stamps = []
        proc = PacketProcessor(sim, 0.01, lambda i: stamps.append(sim.now),
                               cost_jitter=0.0)
        for _ in range(3):
            proc.submit(object())
        sim.run()
        assert stamps == pytest.approx([0.01, 0.02, 0.03])

    def test_backlog_reflects_queue(self):
        sim = Simulator()
        proc = PacketProcessor(sim, 0.01, lambda i: None, cost_jitter=0.0)
        for _ in range(5):
            proc.submit(object())
        assert proc.backlog == 5
        sim.run()
        assert proc.backlog == 0
        assert proc.processed == 5

    def test_jitter_varies_cost_within_bounds(self):
        sim = Simulator()
        stamps = []
        proc = PacketProcessor(sim, 0.01, lambda i: stamps.append(sim.now),
                               rng=random.Random(1), cost_jitter=0.2)
        for _ in range(50):
            proc.submit(object())
        sim.run()
        gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        assert all(0.008 - 1e9 * 0 <= g <= 0.012 + 1e-9 for g in gaps)
        assert len(set(round(g, 6) for g in gaps)) > 1

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            PacketProcessor(Simulator(), -1e-6, lambda i: None)

    def test_submissions_during_processing_are_queued(self):
        sim = Simulator()
        out = []
        proc = PacketProcessor(sim, 0.01, out.append, cost_jitter=0.0)
        proc.submit(1)
        sim.schedule(0.005, proc.submit, 2)
        sim.run()
        assert out == [1, 2]

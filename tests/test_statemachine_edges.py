"""Edge cases for the Synoptic-lite inference and invariant miner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.statemachine import (
    Invariant,
    StateMachineModel,
    infer_from_sequences,
)

states = st.sampled_from(["A", "B", "C", "D"])
sequences = st.lists(st.lists(states, min_size=1, max_size=12),
                     min_size=1, max_size=12)


class TestModelEdges:
    def test_single_state_sequence(self):
        model = infer_from_sequences([["A"]])
        assert model.states == {"A"}
        assert model.edge_count() == 0
        assert model.transition_probabilities() == {}

    def test_self_loop_counted(self):
        model = infer_from_sequences([["A", "A", "B"]])
        assert model.transition_counts[("A", "A")] == 1
        assert model.has_transition("A", "A")

    def test_summary_on_empty_model(self):
        model = StateMachineModel()
        assert "states: 0" in model.summary()

    def test_dot_without_dwell(self):
        model = infer_from_sequences([["A", "B"]])
        dot = model.to_dot()
        assert '"A" [label="A"];' in dot


@settings(max_examples=150, deadline=None)
@given(sequences)
def test_probabilities_are_distributions(seqs):
    model = infer_from_sequences(seqs)
    probs = model.transition_probabilities()
    outgoing = {}
    for (a, _b), p in probs.items():
        assert 0.0 < p <= 1.0
        outgoing[a] = outgoing.get(a, 0.0) + p
    for total in outgoing.values():
        assert total == pytest.approx(1.0)


@settings(max_examples=150, deadline=None)
@given(sequences)
def test_transition_counts_match_sequence_lengths(seqs):
    model = infer_from_sequences(seqs)
    total_transitions = sum(model.transition_counts.values())
    expected = sum(len(s) - 1 for s in seqs)
    assert total_transitions == expected


@settings(max_examples=100, deadline=None)
@given(sequences)
def test_mined_invariants_actually_hold(seqs):
    """Soundness of the miner: re-check every mined invariant directly."""
    invariants = StateMachineModel.mine_invariants(seqs)
    for inv in invariants:
        for seq in seqs:
            positions_x = [i for i, s in enumerate(seq) if s == inv.first]
            positions_y = [i for i, s in enumerate(seq) if s == inv.second]
            if inv.kind == "AFby":
                for i in positions_x:
                    assert any(j > i for j in positions_y), str(inv)
            elif inv.kind == "NFby":
                for i in positions_x:
                    assert not any(j > i for j in positions_y), str(inv)
            elif inv.kind == "AP":
                if positions_y:
                    assert positions_x and min(positions_x) < min(positions_y), \
                        str(inv)


@settings(max_examples=100, deadline=None)
@given(sequences)
def test_afby_and_nfby_disjoint(seqs):
    invariants = StateMachineModel.mine_invariants(seqs)
    afby = {(i.first, i.second) for i in invariants if i.kind == "AFby"}
    nfby = {(i.first, i.second) for i in invariants if i.kind == "NFby"}
    # A pair can satisfy both only if `first` never occurs... in which
    # case both vacuously hold; otherwise they contradict.
    occurring = set()
    for seq in seqs:
        occurring.update(seq)
    for pair in afby & nfby:
        assert pair[0] not in occurring

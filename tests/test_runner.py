"""Tests for the high-level experiment drivers."""

import pytest

from repro.core.runner import (
    compare_page_load,
    compare_quic_variants,
    build_plt_heatmap,
    measure_plts,
    run_bulk_transfer,
    run_fairness,
    run_page_load,
)
from repro.devices import MOTOG
from repro.http import page, single_object_page
from repro.netem import emulated, fairness_bottleneck
from repro.quic import quic_config

FAST = emulated(100.0)
MEDIUM = emulated(10.0)


class TestRunPageLoad:
    def test_returns_complete_result(self):
        out = run_page_load(MEDIUM, single_object_page(100_000), "quic", seed=1)
        assert out.result.complete
        assert out.plt > 0

    def test_deterministic_for_same_seed(self):
        a = run_page_load(MEDIUM, single_object_page(100_000), "quic", seed=7)
        b = run_page_load(MEDIUM, single_object_page(100_000), "quic", seed=7)
        assert a.plt == b.plt

    def test_different_seeds_vary(self):
        plts = {run_page_load(MEDIUM, single_object_page(100_000), "quic",
                              seed=s).plt for s in range(5)}
        assert len(plts) > 1  # server noise decorrelates rounds

    def test_trace_collection(self):
        out = run_page_load(MEDIUM, single_object_page(500_000), "quic",
                            seed=1, trace=True)
        assert len(out.server_trace.state_sequence()) >= 2

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            run_page_load(MEDIUM, single_object_page(1000), "sctp")

    def test_device_parameter(self):
        fast = run_page_load(emulated(50.0), single_object_page(5_000_000),
                             "quic", seed=1).plt
        slow = run_page_load(emulated(50.0), single_object_page(5_000_000),
                             "quic", seed=1, device=MOTOG).plt
        assert slow > fast


class TestComparisons:
    def test_measure_plts_counts_runs(self):
        plts = measure_plts(MEDIUM, single_object_page(50_000), "quic", runs=4)
        assert len(plts) == 4

    def test_compare_page_load_produces_cell(self):
        cell = compare_page_load(MEDIUM, single_object_page(100_000), runs=4)
        assert len(cell.quic) == len(cell.tcp) == 4
        assert cell.winner in ("quic", "tcp", "inconclusive")

    def test_quic_variant_comparison(self):
        cell = compare_quic_variants(
            FAST, single_object_page(10_000),
            treatment_cfg=quic_config(34, zero_rtt=True),
            baseline_cfg=quic_config(34, zero_rtt=False),
            runs=4,
        )
        assert cell.pct_diff > 0  # 0-RTT wins for small objects

    def test_heatmap_builder(self):
        hm = build_plt_heatmap(
            "test grid",
            scenarios=[MEDIUM],
            pages=[single_object_page(20_000), single_object_page(200_000)],
            runs=3,
        )
        assert len(hm.cells) == 2
        assert hm.render()


class TestFairness:
    def test_quic_vs_tcp_unfair(self):
        result = run_fairness(n_quic=1, n_tcp=1, duration=20.0, seed=1)
        assert set(result.average_mbps) == {"quic", "tcp"}
        assert result.quic_share() > 0.5  # the paper's headline unfairness
        total = sum(result.average_mbps.values())
        assert total <= 5.5  # can't exceed the bottleneck

    def test_flow_series_recorded(self):
        result = run_fairness(n_quic=1, n_tcp=1, duration=10.0, seed=2)
        assert len(result.series["quic"]) > 10

    def test_multiple_tcp_flows(self):
        result = run_fairness(n_quic=1, n_tcp=2, duration=15.0, seed=1)
        assert set(result.average_mbps) == {"quic", "tcp1", "tcp2"}


class TestBulkTransfer:
    def test_records_cwnd_series(self):
        result = run_bulk_transfer(MEDIUM, 1_000_000, "quic", seed=1)
        assert result.elapsed > 0
        assert result.throughput_mbps > 5
        assert len(result.cwnd_series) > 3

    def test_tcp_variant(self):
        result = run_bulk_transfer(MEDIUM, 1_000_000, "tcp", seed=1)
        assert result.protocol == "tcp"
        assert result.losses >= 0

    def test_variable_bandwidth(self):
        result = run_bulk_transfer(
            FAST, 5_000_000, "quic", seed=1,
            variable_bw=(50.0, 150.0, 1.0),
        )
        assert 20 < result.throughput_mbps < 160

"""Tests for the pluggable CC kernel layer (``repro.transport.cc.kernels``).

Pins the refactor's two contracts: (1) the Reno kernel driving
:class:`FlowTable` reproduces the pre-refactor hardcoded AIMD manyflow
outcomes byte-for-byte (fixed-seed goldens captured on the last commit
before the kernel extraction, with ``batch_quantum=0``), and (2) each
adapter class delegates its window arithmetic to its kernel — an
identically-parameterised standalone kernel stepped with the mirror
call sequence tracks the adapter's cwnd exactly.
"""

from __future__ import annotations

import pytest

from repro.core.manyflow import (
    ManyflowConfig,
    ManyflowEngine,
    manyflow_scenario,
)
from repro.transport.cc import BBR, CubicCC, CubicConfig
from repro.transport.cc.kernels import (
    BBRKernel,
    CubicKernel,
    KERNEL_NAMES,
    RenoKernel,
    make_kernel,
)
from repro.transport.flowtable import FlowTable, QUIC_PARAMS, TCP_PARAMS
from repro.transport.rtt import RttEstimator

# ----------------------------------------------------------------------
# Fixed-seed goldens captured on the commit *before* the kernel
# extraction: ManyflowConfig(flows=40, duration=120.0), per-packet
# scheduling (batch_quantum=0.0), default manyflow_scenario().  The
# refactored reno path must reproduce every float exactly.
# ----------------------------------------------------------------------
PRE_REFACTOR_CLEAN = {
    0: {
        "flows": 40.0,
        "flows_completed": 40.0,
        "plt_p10": 0.04133276351455791,
        "plt_p50": 0.12013580522383183,
        "plt_p90": 0.17395644227008164,
        "plt_p99": 0.23596403560877965,
        "plt_quic_p50": 0.09518652938710595,
        "plt_tcp_p50": 0.13126182207929704,
        "jain_index": 0.5300987401645206,
        "quic_share": 0.7462509936309671,
        "bytes_acked": 5206913.0,
        "packets_delivered": 3878.0,
        "acks_processed": 3878.0,
        "tx_completions": 3878.0,
        "logical_events": 11634.0,
        "heap_events": 60043.0,
        "queue_drops": 0.0,
        "loss_drops": 0.0,
        "codel_drops": 0.0,
        "sim_time": 120.0,
    },
    7: {
        "flows": 40.0,
        "flows_completed": 40.0,
        "plt_p10": 0.043735033300934895,
        "plt_p50": 0.1870129930295228,
        "plt_p90": 0.8145334446702484,
        "plt_p99": 1.5092875641953856,
        "plt_quic_p50": 0.11474604260227811,
        "plt_tcp_p50": 0.23624621519232175,
        "jain_index": 0.47037844902233994,
        "quic_share": 0.17241696357647646,
        "bytes_acked": 10136636.0,
        "packets_delivered": 7532.0,
        "acks_processed": 7532.0,
        "tx_completions": 7532.0,
        "logical_events": 22596.0,
        "heap_events": 169974.0,
        "queue_drops": 658.0,
        "loss_drops": 0.0,
        "codel_drops": 0.0,
        "sim_time": 120.0,
    },
}

#: Same shape, on a lossy bottleneck — exercises the on_loss/on_timeout
#: kernel paths: manyflow_scenario(rate_mbps=20.0, loss_rate=0.01), seed 3.
PRE_REFACTOR_LOSSY = {
    "flows": 40.0,
    "flows_completed": 40.0,
    "plt_p10": 0.15493280658181394,
    "plt_p50": 0.826198275498897,
    "plt_p90": 1.662558593324732,
    "plt_p99": 5.829252258477377,
    "plt_quic_p50": 1.0814113999140136,
    "plt_tcp_p50": 0.7914501891625794,
    "jain_index": 0.416268058460452,
    "quic_share": 0.7302700165509449,
    "bytes_acked": 5831087.0,
    "packets_delivered": 4340.0,
    "acks_processed": 4340.0,
    "tx_completions": 4385.0,
    "logical_events": 13065.0,
    "heap_events": 15751.0,
    "queue_drops": 815.0,
    "loss_drops": 45.0,
    "codel_drops": 0.0,
    "sim_time": 120.0,
}


def run_metrics(config, scenario=None, seed=0, batch_quantum=0.0):
    engine = ManyflowEngine(scenario or manyflow_scenario(), config,
                            seed=seed, batch_quantum=batch_quantum)
    metrics = engine.run()
    # rate_p50 is a post-refactor addition (the model-fit observable);
    # everything the pre-refactor engine produced must be untouched.
    return {k: v for k, v in metrics.items() if k != "rate_p50"}


class TestPreRefactorGoldens:
    @pytest.mark.parametrize("seed", sorted(PRE_REFACTOR_CLEAN))
    def test_clean_golden_byte_identical(self, seed):
        config = ManyflowConfig(flows=40, duration=120.0)
        assert run_metrics(config, seed=seed) == PRE_REFACTOR_CLEAN[seed]

    def test_lossy_golden_byte_identical(self):
        config = ManyflowConfig(flows=40, duration=120.0)
        scenario = manyflow_scenario(rate_mbps=20.0, loss_rate=0.01)
        assert run_metrics(config, scenario, seed=3) == PRE_REFACTOR_LOSSY


class TestManyflowCcAxis:
    def test_label_suffixes_non_default_kernel(self):
        assert ManyflowConfig(flows=30).label == "manyflow-30f-droptail"
        assert ManyflowConfig(flows=30, cc="bbr").label == \
            "manyflow-30f-droptail-bbr"

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            ManyflowConfig(cc="vegas")

    @pytest.mark.parametrize("cc", KERNEL_NAMES)
    def test_batched_identical_to_per_packet(self, cc):
        """The batching contract holds on every point of the CC axis."""
        config = ManyflowConfig(flows=30, duration=60.0, cc=cc)
        scenario = manyflow_scenario(rate_mbps=20.0, loss_rate=0.005)
        batched = run_metrics(config, scenario, seed=2,
                              batch_quantum=0.002)
        per_packet = run_metrics(config, scenario, seed=2,
                                 batch_quantum=0.0)
        batched.pop("heap_events")
        per_packet.pop("heap_events")
        assert batched == per_packet

    def test_kernels_actually_differ(self):
        config = dict(flows=30, duration=60.0)
        scenario = manyflow_scenario(rate_mbps=20.0, loss_rate=0.005)
        outcomes = {
            cc: run_metrics(ManyflowConfig(cc=cc, **config), scenario)
            for cc in KERNEL_NAMES
        }
        assert outcomes["reno"] != outcomes["cubic"]
        assert outcomes["reno"] != outcomes["bbr"]


class TestMakeKernel:
    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_kernel("vegas", QUIC_PARAMS)

    def test_flowtable_validates_cc(self):
        with pytest.raises(ValueError):
            FlowTable(4, cc="vegas")

    def test_reno_mirrors_flow_params(self):
        kernel = make_kernel("reno", QUIC_PARAMS)
        assert isinstance(kernel, RenoKernel)
        assert kernel.cwnd == QUIC_PARAMS.initial_window
        assert kernel.max_cwnd == QUIC_PARAMS.max_cwnd
        assert kernel.beta == QUIC_PARAMS.beta

    def test_cubic_scales_alpha_for_emulated_connections(self):
        quic = make_kernel("cubic", QUIC_PARAMS)
        tcp = make_kernel("cubic", TCP_PARAMS)
        assert isinstance(quic, CubicKernel)
        # QUIC's N=2 emulation quadruples the per-connection alpha term.
        n = QUIC_PARAMS.emulated_connections
        assert n == 2
        expected = 3.0 * n * n * (1.0 - QUIC_PARAMS.beta) \
            / (1.0 + QUIC_PARAMS.beta)
        assert quic.reno_alpha == pytest.approx(expected)
        assert tcp.reno_alpha < quic.reno_alpha

    def test_bbr_has_no_ssthresh(self):
        kernel = make_kernel("bbr", TCP_PARAMS)
        assert isinstance(kernel, BBRKernel)
        assert kernel.ssthresh == float("inf")


class TestRenoKernelSteps:
    def test_slow_start_then_avoidance(self):
        kernel = RenoKernel(initial_cwnd=2.0, max_cwnd=100.0, beta=0.7,
                            ssthresh=4.0)
        kernel.on_ack(2)
        assert kernel.cwnd == 4.0  # slow start: +1 per acked packet
        kernel.on_ack(2)
        assert kernel.cwnd == 4.5  # CA: +acked/cwnd

    def test_loss_and_timeout(self):
        kernel = RenoKernel(initial_cwnd=10.0, max_cwnd=100.0, beta=0.7)
        kernel.on_loss()
        assert kernel.cwnd == pytest.approx(7.0)
        assert kernel.ssthresh == pytest.approx(7.0)
        kernel.on_timeout()
        assert kernel.cwnd == 2.0
        assert kernel.ssthresh == pytest.approx(4.9)

    def test_macw_cap(self):
        kernel = RenoKernel(initial_cwnd=9.5, max_cwnd=10.0, beta=0.7,
                            ssthresh=100.0)
        kernel.on_ack(5)
        assert kernel.cwnd == 10.0


class TestKernelAdapterEquivalence:
    """A standalone kernel stepped with the adapter's mirror calls
    tracks the adapter's window exactly — the delegation contract."""

    def test_cubic(self):
        config = CubicConfig(prr=False, hybrid_slow_start=False)
        rtt = RttEstimator()
        cc = CubicCC(config, rtt)
        mirror = CubicKernel(
            mss=config.mss,
            initial_cwnd=config.initial_cwnd_packets * config.mss,
            min_cwnd=config.min_cwnd_packets * config.mss,
            max_cwnd=config.max_cwnd_packets * config.mss,
            ssthresh=float("inf"),
            cubic_c=config.cubic_c,
            beta=config.scaled_beta(),
            reno_alpha=config.reno_alpha(),
        )
        cc.on_connection_start(0.0)
        cc.on_receiver_buffer(200 * config.mss)
        mirror.ssthresh = float(200 * config.mss)
        now = 0.0
        for step in range(400):
            now += 0.01
            rtt.on_sample(0.05, now)
            cc.on_ack(now, config.mss, cwnd_limited=True)
            mirror.on_ack(config.mss, now, rtt.smoothed_rtt(),
                          rtt.min_rtt())
            assert cc.kernel.cwnd == mirror.cwnd, step
            if step in (150, 290):
                in_flight = int(cc.kernel.cwnd)
                cc.on_congestion_event(now, in_flight)
                mirror.on_loss(now, float(in_flight))
                cc.on_recovery_exit(now)
                mirror.on_recovery_exit()
                assert cc.kernel.cwnd == mirror.cwnd
            if step == 350:
                cc.on_retransmission_timeout(now)
                mirror.on_timeout(now)
                assert cc.kernel.cwnd == mirror.cwnd
        assert cc.ssthresh == mirror.ssthresh

    def test_bbr(self):
        rtt = RttEstimator()
        cc = BBR(rtt, mss=1350)
        mirror = BBRKernel(mss=1350)
        cc.on_connection_start(0.0)
        mirror.min_rtt_stamp = 0.0
        now = 0.0
        for step in range(600):
            now += 0.01
            rtt.on_sample(0.04, now)
            cc.on_rtt_sample(now, 0.04)
            mirror.on_rtt_sample(now, 0.04, rtt.min_rtt())
            cc.on_ack(now, 1350, cwnd_limited=True)
            mirror.on_ack(1350, now, rtt.smoothed_rtt(), rtt.min_rtt())
            assert cc.kernel.cwnd == mirror.cwnd, step
            assert cc.kernel.mode == mirror.mode, step
            if step == 400:
                cc.on_congestion_event(now, 8 * 1350)
                mirror.on_loss(now, 8 * 1350.0)
                assert cc.kernel.cwnd == mirror.cwnd
                cc.on_recovery_exit(now)
        # The filter and machine progressed past Startup.
        assert mirror.mode != "Startup"
        assert cc.pacing_rate() == mirror.pacing_rate(rtt.smoothed_rtt())

    def test_flowtable_reno(self):
        table = FlowTable(1, cc="reno")
        table.define_flow(0, 0.0, 500 * 1350, proto=1)
        table.activate(0, 0.0)
        mirror = make_kernel("reno", TCP_PARAMS)
        now = 0.0
        for step in range(300):
            now += 0.01
            table.rtt_update(0, 0.05, now)
            table.on_ack(0, 2, now)
            mirror.on_ack(2, now, table.srtt[0], table.min_rtt[0])
            assert table.cwnd[0] == mirror.cwnd, step
            if step == 120:
                table.on_loss_event(0, now)
                mirror.on_loss(now, float(table.inflight[0]))
                assert table.cwnd[0] == mirror.cwnd
            if step == 220:
                table.on_timeout(0, now)
                mirror.on_timeout(now)
                assert table.cwnd[0] == mirror.cwnd
        assert table.ssthresh[0] == mirror.ssthresh

"""Tests for the synthetic real-page corpus (Das-style workload)."""

import pytest

from repro.http import corpus_statistics, synthetic_corpus, synthetic_page
from repro.http.realpages import MAX_OBJECTS, MAX_OBJECT_BYTES


class TestGenerator:
    def test_deterministic_in_seed(self):
        assert synthetic_page(7).objects == synthetic_page(7).objects
        assert synthetic_page(7).objects != synthetic_page(8).objects

    def test_bounds_respected(self):
        for seed in range(50):
            page = synthetic_page(seed)
            assert 1 <= page.object_count <= MAX_OBJECTS
            for obj in page.objects:
                assert 200 <= obj.size_bytes <= MAX_OBJECT_BYTES

    def test_main_document_present(self):
        page = synthetic_page(3)
        assert 20 * 1024 <= page.objects[0].size_bytes <= 100 * 1024

    def test_heavy_tail_in_corpus(self):
        corpus = synthetic_corpus(100, seed=1)
        counts = [p.object_count for p in corpus]
        sizes = [o.size_bytes for p in corpus for o in p.objects]
        # Median modest, tail long — the HTTP-Archive shape.
        assert sorted(counts)[50] < 60
        assert max(counts) > 90
        assert max(sizes) > 40 * sorted(sizes)[len(sizes) // 2]

    def test_corpus_statistics(self):
        stats = corpus_statistics(synthetic_corpus(40, seed=2))
        assert stats["pages"] == 40
        assert stats["median_objects"] >= 1
        assert stats["max_total_kb"] >= stats["median_total_kb"]

    def test_corpus_validation(self):
        with pytest.raises(ValueError):
            synthetic_corpus(0)


class TestConflationDemonstration:
    def test_realistic_pages_conflate_size_and_count(self):
        """The paper's Table 1 critique, shown directly: across a real-
        page corpus, heavier pages also have more objects, so a corpus
        comparison cannot attribute differences to either factor."""
        corpus = synthetic_corpus(120, seed=3)
        counts = [p.object_count for p in corpus]
        totals = [p.total_bytes for p in corpus]
        n = len(corpus)
        mean_c = sum(counts) / n
        mean_t = sum(totals) / n
        cov = sum((c - mean_c) * (t - mean_t)
                  for c, t in zip(counts, totals)) / n
        var_c = sum((c - mean_c) ** 2 for c in counts) / n
        var_t = sum((t - mean_t) ** 2 for t in totals) / n
        correlation = cov / (var_c ** 0.5 * var_t ** 0.5)
        assert correlation > 0.3  # strongly conflated

    def test_corpus_loads_over_both_protocols(self):
        from repro.core.runner import run_page_load
        from repro.netem import emulated

        page = synthetic_page(5)
        for protocol in ("quic", "tcp"):
            out = run_page_load(emulated(20.0), page, protocol, seed=1)
            assert out.result.complete

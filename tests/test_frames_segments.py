"""Unit tests for QUIC frames / packets and TCP segment structures."""

import pytest

from repro.quic.fec import FecFrame, FecPacketPayload
from repro.quic.frames import (
    ACK_BLOCK_BYTES,
    ACK_FRAME_BASE,
    AckFrame,
    CryptoFrame,
    MaxDataFrame,
    MaxStreamDataFrame,
    QuicPacket,
    STREAM_FRAME_OVERHEAD,
    StreamFrame,
)
from repro.tcp.segment import Piece, SEGMENT_OVERHEAD, SegmentRecord, TcpSegment


class TestQuicFrames:
    def test_stream_frame_wire_size(self):
        frame = StreamFrame(1, 0, 1000)
        assert frame.wire_bytes == 1000 + STREAM_FRAME_OVERHEAD
        assert frame.end() == 1000

    def test_ack_frame_size_scales_with_blocks(self):
        one = AckFrame(10, 0.0, ((1, 10),))
        three = AckFrame(30, 0.0, ((25, 30), (15, 20), (1, 10)))
        assert one.wire_bytes == ACK_FRAME_BASE + ACK_BLOCK_BYTES
        assert three.wire_bytes == ACK_FRAME_BASE + 3 * ACK_BLOCK_BYTES

    def test_ack_frame_acked_numbers(self):
        ack = AckFrame(5, 0.0, ((4, 5), (1, 2)))
        assert sorted(ack.acked_numbers()) == [1, 2, 4, 5]

    def test_packet_payload_is_frame_sum(self):
        packet = QuicPacket("c", 1, [StreamFrame(1, 0, 100),
                                     MaxDataFrame(5000)])
        assert packet.payload_bytes == (100 + STREAM_FRAME_OVERHEAD) + 14

    @pytest.mark.parametrize("frames,expected", [
        ([StreamFrame(1, 0, 10)], True),
        ([CryptoFrame("chlo", 100)], True),
        ([MaxDataFrame(1)], True),
        ([MaxStreamDataFrame(1, 1)], True),
        ([AckFrame(1, 0.0, ((1, 1),))], False),
        ([], False),
    ])
    def test_retransmittable_classification(self, frames, expected):
        assert QuicPacket("c", 1, frames).retransmittable is expected

    def test_fec_packets_are_tracked(self):
        payload = FecPacketPayload(1, {1: []}, 1000)
        packet = QuicPacket("c", 2, [FecFrame(payload)])
        assert packet.retransmittable is True
        assert packet.payload_bytes == 1000

    def test_stream_frames_selector(self):
        packet = QuicPacket("c", 1, [AckFrame(1, 0.0, ((1, 1),)),
                                     StreamFrame(3, 0, 10)])
        assert [f.stream_id for f in packet.stream_frames()] == [3]


class TestTcpSegments:
    def test_data_segment_wire_size(self):
        seg = TcpSegment("c", "data", seq=0, length=1000)
        assert seg.wire_bytes == 1000 + SEGMENT_OVERHEAD
        assert seg.end == 1000

    def test_ctrl_segment_wire_size(self):
        seg = TcpSegment("c", "ctrl", ctrl="syn", ctrl_size=40)
        assert seg.wire_bytes == 40 + SEGMENT_OVERHEAD

    def test_piece_defaults(self):
        piece = Piece(7, 500)
        assert piece.total is None and piece.meta is None and not piece.fin

    def test_segment_record_end(self):
        record = SegmentRecord(1000, 500, 0.0, [])
        assert record.end == 1500
        assert record.retx_count == 0
        assert not record.declared_lost

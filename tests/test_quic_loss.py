"""Tests for QUIC NACK-threshold loss detection (Fig. 10 mechanics)."""

import pytest

from repro.core.instrumentation import Trace
from repro.quic.config import quic_config
from repro.quic.loss import LossDetector, SentPacketRecord


def make_detector(**cfg_kwargs):
    cfg = quic_config(34)
    for key, value in cfg_kwargs.items():
        setattr(cfg, key, value)
    return LossDetector(cfg, Trace(enabled=False))


def sent_map(*nums, t=0.0):
    return {n: SentPacketRecord(n, t, 1350) for n in nums}


class TestNackThreshold:
    def test_no_loss_below_threshold(self):
        det = make_detector()
        sent = sent_map(1, 2, 3)
        lost = det.detect(0.1, sent, missing=[1], newly_acked_sorted=[2, 3],
                          largest_acked=3, srtt=0.05)
        assert lost == []
        assert sent[1].nacks == 2

    def test_loss_at_threshold(self):
        det = make_detector()
        sent = sent_map(1, 2, 3, 4)
        lost = det.detect(0.1, sent, missing=[1], newly_acked_sorted=[2, 3, 4],
                          largest_acked=4, srtt=0.05)
        assert [r.pkt_num for r in lost] == [1]
        assert 1 not in sent
        assert det.losses_declared == 1

    def test_nacks_accumulate_across_acks(self):
        det = make_detector()
        sent = sent_map(1, 2, 3, 4)
        assert det.detect(0.1, sent, [1], [2], 2, 0.05) == []
        assert det.detect(0.2, sent, [1], [3], 3, 0.05) == []
        lost = det.detect(0.3, sent, [1], [4], 4, 0.05)
        assert [r.pkt_num for r in lost] == [1]

    def test_higher_threshold_tolerates_deeper_reordering(self):
        det = make_detector(nack_threshold=10)
        sent = sent_map(*range(1, 12))
        lost = det.detect(0.1, sent, [1], list(range(2, 11)), 10, 0.05)
        assert lost == []
        lost = det.detect(0.2, sent, [1], [11], 11, 0.05)
        assert [r.pkt_num for r in lost] == [1]

    def test_packets_at_or_above_largest_acked_safe(self):
        det = make_detector()
        sent = sent_map(5, 6, 7)
        lost = det.detect(0.1, sent, [5, 6, 7], [1, 2, 3], 3, 0.05)
        assert lost == []


class TestSpuriousDetection:
    def test_late_ack_counts_false_loss(self):
        det = make_detector()
        sent = sent_map(1, 2, 3, 4)
        det.detect(0.1, sent, [1], [2, 3, 4], 4, 0.05)
        record = det.note_ack_of_lost(0.2, 1, largest_acked=4)
        assert record is not None
        assert det.false_losses == 1

    def test_unknown_packet_not_spurious(self):
        det = make_detector()
        assert det.note_ack_of_lost(0.2, 99, largest_acked=100) is None

    def test_fixed_threshold_does_not_adapt(self):
        det = make_detector(adaptive_nack_threshold=False)
        sent = sent_map(1, 2, 3, 4)
        det.detect(0.1, sent, [1], [2, 3, 4], 4, 0.05)
        det.note_ack_of_lost(0.2, 1, largest_acked=10)
        assert det.threshold == 3

    def test_adaptive_threshold_raises_to_reorder_depth(self):
        det = make_detector(adaptive_nack_threshold=True)
        sent = sent_map(1, 2, 3, 4)
        det.detect(0.1, sent, [1], [2, 3, 4], 4, 0.05)
        det.note_ack_of_lost(0.2, 1, largest_acked=10)
        assert det.threshold == 10  # depth 9 + 1

    def test_adaptive_threshold_capped(self):
        det = make_detector(adaptive_nack_threshold=True, nack_threshold_cap=20)
        sent = sent_map(1, 2, 3, 4)
        det.detect(0.1, sent, [1], [2, 3, 4], 4, 0.05)
        det.note_ack_of_lost(0.2, 1, largest_acked=500)
        assert det.threshold == 20


class TestTimeBased:
    def test_declaration_deferred_by_quarter_srtt(self):
        det = make_detector(time_based_loss=True)
        sent = sent_map(1, 2, 3, 4, t=0.0)
        lost = det.detect(0.01, sent, [1], [2, 3, 4], 4, srtt=0.1)
        assert lost == []
        assert det.next_eligible_time == pytest.approx(0.01 + 0.025)

    def test_declared_once_deferral_matures(self):
        det = make_detector(time_based_loss=True)
        sent = sent_map(1, 2, 3, 4, t=0.0)
        det.detect(0.01, sent, [1], [2, 3, 4], 4, srtt=0.1)
        # Recheck (no new acks) after the deferral window.
        lost = det.detect(0.04, sent, [1], [], 4, srtt=0.1)
        assert [r.pkt_num for r in lost] == [1]

    def test_late_arrival_cancels_pending_loss(self):
        det = make_detector(time_based_loss=True)
        sent = sent_map(1, 2, 3, 4, t=0.0)
        det.detect(0.01, sent, [1], [2, 3, 4], 4, srtt=0.1)
        # The reordered packet is acked before the deferral matures: the
        # connection removes it from `sent`, so the recheck finds nothing.
        del sent[1]
        lost = det.detect(0.04, sent, [1], [], 4, srtt=0.1)
        assert lost == []
        assert det.false_losses == 0


def test_declared_lost_pruning():
    det = make_detector()
    for n in range(1, 700):
        det.declared_lost[n] = SentPacketRecord(n, 0.0, 1350)
    det._prune(keep=512)
    assert len(det.declared_lost) == 512
    assert min(det.declared_lost) == 188

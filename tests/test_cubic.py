"""Tests for the shared Cubic congestion controller (Table 3 semantics)."""

import math

import pytest

from repro.core.instrumentation import Trace
from repro.transport.cc.cubic import CubicCC, CubicConfig
from repro.transport.cc.interface import CCState
from repro.transport.rtt import RttEstimator

MSS = 1350


def make_cc(trace=None, **cfg_kwargs):
    cfg = CubicConfig(**cfg_kwargs)
    rtt = RttEstimator(initial_rtt=0.05)
    rtt.on_sample(0.05, now=0.0)
    cc = CubicCC(cfg, rtt, trace=trace)
    cc.on_receiver_buffer(100 * 1024 * 1024)
    return cc, rtt


class TestConfig:
    def test_n_connection_beta_scaling(self):
        one = CubicConfig(num_emulated_connections=1)
        two = CubicConfig(num_emulated_connections=2)
        assert one.scaled_beta() == pytest.approx(0.7)
        assert two.scaled_beta() == pytest.approx(0.85)

    def test_n_connection_alpha_scaling(self):
        one = CubicConfig(num_emulated_connections=1)
        two = CubicConfig(num_emulated_connections=2)
        assert one.reno_alpha() == pytest.approx(3 * 0.3 / 1.7)
        assert two.reno_alpha() == pytest.approx(12 * 0.15 / 1.85)
        assert two.reno_alpha() > one.reno_alpha()


class TestSlowStart:
    def test_initial_window(self):
        cc, _ = make_cc(initial_cwnd_packets=32)
        assert cc.cwnd == 32 * MSS

    def test_exponential_growth_per_ack(self):
        cc, _ = make_cc()
        cc.on_connection_start(0.0)
        before = cc.cwnd
        cc.on_ack(0.01, 10 * MSS, cwnd_limited=True)
        assert cc.cwnd == before + 10 * MSS

    def test_no_growth_when_app_limited(self):
        cc, _ = make_cc()
        cc.on_connection_start(0.0)
        before = cc.cwnd
        cc.on_ack(0.01, 10 * MSS, cwnd_limited=False)
        assert cc.cwnd == before

    def test_in_slow_start_property(self):
        cc, _ = make_cc()
        assert cc.in_slow_start

    def test_buggy_ssthresh_forces_early_exit(self):
        """The Chromium-52 bug: ssthresh stuck at a small default."""
        cfg = CubicConfig(ssthresh_from_receiver_buffer=False,
                          buggy_initial_ssthresh_packets=50,
                          initial_cwnd_packets=32)
        rtt = RttEstimator(initial_rtt=0.05)
        cc = CubicCC(cfg, rtt)
        cc.on_receiver_buffer(100 * 1024 * 1024)  # bug: must be ignored
        assert cc.ssthresh == 50 * MSS
        cc.on_connection_start(0.0)
        for i in range(10):
            cc.on_ack(0.01 * i, 10 * MSS, cwnd_limited=True)
        assert not cc.in_slow_start  # exited at the tiny threshold

    def test_fixed_config_uses_receiver_buffer(self):
        cc, _ = make_cc()
        assert cc.ssthresh == 100 * 1024 * 1024

    def test_hss_exit_raises_ssthresh_to_cwnd(self):
        cc, rtt = make_cc()
        cc.on_connection_start(0.0)
        # Feed a full round of flat samples, then a round of inflated ones.
        for i in range(8):
            cc.on_rtt_sample(0.001 * i, 0.05)
        for i in range(8):
            cc.on_rtt_sample(0.06 + 0.001 * i, 0.09)
        assert cc.slow_start_exits_by_delay == 1
        assert cc.ssthresh == cc.cwnd
        assert not cc.in_slow_start


class TestLossResponse:
    def test_congestion_event_sets_ssthresh_beta(self):
        cc, _ = make_cc(num_emulated_connections=1, prr=False)
        cc.on_connection_start(0.0)
        cwnd = cc.cwnd
        cc.on_congestion_event(0.1, in_flight=cwnd)
        assert cc.in_recovery
        assert cc.ssthresh == pytest.approx(cwnd * 0.7)
        assert cc.state == CCState.RECOVERY.value

    def test_n2_backoff_is_gentler(self):
        cc1, _ = make_cc(num_emulated_connections=1)
        cc2, _ = make_cc(num_emulated_connections=2)
        for cc in (cc1, cc2):
            cc.on_connection_start(0.0)
            cc.on_congestion_event(0.1, in_flight=cc.cwnd)
        assert cc2.ssthresh > cc1.ssthresh

    def test_recovery_exit_restores_ssthresh_window(self):
        cc, _ = make_cc()
        cc.on_connection_start(0.0)
        cwnd = cc.cwnd
        cc.on_congestion_event(0.1, in_flight=cwnd)
        cc.on_recovery_exit(0.2)
        assert not cc.in_recovery
        assert cc.cwnd == pytest.approx(cwnd * 0.7, rel=0.01)  # beta, N=1

    def test_prr_gates_sending_during_recovery(self):
        cc, _ = make_cc(prr=True)
        cc.on_connection_start(0.0)
        cc.on_congestion_event(0.1, in_flight=cc.cwnd)
        assert cc.can_send_bytes(cc.cwnd) == 0
        cc.on_ack(0.15, 4 * MSS, cwnd_limited=True)
        assert cc.can_send_bytes(cc.cwnd - 4 * MSS) > 0

    def test_cubic_growth_after_recovery(self):
        cc, _ = make_cc()
        cc.on_connection_start(0.0)
        cc.on_congestion_event(0.1, in_flight=cc.cwnd)
        cc.on_recovery_exit(0.2)
        w = cc.cwnd
        t = 0.3
        for i in range(200):
            cc.on_ack(t, 2 * MSS, cwnd_limited=True)
            t += 0.01
        assert cc.cwnd > w  # grows along the cubic/Reno curve

    def test_rto_collapses_window(self):
        cc, _ = make_cc(min_cwnd_packets=2)
        cc.on_connection_start(0.0)
        cc.on_retransmission_timeout(0.5)
        assert cc.cwnd == 2 * MSS
        assert cc.state == CCState.RETRANSMISSION_TIMEOUT.value
        cc.on_rto_resolved(0.6)
        assert cc.state == CCState.SLOW_START.value
        assert cc.rto_events == 1


class TestMacw:
    def test_cwnd_capped_at_macw(self):
        cc, _ = make_cc(max_cwnd_packets=40)
        cc.on_connection_start(0.0)
        for i in range(100):
            cc.on_ack(0.01 * i, 10 * MSS, cwnd_limited=True)
        assert cc.cwnd == 40 * MSS

    def test_ca_maxed_state_when_capped(self):
        cc, _ = make_cc(max_cwnd_packets=40)
        cc.on_connection_start(0.0)
        for i in range(100):
            cc.on_ack(0.01 * i, 10 * MSS, cwnd_limited=True)
        assert cc.state == CCState.CA_MAXED.value

    def test_larger_macw_allows_larger_window(self):
        small, _ = make_cc(max_cwnd_packets=107)
        large, _ = make_cc(max_cwnd_packets=430)
        for cc in (small, large):
            cc.on_connection_start(0.0)
            for i in range(200):
                cc.on_ack(0.01 * i, 10 * MSS, cwnd_limited=True)
        assert small.cwnd == 107 * MSS
        assert large.cwnd == 430 * MSS

    def test_unlimited_macw(self):
        cc, _ = make_cc(max_cwnd_packets=None)
        cc.on_connection_start(0.0)
        for i in range(500):
            cc.on_ack(0.01 * i, 10 * MSS, cwnd_limited=True)
        assert cc.cwnd > 2000 * MSS


class TestStates:
    def test_initial_state_is_init(self):
        cc, _ = make_cc()
        assert cc.state == CCState.INIT.value

    def test_start_moves_to_slow_start(self):
        cc, _ = make_cc()
        cc.on_connection_start(0.0)
        assert cc.state == CCState.SLOW_START.value

    def test_application_limited_overlay(self):
        cc, _ = make_cc()
        cc.on_connection_start(0.0)
        cc.on_application_limited(0.1)
        assert cc.state == CCState.APPLICATION_LIMITED.value
        cc.on_packet_sent(0.2, MSS, False)
        assert cc.state == CCState.SLOW_START.value

    def test_app_limited_ignored_during_recovery(self):
        cc, _ = make_cc()
        cc.on_connection_start(0.0)
        cc.on_congestion_event(0.1, in_flight=cc.cwnd)
        cc.on_application_limited(0.2)
        assert cc.state == CCState.RECOVERY.value

    def test_tlp_state_round_trip(self):
        cc, _ = make_cc()
        cc.on_connection_start(0.0)
        cc.on_tail_loss_probe(0.1)
        assert cc.state == CCState.TAIL_LOSS_PROBE.value
        cc.on_tlp_resolved(0.2)
        assert cc.state == CCState.SLOW_START.value

    def test_transitions_logged_to_trace(self):
        trace = Trace("cc", enabled=True)
        cc, _ = make_cc(trace=trace)
        cc.on_connection_start(0.0)
        cc.on_congestion_event(0.1, in_flight=cc.cwnd)
        cc.on_recovery_exit(0.2)
        states = trace.state_sequence()
        assert states[:2] == [CCState.INIT.value, CCState.SLOW_START.value]
        assert CCState.RECOVERY.value in states

    def test_pacing_rate_higher_in_slow_start(self):
        cc, _ = make_cc()
        cc.on_connection_start(0.0)
        ss_rate = cc.pacing_rate()
        cc.on_congestion_event(0.1, in_flight=cc.cwnd)
        cc.on_recovery_exit(0.2)
        ca_rate = cc.pacing_rate()
        # 2.0x gain in slow start vs 1.25x in CA on a smaller window.
        assert ss_rate > ca_rate

    def test_pacing_disabled_returns_none(self):
        cc, _ = make_cc(pacing_gain_slow_start=None, pacing_gain_ca=None)
        assert cc.pacing_rate() is None

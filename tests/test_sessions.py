"""Tests for the 0-RTT session cache (cold vs warm clients)."""

import pytest

from repro.netem import Simulator, build_path, emulated
from repro.quic import SessionCache, open_quic_pair, quic_config

from .conftest import quic_download


class TestSessionCache:
    def test_miss_then_hit(self):
        cache = SessionCache()
        assert not cache.has_config("server")
        cache.store("server", now=1.0)
        assert cache.has_config("server", now=2.0)
        assert cache.hits == 1 and cache.misses == 1

    def test_expiry(self):
        cache = SessionCache(lifetime=10.0)
        cache.store("server", now=0.0)
        assert cache.has_config("server", now=5.0)
        assert not cache.has_config("server", now=20.0)
        assert "server" not in cache

    def test_clear_and_prewarm(self):
        cache = SessionCache().prewarmed("a", "b")
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0


def connect_once(cache, seed=1):
    """One full page-less connection; returns the handshake-ready time."""
    sim = Simulator()
    path = build_path(sim, emulated(100.0).with_(rtt_run_variation=0.0),
                      seed=seed)
    client, _server = open_quic_pair(
        sim, path.client, path.server, quic_config(34),
        request_handler=lambda m: m["size"], seed=seed,
        session_cache=cache,
    )
    ready = {}
    client.connect(lambda now: ready.update({"t": now}))
    if client.handshake_ready_time is not None:
        ready["t"] = client.handshake_ready_time
    done = {}
    client.request({"size": 5_000}, lambda s, m, t: done.update({1: t}))
    assert sim.run_until(lambda: 1 in done, timeout=10.0)
    return ready["t"], done[1]


class TestColdVsWarmClient:
    def test_first_contact_pays_rej_round(self):
        cache = SessionCache()
        ready_cold, done_cold = connect_once(cache)
        # Cold: one RTT for inchoate CHLO -> REJ.
        assert ready_cold == pytest.approx(0.036, rel=0.2)
        # The REJ populated the cache for next time.
        assert "server" in cache

    def test_second_contact_is_zero_rtt(self):
        cache = SessionCache()
        _ready_cold, done_cold = connect_once(cache, seed=1)
        ready_warm, done_warm = connect_once(cache, seed=1)
        assert ready_warm == 0.0
        assert done_warm < done_cold - 0.02  # a full RTT faster

    def test_no_cache_uses_config_default(self):
        # Without a cache the config's zero_rtt flag rules (paper mode).
        sim = Simulator()
        path = build_path(sim, emulated(100.0), seed=1)
        client, _ = open_quic_pair(sim, path.client, path.server,
                                   quic_config(34),
                                   request_handler=lambda m: m["size"])
        client.connect()
        assert client.handshake_ready_time == 0.0

"""Tests for root-cause analysis helpers (dwell, loss, slow-start reports)."""

import pytest

from repro.core.instrumentation import Trace
from repro.core.rootcause import (
    compare_dwell,
    loss_report,
    slow_start_report,
)
from repro.core.runner import run_page_load
from repro.devices import MOTOG
from repro.http import page, single_object_page
from repro.netem import emulated


def make_trace(*segments):
    """segments: (state, duration) pairs."""
    trace = Trace(enabled=True)
    t = 0.0
    for state, duration in segments:
        trace.log_state(t, state)
        t += duration
    trace.close(t)
    return trace


class TestDwellComparison:
    def test_fractions_and_delta(self):
        a = make_trace(("CA", 9.0), ("AppLimited", 1.0))
        b = make_trace(("CA", 4.0), ("AppLimited", 6.0))
        cmp = compare_dwell(a, b, "desktop", "motog")
        assert cmp.fractions_a["AppLimited"] == pytest.approx(0.1)
        assert cmp.delta("AppLimited") == pytest.approx(0.5)

    def test_dominant_shift(self):
        a = make_trace(("CA", 9.0), ("AppLimited", 1.0))
        b = make_trace(("CA", 4.0), ("AppLimited", 6.0))
        state, delta = compare_dwell(a, b).dominant_shift()
        assert state in ("AppLimited", "CA")
        assert abs(delta) == pytest.approx(0.5)

    def test_render_table(self):
        a = make_trace(("CA", 1.0))
        b = make_trace(("CA", 0.5), ("Recovery", 0.5))
        text = compare_dwell(a, b, "A", "B").render()
        assert "Recovery" in text and "delta" in text

    def test_mobile_dwell_shift_detected_end_to_end(self):
        """The Fig. 13 pipeline: desktop vs MotoG traces."""
        scn = emulated(50.0)
        desktop = run_page_load(scn, single_object_page(5_000_000), "quic",
                                seed=1, trace=True)
        motog = run_page_load(scn, single_object_page(5_000_000), "quic",
                              seed=1, trace=True, device=MOTOG)
        cmp = compare_dwell(desktop.server_trace, motog.server_trace)
        assert cmp.delta("ApplicationLimited") > 0.2


class TestLossReport:
    def test_quic_report(self):
        out = run_page_load(emulated(100.0, loss_pct=1.0),
                            single_object_page(1_000_000), "quic", seed=1)
        report = loss_report(out.server)
        assert report.protocol == "quic"
        assert report.losses_declared > 0
        assert report.final_threshold == 3
        assert "losses declared" in report.describe()

    def test_tcp_report(self):
        out = run_page_load(emulated(100.0, loss_pct=1.0),
                            single_object_page(1_000_000), "tcp", seed=1)
        report = loss_report(out.server)
        assert report.protocol == "tcp"
        assert report.final_threshold >= 3

    def test_false_loss_rate(self):
        out = run_page_load(emulated(100.0, jitter_ms=10.0),
                            single_object_page(1_000_000), "quic", seed=1)
        report = loss_report(out.server)
        assert report.false_loss_rate > 0.5  # reordering: mostly spurious


class TestSlowStartReport:
    def test_no_early_exit_when_transfer_ends_before_queueing(self):
        # 100 KB at 100 Mbps finishes before the bottleneck queue can
        # inflate the RTT enough for a delay-based exit.
        out = run_page_load(emulated(100.0), single_object_page(100_000),
                            "quic", seed=1)
        report = slow_start_report(out.server)
        assert not report.exited_early

    def test_deep_buffer_triggers_delay_exit(self):
        # Slow start into a deep buffer at 10 Mbps: HyStart's purpose.
        out = run_page_load(emulated(10.0).with_(queue_bytes=10_000_000),
                            single_object_page(2_000_000), "quic", seed=1)
        report = slow_start_report(out.server)
        assert report.exited_early
        assert report.exit_time is not None

    def test_describe(self):
        out = run_page_load(emulated(10.0), single_object_page(200_000),
                            "quic", seed=1)
        assert "slow start" in slow_start_report(out.server).describe().lower()

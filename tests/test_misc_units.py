"""Assorted cheap unit tests: packet validation, config guards,
handshake fragmentation, and small rendering helpers."""

import pytest

from repro.netem import DEFAULT_MSS, HEADER_BYTES, Packet, Simulator, emulated
from repro.quic import KNOWN_VERSIONS, QuicConfig, quic_config
from repro.tcp import tcp_config

from .conftest import make_quic_pair, make_tcp_pair


class TestPacket:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Packet("a", "b", 0)

    def test_ids_unique_and_increasing(self):
        a = Packet("a", "b", 1)
        b = Packet("a", "b", 1)
        assert b.packet_id > a.packet_id

    def test_constants(self):
        assert DEFAULT_MSS == 1350
        assert HEADER_BYTES == 40


class TestQuicConfigGuards:
    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            quic_config(99)

    def test_known_versions_span_study_window(self):
        assert KNOWN_VERSIONS[0] == 25 and KNOWN_VERSIONS[-1] == 37

    def test_label_mentions_macw(self):
        assert "430" in quic_config(34).label()

    def test_with_copies(self):
        cfg = quic_config(34)
        other = cfg.with_(nack_threshold=10)
        assert other.nack_threshold == 10
        assert cfg.nack_threshold == 3

    def test_uncalibrated_has_bug_and_small_macw(self):
        cfg = quic_config(34, calibrated=False)
        assert cfg.cc.max_cwnd_packets == 107
        assert cfg.cc.ssthresh_from_receiver_buffer is False

    def test_version_37_defaults(self):
        cfg = quic_config(37)
        assert cfg.cc.max_cwnd_packets == 2000
        assert cfg.cc.num_emulated_connections == 1


class TestTcpConfigGuards:
    def test_with_copies(self):
        cfg = tcp_config()
        other = cfg.with_(dupthresh=10)
        assert other.dupthresh == 10 and cfg.dupthresh == 3

    def test_defaults_match_docstring(self):
        cfg = tcp_config()
        assert cfg.tls_rtts == 2
        assert cfg.tlp_enabled is False
        assert cfg.cc.max_cwnd_packets is None
        assert cfg.cc.pacing_gain_ca is None


class TestHandshakeFragmentation:
    def test_quic_rej_fragmented_below_mss(self, sim):
        cfg = quic_config(34, zero_rtt=False)
        _, client, server = make_quic_pair(sim, emulated(10.0), cfg=cfg)
        client.connect()
        sim.run(until=0.2)
        # The 2.2 KB REJ crossed as MSS-sized fragments, and the flow
        # completed (client became ready).
        assert client.handshake_ready_time is not None

    def test_tcp_server_hello_fragmented(self, sim):
        _, client, server = make_tcp_pair(sim, emulated(10.0))
        ready = {}
        client.connect(lambda now: ready.update({"t": now}))
        sim.run(until=0.5)
        assert "t" in ready
        # ServerHello (3.6 KB) left as 3 packets: total ctrl sends > 6.
        assert server.stats.segments_sent >= 5


class TestScenarioRendering:
    def test_describe_is_stable(self):
        scn = emulated(10.0, loss_pct=1.0, extra_delay_ms=50, jitter_ms=5)
        text = scn.describe()
        for token in ("10Mbps", "86ms", "loss=1%", "jitter=5ms"):
            assert token in text

    def test_effective_queue_none_for_unlimited(self):
        assert emulated(None).effective_queue_bytes() is None


class TestLoadPageHelper:
    def test_load_page_convenience(self):
        from repro.http import load_page, page, page_request_handler
        from repro.netem import Simulator, build_path

        sim = Simulator()
        web_page = page(2, 10 * 1024)
        path = build_path(sim, emulated(10.0), seed=1)
        from repro.quic import open_quic_pair

        client, _ = open_quic_pair(sim, path.client, path.server,
                                   quic_config(34),
                                   request_handler=page_request_handler(web_page))
        result = load_page(sim, client, web_page, "quic")
        assert result.complete
        assert result.protocol == "quic"


class TestQoEAggregateEdges:
    def test_none_time_to_start_counts_as_zero(self):
        from repro.video.player import QoEMetrics
        from repro.video.qoe import QoEAggregate

        runs = [QoEMetrics("tiny", "quic", None, 0.0, 0.0, 0, 0.0, 0.0, 0.0),
                QoEMetrics("tiny", "quic", 2.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0)]
        agg = QoEAggregate("tiny", "quic", runs)
        mean_tts, _sd = agg.stat("time_to_start")
        assert mean_tts == pytest.approx(1.0)


class TestCcExports:
    def test_cc_package_surface(self):
        from repro.transport.cc import (
            BBR,
            BBRState,
            CCState,
            CongestionController,
            CubicCC,
            CubicConfig,
            HybridSlowStart,
            Pacer,
            ProportionalRateReduction,
        )

        assert issubclass(CubicCC, CongestionController)
        assert issubclass(BBR, CongestionController)
        assert len(list(CCState)) == 8  # the Table 3 vocabulary
        assert len(list(BBRState)) == 5

"""Property-based tests for congestion-controller invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.cc.cubic import CubicCC, CubicConfig
from repro.transport.cc.interface import CCState
from repro.transport.rtt import RttEstimator

MSS = 1350

events = st.lists(
    st.sampled_from(["ack", "ack_small", "loss", "rto", "recovery_exit",
                     "app_limited", "sent", "tlp", "tlp_resolved"]),
    min_size=1,
    max_size=120,
)


def drive(cc, sequence):
    """Apply an arbitrary event sequence with a monotone clock."""
    t = 0.0
    in_flight = cc.cwnd // 2
    cc.on_connection_start(t)
    for event in sequence:
        t += 0.01
        if event == "ack":
            cc.on_ack(t, 10 * MSS, cwnd_limited=True)
        elif event == "ack_small":
            cc.on_ack(t, MSS, cwnd_limited=True)
        elif event == "loss":
            cc.on_congestion_event(t, in_flight)
        elif event == "rto":
            cc.on_retransmission_timeout(t)
        elif event == "recovery_exit":
            cc.on_recovery_exit(t)
        elif event == "app_limited":
            cc.on_application_limited(t)
        elif event == "sent":
            cc.on_packet_sent(t, MSS, False)
        elif event == "tlp":
            cc.on_tail_loss_probe(t)
        elif event == "tlp_resolved":
            cc.on_tlp_resolved(t)
    return t


@settings(max_examples=200, deadline=None)
@given(events, st.sampled_from([None, 40, 430]),
       st.sampled_from([1, 2]))
def test_cwnd_always_within_bounds(sequence, macw, n_conn):
    cfg = CubicConfig(max_cwnd_packets=macw,
                      num_emulated_connections=n_conn)
    rtt = RttEstimator(initial_rtt=0.05)
    rtt.on_sample(0.05, now=0.0)
    cc = CubicCC(cfg, rtt)
    cc.on_receiver_buffer(64 * 1024 * 1024)
    drive(cc, sequence)
    assert cc.cwnd >= cfg.min_cwnd_packets * MSS
    if macw is not None:
        assert cc.cwnd <= macw * MSS


@settings(max_examples=200, deadline=None)
@given(events)
def test_state_is_always_a_table3_state(sequence):
    cfg = CubicConfig()
    rtt = RttEstimator(initial_rtt=0.05)
    rtt.on_sample(0.05, now=0.0)
    cc = CubicCC(cfg, rtt)
    cc.on_receiver_buffer(64 * 1024 * 1024)
    valid = {state.value for state in CCState}
    drive(cc, sequence)
    assert cc.state in valid


@settings(max_examples=150, deadline=None)
@given(events)
def test_can_send_never_negative_and_bounded(sequence):
    cfg = CubicConfig()
    rtt = RttEstimator(initial_rtt=0.05)
    rtt.on_sample(0.05, now=0.0)
    cc = CubicCC(cfg, rtt)
    cc.on_receiver_buffer(64 * 1024 * 1024)
    drive(cc, sequence)
    for in_flight in (0, MSS, cc.cwnd, cc.cwnd * 3):
        allowed = cc.can_send_bytes(in_flight)
        assert allowed >= 0
        if not cc.in_recovery:
            assert allowed <= cc.cwnd


@settings(max_examples=150, deadline=None)
@given(events)
def test_congestion_responses_track_cwnd(sequence):
    """Congestion responses set ssthresh relative to the *current* cwnd
    (beta-scaled, floored at the minimum window); window growth itself
    never touches ssthresh."""
    cfg = CubicConfig()
    rtt = RttEstimator(initial_rtt=0.05)
    rtt.on_sample(0.05, now=0.0)
    cc = CubicCC(cfg, rtt)
    cc.on_receiver_buffer(64 * 1024 * 1024)
    t = 0.0
    cc.on_connection_start(t)
    in_flight = cc.cwnd // 2
    floor = cfg.min_cwnd_packets * MSS
    for event in sequence:
        t += 0.01
        before_ssthresh = cc.ssthresh
        before_cwnd = cc.cwnd
        if event == "loss":
            cc.on_congestion_event(t, in_flight)
            expected = max(before_cwnd * cfg.scaled_beta(), floor)
            # before_cwnd is the int-truncated view of a float window.
            assert cc.ssthresh == pytest.approx(expected, rel=1e-3)
        elif event == "rto":
            cc.on_retransmission_timeout(t)
            assert cc.ssthresh <= max(before_cwnd, floor)
            assert cc.cwnd == floor
        elif event == "ack":
            cc.on_ack(t, 4 * MSS, cwnd_limited=True)
            # Growth never raises ssthresh.
            assert cc.ssthresh == before_ssthresh
        elif event == "recovery_exit":
            cc.on_recovery_exit(t)
            assert cc.ssthresh == before_ssthresh
    assert cc.ssthresh > 0


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_pacing_rate_positive_whenever_enabled(seed):
    rng = random.Random(seed)
    cfg = CubicConfig()
    rtt = RttEstimator(initial_rtt=0.05)
    rtt.on_sample(rng.uniform(0.001, 0.5), now=0.0)
    cc = CubicCC(cfg, rtt)
    cc.on_receiver_buffer(64 * 1024 * 1024)
    cc.on_connection_start(0.0)
    for i in range(rng.randint(0, 50)):
        cc.on_ack(0.01 * (i + 1), MSS, cwnd_limited=True)
    rate = cc.pacing_rate()
    assert rate is not None and rate > 0

"""The perf-regression gate must actually gate.

``scripts/bench_diff.py`` is run as a subprocess — exactly how CI runs
it — against synthetic payloads, so the tests pin the exit-code
contract: 0 when the candidate holds the line, non-zero when a gated
rate regresses past the threshold or a fixed-seed outcome changes.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent
SCRIPT = REPO / "scripts" / "bench_diff.py"


def payload(events_per_sec=1_000_000.0, packets_per_sec=200_000.0,
            plt_wall=0.07, calibration=30_000_000.0, plt_quic=0.73):
    return {
        "benchmark": "sim_hotpath",
        "calibration_ops_per_sec": calibration,
        "workload": {
            "events": 200_000,
            "packets": 30_000,
            "plt_scenario": "emulated(20, extra_delay_ms=20, loss_pct=0.5)",
            "plt_page": "page(10, 102400)",
        },
        "current": {
            "events_per_sec": events_per_sec,
            "packets_per_sec": packets_per_sec,
            "plt_wall_seconds": plt_wall,
            "plt_quic": plt_quic,
            "plt_tcp": 1.30,
            "events_quic": 4419,
            "events_tcp": 5957,
            "packets_delivered": 29_000,
        },
    }


def diff(tmp_path, base, cand, *extra):
    base_file = tmp_path / "base.json"
    cand_file = tmp_path / "cand.json"
    base_file.write_text(json.dumps(base))
    cand_file.write_text(json.dumps(cand))
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(base_file), str(cand_file), *extra],
        capture_output=True, text=True)


class TestBenchDiff:
    def test_identical_payloads_pass(self, tmp_path):
        proc = diff(tmp_path, payload(), payload())
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_small_slowdown_within_threshold_passes(self, tmp_path):
        proc = diff(tmp_path, payload(), payload(events_per_sec=850_000.0))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_injected_regression_fails(self, tmp_path):
        proc = diff(tmp_path, payload(), payload(events_per_sec=500_000.0))
        assert proc.returncode != 0
        assert "REGRESSION" in proc.stdout
        assert "events_per_sec" in proc.stdout

    def test_packets_regression_fails(self, tmp_path):
        proc = diff(tmp_path, payload(), payload(packets_per_sec=100_000.0))
        assert proc.returncode != 0
        assert "packets_per_sec" in proc.stdout

    def test_plt_wall_is_informational_only(self, tmp_path):
        # A 3x wall-clock slowdown on the PLT pair alone must NOT fail:
        # it is the noisiest number and is reported, not gated.
        proc = diff(tmp_path, payload(), payload(plt_wall=0.21))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "informational" in proc.stdout

    def test_threshold_flag_tightens_the_gate(self, tmp_path):
        proc = diff(tmp_path, payload(), payload(events_per_sec=850_000.0),
                    "--threshold", "0.10")
        assert proc.returncode != 0

    def test_calibration_normalises_across_hosts(self, tmp_path):
        # Candidate host is 2x slower overall; raw events/sec halves but
        # the normalised rate is unchanged, so the gate passes.
        slow_host = payload(events_per_sec=500_000.0,
                            packets_per_sec=100_000.0,
                            calibration=15_000_000.0)
        proc = diff(tmp_path, payload(), slow_host)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "normalised" in proc.stdout

    def test_behaviour_change_fails(self, tmp_path):
        # Same speed, different simulated outcome: the "optimisation"
        # changed what the simulator computes.
        proc = diff(tmp_path, payload(), payload(plt_quic=0.74))
        assert proc.returncode != 0
        assert "BEHAVIOUR CHANGE" in proc.stdout

    def test_gates_committed_payload_against_itself(self, tmp_path):
        committed = REPO / "BENCH_sim.json"
        if not committed.exists():
            pytest.skip("no committed BENCH_sim.json")
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), str(committed), str(committed)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

"""The perf-regression gate must actually gate.

``scripts/bench_diff.py`` is run as a subprocess — exactly how CI runs
it — against synthetic payloads, so the tests pin the exit-code
contract: 0 when the candidate holds the line, non-zero when a gated
rate regresses past the threshold or a fixed-seed outcome changes.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent
SCRIPT = REPO / "scripts" / "bench_diff.py"


def payload(events_per_sec=1_000_000.0, packets_per_sec=200_000.0,
            plt_wall=0.07, calibration=30_000_000.0, plt_quic=0.73):
    return {
        "benchmark": "sim_hotpath",
        "calibration_ops_per_sec": calibration,
        "workload": {
            "events": 200_000,
            "packets": 30_000,
            "plt_scenario": "emulated(20, extra_delay_ms=20, loss_pct=0.5)",
            "plt_page": "page(10, 102400)",
        },
        "current": {
            "events_per_sec": events_per_sec,
            "packets_per_sec": packets_per_sec,
            "plt_wall_seconds": plt_wall,
            "plt_quic": plt_quic,
            "plt_tcp": 1.30,
            "events_quic": 4419,
            "events_tcp": 5957,
            "packets_delivered": 29_000,
        },
    }


def diff(tmp_path, base, cand, *extra):
    base_file = tmp_path / "base.json"
    cand_file = tmp_path / "cand.json"
    base_file.write_text(json.dumps(base))
    cand_file.write_text(json.dumps(cand))
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(base_file), str(cand_file), *extra],
        capture_output=True, text=True)


class TestBenchDiff:
    def test_identical_payloads_pass(self, tmp_path):
        proc = diff(tmp_path, payload(), payload())
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_small_slowdown_within_threshold_passes(self, tmp_path):
        proc = diff(tmp_path, payload(), payload(events_per_sec=850_000.0))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_injected_regression_fails(self, tmp_path):
        proc = diff(tmp_path, payload(), payload(events_per_sec=500_000.0))
        assert proc.returncode != 0
        assert "REGRESSION" in proc.stdout
        assert "events_per_sec" in proc.stdout

    def test_packets_regression_fails(self, tmp_path):
        proc = diff(tmp_path, payload(), payload(packets_per_sec=100_000.0))
        assert proc.returncode != 0
        assert "packets_per_sec" in proc.stdout

    def test_plt_wall_is_informational_only(self, tmp_path):
        # A 3x wall-clock slowdown on the PLT pair alone must NOT fail:
        # it is the noisiest number and is reported, not gated.
        proc = diff(tmp_path, payload(), payload(plt_wall=0.21))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "informational" in proc.stdout

    def test_threshold_flag_tightens_the_gate(self, tmp_path):
        proc = diff(tmp_path, payload(), payload(events_per_sec=850_000.0),
                    "--threshold", "0.10")
        assert proc.returncode != 0

    def test_calibration_normalises_across_hosts(self, tmp_path):
        # Candidate host is 2x slower overall; raw events/sec halves but
        # the normalised rate is unchanged, so the gate passes.
        slow_host = payload(events_per_sec=500_000.0,
                            packets_per_sec=100_000.0,
                            calibration=15_000_000.0)
        proc = diff(tmp_path, payload(), slow_host)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "normalised" in proc.stdout

    def test_behaviour_change_fails(self, tmp_path):
        # Same speed, different simulated outcome: the "optimisation"
        # changed what the simulator computes.
        proc = diff(tmp_path, payload(), payload(plt_quic=0.74))
        assert proc.returncode != 0
        assert "BEHAVIOUR CHANGE" in proc.stdout

    def test_gates_committed_payload_against_itself(self, tmp_path):
        committed = REPO / "BENCH_sim.json"
        if not committed.exists():
            pytest.skip("no committed BENCH_sim.json")
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), str(committed), str(committed)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr


def executor_payload(**overrides):
    base = {
        "benchmark": "executor_scaling",
        "runs_total": 24,
        "jobs": 4,
        "serial_seconds": 2.0,
        "parallel_seconds": 0.7,
        "speedup": 2.9,
        "results_identical": True,
    }
    base.update(overrides)
    return base


def store_payload(**overrides):
    base = {
        "benchmark": "store_hit_rate",
        "runs_total": 24,
        "cold_seconds": 2.0,
        "warm_seconds": 0.05,
        "warm_speedup": 40.0,
        "warm_hit_rate": 1.0,
        "results_identical": True,
    }
    base.update(overrides)
    return base


def pipeline_payload(**overrides):
    base = {
        "benchmark": "pipeline",
        "cells": 10_000,
        "jobs": 4,
        "roundtrip_seconds": 15.0,
        "pipelined_seconds": 5.0,
        "pipelined_speedup": 3.0,
        "events_total": 20_000,
        "events_per_sec": 4_000.0,
        "max_event_bytes": 360,
        "event_bound_bytes": 1024,
        "parent_rss_peak_kb": 40_000,
        "results_identical": True,
    }
    base.update(overrides)
    return base


def fabric_payload(**overrides):
    base = {
        "benchmark": "fabric",
        "cells": 10_000,
        "workers": 4,
        "sync_every": 256,
        "single_seconds": 4.0,
        "fabric_seconds": 10.0,
        "fabric_overhead": 2.5,
        "cells_per_sec": 1_000.0,
        "warm_seconds": 2.0,
        "warm_hit_rate": 1.0,
        "resume_missing": 0,
        "results_identical": True,
    }
    base.update(overrides)
    return base


class TestMultiPayloadGate:
    """Exit-code contract for the executor/store payload kinds:
    0 = shape + contract hold, 1 = contract violation, 2 = malformed
    payload or benchmark-kind mismatch."""

    def test_executor_payload_passes(self, tmp_path):
        proc = diff(tmp_path, executor_payload(), executor_payload())
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "executor_scaling" in proc.stdout

    def test_store_payload_passes(self, tmp_path):
        proc = diff(tmp_path, store_payload(), store_payload())
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "store_hit_rate" in proc.stdout

    def test_executor_results_not_identical_fails(self, tmp_path):
        proc = diff(tmp_path, executor_payload(),
                    executor_payload(results_identical=False))
        assert proc.returncode == 1
        assert "CONTRACT FAIL" in proc.stdout

    def test_executor_speedup_is_informational(self, tmp_path):
        # A slower parallel run is the host's business, not a gate.
        proc = diff(tmp_path, executor_payload(),
                    executor_payload(speedup=1.1, parallel_seconds=1.8))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_store_cold_hit_rate_fails(self, tmp_path):
        proc = diff(tmp_path, store_payload(),
                    store_payload(warm_hit_rate=0.9))
        assert proc.returncode == 1
        assert "warm_hit_rate" in proc.stdout

    def test_store_results_not_identical_fails(self, tmp_path):
        proc = diff(tmp_path, store_payload(),
                    store_payload(results_identical=False))
        assert proc.returncode == 1

    def test_pipeline_payload_passes(self, tmp_path):
        proc = diff(tmp_path, pipeline_payload(), pipeline_payload())
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "pipeline" in proc.stdout

    def test_pipeline_results_not_identical_fails(self, tmp_path):
        proc = diff(tmp_path, pipeline_payload(),
                    pipeline_payload(results_identical=False))
        assert proc.returncode == 1
        assert "CONTRACT FAIL" in proc.stdout

    def test_pipeline_event_bound_breach_fails(self, tmp_path):
        # A record payload leaking into the parent pipe is the exact
        # regression the streaming API exists to prevent.
        proc = diff(tmp_path, pipeline_payload(),
                    pipeline_payload(max_event_bytes=9_000))
        assert proc.returncode == 1
        assert "parent pipe" in proc.stdout

    def test_pipeline_speedup_is_informational(self, tmp_path):
        proc = diff(tmp_path, pipeline_payload(),
                    pipeline_payload(pipelined_speedup=1.1,
                                     pipelined_seconds=13.0))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "informational" in proc.stdout

    def test_pipeline_missing_key_is_malformed(self, tmp_path):
        broken = pipeline_payload()
        del broken["max_event_bytes"]
        proc = diff(tmp_path, pipeline_payload(), broken)
        assert proc.returncode == 2
        assert "missing required" in proc.stdout

    def test_gates_committed_pipeline_payload(self):
        committed = REPO / "BENCH_pipeline.json"
        if not committed.exists():
            pytest.skip("no committed BENCH_pipeline.json")
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), str(committed), str(committed)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_fabric_payload_passes(self, tmp_path):
        proc = diff(tmp_path, fabric_payload(), fabric_payload())
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "fabric" in proc.stdout

    def test_fabric_results_not_identical_fails(self, tmp_path):
        proc = diff(tmp_path, fabric_payload(),
                    fabric_payload(results_identical=False))
        assert proc.returncode == 1
        assert "CONTRACT FAIL" in proc.stdout

    def test_fabric_lost_records_fail(self, tmp_path):
        # A non-empty post-sweep /missing probe means uploads were lost.
        proc = diff(tmp_path, fabric_payload(),
                    fabric_payload(resume_missing=3))
        assert proc.returncode == 1
        assert "resume_missing" in proc.stdout

    def test_fabric_cold_warm_pass_fails(self, tmp_path):
        proc = diff(tmp_path, fabric_payload(),
                    fabric_payload(warm_hit_rate=0.98))
        assert proc.returncode == 1
        assert "warm_hit_rate" in proc.stdout

    def test_fabric_overhead_is_informational(self, tmp_path):
        # Localhost HTTP overhead is the host's business, not a gate.
        proc = diff(tmp_path, fabric_payload(),
                    fabric_payload(fabric_overhead=4.0,
                                   fabric_seconds=16.0,
                                   cells_per_sec=625.0))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "informational" in proc.stdout

    def test_fabric_missing_key_is_malformed(self, tmp_path):
        broken = fabric_payload()
        del broken["resume_missing"]
        proc = diff(tmp_path, fabric_payload(), broken)
        assert proc.returncode == 2
        assert "missing required" in proc.stdout

    def test_gates_committed_fabric_payload(self):
        committed = REPO / "BENCH_fabric.json"
        if not committed.exists():
            pytest.skip("no committed BENCH_fabric.json")
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), str(committed), str(committed)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_missing_required_key_is_malformed(self, tmp_path):
        broken = executor_payload()
        del broken["results_identical"]
        proc = diff(tmp_path, executor_payload(), broken)
        assert proc.returncode == 2
        assert "missing required" in proc.stdout

    def test_kind_mismatch_is_an_error(self, tmp_path):
        proc = diff(tmp_path, payload(), store_payload())
        assert proc.returncode == 2
        assert "like with like" in proc.stdout

    def test_unknown_kind_is_an_error(self, tmp_path):
        odd = {"benchmark": "frobnication", "x": 1}
        proc = diff(tmp_path, odd, odd)
        assert proc.returncode == 2

    def test_legacy_payload_without_kind_is_sim(self, tmp_path):
        old = payload()
        del old["benchmark"]
        proc = diff(tmp_path, old, old)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_gates_committed_executor_and_store_payloads(self):
        for name in ("BENCH_executor.json", "BENCH_store.json"):
            committed = REPO / name
            if not committed.exists():
                pytest.skip(f"no committed {name}")
            proc = subprocess.run(
                [sys.executable, str(SCRIPT), str(committed),
                 str(committed)], capture_output=True, text=True)
            assert proc.returncode == 0, (name, proc.stdout + proc.stderr)


class TestHistory:
    def test_history_line_appended_and_parseable(self, tmp_path):
        ledger = tmp_path / "hist.jsonl"
        proc = diff(tmp_path, store_payload(), store_payload(),
                    "--history", str(ledger))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        lines = ledger.read_text().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["benchmark"] == "store_hit_rate"
        assert entry["ok"] is True
        assert entry["metrics"]["warm_hit_rate"] == 1.0
        assert "ts" in entry

    def test_failures_are_recorded_too(self, tmp_path):
        ledger = tmp_path / "hist.jsonl"
        diff(tmp_path, store_payload(), store_payload(),
             "--history", str(ledger))
        proc = diff(tmp_path, store_payload(),
                    store_payload(warm_hit_rate=0.5),
                    "--history", str(ledger))
        assert proc.returncode == 1
        lines = [json.loads(line)
                 for line in ledger.read_text().splitlines()]
        assert [entry["ok"] for entry in lines] == [True, False]

    def test_no_history_flag_writes_nothing(self, tmp_path):
        diff(tmp_path, payload(), payload())
        assert not list(tmp_path.glob("*.jsonl"))


def manyflow_payload(**overrides):
    base = {
        "benchmark": "manyflow",
        "calibration_ops_per_sec": 30_000_000.0,
        "workload": {
            "flows": 1000,
            "aqm": "droptail",
            "seed": 0,
            "duration": 300.0,
            "scenario": "manyflow_scenario()",
        },
        "flows": 1000,
        "batched_seconds": 0.9,
        "per_packet_seconds": 13.5,
        "speedup_vs_per_packet": 15.0,
        "events_per_sec": 500_000.0,
        "heap_events_batched": 15_000,
        "heap_events_per_packet": 1_950_000,
        "results_identical": True,
        "outcome": {"flows_completed": 1000, "jain_index": 0.41,
                    "plt_p50": 0.173, "bytes_acked": 123_456_789},
    }
    base.update(overrides)
    return base


class TestManyflowGate:
    """Exit-code contract for the thousand-flow fast-path payload."""

    def test_payload_passes(self, tmp_path):
        proc = diff(tmp_path, manyflow_payload(), manyflow_payload())
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "manyflow" in proc.stdout

    def test_results_not_identical_fails(self, tmp_path):
        proc = diff(tmp_path, manyflow_payload(),
                    manyflow_payload(results_identical=False))
        assert proc.returncode == 1
        assert "CONTRACT FAIL" in proc.stdout

    def test_speedup_below_floor_fails(self, tmp_path):
        proc = diff(tmp_path, manyflow_payload(),
                    manyflow_payload(speedup_vs_per_packet=2.4))
        assert proc.returncode == 1
        assert "speedup_vs_per_packet" in proc.stdout

    def test_rate_regression_fails(self, tmp_path):
        proc = diff(tmp_path, manyflow_payload(),
                    manyflow_payload(events_per_sec=300_000.0))
        assert proc.returncode == 1
        assert "events_per_sec" in proc.stdout

    def test_rate_is_host_normalised(self, tmp_path):
        # Half the rate on a half-speed host is not a regression.
        proc = diff(tmp_path, manyflow_payload(),
                    manyflow_payload(events_per_sec=250_000.0,
                                     calibration_ops_per_sec=15_000_000.0))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "host-normalised" in proc.stdout

    def test_outcome_change_fails_on_same_workload(self, tmp_path):
        changed = manyflow_payload()
        changed["outcome"] = dict(changed["outcome"], jain_index=0.55)
        proc = diff(tmp_path, manyflow_payload(), changed)
        assert proc.returncode == 1
        assert "BEHAVIOUR CHANGE" in proc.stdout
        assert "jain_index" in proc.stdout

    def test_outcome_not_compared_across_workloads(self, tmp_path):
        changed = manyflow_payload(
            workload={"flows": 200, "aqm": "droptail", "seed": 0,
                      "duration": 300.0, "scenario": "manyflow_scenario()"},
            flows=200)
        changed["outcome"] = dict(changed["outcome"], flows_completed=200)
        proc = diff(tmp_path, manyflow_payload(), changed)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_missing_key_is_malformed(self, tmp_path):
        broken = manyflow_payload()
        del broken["outcome"]
        proc = diff(tmp_path, manyflow_payload(), broken)
        assert proc.returncode == 2
        assert "missing required" in proc.stdout

    def test_gates_committed_manyflow_payload(self):
        committed = REPO / "BENCH_manyflow.json"
        if not committed.exists():
            pytest.skip("no committed BENCH_manyflow.json")
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), str(committed), str(committed)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr


# ----------------------------------------------------------------------
# the chaos payload (scripts/chaos_sweep.py)
# ----------------------------------------------------------------------
def chaos_payload(**overrides):
    base = {
        "benchmark": "chaos",
        "cells": 600,
        "workers": 3,
        "sync_every": 32,
        "seed": 42,
        "cpu_count": 4,
        "usable_cpus": 4,
        "baseline_seconds": 1.2,
        "chaos_seconds": 1.8,
        "faults_scheduled": 7,
        "faults_fired": 7,
        "quarantined": 2,
        "residual_issues": 0,
        "corruptions_injected": 8,
        "corruptions_detected": 8,
        "fsck_detect_rate": 1.0,
        "results_identical": True,
        "fsck_clean": True,
        "plan_deterministic": True,
    }
    base.update(overrides)
    return base


class TestChaosGate:
    def test_chaos_payload_passes(self, tmp_path):
        proc = diff(tmp_path, chaos_payload(), chaos_payload())
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "chaos" in proc.stdout

    def test_results_not_identical_fails(self, tmp_path):
        proc = diff(tmp_path, chaos_payload(),
                    chaos_payload(results_identical=False))
        assert proc.returncode == 1
        assert "CONTRACT FAIL" in proc.stdout

    def test_residual_corruption_fails(self, tmp_path):
        proc = diff(tmp_path, chaos_payload(),
                    chaos_payload(fsck_clean=False, residual_issues=2))
        assert proc.returncode == 1
        assert "fsck_clean" in proc.stdout

    def test_partial_detection_fails(self, tmp_path):
        proc = diff(tmp_path, chaos_payload(),
                    chaos_payload(corruptions_detected=7,
                                  fsck_detect_rate=0.875))
        assert proc.returncode == 1
        assert "fsck_detect_rate" in proc.stdout

    def test_nondeterministic_plan_fails(self, tmp_path):
        proc = diff(tmp_path, chaos_payload(),
                    chaos_payload(plan_deterministic=False))
        assert proc.returncode == 1
        assert "plan_deterministic" in proc.stdout

    def test_unfired_fault_fails(self, tmp_path):
        # A scheduled fault that never landed exercised nothing — the
        # chaos run proved less than it claims.
        proc = diff(tmp_path, chaos_payload(), chaos_payload(faults_fired=6))
        assert proc.returncode == 1
        assert "faults_fired" in proc.stdout

    def test_slower_chaos_run_is_informational(self, tmp_path):
        proc = diff(tmp_path, chaos_payload(),
                    chaos_payload(chaos_seconds=9.9))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_missing_key_is_malformed(self, tmp_path):
        broken = chaos_payload()
        del broken["fsck_clean"]
        proc = diff(tmp_path, chaos_payload(), broken)
        assert proc.returncode == 2
        assert "missing required" in proc.stdout

    def test_gates_committed_chaos_payload(self):
        committed = REPO / "BENCH_chaos.json"
        if not committed.exists():
            pytest.skip("no committed BENCH_chaos.json")
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), str(committed), str(committed)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr


# ----------------------------------------------------------------------
# the models payload (benchmarks/model_fit.py)
# ----------------------------------------------------------------------
def models_fit_row(**overrides):
    base = {"cc": "reno", "proto": "quic", "rate_mbps": 50.0, "rtt": 0.04,
            "loss_rate": 0.01, "observed": 1.1e6, "predicted": 1.0e6,
            "ratio": 1.1, "regime": "loss-limited", "gated": True,
            "ok": True}
    base.update(overrides)
    return base


def models_payload(**overrides):
    base = {
        "benchmark": "models",
        "calibration_ops_per_sec": 30_000_000.0,
        "workload": {
            "ccs": ["reno", "cubic", "bbr"],
            "loss_rates": [0.01, 0.02],
            "seeds": [0],
            "flows": 8,
            "scenario": "manyflow_scenario(rate_mbps=50.0, rtt=0.040)",
        },
        "tolerance": 0.6,
        "cells": 10,
        "gated_cells": 10,
        "within_tolerance": 10,
        "max_abs_log_error": 0.29,
        "mean_abs_log_error": 0.12,
        "results_identical": True,
        "fit": [models_fit_row(),
                models_fit_row(proto="tcp", observed=0.9e6, ratio=0.9)],
    }
    base.update(overrides)
    return base


class TestModelsGate:
    """Exit-code contract for the analytical-oracle fit payload."""

    def test_payload_passes(self, tmp_path):
        proc = diff(tmp_path, models_payload(), models_payload())
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "models" in proc.stdout

    def test_results_not_identical_fails(self, tmp_path):
        proc = diff(tmp_path, models_payload(),
                    models_payload(results_identical=False))
        assert proc.returncode == 1
        assert "CONTRACT FAIL" in proc.stdout

    def test_divergent_cell_fails(self, tmp_path):
        proc = diff(tmp_path, models_payload(),
                    models_payload(within_tolerance=9))
        assert proc.returncode == 1
        assert "within tolerance" in proc.stdout

    def test_zero_gated_cells_fails(self, tmp_path):
        # An empty grid proves nothing; the gate must refuse it.
        proc = diff(tmp_path, models_payload(),
                    models_payload(gated_cells=0, within_tolerance=0))
        assert proc.returncode == 1

    def test_log_error_past_ceiling_fails(self, tmp_path):
        # ln(1 + 0.6) ~= 0.47; a worst cell above it diverged.
        proc = diff(tmp_path, models_payload(),
                    models_payload(max_abs_log_error=0.5))
        assert proc.returncode == 1
        assert "max_abs_log_error" in proc.stdout

    def test_fit_change_fails_on_same_workload(self, tmp_path):
        changed = models_payload()
        changed["fit"] = [models_fit_row(observed=1.3e6, ratio=1.3),
                          changed["fit"][1]]
        proc = diff(tmp_path, models_payload(), changed)
        assert proc.returncode == 1
        assert "BEHAVIOUR CHANGE" in proc.stdout

    def test_fit_not_compared_across_workloads(self, tmp_path):
        changed = models_payload(
            workload=dict(models_payload()["workload"], flows=16))
        changed["fit"] = [models_fit_row(observed=1.3e6, ratio=1.3)]
        proc = diff(tmp_path, models_payload(), changed)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_missing_key_is_malformed(self, tmp_path):
        broken = models_payload()
        del broken["fit"]
        proc = diff(tmp_path, models_payload(), broken)
        assert proc.returncode == 2
        assert "missing required" in proc.stdout

    def test_gates_committed_models_payload(self):
        committed = REPO / "BENCH_models.json"
        if not committed.exists():
            pytest.skip("no committed BENCH_models.json")
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), str(committed), str(committed)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

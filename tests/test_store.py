"""Tests for the content-addressed results store (repro.store).

The correctness contract: the same logical request always maps to the
same key (across object identities and across processes), while *any*
change to the configuration, seed, or the code the run exercises maps
to a different key — a cache hit can therefore never be stale.  Every
backend-facing test runs against both store backends (sqlite and
sharded JSONL) through the ``make_store`` fixture.
"""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.executor import (
    ProtocolSpec,
    RunFailure,
    RunRecord,
    RunRequest,
    run_requests,
)
from repro.core.experiment import (
    ExperimentSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_experiment,
)
from repro.devices import NEXUS6, DeviceProfile
from repro.http import page, single_object_page
from repro.netem import emulated
from repro.netem.profiles import CELLULAR_PROFILES
from repro.quic import quic_config
from repro.store import (
    ResultStore,
    RunCache,
    ShardStore,
    SqliteStore,
    StoreBackend,
    StoreNotFoundError,
    achievable_fingerprints,
    code_fingerprint,
    composite_fingerprint,
    fingerprint_for,
    merge_into,
    open_store,
    record_from_dict,
    record_to_dict,
    request_from_dict,
    request_subsystems,
    request_to_dict,
    resolve_store,
    resolve_store_path,
    run_key,
    store_kind_at,
    subsystem_fingerprints,
)
from repro.tcp import tcp_config

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

SCN = emulated(10.0)
PAGE = single_object_page(20_000)


def req(seed=0, **overrides):
    kwargs = dict(scenario=SCN, page=PAGE, protocol=ProtocolSpec.quic(),
                  seed=seed)
    kwargs.update(overrides)
    return RunRequest(**kwargs)


def fresh_req(seed=0):
    """The same logical request as ``req(seed)``, all-new objects."""
    return RunRequest(scenario=emulated(10.0),
                      page=single_object_page(20_000),
                      protocol=ProtocolSpec.quic(), seed=seed)


@pytest.fixture(params=["sqlite", "shards"])
def make_store(request, tmp_path):
    """A factory building fresh stores of one backend per parametrisation."""
    param = request.param

    def _make(name="store"):
        if param == "sqlite":
            return SqliteStore(tmp_path / f"{name}.sqlite")
        return ShardStore(tmp_path / f"{name}-shards")

    _make.backend = param
    return _make


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
class TestRunKey:
    def test_key_shape(self):
        key = run_key(req())
        assert len(key) == 64
        int(key, 16)  # hex

    def test_same_logical_request_same_key(self):
        assert run_key(req(seed=5)) == run_key(fresh_req(seed=5))

    def test_key_is_stable_across_processes(self):
        code = (
            "from repro.core.executor import ProtocolSpec, RunRequest\n"
            "from repro.http import single_object_page\n"
            "from repro.netem import emulated\n"
            "from repro.store import run_key\n"
            "r = RunRequest(scenario=emulated(10.0),\n"
            "               page=single_object_page(20_000),\n"
            "               protocol=ProtocolSpec.quic(), seed=3)\n"
            "print(run_key(r))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH",
                                                                "")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == run_key(req(seed=3))

    @pytest.mark.parametrize("variant", [
        lambda: req(seed=1),
        lambda: req(scenario=emulated(10.0, loss_pct=1.0)),
        lambda: req(scenario=emulated(50.0)),
        lambda: req(page=single_object_page(20_001)),
        lambda: req(page=page(2, 10_000)),
        lambda: req(protocol=ProtocolSpec.tcp()),
        lambda: req(protocol=ProtocolSpec.quic(version=36)),
        lambda: req(protocol=ProtocolSpec(
            "quic", quic_config(34).with_(nack_threshold=50))),
        lambda: req(protocol=ProtocolSpec(
            "tcp", tcp_config(dupthresh=10))),
        lambda: req(device=NEXUS6),
        lambda: req(trace=True),
        lambda: req(proxied=True),
        lambda: req(timeout=123.0),
    ])
    def test_any_field_change_changes_key(self, variant):
        assert run_key(variant()) != run_key(req())

    def test_default_and_explicit_default_config_differ(self):
        # ProtocolSpec(None) defers to the *current* defaults, so it is
        # deliberately a different address than a pinned explicit config.
        assert (run_key(req(protocol=ProtocolSpec.quic()))
                != run_key(req(protocol=ProtocolSpec.quic(quic_config(34)))))

    def test_code_fingerprint_changes_key(self):
        base = run_key(req(), fingerprint="aaaa")
        assert run_key(req(), fingerprint="bbbb") != base
        assert run_key(req(), fingerprint="aaaa") == base

    def test_fingerprint_tracks_source(self, tmp_path):
        tree = tmp_path / "pkg"
        tree.mkdir()
        (tree / "a.py").write_text("x = 1\n")
        first = code_fingerprint(tree)
        assert first == code_fingerprint(tmp_path / "pkg")  # cached, stable
        tree2 = tmp_path / "pkg2"
        tree2.mkdir()
        (tree2 / "a.py").write_text("x = 2\n")
        assert code_fingerprint(tree2) != first


# ----------------------------------------------------------------------
# per-subsystem fingerprints
# ----------------------------------------------------------------------
def _fake_package(root: Path) -> Path:
    """A miniature repro tree exercising every subsystem bucket."""
    pkg = root / "pkg"
    for sub in ("core", "netem", "transport", "quic", "tcp", "http",
                "proxy", "video"):
        (pkg / sub).mkdir(parents=True)
        (pkg / sub / "mod.py").write_text(f"name = {sub!r}\n")
    (pkg / "devices.py").write_text("profiles = {}\n")
    (pkg / "__init__.py").write_text("")
    (pkg / "cli.py").write_text("entry = None\n")
    (pkg / "store").mkdir()
    (pkg / "store" / "keys.py").write_text("schema = 1\n")
    # The claimed-file case: core/models.py lives under core/ but is
    # listed in the transport partition (it encodes kernel behaviour).
    (pkg / "core" / "models.py").write_text("oracle = 1\n")
    (pkg / "transport" / "cc").mkdir()
    (pkg / "transport" / "cc" / "kernels.py").write_text("step = 1\n")
    return pkg


def _edited_copy(pkg: Path, relative: str, text: str) -> Path:
    """A sibling copy of ``pkg`` with one file changed.

    A copy (not an in-place edit) because fingerprints are cached per
    process per directory — exactly how two checkouts would differ.
    """
    clone = pkg.parent / f"{pkg.name}-edited-{relative.replace('/', '_')}"
    shutil.copytree(pkg, clone)
    (clone / relative).write_text(text)
    return clone


class TestSubsystemFingerprints:
    def test_request_subsystems(self):
        assert request_subsystems(req()) == ("core", "http", "netem",
                                             "transport")
        assert "proxy" in request_subsystems(req(proxied=True))
        assert "video" not in request_subsystems(req(proxied=True))

    def test_video_edit_leaves_plt_keys_unchanged(self, tmp_path):
        # The acceptance criterion: a comment-only touch under video/
        # must not invalidate a cached QUIC-vs-TCP PLT sweep.
        pkg = _fake_package(tmp_path)
        edited = _edited_copy(pkg, "video/mod.py",
                              "name = 'video'\n# doc tweak only\n")
        for request in (req(), req(protocol=ProtocolSpec.tcp())):
            before = run_key(request,
                             fingerprint=fingerprint_for(request, pkg))
            after = run_key(request,
                            fingerprint=fingerprint_for(request, edited))
            assert before == after

    def test_netem_edit_changes_plt_keys(self, tmp_path):
        pkg = _fake_package(tmp_path)
        edited = _edited_copy(pkg, "netem/mod.py",
                              "name = 'netem'\nrate = 2\n")
        for request in (req(), req(protocol=ProtocolSpec.tcp())):
            before = run_key(request,
                             fingerprint=fingerprint_for(request, pkg))
            after = run_key(request,
                            fingerprint=fingerprint_for(request, edited))
            assert before != after

    @pytest.mark.parametrize("relative", [
        "transport/mod.py", "quic/mod.py", "tcp/mod.py", "http/mod.py",
        "core/mod.py", "devices.py",
    ])
    def test_exercised_subsystem_edits_change_keys(self, tmp_path, relative):
        pkg = _fake_package(tmp_path)
        edited = _edited_copy(pkg, relative, "changed = True\n")
        assert (fingerprint_for(req(), pkg)
                != fingerprint_for(req(), edited))

    @pytest.mark.parametrize("relative", [
        "store/keys.py", "cli.py", "proxy/mod.py",
    ])
    def test_unexercised_edits_leave_keys_alone(self, tmp_path, relative):
        # store/ and cli.py are outside every fingerprint; proxy/ only
        # enters the key of proxied runs.
        pkg = _fake_package(tmp_path)
        edited = _edited_copy(pkg, relative, "changed = True\n")
        assert (fingerprint_for(req(), pkg)
                == fingerprint_for(req(), edited))

    def test_proxied_requests_cover_proxy_code(self, tmp_path):
        pkg = _fake_package(tmp_path)
        edited = _edited_copy(pkg, "proxy/mod.py", "changed = True\n")
        proxied = req(proxied=True)
        assert (fingerprint_for(proxied, pkg)
                != fingerprint_for(proxied, edited))

    def test_achievable_fingerprints_cover_requests(self, tmp_path):
        pkg = _fake_package(tmp_path)
        achievable = achievable_fingerprints(pkg)
        assert fingerprint_for(req(), pkg) in achievable
        assert fingerprint_for(req(proxied=True), pkg) in achievable

    def test_composite_is_order_insensitive(self, tmp_path):
        pkg = _fake_package(tmp_path)
        assert (composite_fingerprint(("netem", "core"), pkg)
                == composite_fingerprint(("core", "netem"), pkg))

    def test_subsystem_map_covers_real_package(self):
        fingerprints = subsystem_fingerprints()
        assert set(fingerprints) == {"core", "netem", "transport", "http",
                                     "proxy", "video"}
        # A real tree backs every bucket, so no digest is the empty hash.
        empty = __import__("hashlib").sha256().hexdigest()
        assert all(fp != empty for fp in fingerprints.values())

    @pytest.mark.parametrize("relative", [
        # The oracle layer is claimed away from core/ by an explicit
        # file entry; the kernels live under transport/ proper.  Either
        # edit must invalidate exactly the transport partition.
        "core/models.py",
        "transport/cc/kernels.py",
    ])
    def test_cc_edits_move_only_transport_partition(self, tmp_path,
                                                    relative):
        pkg = _fake_package(tmp_path)
        edited = _edited_copy(pkg, relative, "changed = True\n")
        before = subsystem_fingerprints(pkg)
        after = subsystem_fingerprints(edited)
        assert before["transport"] != after["transport"]
        unchanged = set(before) - {"transport"}
        assert {name: before[name] for name in unchanged} == \
            {name: after[name] for name in unchanged}
        # transport is in every run's base set, so the keys move too.
        assert fingerprint_for(req(), pkg) != fingerprint_for(req(), edited)

    def test_profile_partition_matches_claimed_files(self):
        # The perf-report attribution must agree with the fingerprint
        # partition, including the claimed-file precedence.
        from repro.core.bench import _subsystem_of

        assert _subsystem_of("/x/src/repro/core/models.py") == "transport"
        assert _subsystem_of(
            "/x/src/repro/transport/cc/kernels.py") == "transport"
        assert _subsystem_of("/x/src/repro/core/executor.py") == "core"
        assert _subsystem_of("/usr/lib/python3/heapq.py") == "(stdlib/other)"


# ----------------------------------------------------------------------
# the JSON codec
# ----------------------------------------------------------------------
class TestCodec:
    @pytest.mark.parametrize("request_", [
        req(seed=7),
        req(protocol=ProtocolSpec("quic",
                                  quic_config(36).with_(zero_rtt=False))),
        req(protocol=ProtocolSpec("tcp", tcp_config(tls_rtts=1))),
        req(scenario=CELLULAR_PROFILES["verizon-3g"].scenario(),
            device=NEXUS6, trace=True, cwnd_interval=0.5, proxied=True),
        req(device=DeviceProfile("weird", 1e-6, 2e-6, 3e-6, 0.1, noise=0.0)),
    ])
    def test_request_round_trip(self, request_):
        rebuilt = request_from_dict(request_to_dict(request_))
        assert rebuilt == request_
        assert run_key(rebuilt) == run_key(request_)

    def test_request_dict_is_json_safe(self):
        json.dumps(request_to_dict(req()))

    def test_record_round_trip(self):
        record = RunRecord(request=req(), plt=1.25, complete=True,
                           metrics={"plt": 1.25, "bytes": 20480.0},
                           wall_time=0.5, attempts=2)
        rebuilt = record_from_dict(record_to_dict(record))
        assert rebuilt.plt == record.plt
        assert rebuilt.metrics == record.metrics
        assert rebuilt.request == record.request
        assert rebuilt.failure is None

    def test_failure_round_trip(self):
        record = RunRecord(request=req(), failure=RunFailure(
            "incomplete", "ran out of simulated time"))
        rebuilt = record_from_dict(record_to_dict(record))
        assert rebuilt.failure == record.failure
        assert not rebuilt.ok


# ----------------------------------------------------------------------
# the backends (each test runs against sqlite AND shards)
# ----------------------------------------------------------------------
class TestStoreBackends:
    def record(self, seed=0, plt=1.0):
        return RunRecord(request=req(seed=seed), plt=plt, complete=True,
                         metrics={"plt": plt})

    def test_put_get_contains_len_delete(self, make_store):
        store = make_store()
        assert len(store) == 0
        store.put("k1", self.record())
        assert "k1" in store
        assert "k2" not in store
        assert store.get("k1").plt == 1.0
        assert store.get("k2") is None
        assert len(store) == 1
        assert store.delete("k1")
        assert not store.delete("k1")
        assert len(store) == 0

    def test_put_replaces(self, make_store):
        store = make_store()
        store.put("k1", self.record(plt=1.0))
        store.put("k1", self.record(plt=2.0))
        assert len(store) == 1
        assert store.get("k1").plt == 2.0

    def test_persists_across_reopen(self, make_store):
        with make_store("reopen") as store:
            path = store.path
            store.put("k1", self.record(plt=2.5), fingerprint="f1")
        with open_store(path) as store:
            assert store.kind == make_store.backend
            assert store.get("k1").plt == 2.5
            assert store.fingerprints() == {"f1": 1}

    def test_jsonl_round_trip(self, make_store, tmp_path):
        store = make_store("src")
        for i in range(3):
            store.put(f"k{i}", self.record(seed=i, plt=float(i)),
                      fingerprint="f")
        out = tmp_path / "dump.jsonl"
        assert store.export_jsonl(out) == 3
        other = make_store("dst")
        assert other.import_jsonl(out) == 3
        assert other.keys() == store.keys()
        for key in store.keys():
            assert other.get(key).plt == store.get(key).plt

    def test_rows_oldest_first(self, make_store):
        store = make_store()
        store.put("b", self.record(seed=1), created=2_000.0,
                  fingerprint="f2")
        store.put("a", self.record(seed=0), created=1_000.0,
                  fingerprint="f1")
        rows = list(store.rows())
        assert [row[0] for row in rows] == ["a", "b"]
        assert [row[1] for row in rows] == [1_000.0, 2_000.0]
        assert [row[2] for row in rows] == ["f1", "f2"]
        assert all(row[3].startswith("quic ") for row in rows)  # req label

    def test_gc_drops_only_old_rows(self, make_store):
        store = make_store()
        store.put("old", self.record(), created=1_000.0)
        store.put("new", self.record(seed=1), created=2_000.0)
        dropped = store.gc(500.0, now=2_100.0)  # horizon: 1600
        assert dropped == 1
        assert "old" not in store and "new" in store

    def test_gc_dry_run_touches_nothing(self, make_store):
        store = make_store()
        store.put("old", self.record(), created=1_000.0)
        store.put("new", self.record(seed=1), created=2_000.0)
        assert store.gc(500.0, now=2_100.0, dry_run=True) == 1
        assert "old" in store and "new" in store
        assert len(store) == 2

    def test_counters(self, make_store):
        store = make_store()
        assert store.counters() == {}
        store.bump_counter("hits")
        store.bump_counter("hits", 2)
        assert store.counters() == {"hits": 3}


class TestShardLayout:
    def test_records_bucket_by_key_prefix(self, tmp_path):
        store = ShardStore(tmp_path / "shards")
        record = RunRecord(request=req(), plt=1.0, complete=True)
        store.put("aa11", record)
        store.put("ab22", record)
        store.put("0c33", record)
        store.put("zz44", record)  # non-hex prefix
        assert (tmp_path / "shards" / "a.jsonl").exists()
        assert (tmp_path / "shards" / "0.jsonl").exists()
        assert (tmp_path / "shards" / "misc.jsonl").exists()
        # appends go through per-shard lockfiles that survive the write
        assert (tmp_path / "shards" / "a.lock").exists()
        assert len(store) == 4

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        store = ShardStore(tmp_path / "shards")
        store.put("aa11", RunRecord(request=req(), plt=1.0, complete=True))
        shard = tmp_path / "shards" / "a.jsonl"
        with open(shard, "a") as handle:
            handle.write('{"key": "ab22", "created": 1.0, "rec')  # torn
        assert store.keys() == ["aa11"]
        assert store.get("aa11").plt == 1.0

    def test_refuses_foreign_directory(self, tmp_path):
        target = tmp_path / "notastore"
        target.mkdir()
        (target / "store.json").write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            ShardStore(target)

    def test_compaction_is_atomic_rename(self, tmp_path):
        store = ShardStore(tmp_path / "shards")
        record = RunRecord(request=req(), plt=1.0, complete=True)
        store.put("aa11", record)
        store.put("ab22", record)
        store.delete("aa11")
        shard = tmp_path / "shards" / "a.jsonl"
        assert shard.exists()
        assert not shard.with_suffix(".jsonl.tmp").exists()
        assert store.keys() == ["ab22"]
        store.delete("ab22")
        assert not shard.exists()  # empty shard files are removed


class TestShardAutoCompaction:
    def _dup_heavy(self, tmp_path, overwrites=16):
        """A shard whose ledger is one live key under many overwrites."""
        writer = ShardStore(tmp_path / "shards", compact_ratio=None)
        for i in range(overwrites):
            writer.put("aa11", RunRecord(request=req(), plt=float(i),
                                         complete=True))
        return tmp_path / "shards" / "a.jsonl"

    @staticmethod
    def _lines(shard):
        return len(shard.read_text().splitlines())

    def test_dead_heavy_shard_compacts_on_read(self, tmp_path):
        shard = self._dup_heavy(tmp_path)
        assert self._lines(shard) == 16
        store = ShardStore(tmp_path / "shards", compact_min_lines=8)
        assert store.get("aa11").plt == 15.0  # last write wins
        assert self._lines(shard) == 1  # 15 dead lines reclaimed
        assert store.compactions == 1
        assert store.counters()["compactions"] == 1
        # steady state: a compact shard is never rewritten again
        assert store.get("aa11").plt == 15.0
        assert store.compactions == 1

    def test_compact_ratio_none_disables(self, tmp_path):
        shard = self._dup_heavy(tmp_path)
        store = ShardStore(tmp_path / "shards", compact_ratio=None,
                           compact_min_lines=8)
        assert store.get("aa11").plt == 15.0
        assert self._lines(shard) == 16
        assert store.compactions == 0

    def test_small_shards_never_compact(self, tmp_path):
        # 16 lines is dead-heavy but below the default min-lines floor,
        # so the rewrite cost is not worth the reclaimed bytes.
        shard = self._dup_heavy(tmp_path)
        store = ShardStore(tmp_path / "shards")
        assert store.get("aa11").plt == 15.0
        assert self._lines(shard) == 16
        assert store.compactions == 0

    def test_ratio_at_threshold_does_not_trigger(self, tmp_path):
        # exactly half dead is not *more than* the 0.5 default ratio
        writer = ShardStore(tmp_path / "shards", compact_ratio=None)
        for i in range(4):
            writer.put("aa11", RunRecord(request=req(), plt=float(i),
                                         complete=True))
        for key in ("ab22", "ac33", "ad44", "ae55"):
            writer.put(key, RunRecord(request=req(), plt=1.0,
                                      complete=True))
        shard = tmp_path / "shards" / "a.jsonl"
        store = ShardStore(tmp_path / "shards", compact_min_lines=4)
        assert len(store.keys()) == 5
        assert self._lines(shard) == 8  # 4 dead / 8 lines == ratio
        assert store.compactions == 0

    def test_compaction_preserves_envelope(self, tmp_path):
        writer = ShardStore(tmp_path / "shards", compact_ratio=None)
        for i in range(16):
            writer.put("aa11", RunRecord(request=req(), plt=float(i),
                                         complete=True),
                       fingerprint="fp-final", created=123.5)
        store = ShardStore(tmp_path / "shards", compact_min_lines=8)
        store.get("aa11")
        assert store.compactions == 1
        ((key, created, fingerprint, _record),) = list(store.items())
        assert (key, created, fingerprint) == ("aa11", 123.5, "fp-final")


# ----------------------------------------------------------------------
# concurrent writers (the reason the sharded backend exists)
# ----------------------------------------------------------------------
_WRITER_CODE = """
import hashlib, sys
from repro.core.executor import ProtocolSpec, RunRecord, RunRequest
from repro.http import single_object_page
from repro.netem import emulated
from repro.store import open_store

path, worker, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = open_store(path)
request = RunRequest(scenario=emulated(10.0),
                     page=single_object_page(20_000),
                     protocol=ProtocolSpec.quic(), seed=worker)
record = RunRecord(request=request, plt=float(worker), complete=True,
                   metrics={"plt": float(worker)})
for i in range(count):
    key = hashlib.sha256(f"w{worker}-r{i}".encode()).hexdigest()
    store.put(key, record, fingerprint=f"w{worker}")
    store.bump_counter("writes")
store.close()
"""


class TestConcurrentWriters:
    WORKERS = 4
    RECORDS = 20

    def test_parallel_appends_lose_no_records(self, tmp_path):
        import hashlib

        store_dir = tmp_path / "shared-shards"
        ShardStore(store_dir).close()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get(
            "PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_CODE, str(store_dir),
                 str(worker), str(self.RECORDS)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
            for worker in range(self.WORKERS)
        ]
        for proc in procs:
            _out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()

        store = ShardStore(store_dir)
        total = self.WORKERS * self.RECORDS
        assert len(store) == total
        for worker in range(self.WORKERS):
            for i in range(self.RECORDS):
                key = hashlib.sha256(f"w{worker}-r{i}".encode()).hexdigest()
                record = store.get(key)  # parses: no torn/corrupt lines
                assert record is not None
                assert record.plt == float(worker)
        # every shard file is fully valid JSONL (no interleaved writes)
        for shard in store_dir.glob("[0-9a-f]*.jsonl"):
            for line in shard.read_text().splitlines():
                json.loads(line)
        assert store.counters() == {"writes": total}
        assert store.fingerprints() == {
            f"w{w}": self.RECORDS for w in range(self.WORKERS)}


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
class TestOpenStore:
    def test_memory_is_sqlite(self):
        assert open_store(":memory:").kind == "sqlite"

    def test_suffix_convention(self, tmp_path):
        assert open_store(tmp_path / "a.sqlite").kind == "sqlite"
        assert open_store(tmp_path / "b.db").kind == "sqlite"
        assert open_store(tmp_path / "c-store").kind == "shards"

    def test_existing_paths_win_over_suffix(self, tmp_path):
        sqlite_path = tmp_path / "store.sqlite"
        SqliteStore(sqlite_path).close()
        assert open_store(sqlite_path).kind == "sqlite"
        shard_dir = tmp_path / "weird.sqlite.d"
        ShardStore(shard_dir).close()
        assert open_store(shard_dir).kind == "shards"

    def test_backend_kwarg_forces(self, tmp_path):
        store = open_store(tmp_path / "forced.sqlite", backend="shards")
        assert store.kind == "shards"
        assert (tmp_path / "forced.sqlite" / "store.json").exists()

    def test_backend_kwarg_rejects_unknown(self, tmp_path):
        with pytest.raises(ValueError):
            open_store(tmp_path / "x", backend="parquet")

    def test_instance_passthrough_and_mismatch(self, tmp_path):
        store = SqliteStore(":memory:")
        assert open_store(store) is store
        with pytest.raises(ValueError):
            open_store(store, backend="shards")

    def test_env_var_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        store = open_store(None)
        assert store.kind == "shards"
        assert store.path == str(tmp_path / "env-store")

    def test_resultstore_alias_and_open(self, tmp_path):
        # Backwards compatibility: ResultStore is the sqlite backend and
        # its .open() coerces like open_store().
        assert ResultStore is SqliteStore
        assert isinstance(ResultStore.open(tmp_path / "x.sqlite"),
                          SqliteStore)
        assert isinstance(StoreBackend.open(tmp_path / "y-dir"), ShardStore)


class TestResolveStore:
    """The single store-resolution helper every entry point shares."""

    def test_explicit_path_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        explicit = tmp_path / "mine.sqlite"
        assert resolve_store_path(explicit) == str(explicit)
        store = resolve_store(explicit)
        assert store.path == str(explicit) and store.kind == "sqlite"

    def test_env_var_beats_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        assert resolve_store_path(None) == str(tmp_path / "env-store")
        assert resolve_store(None).kind == "shards"

    def test_falls_back_to_default_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        from repro.store import default_store_path
        assert resolve_store_path(None) == str(default_store_path())

    def test_backend_auto_infers_from_path(self, tmp_path):
        assert resolve_store(tmp_path / "a.sqlite",
                             backend="auto").kind == "sqlite"
        assert resolve_store(tmp_path / "b-dir",
                             backend="auto").kind == "shards"

    def test_forced_backend_conflicts_with_existing_store(self, tmp_path):
        path = tmp_path / "existing.sqlite"
        SqliteStore(path).close()
        with pytest.raises(ValueError, match="conflicts"):
            resolve_store(path, backend="shards")
        # the matching backend (or auto) is fine
        assert resolve_store(path, backend="sqlite").kind == "sqlite"
        assert resolve_store(path, backend="auto").kind == "sqlite"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="parquet"):
            resolve_store(tmp_path / "x", backend="parquet")

    def test_must_exist_raises_store_not_found(self, tmp_path):
        missing = tmp_path / "nope.sqlite"
        with pytest.raises(StoreNotFoundError, match="no results store"):
            resolve_store(missing, must_exist=True)
        # StoreNotFoundError is a FileNotFoundError for generic handlers
        assert issubclass(StoreNotFoundError, FileNotFoundError)
        SqliteStore(missing).close()
        assert resolve_store(missing, must_exist=True).kind == "sqlite"

    def test_memory_is_always_found(self):
        assert resolve_store(":memory:", must_exist=True).kind == "sqlite"

    def test_instance_passthrough(self):
        store = SqliteStore(":memory:")
        assert resolve_store(store) is store

    def test_store_kind_at(self, tmp_path):
        assert store_kind_at(":memory:") is None
        assert store_kind_at(tmp_path / "absent") is None
        sqlite_path = tmp_path / "a.sqlite"
        SqliteStore(sqlite_path).close()
        assert store_kind_at(sqlite_path) == "sqlite"
        shard_dir = tmp_path / "b-dir"
        ShardStore(shard_dir).close()
        assert store_kind_at(shard_dir) == "shards"


# ----------------------------------------------------------------------
# cross-store sync and parity
# ----------------------------------------------------------------------
def _store_dump(store):
    """Canonical bytes of every row (key, created, fingerprint, record)."""
    return [json.dumps({"key": k, "created": c, "fingerprint": f,
                        "record": r}, sort_keys=True)
            for k, c, f, r in store.items()]


class TestSyncAndParity:
    def fill(self, store, n=5):
        for i in range(n):
            record = RunRecord(request=req(seed=i), plt=float(i),
                               complete=True, metrics={"plt": float(i)})
            store.put(run_key(record.request), record,
                      fingerprint="fp", created=1_000.0 + i)

    def test_sqlite_shards_round_trip_parity(self, tmp_path):
        # Byte-identical records both ways: sqlite -> shards -> sqlite.
        sqlite_store = SqliteStore(tmp_path / "a.sqlite")
        self.fill(sqlite_store)
        shard_store = ShardStore(tmp_path / "b-shards")
        assert merge_into(shard_store, sqlite_store) == (5, 0)
        assert shard_store.keys() == sqlite_store.keys()
        assert _store_dump(shard_store) == _store_dump(sqlite_store)

        back = SqliteStore(tmp_path / "c.sqlite")
        assert merge_into(back, shard_store) == (5, 0)
        assert _store_dump(back) == _store_dump(sqlite_store)

    def test_sync_skips_present_keys(self, tmp_path):
        src = SqliteStore(tmp_path / "src.sqlite")
        self.fill(src, n=4)
        dst = ShardStore(tmp_path / "dst-shards")
        assert merge_into(dst, src) == (4, 0)
        self.fill(src, n=6)  # two new rows beyond the four already synced
        assert merge_into(dst, src) == (2, 4)
        assert len(dst) == 6

    def test_sync_from_paths_and_jsonl(self, tmp_path):
        src = ShardStore(tmp_path / "src-shards")
        self.fill(src, n=3)
        # from a shard-directory path
        dst1 = SqliteStore(tmp_path / "d1.sqlite")
        assert merge_into(dst1, tmp_path / "src-shards") == (3, 0)
        # from a sqlite-file path (sniffed by magic bytes, not suffix)
        odd_name = tmp_path / "peer.store"
        shutil.copyfile(tmp_path / "d1.sqlite", odd_name)
        dst2 = ShardStore(tmp_path / "d2-shards")
        assert merge_into(dst2, odd_name) == (3, 0)
        # from a JSONL export
        dump = tmp_path / "dump.jsonl"
        src.export_jsonl(dump)
        dst3 = SqliteStore(tmp_path / "d3.sqlite")
        assert merge_into(dst3, dump) == (3, 0)
        assert (_store_dump(dst1) == _store_dump(dst2)
                == _store_dump(dst3) == _store_dump(src))

    def test_sync_missing_source_raises(self, tmp_path):
        dst = SqliteStore(":memory:")
        with pytest.raises(FileNotFoundError):
            merge_into(dst, tmp_path / "nope")

    def test_sweep_resumes_across_backends(self, tmp_path):
        # Acceptance: a sweep cached under one backend resumes
        # (only-missing-cells) under the other after `store sync`.
        sqlite_cache = RunCache(SqliteStore(tmp_path / "a.sqlite"))

        def spy_factory(log):
            def spy(request):
                log.append(request.seed)
                return RunRecord(request=request, plt=float(request.seed),
                                 complete=True,
                                 metrics={"plt": float(request.seed)})
            return spy

        first = []
        run_requests([req(seed=0), req(seed=2)], store=sqlite_cache,
                     run_fn=spy_factory(first))
        assert first == [0, 2]

        shard_store = ShardStore(tmp_path / "b-shards")
        assert merge_into(shard_store, sqlite_cache.store) == (2, 0)

        second = []
        shard_cache = RunCache(shard_store)
        records = run_requests([req(seed=s) for s in range(4)],
                               store=shard_cache,
                               run_fn=spy_factory(second))
        assert second == [1, 3]  # only the cells sqlite didn't have
        assert [r.cached for r in records] == [True, False, True, False]
        assert all(r.ok for r in records)


# ----------------------------------------------------------------------
# cache-aware execution (each test runs against both backends)
# ----------------------------------------------------------------------
class TestCacheAwareExecution:
    def test_second_run_is_all_hits_and_bit_identical(self, make_store):
        cache = RunCache(make_store())
        requests = [req(seed=s) for s in range(3)]
        cold = run_requests(requests, store=cache)
        assert cache.session_stats == (0, 3, 3)
        assert all(r.ok and not r.cached for r in cold)

        executed = []

        def must_not_run(request):
            executed.append(request)
            raise AssertionError("cache hit should not execute")

        warm = run_requests([fresh_req(seed=s) for s in range(3)],
                            store=cache, run_fn=must_not_run)
        assert executed == []
        assert all(r.cached for r in warm)
        assert [r.plt for r in warm] == [r.plt for r in cold]
        assert [r.metrics for r in warm] == [r.metrics for r in cold]
        assert cache.session_stats == (3, 3, 3)

    def test_interrupted_sweep_resumes_missing_cells_only(self, make_store):
        cache = RunCache(make_store())
        # The "interrupted" first attempt completed seeds 0 and 2 only.
        run_requests([req(seed=0), req(seed=2)], store=cache)

        executed = []

        def spy(request):
            executed.append(request.seed)
            return RunRecord(request=request, plt=float(request.seed),
                             complete=True, metrics={"plt": float(request.seed)})

        records = run_requests([req(seed=s) for s in range(4)],
                               store=cache, run_fn=spy)
        assert executed == [1, 3]  # only the missing cells ran
        assert [r.cached for r in records] == [True, False, True, False]
        assert all(r.ok for r in records)

    def test_misses_execute_heaviest_first(self, make_store):
        # Cache-aware scheduling: the miss list runs in expected-cost
        # order (object count, then total bytes, descending) so the
        # longest run never starts last on an otherwise-drained pool —
        # while the returned records stay in request order.
        cache = RunCache(make_store())
        small = req(page=single_object_page(1_000))
        medium = req(page=page(4, 8_000))
        big = req(page=page(9, 8_000))
        executed = []

        def spy(request):
            executed.append(request.page.object_count)
            return RunRecord(request=request, plt=1.0, complete=True,
                             metrics={"plt": 1.0})

        records = run_requests([small, big, medium], store=cache, run_fn=spy)
        assert executed == [9, 4, 1]
        assert [r.request.page.object_count for r in records] == [1, 9, 4]

    def test_results_are_written_back_as_they_complete(self, make_store):
        # Resumability hinges on incremental write-back: if run 2 of 3
        # dies, runs 0..1 must already be in the store.
        cache = RunCache(make_store())

        def dies_at_seed_two(request):
            if request.seed == 2:
                raise KeyboardInterrupt()
            return RunRecord(request=request, plt=1.0, complete=True)

        with pytest.raises(KeyboardInterrupt):
            run_requests([req(seed=s) for s in range(3)], store=cache,
                         run_fn=dies_at_seed_two)
        assert len(cache.store) == 2

    def test_error_failures_are_not_cached(self, make_store):
        cache = RunCache(make_store())

        def broken(request):
            raise RuntimeError("boom")

        records = run_requests([req()], store=cache, retries=0, run_fn=broken)
        assert records[0].failure.kind == "error"
        assert len(cache.store) == 0

    def test_incomplete_runs_are_cached(self, make_store):
        cache = RunCache(make_store())
        cold = run_requests([req(timeout=0.001)], store=cache)
        assert cold[0].failure.kind == "incomplete"
        assert len(cache.store) == 1
        warm = run_requests([req(timeout=0.001)], store=cache)
        assert warm[0].cached
        assert warm[0].failure == cold[0].failure

    def test_progress_fires_for_hits_and_misses(self, make_store):
        cache = RunCache(make_store())
        run_requests([req(seed=0)], store=cache)
        seen = []
        with pytest.warns(DeprecationWarning, match="iter_runs"):
            run_requests([req(seed=s) for s in range(2)], store=cache,
                         progress=seen.append)
        assert sorted(r.request.seed for r in seen) == [0, 1]
        assert {r.request.seed: r.cached for r in seen} == {0: True, 1: False}

    def test_store_accepts_a_bare_path(self, tmp_path):
        path = tmp_path / "store.sqlite"
        run_requests([req()], store=path)
        assert len(open_store(path)) == 1
        # and a directory-flavoured path lands in a shard store
        shard_path = tmp_path / "store-dir"
        run_requests([req()], store=shard_path)
        reopened = open_store(shard_path)
        assert reopened.kind == "shards"
        assert len(reopened) == 1

    def test_code_change_invalidates_hits(self, make_store):
        store = make_store()
        old_code = RunCache(store, fingerprint="old-code")
        run_requests([req()], store=old_code)
        new_code = RunCache(store, fingerprint="new-code")
        executed = []

        def spy(request):
            executed.append(request.seed)
            return RunRecord(request=request, plt=1.0, complete=True)

        run_requests([req()], store=new_code, run_fn=spy)
        assert executed == [0]  # old result was not served
        assert new_code.session_stats == (0, 1, 1)

    def test_default_fingerprint_is_per_request_composite(self, make_store):
        cache = RunCache(make_store())
        assert cache.fingerprint is None
        assert cache.fingerprint_of(req()) == fingerprint_for(req())
        assert (cache.fingerprint_of(req(proxied=True))
                == fingerprint_for(req(proxied=True)))
        assert cache.fingerprint_of(req()) != cache.fingerprint_of(
            req(proxied=True))


# ----------------------------------------------------------------------
# experiment-level caching (the resumable-sweep contract)
# ----------------------------------------------------------------------
class TestExperimentCaching:
    def spec(self, **overrides):
        kwargs = dict(
            name="store-smoke",
            scenarios=[ScenarioSpec(10.0), ScenarioSpec(50.0)],
            workloads=[WorkloadSpec(1, 20)],
            runs=2,
        )
        kwargs.update(overrides)
        return ExperimentSpec(**kwargs)

    def test_rerun_is_all_hits_with_identical_json(self, make_store):
        cache = RunCache(make_store())
        first = run_experiment(self.spec(), store=cache)
        runs_total = cache.misses
        assert cache.hits == 0 and runs_total > 0
        second = run_experiment(self.spec(), store=cache)
        assert cache.hits == runs_total  # 100% hit rate on the rerun
        assert cache.misses == runs_total  # no new misses
        assert second.to_json() == first.to_json()

    def test_config_change_misses(self, make_store):
        cache = RunCache(make_store())
        run_experiment(self.spec(), store=cache)
        cache.hits = cache.misses = 0
        run_experiment(self.spec(quic_version=30), store=cache)
        # QUIC cells miss (different config); TCP cells still hit.
        assert cache.misses > 0 and cache.hits > 0

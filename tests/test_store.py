"""Tests for the content-addressed results store (repro.store).

The correctness contract: the same logical request always maps to the
same key (across object identities and across processes), while *any*
change to the configuration, seed, or code fingerprint maps to a
different key — a cache hit can therefore never be stale.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.executor import (
    ProtocolSpec,
    RunFailure,
    RunRecord,
    RunRequest,
    run_requests,
)
from repro.core.experiment import (
    ExperimentSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_experiment,
)
from repro.devices import NEXUS6, DeviceProfile
from repro.http import page, single_object_page
from repro.netem import emulated
from repro.netem.profiles import CELLULAR_PROFILES
from repro.quic import quic_config
from repro.store import (
    ResultStore,
    RunCache,
    code_fingerprint,
    record_from_dict,
    record_to_dict,
    request_from_dict,
    request_to_dict,
    run_key,
)
from repro.tcp import tcp_config

SCN = emulated(10.0)
PAGE = single_object_page(20_000)


def req(seed=0, **overrides):
    kwargs = dict(scenario=SCN, page=PAGE, protocol=ProtocolSpec.quic(),
                  seed=seed)
    kwargs.update(overrides)
    return RunRequest(**kwargs)


def fresh_req(seed=0):
    """The same logical request as ``req(seed)``, all-new objects."""
    return RunRequest(scenario=emulated(10.0),
                      page=single_object_page(20_000),
                      protocol=ProtocolSpec.quic(), seed=seed)


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
class TestRunKey:
    def test_key_shape(self):
        key = run_key(req())
        assert len(key) == 64
        int(key, 16)  # hex

    def test_same_logical_request_same_key(self):
        assert run_key(req(seed=5)) == run_key(fresh_req(seed=5))

    def test_key_is_stable_across_processes(self):
        src_dir = Path(__file__).resolve().parent.parent / "src"
        code = (
            "from repro.core.executor import ProtocolSpec, RunRequest\n"
            "from repro.http import single_object_page\n"
            "from repro.netem import emulated\n"
            "from repro.store import run_key\n"
            "r = RunRequest(scenario=emulated(10.0),\n"
            "               page=single_object_page(20_000),\n"
            "               protocol=ProtocolSpec.quic(), seed=3)\n"
            "print(run_key(r))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH",
                                                                "")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == run_key(req(seed=3))

    @pytest.mark.parametrize("variant", [
        lambda: req(seed=1),
        lambda: req(scenario=emulated(10.0, loss_pct=1.0)),
        lambda: req(scenario=emulated(50.0)),
        lambda: req(page=single_object_page(20_001)),
        lambda: req(page=page(2, 10_000)),
        lambda: req(protocol=ProtocolSpec.tcp()),
        lambda: req(protocol=ProtocolSpec.quic(version=36)),
        lambda: req(protocol=ProtocolSpec(
            "quic", quic_config(34).with_(nack_threshold=50))),
        lambda: req(protocol=ProtocolSpec(
            "tcp", tcp_config(dupthresh=10))),
        lambda: req(device=NEXUS6),
        lambda: req(trace=True),
        lambda: req(proxied=True),
        lambda: req(timeout=123.0),
    ])
    def test_any_field_change_changes_key(self, variant):
        assert run_key(variant()) != run_key(req())

    def test_default_and_explicit_default_config_differ(self):
        # ProtocolSpec(None) defers to the *current* defaults, so it is
        # deliberately a different address than a pinned explicit config.
        assert (run_key(req(protocol=ProtocolSpec.quic()))
                != run_key(req(protocol=ProtocolSpec.quic(quic_config(34)))))

    def test_code_fingerprint_changes_key(self):
        base = run_key(req(), fingerprint="aaaa")
        assert run_key(req(), fingerprint="bbbb") != base
        assert run_key(req(), fingerprint="aaaa") == base

    def test_fingerprint_tracks_source(self, tmp_path):
        tree = tmp_path / "pkg"
        tree.mkdir()
        (tree / "a.py").write_text("x = 1\n")
        first = code_fingerprint(tree)
        assert first == code_fingerprint(tmp_path / "pkg")  # cached, stable
        tree2 = tmp_path / "pkg2"
        tree2.mkdir()
        (tree2 / "a.py").write_text("x = 2\n")
        assert code_fingerprint(tree2) != first


# ----------------------------------------------------------------------
# the JSON codec
# ----------------------------------------------------------------------
class TestCodec:
    @pytest.mark.parametrize("request_", [
        req(seed=7),
        req(protocol=ProtocolSpec("quic",
                                  quic_config(36).with_(zero_rtt=False))),
        req(protocol=ProtocolSpec("tcp", tcp_config(tls_rtts=1))),
        req(scenario=CELLULAR_PROFILES["verizon-3g"].scenario(),
            device=NEXUS6, trace=True, cwnd_interval=0.5, proxied=True),
        req(device=DeviceProfile("weird", 1e-6, 2e-6, 3e-6, 0.1, noise=0.0)),
    ])
    def test_request_round_trip(self, request_):
        rebuilt = request_from_dict(request_to_dict(request_))
        assert rebuilt == request_
        assert run_key(rebuilt) == run_key(request_)

    def test_request_dict_is_json_safe(self):
        json.dumps(request_to_dict(req()))

    def test_record_round_trip(self):
        record = RunRecord(request=req(), plt=1.25, complete=True,
                           metrics={"plt": 1.25, "bytes": 20480.0},
                           wall_time=0.5, attempts=2)
        rebuilt = record_from_dict(record_to_dict(record))
        assert rebuilt.plt == record.plt
        assert rebuilt.metrics == record.metrics
        assert rebuilt.request == record.request
        assert rebuilt.failure is None

    def test_failure_round_trip(self):
        record = RunRecord(request=req(), failure=RunFailure(
            "incomplete", "ran out of simulated time"))
        rebuilt = record_from_dict(record_to_dict(record))
        assert rebuilt.failure == record.failure
        assert not rebuilt.ok


# ----------------------------------------------------------------------
# the sqlite backend
# ----------------------------------------------------------------------
class TestResultStore:
    def record(self, seed=0, plt=1.0):
        return RunRecord(request=req(seed=seed), plt=plt, complete=True,
                         metrics={"plt": plt})

    def test_put_get_contains_len_delete(self):
        store = ResultStore(":memory:")
        assert len(store) == 0
        store.put("k1", self.record())
        assert "k1" in store
        assert "k2" not in store
        assert store.get("k1").plt == 1.0
        assert store.get("k2") is None
        assert len(store) == 1
        assert store.delete("k1")
        assert not store.delete("k1")
        assert len(store) == 0

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "sub" / "store.sqlite"  # parent auto-created
        with ResultStore(path) as store:
            store.put("k1", self.record(plt=2.5), fingerprint="f1")
        with ResultStore(path) as store:
            assert store.get("k1").plt == 2.5
            assert store.fingerprints() == {"f1": 1}

    def test_jsonl_round_trip(self, tmp_path):
        store = ResultStore(":memory:")
        for i in range(3):
            store.put(f"k{i}", self.record(seed=i, plt=float(i)),
                      fingerprint="f")
        out = tmp_path / "dump.jsonl"
        assert store.export_jsonl(out) == 3
        other = ResultStore(":memory:")
        assert other.import_jsonl(out) == 3
        assert other.keys() == store.keys()
        for key in store.keys():
            assert other.get(key).plt == store.get(key).plt

    def test_gc_drops_only_old_rows(self):
        store = ResultStore(":memory:")
        store.put("old", self.record(), created=1_000.0)
        store.put("new", self.record(seed=1), created=2_000.0)
        dropped = store.gc(500.0, now=2_100.0)  # horizon: 1600
        assert dropped == 1
        assert "old" not in store and "new" in store

    def test_counters(self):
        store = ResultStore(":memory:")
        assert store.counters() == {}
        store.bump_counter("hits")
        store.bump_counter("hits", 2)
        assert store.counters() == {"hits": 3}


# ----------------------------------------------------------------------
# cache-aware execution
# ----------------------------------------------------------------------
class TestCacheAwareExecution:
    def test_second_run_is_all_hits_and_bit_identical(self):
        cache = RunCache(ResultStore(":memory:"))
        requests = [req(seed=s) for s in range(3)]
        cold = run_requests(requests, store=cache)
        assert cache.session_stats == (0, 3, 3)
        assert all(r.ok and not r.cached for r in cold)

        executed = []

        def must_not_run(request):
            executed.append(request)
            raise AssertionError("cache hit should not execute")

        warm = run_requests([fresh_req(seed=s) for s in range(3)],
                            store=cache, run_fn=must_not_run)
        assert executed == []
        assert all(r.cached for r in warm)
        assert [r.plt for r in warm] == [r.plt for r in cold]
        assert [r.metrics for r in warm] == [r.metrics for r in cold]
        assert cache.session_stats == (3, 3, 3)

    def test_interrupted_sweep_resumes_missing_cells_only(self):
        cache = RunCache(ResultStore(":memory:"))
        # The "interrupted" first attempt completed seeds 0 and 2 only.
        run_requests([req(seed=0), req(seed=2)], store=cache)

        executed = []

        def spy(request):
            executed.append(request.seed)
            return RunRecord(request=request, plt=float(request.seed),
                             complete=True, metrics={"plt": float(request.seed)})

        records = run_requests([req(seed=s) for s in range(4)],
                               store=cache, run_fn=spy)
        assert executed == [1, 3]  # only the missing cells ran
        assert [r.cached for r in records] == [True, False, True, False]
        assert all(r.ok for r in records)

    def test_misses_execute_heaviest_first(self):
        # Cache-aware scheduling: the miss list runs in expected-cost
        # order (object count, then total bytes, descending) so the
        # longest run never starts last on an otherwise-drained pool —
        # while the returned records stay in request order.
        cache = RunCache(ResultStore(":memory:"))
        small = req(page=single_object_page(1_000))
        medium = req(page=page(4, 8_000))
        big = req(page=page(9, 8_000))
        executed = []

        def spy(request):
            executed.append(request.page.object_count)
            return RunRecord(request=request, plt=1.0, complete=True,
                             metrics={"plt": 1.0})

        records = run_requests([small, big, medium], store=cache, run_fn=spy)
        assert executed == [9, 4, 1]
        assert [r.request.page.object_count for r in records] == [1, 9, 4]

    def test_results_are_written_back_as_they_complete(self):
        # Resumability hinges on incremental write-back: if run 2 of 3
        # dies, runs 0..1 must already be in the store.
        cache = RunCache(ResultStore(":memory:"))

        def dies_at_seed_two(request):
            if request.seed == 2:
                raise KeyboardInterrupt()
            return RunRecord(request=request, plt=1.0, complete=True)

        with pytest.raises(KeyboardInterrupt):
            run_requests([req(seed=s) for s in range(3)], store=cache,
                         run_fn=dies_at_seed_two)
        assert len(cache.store) == 2

    def test_error_failures_are_not_cached(self):
        cache = RunCache(ResultStore(":memory:"))

        def broken(request):
            raise RuntimeError("boom")

        records = run_requests([req()], store=cache, retries=0, run_fn=broken)
        assert records[0].failure.kind == "error"
        assert len(cache.store) == 0

    def test_incomplete_runs_are_cached(self):
        cache = RunCache(ResultStore(":memory:"))
        cold = run_requests([req(timeout=0.001)], store=cache)
        assert cold[0].failure.kind == "incomplete"
        assert len(cache.store) == 1
        warm = run_requests([req(timeout=0.001)], store=cache)
        assert warm[0].cached
        assert warm[0].failure == cold[0].failure

    def test_progress_fires_for_hits_and_misses(self):
        cache = RunCache(ResultStore(":memory:"))
        run_requests([req(seed=0)], store=cache)
        seen = []
        run_requests([req(seed=s) for s in range(2)], store=cache,
                     progress=seen.append)
        assert sorted(r.request.seed for r in seen) == [0, 1]
        assert {r.request.seed: r.cached for r in seen} == {0: True, 1: False}

    def test_store_accepts_a_bare_path(self, tmp_path):
        path = tmp_path / "store.sqlite"
        run_requests([req()], store=path)
        reopened = ResultStore(path)
        assert len(reopened) == 1

    def test_code_change_invalidates_hits(self):
        store = ResultStore(":memory:")
        old_code = RunCache(store, fingerprint="old-code")
        run_requests([req()], store=old_code)
        new_code = RunCache(store, fingerprint="new-code")
        executed = []

        def spy(request):
            executed.append(request.seed)
            return RunRecord(request=request, plt=1.0, complete=True)

        run_requests([req()], store=new_code, run_fn=spy)
        assert executed == [0]  # old result was not served
        assert new_code.session_stats == (0, 1, 1)


# ----------------------------------------------------------------------
# experiment-level caching (the resumable-sweep contract)
# ----------------------------------------------------------------------
class TestExperimentCaching:
    def spec(self, **overrides):
        kwargs = dict(
            name="store-smoke",
            scenarios=[ScenarioSpec(10.0), ScenarioSpec(50.0)],
            workloads=[WorkloadSpec(1, 20)],
            runs=2,
        )
        kwargs.update(overrides)
        return ExperimentSpec(**kwargs)

    def test_rerun_is_all_hits_with_identical_json(self):
        cache = RunCache(ResultStore(":memory:"))
        first = run_experiment(self.spec(), store=cache)
        runs_total = cache.misses
        assert cache.hits == 0 and runs_total > 0
        second = run_experiment(self.spec(), store=cache)
        assert cache.hits == runs_total  # 100% hit rate on the rerun
        assert cache.misses == runs_total  # no new misses
        assert second.to_json() == first.to_json()

    def test_config_change_misses(self):
        cache = RunCache(ResultStore(":memory:"))
        run_experiment(self.spec(), store=cache)
        cache.hits = cache.misses = 0
        run_experiment(self.spec(quic_version=30), store=cache)
        # QUIC cells miss (different config); TCP cells still hit.
        assert cache.misses > 0 and cache.hits > 0

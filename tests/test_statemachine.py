"""Tests for Synoptic-lite state-machine inference (Secs. 4.2/5.1)."""

import pytest

from repro.core.instrumentation import Trace
from repro.core.statemachine import (
    Invariant,
    StateMachineModel,
    infer,
    infer_from_sequences,
)


SEQS = [
    ["Init", "SlowStart", "CongestionAvoidance", "Recovery", "CongestionAvoidance"],
    ["Init", "SlowStart", "Recovery", "CongestionAvoidance"],
    ["Init", "SlowStart", "CongestionAvoidance"],
]


class TestInference:
    def test_states_collected(self):
        model = infer_from_sequences(SEQS)
        assert model.states == {
            "Init", "SlowStart", "CongestionAvoidance", "Recovery"
        }

    def test_transition_counts(self):
        model = infer_from_sequences(SEQS)
        assert model.transition_counts[("Init", "SlowStart")] == 3
        assert model.transition_counts[("SlowStart", "CongestionAvoidance")] == 2
        assert model.transition_counts[("SlowStart", "Recovery")] == 1

    def test_probabilities_normalised_per_source(self):
        model = infer_from_sequences(SEQS)
        probs = model.transition_probabilities()
        out_of_ss = [p for (a, _b), p in probs.items() if a == "SlowStart"]
        assert sum(out_of_ss) == pytest.approx(1.0)
        assert probs[("SlowStart", "CongestionAvoidance")] == pytest.approx(2 / 3)

    def test_initial_and_terminal(self):
        model = infer_from_sequences(SEQS)
        assert model.initial_counts["Init"] == 3
        assert model.terminal_counts["CongestionAvoidance"] == 3

    def test_has_transition_and_successors(self):
        model = infer_from_sequences(SEQS)
        assert model.has_transition("Init", "SlowStart")
        assert not model.has_transition("Init", "Recovery")
        assert model.successors("SlowStart") == ["CongestionAvoidance", "Recovery"]

    def test_empty_sequences_ignored(self):
        model = infer_from_sequences([[], ["A"]])
        assert model.traces_used == 1

    def test_infer_from_traces_includes_dwell(self):
        t = Trace(enabled=True)
        t.log_state(0.0, "A")
        t.log_state(1.0, "B")
        t.close(4.0)
        model = infer([t])
        fractions = model.dwell_fractions()
        assert fractions["B"] == pytest.approx(0.75)


class TestInvariants:
    def test_always_followed_by(self):
        seqs = [["login", "work", "logout"], ["login", "logout"]]
        invs = StateMachineModel.mine_invariants(seqs)
        assert Invariant("AFby", "login", "logout") in invs
        assert Invariant("AFby", "logout", "login") not in invs

    def test_never_followed_by(self):
        seqs = [["a", "b"], ["a", "c", "b"]]
        invs = StateMachineModel.mine_invariants(seqs)
        assert Invariant("NFby", "b", "a") in invs
        assert Invariant("NFby", "a", "b") not in invs

    def test_always_precedes(self):
        seqs = [["boot", "run"], ["boot", "idle", "run"]]
        invs = StateMachineModel.mine_invariants(seqs)
        assert Invariant("AP", "boot", "run") in invs
        assert Invariant("AP", "run", "boot") not in invs

    def test_counterexample_prunes(self):
        seqs = [["x", "y"], ["y"]]  # y occurs without any preceding x
        invs = StateMachineModel.mine_invariants(seqs)
        assert Invariant("AP", "x", "y") not in invs

    def test_empty_input(self):
        assert StateMachineModel.mine_invariants([]) == []

    def test_invariant_str(self):
        assert str(Invariant("AFby", "a", "b")) == "a ->* b"


class TestRendering:
    def test_dot_output_contains_nodes_and_edges(self):
        model = infer_from_sequences(SEQS)
        dot = model.to_dot(title="QUIC CC")
        assert "digraph" in dot
        assert '"SlowStart"' in dot
        assert '"Init" -> "SlowStart"' in dot
        assert "QUIC CC" in dot

    def test_dot_min_probability_filter(self):
        model = infer_from_sequences(SEQS)
        dot = model.to_dot(min_probability=0.9)
        assert '"SlowStart" -> "Recovery"' not in dot
        assert '"Init" -> "SlowStart"' in dot

    def test_dot_includes_dwell_percentages(self):
        t = Trace(enabled=True)
        t.log_state(0.0, "A")
        t.log_state(1.0, "B")
        t.close(2.0)
        model = infer([t])
        assert "50.0%" in model.to_dot()

    def test_summary_text(self):
        model = infer_from_sequences(SEQS)
        text = model.summary()
        assert "states: 4" in text
        assert "-> CongestionAvoidance" in text

"""Tests for the analytical CC models and ``repro validate``.

Covers the closed-form scaling laws (Mathis square-root, Cubic's
p^(-3/4), BBR's BDP bound), the regime-bounded prediction, the
streaming fit accumulator, the validate CLI exit codes, the report
sections — and the headline acceptance check: an intentionally
mis-tuned kernel (wrong beta) is flagged DIVERGENT by the oracle while
the stock kernels pass within tolerance.
"""

from __future__ import annotations

import math

import pytest

from repro.cli import main as cli_main
from repro.core.executor import run_requests
from repro.core.models import (
    DEFAULT_TOLERANCE,
    FitCell,
    ModelFitAccumulator,
    REGIME_CAPACITY,
    REGIME_LOSS,
    REGIME_WINDOW,
    aimd_rate,
    bbr_rate,
    cubic_rate,
    fit_records,
    goodput_capacity,
    oracle_requests,
    predict_rate,
    render_model_fit_table,
)
from repro.core.report import build_store_report
from repro.store import ResultStore
from repro.transport.cc import kernels
from repro.transport.flowtable import QUIC_PARAMS, TCP_PARAMS

MSS, RTT = 1350.0, 0.04


class TestClosedForms:
    def test_mathis_constant(self):
        # beta=1/2, alpha=1 collapses to (mss/rtt) * sqrt(3/(2p)).
        p = 0.01
        expected = MSS / RTT * math.sqrt(3.0 / (2.0 * p))
        assert aimd_rate(MSS, RTT, p) == pytest.approx(expected)

    def test_aimd_inverse_sqrt_loss(self):
        assert aimd_rate(MSS, RTT, 0.01) == \
            pytest.approx(2.0 * aimd_rate(MSS, RTT, 0.04))

    def test_aimd_gentler_beta_is_faster(self):
        assert aimd_rate(MSS, RTT, 0.01, beta=0.85) > \
            aimd_rate(MSS, RTT, 0.01, beta=0.5)

    def test_zero_loss_is_unbounded(self):
        assert aimd_rate(MSS, RTT, 0.0) == math.inf
        assert cubic_rate(MSS, RTT, 0.0) == math.inf

    def test_cubic_loss_exponent(self):
        # In the pure-cubic regime rate scales as p^(-3/4); suppress the
        # TCP-friendly floor to see the raw sawtooth law.
        lo = cubic_rate(MSS, 0.4, 0.0004, alpha=1e-9)
        hi = cubic_rate(MSS, 0.4, 0.004, alpha=1e-9)
        assert lo / hi == pytest.approx(10 ** 0.75, rel=1e-6)

    def test_cubic_tcp_friendly_floor(self):
        # At high loss / low RTT the Reno region dominates Cubic.
        assert cubic_rate(MSS, 0.01, 0.05) == pytest.approx(
            aimd_rate(MSS, 0.01, 0.05, beta=0.7,
                      alpha=3.0 * 0.3 / 1.7))

    def test_bbr_is_loss_agnostic_to_first_order(self):
        link = goodput_capacity(50e6)
        assert bbr_rate(MSS, RTT, 0.01, link_rate=link) == \
            pytest.approx(link * 0.99)
        # Only the delivered fraction, not the rate, reacts to loss.
        assert bbr_rate(MSS, RTT, 0.02, link_rate=link) > 0.9 * link


class TestPredictRate:
    def test_loss_limited_regime(self):
        pred = predict_rate("reno", TCP_PARAMS, rtt=RTT, loss_rate=0.02,
                            link_rate_bps=50e6)
        assert pred.regime == REGIME_LOSS
        assert pred.rate < goodput_capacity(50e6)

    def test_capacity_limited_regime(self):
        pred = predict_rate("bbr", TCP_PARAMS, rtt=RTT, loss_rate=0.01,
                            link_rate_bps=10e6)
        assert pred.regime == REGIME_CAPACITY

    def test_window_limited_regime(self):
        from dataclasses import replace

        # A tiny MACW on a fat link binds before capacity does.
        pred = predict_rate("reno", replace(QUIC_PARAMS, max_cwnd=20.0),
                            rtt=RTT, loss_rate=0.0001,
                            link_rate_bps=1000e6)
        assert pred.regime == REGIME_WINDOW
        assert pred.rate == pytest.approx(20 * 1350.0 / RTT)

    def test_quic_params_predict_more_than_tcp(self):
        quic = predict_rate("reno", QUIC_PARAMS, rtt=RTT, loss_rate=0.02,
                            link_rate_bps=50e6)
        tcp = predict_rate("reno", TCP_PARAMS, rtt=RTT, loss_rate=0.02,
                           link_rate_bps=50e6)
        # The paper's asymmetry: QUIC's beta 0.85 out-competes TCP's 0.7.
        assert quic.rate > tcp.rate

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError):
            predict_rate("vegas", TCP_PARAMS, rtt=RTT, loss_rate=0.01,
                         link_rate_bps=50e6)


class TestFitCell:
    def test_tolerance_band_is_symmetric(self):
        cell = FitCell(cc="reno", proto="tcp", rate_mbps=50.0, rtt=RTT,
                       loss_rate=0.01, observed=160.0, predicted=100.0,
                       regime=REGIME_LOSS, runs=1, gated=True)
        assert cell.within(0.6)
        assert not cell.within(0.5)
        low = FitCell(cc="reno", proto="tcp", rate_mbps=50.0, rtt=RTT,
                      loss_rate=0.01, observed=100.0 / 1.7,
                      predicted=100.0, regime=REGIME_LOSS, runs=1,
                      gated=True)
        assert low.within(0.8)
        assert not low.within(0.6)

    def test_render_marks_divergence(self):
        cell = FitCell(cc="reno", proto="tcp", rate_mbps=50.0, rtt=RTT,
                       loss_rate=0.01, observed=500.0, predicted=100.0,
                       regime=REGIME_LOSS, runs=1, gated=True)
        table = render_model_fit_table([cell])
        assert "DIVERGENT" in table
        info = FitCell(cc="reno", proto="tcp", rate_mbps=50.0, rtt=RTT,
                       loss_rate=0.0, observed=500.0, predicted=math.inf,
                       regime=REGIME_CAPACITY, runs=1, gated=False)
        assert "(info)" in render_model_fit_table([info])


def oracle_grid_records(ccs=("reno",), loss_rates=(0.02,), store=None):
    return run_requests(oracle_requests(ccs=ccs, loss_rates=loss_rates),
                        store=store)


class TestFitAccumulator:
    def test_oracle_cells_within_tolerance(self):
        fit = fit_records(oracle_grid_records())
        cells = fit.cells()
        assert {(c.cc, c.proto) for c in cells} == \
            {("reno", "quic"), ("reno", "tcp")}
        assert all(c.gated and c.within(DEFAULT_TOLERANCE) for c in cells)

    def test_mixed_share_and_incomplete_skipped(self):
        records = oracle_grid_records()
        fit = ModelFitAccumulator()
        for record in records:
            mixed = record.request.with_(
                manyflow=record.request.manyflow.with_(tcp_share=0.5))
            clone = type(record)(request=mixed, plt=record.plt,
                                 complete=True, metrics=record.metrics)
            fit.add_record(clone)
            incomplete = type(record)(request=record.request,
                                      complete=False,
                                      metrics=record.metrics)
            fit.add_record(incomplete)
        assert not fit

    def test_merge_averages_across_seeds(self):
        records = oracle_grid_records()
        left, right = ModelFitAccumulator(), ModelFitAccumulator()
        for record in records:
            left.add_record(record)
            right.add_record(record)
        left.merge(right)
        merged = {(c.cc, c.proto): c for c in left.cells()}
        single = {(c.cc, c.proto): c
                  for c in fit_records(records).cells()}
        for key, cell in merged.items():
            assert cell.runs == 2 * single[key].runs
            assert cell.observed == pytest.approx(single[key].observed)


class TestMisTunedKernelIsFlagged:
    def test_wrong_beta_diverges(self, monkeypatch):
        """The acceptance check: halving reno's decrease factor drops
        steady-state throughput ~2x below the model, outside tolerance —
        the oracle catches a CC bug the goldens would only catch if
        nobody re-baselined them."""
        def buggy_on_loss(self, now=0.0, in_flight=0.0):
            cwnd = max(self.cwnd * (self.beta * 0.5), self.min_cwnd)
            self.cwnd = cwnd
            self.ssthresh = cwnd

        monkeypatch.setattr(kernels.RenoKernel, "on_loss", buggy_on_loss)
        cells = fit_records(oracle_grid_records()).cells()
        # QUIC's beta shifts 0.85 -> 0.425, far outside the band; that
        # one divergent cell is enough to flip `repro validate` red.
        quic = [cell for cell in cells if cell.proto == "quic"]
        assert quic and all(
            not cell.within(DEFAULT_TOLERANCE) for cell in quic)
        assert "DIVERGENT" in render_model_fit_table(cells)


class TestValidateCli:
    def test_from_store_passes_and_tightens(self, tmp_path, capsys):
        store_path = tmp_path / "store.sqlite"
        store = ResultStore(store_path)
        oracle_grid_records(store=store)
        store.close()
        assert cli_main(["validate", "--from-store",
                         str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "| reno | quic |" in out
        assert "DIVERGENT" not in out
        # An absurdly tight band must flip the exit code.
        assert cli_main(["validate", "--from-store", str(store_path),
                         "--tolerance", "0.0001"]) == 1
        assert "DIVERGENT" in capsys.readouterr().out

    def test_missing_store_exits_nonzero(self, tmp_path, capsys):
        assert cli_main(["validate", "--from-store",
                         str(tmp_path / "absent.sqlite")]) == 1


class TestReportSections:
    def test_model_fit_section(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        oracle_grid_records(store=store)
        report = build_store_report(store)
        assert "## Model fit (analytical CC oracles)" in report
        assert "| reno | quic |" in report

    def test_dwell_section_from_traced_run(self, tmp_path):
        from repro.core.executor import ProtocolSpec, RunRequest
        from repro.http import single_object_page
        from repro.netem import emulated

        store = ResultStore(tmp_path / "store")
        request = RunRequest(scenario=emulated(10.0),
                             page=single_object_page(200 * 1024),
                             protocol=ProtocolSpec.quic(), trace=True)
        records = run_requests([request], store=store)
        assert any(k.startswith("dwell:") for k in records[0].metrics)
        report = build_store_report(store)
        assert "## Inferred CC states" in report
        assert "SlowStart" in report or "CongestionAvoidance" in report

    def test_untraced_store_has_no_dwell_section(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        oracle_grid_records(store=store)
        assert "Inferred CC states" not in build_store_report(store)

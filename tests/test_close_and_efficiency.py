"""Tests for graceful connection teardown and wire-efficiency reports."""

import pytest

from repro.core.rootcause import efficiency_report
from repro.netem import Simulator, emulated
from repro.quic import quic_config
from repro.tcp import tcp_config

from .conftest import make_quic_pair, make_tcp_pair, quic_download, tcp_download


class TestQuicClose:
    def test_close_notifies_peer(self, sim):
        _, client, server = make_quic_pair(sim, emulated(10.0))
        quic_download(sim, client, 50_000)
        client.close()
        sim.run(until=sim.now + 0.5)
        assert server.closed

    def test_peer_stops_timers_after_close(self, sim):
        """Closing mid-transfer must not leave the peer retransmitting
        into the void until RTO backoff exhausts."""
        _, client, server = make_quic_pair(sim, emulated(10.0))
        client.connect()
        client.request({"size": 2_000_000}, lambda *a: None)
        sim.run(until=0.2)
        client.close()
        sim.run(until=0.5)
        rto_before = server.stats.rto_fires
        sim.run(until=5.0)
        assert server.closed
        assert server.stats.rto_fires == rto_before

    def test_close_idempotent_and_silent_variant(self, sim):
        _, client, server = make_quic_pair(sim, emulated(10.0))
        client.connect()
        client.close(notify_peer=False)
        client.close()
        sim.run(until=1.0)
        assert client.closed
        assert not server.closed  # never told


class TestTcpClose:
    def test_rst_closes_peer(self, sim):
        _, client, server = make_tcp_pair(sim, emulated(10.0))
        tcp_download(sim, client, 50_000)
        client.close()
        sim.run(until=sim.now + 0.5)
        assert server.closed

    def test_mid_transfer_reset(self, sim):
        _, client, server = make_tcp_pair(sim, emulated(10.0))
        client.connect(lambda now: client.request({"size": 2_000_000},
                                                  lambda *a: None))
        sim.run(until=0.4)
        client.close()
        sim.run(until=1.0)
        assert server.closed


class TestEfficiencyReport:
    def test_clean_transfer_low_overhead(self, sim):
        scn = emulated(10.0).with_(queue_bytes=10_000_000)
        _, client, server = make_quic_pair(sim, scn)
        quic_download(sim, client, 1_000_000)
        report = efficiency_report(server, 1_000_000)
        assert report.protocol == "quic"
        assert report.overhead_fraction < 0.08
        assert "overhead" in report.describe()

    def test_fec_overhead_visible(self, sim):
        cfg = quic_config(34)
        cfg.fec_enabled = True
        scn = emulated(10.0).with_(queue_bytes=10_000_000)
        _, client, server = make_quic_pair(sim, scn, cfg=cfg)
        quic_download(sim, client, 1_000_000)
        report = efficiency_report(server, 1_000_000)
        assert report.overhead_fraction > 0.12  # ~1/6 FEC tax visible

    def test_tcp_report(self, sim):
        _, client, server = make_tcp_pair(sim, emulated(10.0))
        tcp_download(sim, client, 500_000)
        report = efficiency_report(server, 500_000)
        assert report.protocol == "tcp"
        assert 0.0 <= report.overhead_fraction < 0.25

"""Shared test helpers: tiny testbeds and transfer drivers."""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import pytest

from repro.devices import DESKTOP, DeviceProfile
from repro.netem import Scenario, Simulator, build_path, emulated
from repro.quic import QuicConfig, open_quic_pair, quic_config
from repro.tcp import TcpConfig, open_tcp_pair, tcp_config


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


def make_quic_pair(
    sim: Simulator,
    scenario: Scenario,
    *,
    seed: int = 1,
    cfg: Optional[QuicConfig] = None,
    device: DeviceProfile = DESKTOP,
    handler=None,
    **pair_kwargs: Any,
):
    """Build a path + QUIC client/server pair serving sized requests."""
    path = build_path(sim, scenario, seed=seed)
    cfg = cfg if cfg is not None else quic_config(34)
    handler = handler if handler is not None else (lambda meta: meta["size"])
    client, server = open_quic_pair(
        sim, path.client, path.server, cfg, device=device,
        request_handler=handler, seed=seed, **pair_kwargs,
    )
    return path, client, server


def make_tcp_pair(
    sim: Simulator,
    scenario: Scenario,
    *,
    seed: int = 1,
    cfg: Optional[TcpConfig] = None,
    device: DeviceProfile = DESKTOP,
    handler=None,
    **pair_kwargs: Any,
):
    """Build a path + TCP client/server pair serving sized requests."""
    path = build_path(sim, scenario, seed=seed)
    cfg = cfg if cfg is not None else tcp_config()
    handler = handler if handler is not None else (lambda meta: meta["size"])
    client, server = open_tcp_pair(
        sim, path.client, path.server, cfg, device=device,
        request_handler=handler, seed=seed, **pair_kwargs,
    )
    return path, client, server


def quic_download(sim: Simulator, client, size: int, *, timeout: float = 120.0,
                  meta_extra: Optional[Dict[str, Any]] = None) -> float:
    """Connect, download one object over QUIC, return completion time."""
    done: Dict[int, float] = {}
    meta = {"size": size}
    if meta_extra:
        meta.update(meta_extra)
    client.connect()
    client.request(meta, lambda sid, m, now: done.update({sid: now}))
    finished = sim.run_until(lambda: len(done) == 1, timeout=timeout)
    assert finished, f"QUIC download of {size}B did not finish in {timeout}s"
    return next(iter(done.values()))


def tcp_download(sim: Simulator, client, size: int, *, timeout: float = 120.0,
                 meta_extra: Optional[Dict[str, Any]] = None) -> float:
    """Connect, download one object over TCP, return completion time."""
    done: Dict[int, float] = {}
    meta = {"size": size}
    if meta_extra:
        meta.update(meta_extra)
    client.connect(
        lambda now: client.request(meta, lambda mid, m, t: done.update({mid: t}))
    )
    finished = sim.run_until(lambda: len(done) == 1, timeout=timeout)
    assert finished, f"TCP download of {size}B did not finish in {timeout}s"
    return next(iter(done.values()))


FAST = emulated(100.0, name="fast-100Mbps")
MEDIUM = emulated(10.0, name="medium-10Mbps")
SLOW = emulated(5.0, name="slow-5Mbps")
LOSSY = emulated(100.0, loss_pct=1.0, name="lossy-1pct")
JITTERY = emulated(100.0, jitter_ms=10.0, name="jitter-10ms")

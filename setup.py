"""Packaging entry point.

Metadata lives in setup.cfg.  pyproject.toml is intentionally absent:
with it present, pip's PEP-517 editable path requires the `wheel`
package at build time, which offline environments may not have; the
legacy path (`setup.py` + `setup.cfg`) installs everywhere.
"""

from setuptools import setup

setup()

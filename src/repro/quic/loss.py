"""QUIC loss detection (paper Secs. 2.1 and 5.2).

GQUIC-34 declares a packet lost once ``nack_threshold`` (default 3)
packets with *higher* packet numbers have been acknowledged — a fixed
reordering threshold.  The paper shows (Fig. 10) that jitter-induced
reordering deeper than this threshold makes QUIC declare floods of false
losses, and that raising the threshold restores performance; it also
notes the QUIC team was experimenting with adaptive and time-based
variants.  All three policies are implemented here:

* fixed threshold (``nack_threshold``),
* adaptive threshold (``adaptive_nack_threshold``): on each spurious
  retransmit, raise the threshold to the observed reorder depth + 1
  (the DSACK-style adaptation TCP gets from RR-TCP),
* time-based (``time_based_loss``): once the NACK threshold is met the
  declaration is *deferred* by 1/4 smoothed RTT; a late (reordered)
  arrival inside that window cancels it — Chromium's "loss timeout"
  experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.instrumentation import Trace
from .config import QuicConfig
from .frames import StreamFrame


@dataclass
class SentPacketRecord:
    """Book-keeping for one transmitted retransmittable packet."""

    pkt_num: int
    sent_time: float
    size_bytes: int
    frames: List[Any] = field(default_factory=list)
    is_probe: bool = False
    nacks: int = 0
    #: Under time-based loss detection: when the pending loss declaration
    #: matures (None while the NACK threshold has not been reached).
    loss_eligible_at: Optional[float] = None

    def stream_frames(self) -> List[StreamFrame]:
        return [f for f in self.frames if isinstance(f, StreamFrame)]


class LossDetector:
    """NACK-threshold (and optionally time-based) loss declaration."""

    def __init__(self, config: QuicConfig, trace: Trace) -> None:
        self.config = config
        self.trace = trace
        self.threshold = config.nack_threshold
        #: When the earliest deferred (time-based) declaration matures;
        #: the connection schedules a recheck at this time.
        self.next_eligible_time: Optional[float] = None
        #: Packets declared lost, kept briefly to detect spurious calls.
        self.declared_lost: Dict[int, SentPacketRecord] = {}
        self.losses_declared = 0
        self.false_losses = 0

    def detect(self, now: float, sent: Dict[int, SentPacketRecord],
               missing: List[int], newly_acked_sorted: List[int],
               largest_acked: int, srtt: float) -> List[SentPacketRecord]:
        """Update NACK counts after an ACK; return newly lost records.

        ``missing`` are the still-unacked packet numbers below
        ``largest_acked`` (the "holes" the connection computed from the
        peer's cumulative ack ranges); ``newly_acked_sorted`` are the
        packet numbers this ACK newly covered, ascending.
        """
        self.next_eligible_time = None
        lost: List[SentPacketRecord] = []
        for pkt_num in missing:
            record = sent.get(pkt_num)
            if record is None or pkt_num >= largest_acked:
                continue
            if newly_acked_sorted:
                # How many of the newly acked packets have higher numbers?
                record.nacks += self._count_higher(newly_acked_sorted, pkt_num)
            if record.nacks < self.threshold:
                continue
            if self.config.time_based_loss:
                # Defer the declaration by 1/4 SRTT: a reordered arrival
                # inside the window cancels it (Chromium's experiment).
                if record.loss_eligible_at is None:
                    record.loss_eligible_at = now + 0.25 * srtt
                if now < record.loss_eligible_at:
                    if (self.next_eligible_time is None
                            or record.loss_eligible_at < self.next_eligible_time):
                        self.next_eligible_time = record.loss_eligible_at
                    continue
            lost.append(record)
        for record in lost:
            del sent[record.pkt_num]
            self.declared_lost[record.pkt_num] = record
            self.losses_declared += 1
            self.trace.log(now, "loss", record.pkt_num)
        self._prune()
        return lost

    def note_ack_of_lost(self, now: float, pkt_num: int,
                         largest_acked: int) -> Optional[SentPacketRecord]:
        """An ACK arrived for a packet we had declared lost: spurious.

        Returns the original record (so duplicate accounting can occur)
        and, under the adaptive policy, raises the NACK threshold to the
        observed reordering depth + 1.
        """
        record = self.declared_lost.pop(pkt_num, None)
        if record is None:
            return None
        self.false_losses += 1
        self.trace.log(now, "false_loss", pkt_num)
        if self.config.adaptive_nack_threshold:
            depth = max(largest_acked - pkt_num, record.nacks)
            self.threshold = min(
                max(self.threshold, depth + 1), self.config.nack_threshold_cap
            )
        return record

    @staticmethod
    def _count_higher(acked_sorted: List[int], pkt_num: int) -> int:
        """Number of entries in ``acked_sorted`` strictly above ``pkt_num``."""
        import bisect

        return len(acked_sorted) - bisect.bisect_right(acked_sorted, pkt_num)

    def _prune(self, keep: int = 512) -> None:
        if len(self.declared_lost) > keep:
            for num in sorted(self.declared_lost)[: len(self.declared_lost) - keep]:
                del self.declared_lost[num]

"""Client-side session state for 0-RTT (paper Secs. 3.1/5.2).

The paper's protocol: clear caches and sockets between runs, but *keep*
"the state used for QUIC's 0-RTT connection establishment" — i.e. the
cached server config that lets a returning client skip the inchoate
CHLO/REJ round.  This module makes that state explicit:

* a :class:`SessionCache` remembers which servers a client has completed
  a handshake with (and when);
* a connection created with a cache attempts 0-RTT only if the cache
  holds a (fresh) config for the server — the first-ever contact pays the
  1-RTT REJ round and *populates* the cache, exactly like Chrome.

Experiments that want the paper's steady-state behaviour simply pass a
pre-warmed cache (or use ``zero_rtt=True`` directly, the default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class CachedServerConfig:
    """What the client retains from a prior handshake."""

    server: str
    stored_at: float


class SessionCache:
    """Per-client store of server configs enabling 0-RTT."""

    def __init__(self, lifetime: Optional[float] = None) -> None:
        #: Config lifetime in seconds; None = never expires (GQUIC's
        #: server configs lasted days — effectively forever per run).
        self.lifetime = lifetime
        self._configs: Dict[str, CachedServerConfig] = {}
        self.hits = 0
        self.misses = 0

    def has_config(self, server: str, now: float = 0.0) -> bool:
        """True if a usable (fresh) config for ``server`` is cached."""
        entry = self._configs.get(server)
        if entry is None:
            self.misses += 1
            return False
        if self.lifetime is not None and now - entry.stored_at > self.lifetime:
            del self._configs[server]
            self.misses += 1
            return False
        self.hits += 1
        return True

    def store(self, server: str, now: float) -> None:
        """Record a completed handshake with ``server``."""
        self._configs[server] = CachedServerConfig(server, now)

    def clear(self) -> None:
        """Forget everything (a 'cold' client)."""
        self._configs.clear()

    def prewarmed(self, *servers: str) -> "SessionCache":
        """Convenience: mark servers as already visited (paper default)."""
        for server in servers:
            self.store(server, 0.0)
        return self

    def __len__(self) -> int:
        return len(self._configs)

    def __contains__(self, server: str) -> bool:
        return server in self._configs

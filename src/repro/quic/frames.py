"""QUIC wire elements: frames and packets.

Only the structure that matters for performance is modelled — sizes,
packet numbers, offsets, ACK blocks, timestamps.  Frame "contents" are
byte *counts*; application metadata rides along unserialised (the network
layer never looks inside).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

#: Per-frame header overheads (approximating GQUIC wire format).
STREAM_FRAME_OVERHEAD = 12
ACK_FRAME_BASE = 16
ACK_BLOCK_BYTES = 8
WINDOW_UPDATE_BYTES = 14


@dataclass
class StreamFrame:
    """``length`` bytes of stream ``stream_id`` starting at ``offset``."""

    stream_id: int
    offset: int
    length: int
    fin: bool = False
    #: Opaque application payload reference (e.g. an HTTP request object);
    #: carried only on the frame that opens a request/response.
    meta: Any = None

    @property
    def wire_bytes(self) -> int:
        return self.length + STREAM_FRAME_OVERHEAD

    def end(self) -> int:
        return self.offset + self.length


@dataclass
class AckFrame:
    """Acknowledges packet-number ranges with precise timing information.

    ``blocks`` are inclusive ``(lo, hi)`` packet-number ranges, highest
    first.  ``ack_delay`` is the receiver-measured delay between receiving
    the largest acked packet and emitting this frame — QUIC's mechanism
    for unambiguous RTT samples (paper Sec. 2.1).
    """

    largest_acked: int
    ack_delay: float
    blocks: Tuple[Tuple[int, int], ...]

    @property
    def wire_bytes(self) -> int:
        return ACK_FRAME_BASE + ACK_BLOCK_BYTES * len(self.blocks)

    def acked_numbers(self) -> List[int]:
        out: List[int] = []
        for lo, hi in self.blocks:
            out.extend(range(lo, hi + 1))
        return out


@dataclass
class CryptoFrame:
    """A handshake message (inchoate CHLO / CHLO / REJ / SHLO)."""

    kind: str
    size: int

    @property
    def wire_bytes(self) -> int:
        return self.size


@dataclass
class MaxDataFrame:
    """Connection-level flow-control credit up to byte ``max_data``."""

    max_data: int

    @property
    def wire_bytes(self) -> int:
        return WINDOW_UPDATE_BYTES


@dataclass
class MaxStreamDataFrame:
    """Stream-level flow-control credit."""

    stream_id: int
    max_data: int

    @property
    def wire_bytes(self) -> int:
        return WINDOW_UPDATE_BYTES


Frame = Any  # union of the frame classes above


@dataclass
class QuicPacket:
    """One QUIC packet: a numbered bundle of frames on a connection."""

    conn_id: str
    pkt_num: int
    frames: List[Frame] = field(default_factory=list)

    @property
    def payload_bytes(self) -> int:
        return sum(f.wire_bytes for f in self.frames)

    @property
    def retransmittable(self) -> bool:
        """ACK-only packets are not congestion-controlled or acked.

        Window updates are retransmittable (losing one could deadlock the
        peer's flow control), matching GQUIC.  FEC packets are tracked
        and congestion-charged like data (GQUIC numbered and acked them)
        but carry no re-sendable frames — their loss is absorbed.
        """
        for f in self.frames:
            if isinstance(f, (StreamFrame, CryptoFrame, MaxDataFrame,
                              MaxStreamDataFrame)):
                return True
            if type(f).__name__ == "FecFrame":
                return True
        return False

    def stream_frames(self) -> List[StreamFrame]:
        return [f for f in self.frames if isinstance(f, StreamFrame)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(f).__name__ for f in self.frames)
        return f"<QuicPacket {self.conn_id}#{self.pkt_num} [{kinds}]>"

"""QUIC wire elements: frames and packets.

Only the structure that matters for performance is modelled — sizes,
packet numbers, offsets, ACK blocks, timestamps.  Frame "contents" are
byte *counts*; application metadata rides along unserialised (the network
layer never looks inside).

These are hand-rolled ``__slots__`` classes rather than dataclasses:
frames and packets are allocated for every packet on the wire, and at
that volume the dataclass ``__init__`` indirection and per-instance
``__dict__`` show up in profiles.  ``wire_bytes`` is a plain attribute
computed once at construction (frames are immutable in practice), and a
:class:`QuicPacket` classifies itself as retransmittable exactly once
instead of re-walking its frames on every query.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

#: Per-frame header overheads (approximating GQUIC wire format).
STREAM_FRAME_OVERHEAD = 12
ACK_FRAME_BASE = 16
ACK_BLOCK_BYTES = 8
WINDOW_UPDATE_BYTES = 14


class StreamFrame:
    """``length`` bytes of stream ``stream_id`` starting at ``offset``."""

    __slots__ = ("stream_id", "offset", "length", "fin", "meta", "wire_bytes")

    def __init__(self, stream_id: int, offset: int, length: int,
                 fin: bool = False, meta: Any = None) -> None:
        self.stream_id = stream_id
        self.offset = offset
        self.length = length
        self.fin = fin
        #: Opaque application payload reference (e.g. an HTTP request
        #: object); carried only on the frame that opens a request/response.
        self.meta = meta
        self.wire_bytes = length + STREAM_FRAME_OVERHEAD

    def end(self) -> int:
        return self.offset + self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fin = " fin" if self.fin else ""
        return (f"StreamFrame(stream_id={self.stream_id}, "
                f"offset={self.offset}, length={self.length}{fin})")


class AckFrame:
    """Acknowledges packet-number ranges with precise timing information.

    ``blocks`` are inclusive ``(lo, hi)`` packet-number ranges, highest
    first.  ``ack_delay`` is the receiver-measured delay between receiving
    the largest acked packet and emitting this frame — QUIC's mechanism
    for unambiguous RTT samples (paper Sec. 2.1).
    """

    __slots__ = ("largest_acked", "ack_delay", "blocks", "wire_bytes")

    def __init__(self, largest_acked: int, ack_delay: float,
                 blocks: Tuple[Tuple[int, int], ...]) -> None:
        self.largest_acked = largest_acked
        self.ack_delay = ack_delay
        self.blocks = blocks
        self.wire_bytes = ACK_FRAME_BASE + ACK_BLOCK_BYTES * len(blocks)

    def acked_numbers(self) -> List[int]:
        out: List[int] = []
        for lo, hi in self.blocks:
            out.extend(range(lo, hi + 1))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AckFrame(largest_acked={self.largest_acked}, "
                f"blocks={self.blocks!r})")


class CryptoFrame:
    """A handshake message (inchoate CHLO / CHLO / REJ / SHLO)."""

    __slots__ = ("kind", "size", "wire_bytes")

    def __init__(self, kind: str, size: int) -> None:
        self.kind = kind
        self.size = size
        self.wire_bytes = size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CryptoFrame(kind={self.kind!r}, size={self.size})"


class MaxDataFrame:
    """Connection-level flow-control credit up to byte ``max_data``."""

    __slots__ = ("max_data", "wire_bytes")

    def __init__(self, max_data: int) -> None:
        self.max_data = max_data
        self.wire_bytes = WINDOW_UPDATE_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MaxDataFrame(max_data={self.max_data})"


class MaxStreamDataFrame:
    """Stream-level flow-control credit."""

    __slots__ = ("stream_id", "max_data", "wire_bytes")

    def __init__(self, stream_id: int, max_data: int) -> None:
        self.stream_id = stream_id
        self.max_data = max_data
        self.wire_bytes = WINDOW_UPDATE_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MaxStreamDataFrame(stream_id={self.stream_id}, "
                f"max_data={self.max_data})")


Frame = Any  # union of the frame classes above

#: Frame types whose loss must be repaired by retransmission.  Window
#: updates are retransmittable (losing one could deadlock the peer's
#: flow control), matching GQUIC.
_RETRANSMITTABLE = (StreamFrame, CryptoFrame, MaxDataFrame,
                    MaxStreamDataFrame)


class QuicPacket:
    """One QUIC packet: a numbered bundle of frames on a connection.

    ``payload_bytes`` and ``retransmittable`` are computed once here:
    frames are never added after construction, and both quantities are
    read multiple times per packet on the send and receive paths.
    """

    __slots__ = ("conn_id", "pkt_num", "frames", "payload_bytes",
                 "retransmittable")

    def __init__(self, conn_id: str, pkt_num: int,
                 frames: Optional[List[Frame]] = None) -> None:
        if frames is None:
            frames = []
        self.conn_id = conn_id
        self.pkt_num = pkt_num
        self.frames = frames
        payload = 0
        retransmittable = False
        for f in frames:
            payload += f.wire_bytes
            if not retransmittable:
                # FEC packets are tracked and congestion-charged like
                # data (GQUIC numbered and acked them) but carry no
                # re-sendable frames — their loss is absorbed.
                if isinstance(f, _RETRANSMITTABLE):
                    retransmittable = True
                elif type(f).__name__ == "FecFrame":
                    retransmittable = True
        self.payload_bytes = payload
        self.retransmittable = retransmittable

    def stream_frames(self) -> List[StreamFrame]:
        return [f for f in self.frames if isinstance(f, StreamFrame)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(f).__name__ for f in self.frames)
        return f"<QuicPacket {self.conn_id}#{self.pkt_num} [{kinds}]>"

"""From-scratch QUIC transport (GQUIC versions 25-37 as the paper ran them)."""

from .config import (
    KNOWN_VERSIONS,
    MACW_CALIBRATED,
    MACW_PUBLIC_DEFAULT,
    MACW_QUIC37,
    QuicConfig,
    quic_config,
)
from .connection import QuicConnection, open_quic_pair
from .fec import FecDecoder, FecEncoder, FecFrame, FecPacketPayload
from .frames import (
    AckFrame,
    CryptoFrame,
    MaxDataFrame,
    MaxStreamDataFrame,
    QuicPacket,
    StreamFrame,
)
from .loss import LossDetector, SentPacketRecord
from .sessions import CachedServerConfig, SessionCache
from .streams import RecvStream, SendStream

__all__ = [
    "KNOWN_VERSIONS",
    "MACW_CALIBRATED",
    "MACW_PUBLIC_DEFAULT",
    "MACW_QUIC37",
    "QuicConfig",
    "quic_config",
    "QuicConnection",
    "open_quic_pair",
    "FecDecoder",
    "FecEncoder",
    "FecFrame",
    "FecPacketPayload",
    "AckFrame",
    "CryptoFrame",
    "MaxDataFrame",
    "MaxStreamDataFrame",
    "QuicPacket",
    "StreamFrame",
    "LossDetector",
    "SentPacketRecord",
    "CachedServerConfig",
    "SessionCache",
    "RecvStream",
    "SendStream",
]

"""QUIC configuration, keyed by protocol version (paper Secs. 4.1, 5.4).

The paper's longitudinal result is that QUIC versions 25–36 perform
identically *given the same configuration*, and that the big deltas came
from configuration, not protocol changes:

* the **maximum allowed congestion window (MACW)**: 107 packets in the
  uncalibrated public server, 430 in Chrome at the time of the
  experiments (the calibrated value used throughout the paper), 2000 in
  QUIC 37 / newer Chromium;
* **N-connection emulation**: N=2 in QUIC 34, N=1 in QUIC 37;
* the **Chromium-52 ssthresh bug** (server-side early slow-start exit),
  present in the uncalibrated public build.

:func:`quic_config` reproduces those knobs.  Everything else (NACK
threshold 3, MSPC 100, 0-RTT, pacing, TLP, PRR, Hybrid Slow Start) is
constant across the versions the paper tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..transport.cc.cubic import CubicConfig

#: Versions released during the paper's study window.
KNOWN_VERSIONS = tuple(range(25, 38))

#: Default maximum-allowed-congestion-window by era (packets).
MACW_PUBLIC_DEFAULT = 107
MACW_CALIBRATED = 430
MACW_QUIC37 = 2000


@dataclass
class QuicConfig:
    """All tunables of one QUIC endpoint pair."""

    version: int = 34
    mss: int = 1350
    #: Congestion-control configuration (Cubic unless ``use_bbr``).
    cc: CubicConfig = field(default_factory=CubicConfig)
    use_bbr: bool = False
    #: Fixed NACK (reordering) threshold for fast retransmit; the paper's
    #: Fig. 10 sweeps this (default 3).
    nack_threshold: int = 3
    #: Adaptive threshold (the fix the QUIC team was experimenting with):
    #: raise the threshold to observed reorder depth + 1 on spurious
    #: retransmits.
    adaptive_nack_threshold: bool = False
    nack_threshold_cap: int = 100
    #: Time-based loss detection: defer declarations by 1/4 SRTT once the
    #: NACK threshold is met (the "time-based solutions" the paper
    #: mentions the QUIC team experimenting with).
    time_based_loss: bool = False
    #: XOR forward error correction — the feature removed from QUIC in
    #: early 2016 for poor performance (Sec. 2.1 footnote 4); off in
    #: every version the paper tested, available here for the ablation.
    fec_enabled: bool = False
    fec_group_size: int = 5
    #: Maximum Streams Per Connection (Sec. 5.2 probes 1 vs default 100).
    max_streams_per_connection: int = 100
    #: 0-RTT connection establishment (Fig. 7 isolates this).
    zero_rtt: bool = True
    #: Tail loss probes (2, then RTO).
    tlp_enabled: bool = True
    max_tail_loss_probes: int = 2
    #: Connection/stream flow control: initial windows with doubling
    #: auto-tune up to the caps (Chromium behaviour).
    conn_flow_window: int = 1_536_000
    conn_flow_window_cap: int = 24 * 1024 * 1024
    stream_flow_window: int = 1_024_000
    stream_flow_window_cap: int = 6 * 1024 * 1024
    #: ACK policy: ack every 2nd retransmittable packet or after 25 ms.
    ack_every_n: int = 2
    ack_delay_timer: float = 0.025
    max_ack_blocks: int = 32
    #: RTO floor (Chromium uses 200 ms like TCP).
    min_rto: float = 0.2
    #: Sizes of handshake messages (bytes on the wire).
    chlo_bytes: int = 1024
    inchoate_chlo_bytes: int = 512
    rej_bytes: int = 2200
    shlo_bytes: int = 1100

    def label(self) -> str:
        macw = self.cc.max_cwnd_packets
        return f"QUIC{self.version}(MACW={macw})"

    def with_(self, **changes) -> "QuicConfig":
        return replace(self, **changes)


def quic_config(version: int = 34, *, calibrated: bool = True,
                macw_packets: Optional[int] = None,
                zero_rtt: bool = True) -> QuicConfig:
    """Build the configuration for one QUIC version.

    ``calibrated`` selects the paper's tuned server (Sec. 4.1); the
    uncalibrated public build keeps the small MACW default *and* the
    Chromium-52 ssthresh bug.  ``macw_packets`` overrides the MACW (the
    Fig. 15 experiment runs QUIC 37 with both 430 and 2000).
    """
    if version not in KNOWN_VERSIONS:
        raise ValueError(
            f"QUIC version {version} was not released during the study "
            f"window ({KNOWN_VERSIONS[0]}..{KNOWN_VERSIONS[-1]})"
        )
    if macw_packets is None:
        if not calibrated:
            macw_packets = MACW_PUBLIC_DEFAULT
        elif version >= 37:
            macw_packets = MACW_QUIC37
        else:
            macw_packets = MACW_CALIBRATED
    num_connections = 1 if version >= 37 else 2
    cc = CubicConfig(
        max_cwnd_packets=macw_packets,
        num_emulated_connections=num_connections,
        ssthresh_from_receiver_buffer=calibrated,
    )
    return QuicConfig(version=version, cc=cc, zero_rtt=zero_rtt)

"""QUIC stream state.

Streams are QUIC's unit of multiplexing; each delivers independently, so a
loss on one stream never stalls another — the "no head-of-line blocking"
property the paper contrasts with TCP (Sec. 2.1).  :class:`SendStream`
tracks which byte ranges still need (re)transmission and per-stream flow
credit; :class:`RecvStream` reassembles ranges and reports completion.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from ..transport.util import RangeSet


class SendStream:
    """Outgoing half of a stream: retransmittable ranges + flow credit."""

    def __init__(self, stream_id: int, total_bytes: int,
                 flow_window: int, meta: Any = None,
                 finalized: bool = True) -> None:
        if total_bytes < 0:
            raise ValueError("total_bytes must be >= 0")
        self.stream_id = stream_id
        self.total_bytes = total_bytes
        self.meta = meta
        #: False while more data may still be appended (streaming
        #: responses, e.g. through a proxy); the FIN is withheld.
        self.finalized = finalized
        #: Byte ranges still to be (re)sent, FIFO.  Retransmissions are
        #: pushed to the front so repair data leaves first.
        self._pending: Deque[Tuple[int, int]] = deque()
        if total_bytes > 0:
            self._pending.append((0, total_bytes))
        self.fin_pending = True
        self.fin_sent = False
        self.bytes_sent = 0
        #: Highest offset ever sent (flow-control charge).
        self.max_offset_sent = 0
        #: Peer-granted limit (MaxStreamData).
        self.flow_limit = flow_window
        self.acked = RangeSet()
        self.fin_acked = False
        #: Meta to attach to the first frame of this stream.
        self._meta_pending = meta is not None

    # ------------------------------------------------------------------
    def append(self, nbytes: int) -> None:
        """Grow a streaming (non-finalized) response by ``nbytes``."""
        if self.finalized:
            raise RuntimeError("cannot append to a finalized stream")
        if nbytes <= 0:
            return
        old = self.total_bytes
        self.total_bytes += nbytes
        self._pending.append((old, self.total_bytes))
        # A FIN emitted early (empty stream) must be re-sent later.
        self.fin_sent = False
        self.fin_pending = True

    def finish(self) -> None:
        """No more data will be appended; the FIN may now be sent."""
        self.finalized = True

    @property
    def has_data_to_send(self) -> bool:
        if self._pending:
            return True
        return self.finalized and self.fin_pending and not self.fin_sent

    @property
    def flow_blocked(self) -> bool:
        """True if new data exists but stream flow control forbids it."""
        if not self._pending:
            return False
        lo, _hi = self._pending[0]
        return lo >= self.max_offset_sent and lo >= self.flow_limit

    def sendable_bytes(self) -> int:
        """Bytes the stream could emit right now under its flow limit."""
        total = 0
        for lo, hi in self._pending:
            if lo >= self.max_offset_sent:
                # New data: limited by flow credit.
                hi = min(hi, self.flow_limit) if self.flow_limit is not None else hi
            if hi > lo:
                total += hi - lo
        return total

    def next_chunk(self, max_bytes: int,
                   new_data_limit: Optional[int] = None
                   ) -> Optional[Tuple[int, int, bool, Any]]:
        """Dequeue up to ``max_bytes`` for transmission.

        Returns ``(offset, length, fin, meta)`` or None.  Retransmission
        ranges (below ``max_offset_sent``) are not flow-limited; new data
        stops at the stream flow limit and at ``new_data_limit`` extra
        bytes (the connection-level flow-control credit).
        """
        fin = False
        meta = None
        while self._pending:
            lo, hi = self._pending[0]
            is_new = lo >= self.max_offset_sent
            limit = hi
            if is_new:
                limit = min(hi, self.flow_limit)
                if new_data_limit is not None:
                    limit = min(limit, lo + new_data_limit)
                if limit <= lo:
                    return None  # flow blocked
            length = min(limit - lo, max_bytes)
            if length <= 0:
                return None
            if lo + length >= hi:
                self._pending.popleft()
                if lo + length < hi:  # pragma: no cover - defensive
                    self._pending.appendleft((lo + length, hi))
            else:
                self._pending[0] = (lo + length, hi)
            self.bytes_sent += length
            end = lo + length
            if end > self.max_offset_sent:
                self.max_offset_sent = end
            if (
                self.finalized
                and end >= self.total_bytes
                and not self._pending
                and self.fin_pending
            ):
                fin = True
                self.fin_sent = True
                self.fin_pending = False
            if self._meta_pending:
                meta = self.meta
                self._meta_pending = False
            return lo, length, fin, meta
        # Data all sent; emit a bare FIN if still owed (zero-length frame).
        if self.finalized and self.fin_pending and not self.fin_sent:
            self.fin_sent = True
            self.fin_pending = False
            if self._meta_pending:
                meta = self.meta
                self._meta_pending = False
            return self.max_offset_sent, 0, True, meta
        return None

    def on_range_lost(self, offset: int, length: int, fin: bool) -> None:
        """Requeue a lost range (front of the queue) for retransmission."""
        if length > 0 and not self.acked.covers(offset, offset + length):
            self._pending.appendleft((offset, offset + length))
            if offset == 0 and self.meta is not None:
                # The frame that carried the stream metadata was lost;
                # re-attach it to the retransmission (duplicate delivery
                # is harmless, the receiver keeps the first copy).
                self._meta_pending = True
        if fin and not self.fin_acked:
            self.fin_pending = True
            self.fin_sent = False

    def on_range_acked(self, offset: int, length: int, fin: bool) -> None:
        if length > 0:
            self.acked.add(offset, offset + length)
        if fin:
            self.fin_acked = True

    @property
    def fully_acked(self) -> bool:
        return self.fin_acked and self.acked.covers(0, self.total_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SendStream {self.stream_id} {self.bytes_sent}/{self.total_bytes}B "
            f"limit={self.flow_limit}>"
        )


class RecvStream:
    """Incoming half of a stream: reassembly and completion tracking."""

    def __init__(self, stream_id: int, flow_window: int) -> None:
        self.stream_id = stream_id
        self.received = RangeSet()
        self.fin_offset: Optional[int] = None
        self.meta: Any = None
        self.complete = False
        self.completed_at: Optional[float] = None
        #: Bytes that have passed the client's consume stage (device CPU);
        #: flow-control credit is granted against this, not raw receipt.
        self.consumed = 0
        self.consumed_complete = False
        #: Flow control: highest credit we granted the sender.
        self.granted = flow_window
        self.window = flow_window
        self.first_byte_at: Optional[float] = None

    def on_frame(self, now: float, offset: int, length: int, fin: bool,
                 meta: Any) -> int:
        """Absorb a frame; returns the count of newly received bytes."""
        if meta is not None and self.meta is None:
            self.meta = meta
        new_bytes = self.received.add(offset, offset + length) if length else 0
        if new_bytes and self.first_byte_at is None:
            self.first_byte_at = now
        if fin:
            self.fin_offset = offset + length
        if (
            not self.complete
            and self.fin_offset is not None
            and self.received.covers(0, self.fin_offset)
        ):
            self.complete = True
            self.completed_at = now
        return new_bytes

    @property
    def bytes_received(self) -> int:
        return self.received.total()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RecvStream {self.stream_id} {self.bytes_received}B fin={self.fin_offset}>"

"""The QUIC connection: handshake, streams, ACKs, loss recovery, flow control.

One :class:`QuicConnection` class implements both roles; a client/server
pair is created by :func:`open_quic_pair`.  The mechanisms modelled —
each one the paper ties to a finding — are:

* **0-RTT connection establishment** (Fig. 7): with a cached server
  config the client's full CHLO and the first requests leave in the same
  flight; without it an inchoate CHLO/REJ round costs one extra RTT.
* **Independent stream delivery** (no transport HOL blocking).
* **Per-packet, unambiguous ACKs** with ack blocks and receiver-reported
  ack delay, feeding precise RTT and loss information to Cubic.
* **NACK-threshold loss detection** with TLP and RTO tail recovery.
* **Connection- and stream-level flow control** with Chromium's doubling
  auto-tune — the backpressure path that parks the server in
  ``ApplicationLimited`` when a slow (mobile) client cannot drain packets
  (Fig. 13).
* **Packet pacing** from the congestion controller's rate.
* **MSPC**: at most ``max_streams_per_connection`` concurrent requests.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..core.instrumentation import Trace
from ..devices import DESKTOP, DeviceProfile, PacketProcessor
from ..netem.node import Node
from ..netem.packet import Packet
from ..netem.sim import Event, Simulator
from ..transport.base import TransportEndpoint, fresh_conn_id
from ..transport.cc.bbr import BBR
from ..transport.cc.cubic import CubicCC
from ..transport.cc.interface import CongestionController
from ..transport.cc.pacing import Pacer
from ..transport.rtt import RttEstimator
from ..transport.util import RangeSet
from .config import QuicConfig
from .frames import (
    AckFrame,
    CryptoFrame,
    MaxDataFrame,
    MaxStreamDataFrame,
    QuicPacket,
    StreamFrame,
)
from .fec import FecDecoder, FecEncoder, FecFrame
from .loss import LossDetector, SentPacketRecord
from .streams import RecvStream, SendStream

ResponseCallback = Callable[[int, Any, float], None]
RequestHandler = Callable[[Any], int]

#: Wire size of a typical HTTP request head on a stream.
DEFAULT_REQUEST_BYTES = 300
#: Smallest stream chunk worth packing into a packet.
MIN_CHUNK = 32


class QuicStats:
    """Per-connection counters used by tests and root-cause analysis."""

    def __init__(self) -> None:
        self.packets_sent = 0
        self.bytes_sent = 0
        self.data_packets_sent = 0
        self.retransmitted_ranges = 0
        self.acks_sent = 0
        self.packets_received = 0
        self.duplicate_bytes = 0
        self.tlp_probes = 0
        self.rto_fires = 0
        self.flow_blocked_events = 0
        self.app_limited_events = 0


class QuicConnection(TransportEndpoint):
    """One endpoint of a QUIC connection (client or server role)."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        conn_id: str,
        peer_addr: str,
        config: QuicConfig,
        role: str,
        *,
        device: DeviceProfile = DESKTOP,
        trace: Optional[Trace] = None,
        request_handler: Optional[RequestHandler] = None,
        server_noise: float = 0.001,
        rng: Optional[random.Random] = None,
        flow_id: Optional[str] = None,
        session_cache: Optional["SessionCache"] = None,
    ) -> None:
        if role not in ("client", "server"):
            raise ValueError("role must be 'client' or 'server'")
        super().__init__(sim, node, conn_id, peer_addr, flow_id=flow_id)
        self.config = config
        self.role = role
        self.device = device
        self.rng = rng if rng is not None else random.Random(0)
        self.trace = trace if trace is not None else Trace(label=f"{conn_id}:{role}",
                                                           enabled=False)
        self.stats = QuicStats()
        self.rtt = RttEstimator(initial_rtt=0.1)
        if config.use_bbr:
            self.cc: CongestionController = BBR(self.rtt, mss=config.mss,
                                                trace=self.trace)
        else:
            self.cc = CubicCC(config.cc, self.rtt, trace=self.trace)
            # Receiver-advertised buffer initialises ssthresh (Sec. 4.1).
            self.cc.on_receiver_buffer(config.conn_flow_window_cap)
        self.pacer = Pacer()
        self.loss_detector = LossDetector(config, self.trace)
        self.fec_encoder = (FecEncoder(config.fec_group_size)
                            if config.fec_enabled else None)
        self.fec_decoder = FecDecoder() if config.fec_enabled else None

        # --- send state ---------------------------------------------------
        self._next_pkt_num = 1
        self.sent: Dict[int, SentPacketRecord] = {}
        self.bytes_in_flight = 0
        self.send_streams: Dict[int, SendStream] = {}
        self._send_rr: Deque[int] = deque()
        self._crypto_out: Deque[CryptoFrame] = deque()
        self._control_out: Deque[Any] = deque()
        self._peer_conn_limit = config.conn_flow_window
        self._conn_new_bytes_sent = 0
        self._send_scheduled = False
        self._largest_acked = 0
        self._peer_acked = RangeSet()
        self._ack_floor = 1
        self._recovery_marker: Optional[int] = None
        self._retx_timer: Optional[Event] = None
        self._loss_recheck_event: Optional[Event] = None
        self._tlp_count = 0
        self._rto_count = 0
        self._sent_any_data = False

        # --- receive state --------------------------------------------------
        self.recv_streams: Dict[int, RecvStream] = {}
        self._received_nums = RangeSet()
        self._largest_received = 0
        self._largest_received_at = 0.0
        self._ack_pending = 0
        self._ack_timer: Optional[Event] = None
        self._reorder_seen = False
        self._conn_bytes_consumed = 0
        self._conn_granted = config.conn_flow_window
        self._conn_window = config.conn_flow_window
        self._last_conn_update = 0.0
        self._stream_windows: Dict[int, int] = {}
        self._processor = PacketProcessor(
            sim,
            device.packet_cost("quic"),
            self._process_packet,
            rng=random.Random(self.rng.randrange(1 << 30)),
        )
        #: Stage 2: decrypt + stream consumption; gates flow-control
        #: credit and response completion (Sec. 5.2's mobile root cause).
        self._consumer = PacketProcessor(
            sim,
            device.quic_consume_cost,
            self._consume_item,
            rng=random.Random(self.rng.randrange(1 << 30)),
        )

        # --- handshake state ------------------------------------------------
        self._handshake_state = "idle"  # idle|waiting_rej|ready
        #: Optional client-side 0-RTT session store (repro.quic.sessions).
        self.session_cache = session_cache
        self._app_data_allowed = role == "server"
        self._server_ready_at: Optional[float] = None
        self._pending_serve: List[Tuple[int, Any]] = []
        self.on_ready: Optional[Callable[[float], None]] = None
        self.handshake_ready_time: Optional[float] = None

        # --- application state ------------------------------------------------
        self.request_handler = request_handler
        self.server_noise = server_noise
        #: Optional hook fired as response bytes arrive:
        #: ``on_progress(stream_id, newly_received_bytes, meta)``.
        self.on_progress: Optional[Callable[[int, int, Any], None]] = None
        #: Optional deferred request hook: ``on_request(stream_id, meta)``
        #: replaces ``request_handler`` (used by proxies).
        self.on_request: Optional[Callable[[int, Any], None]] = None
        # Client-initiated streams are odd, server-initiated even.
        self._next_stream_id = 1 if role == "client" else 2
        self._active_requests = 0
        self._request_queue: Deque[Tuple[Any, ResponseCallback, int]] = deque()
        self._response_cbs: Dict[int, ResponseCallback] = {}
        #: (time, cumulative app bytes) samples for throughput analysis.
        self.delivery_log: List[Tuple[float, int]] = []
        self._delivered_app_bytes = 0

    # ==================================================================
    # public API
    # ==================================================================
    def connect(self, on_ready: Optional[Callable[[float], None]] = None) -> None:
        """Start the handshake (client only).

        0-RTT is attempted when the configuration allows it and, if a
        :class:`~repro.quic.sessions.SessionCache` is attached, the cache
        holds a config for this server (a cold first contact pays the
        REJ round and populates the cache).
        """
        if self.role != "client":
            raise RuntimeError("only clients connect()")
        if self._handshake_state != "idle":
            return
        self.on_ready = on_ready
        zero_rtt = self.config.zero_rtt
        if zero_rtt and self.session_cache is not None:
            zero_rtt = self.session_cache.has_config(self.peer_addr,
                                                     self.sim.now)
        if zero_rtt:
            # Cached server config: full CHLO + 0-RTT data immediately.
            self._enqueue_crypto("chlo", self.config.chlo_bytes)
            self._handshake_state = "ready"
            self._app_data_allowed = True
            self.handshake_ready_time = self.sim.now
            if on_ready is not None:
                self.sim.post(0.0, on_ready, self.sim.now)
        else:
            self._enqueue_crypto("inchoate_chlo", self.config.inchoate_chlo_bytes)
            self._handshake_state = "waiting_rej"
        self._wake_sender()

    def request(self, meta: Any, on_complete: ResponseCallback,
                request_bytes: int = DEFAULT_REQUEST_BYTES) -> None:
        """Issue one request; ``on_complete(stream_id, meta, now)`` fires
        when the full response has been received *and processed*."""
        if self.role != "client":
            raise RuntimeError("only clients issue requests")
        self._request_queue.append((meta, on_complete, request_bytes))
        self._drain_request_queue()

    def open_unidirectional_transfer(self, total_bytes: int, meta: Any = None) -> int:
        """Server-push-style transfer (used by proxies and raw benchmarks)."""
        sid = self._alloc_stream_id()
        self._open_send_stream(sid, total_bytes, meta)
        return sid

    # -- streaming responses (proxy / deferred-server support) ----------
    def open_streaming_response(self, stream_id: int, meta: Any = None) -> None:
        """Begin a response whose length is not yet known (proxy pass-through)."""
        stream = SendStream(stream_id, 0, self.config.stream_flow_window,
                            meta=meta, finalized=False)
        self.send_streams[stream_id] = stream
        self._send_rr.append(stream_id)

    def stream_append(self, stream_id: int, nbytes: int) -> None:
        """Append bytes to a streaming response as they become available."""
        stream = self.send_streams.get(stream_id)
        if stream is None:
            raise KeyError(f"no open send stream {stream_id}")
        stream.append(nbytes)
        self._wake_sender()

    def stream_finish(self, stream_id: int) -> None:
        """Mark a streaming response complete; the FIN will be sent."""
        stream = self.send_streams.get(stream_id)
        if stream is None:
            return
        stream.finish()
        self._wake_sender()

    @property
    def smoothed_rtt(self) -> float:
        return self.rtt.smoothed_rtt()

    # ==================================================================
    # request plumbing
    # ==================================================================
    def _enqueue_crypto(self, kind: str, size: int) -> None:
        """Queue a handshake message, fragmented to fit in packets.

        Only the final fragment carries the semantic ``kind``; leading
        fragments use ``kind + ":frag"`` which the peer ignores (it acts
        once the message is complete, like reassembling a real REJ).
        """
        budget = self.config.mss - 64
        while size > budget:
            self._crypto_out.append(CryptoFrame(kind + ":frag", budget))
            size -= budget
        self._crypto_out.append(CryptoFrame(kind, size))

    def _drain_request_queue(self) -> None:
        while (
            self._request_queue
            and self._active_requests < self.config.max_streams_per_connection
            and self._app_data_allowed
        ):
            meta, cb, req_bytes = self._request_queue.popleft()
            sid = self._alloc_stream_id()
            self._active_requests += 1
            self._response_cbs[sid] = cb
            self._open_send_stream(sid, req_bytes, meta)

    def _alloc_stream_id(self) -> int:
        sid = self._next_stream_id
        self._next_stream_id += 2
        return sid

    def _open_send_stream(self, sid: int, total_bytes: int, meta: Any) -> None:
        stream = SendStream(sid, total_bytes, self.config.stream_flow_window,
                            meta=meta)
        self.send_streams[sid] = stream
        self._send_rr.append(sid)
        self._wake_sender()

    # ==================================================================
    # send path
    # ==================================================================
    def _wake_sender(self) -> None:
        if not self._send_scheduled and not self.closed:
            self._send_scheduled = True
            self.sim.post(0.0, self._send_loop)

    def _send_loop(self) -> None:
        self._send_scheduled = False
        if self.closed:
            return
        sent_something = False
        while True:
            budget = self.cc.can_send_bytes(self.bytes_in_flight)
            if budget < MIN_CHUNK:
                break
            packet = self._build_packet(min(budget, self.config.mss))
            if packet is None:
                break
            self._commit_packet(packet, arm_timer=False)
            sent_something = True
        if not sent_something:
            self._maybe_signal_app_limited()
        else:
            # One timer arming per burst: sim time does not advance inside
            # the loop, so this deadline equals the last per-packet one.
            self._set_retx_timer()
        # A pure-ACK obligation may remain even when cc is blocked.
        if self._ack_pending and self._ack_timer is None:
            self._arm_ack_timer()

    def _has_stream_data(self) -> bool:
        return any(s.has_data_to_send for s in self.send_streams.values())

    def _maybe_signal_app_limited(self) -> None:
        """Tell the CC the window is not being utilised (Table 3 semantics)."""
        if not self._sent_any_data:
            return
        if self.bytes_in_flight >= self.cc.cwnd:
            return
        if self._has_stream_data():
            # Data exists but could not be packed: flow-control blocked.
            self.stats.flow_blocked_events += 1
        self.stats.app_limited_events += 1
        self.cc.on_application_limited(self.sim.now)

    def _conn_credit(self) -> int:
        return max(self._peer_conn_limit - self._conn_new_bytes_sent, 0)

    def _build_packet(self, space: int) -> Optional[QuicPacket]:
        """Assemble at most ``space`` payload bytes of frames, or None."""
        frames: List[Any] = []
        carries_data = False
        # Piggyback an ACK when one is owed (only when it surely fits —
        # building the frame clears the pending-ack state, so a dropped
        # frame would silently lose the acknowledgment).
        max_ack_bytes = 16 + 8 * self.config.max_ack_blocks
        if self._ack_pending and space >= max_ack_bytes:
            ack = self._make_ack_frame()
            if ack is not None:
                frames.append(ack)
                space -= ack.wire_bytes
        # Window updates.
        while self._control_out and self._control_out[0].wire_bytes <= space:
            frame = self._control_out.popleft()
            frames.append(frame)
            space -= frame.wire_bytes
            carries_data = True
        # Handshake messages.
        while self._crypto_out and self._crypto_out[0].size <= space:
            frame = self._crypto_out.popleft()
            frames.append(frame)
            space -= frame.wire_bytes
            carries_data = True
        # Stream data, round-robin across sendable streams.
        if self._app_data_allowed:
            carries_data |= self._pack_stream_frames(frames, space)
        if not carries_data:
            return None
        packet = QuicPacket(self.conn_id, self._next_pkt_num, frames)
        self._next_pkt_num += 1
        return packet

    def _pack_stream_frames(self, frames: List[Any], space: int) -> bool:
        packed = False
        tried = 0
        n_streams = len(self._send_rr)
        while space > MIN_CHUNK and tried < n_streams:
            if not self._send_rr:
                break
            sid = self._send_rr[0]
            stream = self.send_streams.get(sid)
            if stream is None or not stream.has_data_to_send:
                self._send_rr.rotate(-1)
                tried += 1
                continue
            conn_credit = self._conn_credit()
            max_payload = space - 12  # STREAM_FRAME_OVERHEAD
            old_max = stream.max_offset_sent
            # Retransmissions are not conn-flow-charged; new data is
            # limited by the connection credit.
            chunk = stream.next_chunk(max_payload, new_data_limit=conn_credit)
            if chunk is None:
                self._send_rr.rotate(-1)
                tried += 1
                continue
            offset, length, fin, meta = chunk
            new_bytes = max(stream.max_offset_sent - old_max, 0)
            self._conn_new_bytes_sent += new_bytes
            frame = StreamFrame(sid, offset, length, fin, meta)
            frames.append(frame)
            space -= frame.wire_bytes
            packed = True
            tried = 0
            self._send_rr.rotate(-1)
        return packed

    def _commit_packet(self, packet: QuicPacket, *, probe: bool = False,
                       arm_timer: bool = True) -> None:
        size = packet.payload_bytes
        now = self.sim.now
        if packet.retransmittable:
            record = SentPacketRecord(packet.pkt_num, now, size,
                                      frames=list(packet.frames), is_probe=probe)
            self.sent[packet.pkt_num] = record
            self.bytes_in_flight += size
            if not self._sent_any_data and any(
                isinstance(f, StreamFrame) for f in packet.frames
            ):
                self._sent_any_data = True
                self.cc.on_connection_start(now)
            self.cc.on_packet_sent(now, size, probe)
            self.stats.data_packets_sent += 1
            if self.fec_encoder is not None and not probe:
                fec = self.fec_encoder.on_packet_sent(
                    packet.pkt_num, packet.frames, size)
                if fec is not None:
                    fec_packet = QuicPacket(self.conn_id, self._next_pkt_num,
                                            [FecFrame(fec)])
                    self._next_pkt_num += 1
                    # FEC packets are paced, tracked and cwnd-charged like
                    # data (GQUIC numbered and acked them); their loss is
                    # simply absorbed (no frames to retransmit).
                    self._commit_packet(fec_packet, arm_timer=arm_timer)
        release = self.pacer.release_time(now, size, self.cc.pacing_rate())
        if release <= now:
            self._emit_packet(packet)
        else:
            self.sim.post_at(release, self._emit_packet, packet)
        if arm_timer:
            self._set_retx_timer()

    def _emit_packet(self, packet: QuicPacket) -> None:
        record = self.sent.get(packet.pkt_num)
        if record is not None:
            record.sent_time = self.sim.now
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.payload_bytes
        self.emit(packet, packet.payload_bytes)

    # ==================================================================
    # receive path
    # ==================================================================
    def on_packet(self, packet: Packet) -> None:
        self._processor.submit((self.sim.now, packet.payload))

    def _process_packet(self, item: Tuple[float, QuicPacket]) -> None:
        arrival, qp = item
        now = self.sim.now
        self.stats.packets_received += 1
        self._record_received(now, qp.pkt_num, qp.retransmittable)
        for frame in qp.frames:
            if isinstance(frame, StreamFrame):
                self._on_stream_frame(now, frame)
            elif isinstance(frame, AckFrame):
                self._on_ack_frame(now, frame)
            elif isinstance(frame, CryptoFrame):
                self._on_crypto_frame(now, frame)
            elif isinstance(frame, MaxDataFrame):
                if frame.max_data > self._peer_conn_limit:
                    self._peer_conn_limit = frame.max_data
                    self._wake_sender()
            elif isinstance(frame, MaxStreamDataFrame):
                stream = self.send_streams.get(frame.stream_id)
                if stream is not None and frame.max_data > stream.flow_limit:
                    stream.flow_limit = frame.max_data
                    self._wake_sender()
            elif isinstance(frame, FecFrame) and self.fec_decoder is not None:
                self._on_fec_frame(now, frame)
        if qp.retransmittable:
            self._maybe_send_ack(now)

    def _on_fec_frame(self, now: float, frame: FecFrame) -> None:
        """Attempt single-loss revival from an XOR FEC packet."""
        revived = self.fec_decoder.on_fec_packet(frame.payload,
                                                 self._received_nums)
        if revived is None:
            return
        pkt_num, frames = revived
        # The revived packet is acknowledged as if received (GQUIC).
        self._record_received(now, pkt_num, ack_eliciting=True)
        for stream_frame in frames:
            self._on_stream_frame(now, stream_frame)
        self._maybe_send_ack(now)

    def _record_received(self, now: float, pkt_num: int,
                         ack_eliciting: bool) -> None:
        """Record a received retransmittable packet number.

        GQUIC acknowledged only retransmittable packets; pure-ACK packets
        are not recorded here (the sender pre-marks its own ACK-only
        numbers as not-awaiting-acknowledgement instead).
        """
        if not ack_eliciting:
            return
        if pkt_num > self._largest_received:
            self._largest_received = pkt_num
            self._largest_received_at = now
        else:
            self._reorder_seen = True
        self._received_nums.add(pkt_num, pkt_num + 1)
        self._ack_pending += 1

    # ------------------------------------------------------------------
    # ACK generation
    # ------------------------------------------------------------------
    def _maybe_send_ack(self, now: float) -> None:
        if self._ack_pending >= self.config.ack_every_n or self._reorder_seen:
            self._send_ack_now()
        elif self._ack_timer is None:
            self._arm_ack_timer()

    def _arm_ack_timer(self) -> None:
        self._ack_timer = self.sim.schedule(
            self.config.ack_delay_timer, self._ack_timer_fired
        )

    def _ack_timer_fired(self) -> None:
        self._ack_timer = None
        if self._ack_pending:
            self._send_ack_now()

    def _send_ack_now(self) -> None:
        ack = self._make_ack_frame()
        if ack is None:
            return
        frames: List[Any] = [ack]
        while self._control_out:
            frames.append(self._control_out.popleft())
        packet = QuicPacket(self.conn_id, self._next_pkt_num, frames)
        self._next_pkt_num += 1
        if packet.retransmittable:
            # Window updates ride along: track for loss recovery.
            self._commit_packet(packet)
        else:
            # Pure ACK: the peer will never acknowledge this number, so
            # pre-mark it as resolved (it must not look like a loss hole).
            self._peer_acked.add(packet.pkt_num, packet.pkt_num + 1)
            self.stats.acks_sent += 1
            self._emit_packet(packet)

    def _make_ack_frame(self) -> Optional[AckFrame]:
        if not self._received_nums:
            return None
        ranges = self._received_nums.ranges()[-self.config.max_ack_blocks:]
        blocks = tuple((lo, hi - 1) for lo, hi in reversed(ranges))
        ack_delay = self.sim.now - self._largest_received_at
        self._ack_pending = 0
        self._reorder_seen = False
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        return AckFrame(self._largest_received, ack_delay, blocks)

    # ------------------------------------------------------------------
    # ACK processing (sender side)
    # ------------------------------------------------------------------
    def _on_ack_frame(self, now: float, ack: AckFrame) -> None:
        was_cwnd_limited = (
            self.bytes_in_flight >= self.cc.cwnd - self.config.mss
        )
        newly_acked: List[int] = []
        acked_bytes = 0
        largest_newly: Optional[SentPacketRecord] = None
        # Only numbers not already covered by earlier ACKs are new; the
        # gap computation keeps per-ACK work proportional to new numbers.
        for lo, hi in ack.blocks:
            for gap_lo, gap_hi in self._peer_acked.gaps(lo, hi + 1):
                for pkt_num in range(gap_lo, gap_hi):
                    record = self.sent.pop(pkt_num, None)
                    if record is None:
                        spurious = self.loss_detector.note_ack_of_lost(
                            now, pkt_num, ack.largest_acked
                        )
                        if spurious is not None:
                            newly_acked.append(pkt_num)
                        continue
                    newly_acked.append(pkt_num)
                    acked_bytes += record.size_bytes
                    self.bytes_in_flight -= record.size_bytes
                    if largest_newly is None or pkt_num > largest_newly.pkt_num:
                        largest_newly = record
                    self._on_frames_acked(record)
            self._peer_acked.add(lo, hi + 1)
        if ack.largest_acked > self._largest_acked:
            self._largest_acked = ack.largest_acked
        if not newly_acked:
            return
        # Probe/RTO state resolution.
        if self._tlp_count or self._rto_count:
            self._tlp_count = 0
            self._rto_count = 0
            self.cc.on_tlp_resolved(now)
            self.cc.on_rto_resolved(now)
        # Unambiguous RTT sample from the largest newly acked packet.
        if largest_newly is not None and largest_newly.pkt_num == ack.largest_acked:
            sample = now - largest_newly.sent_time
            self.rtt.on_sample(sample, now, ack_delay=ack.ack_delay)
            if self.rtt.latest is not None:
                self.cc.on_rtt_sample(now, self.rtt.latest)
        # Loss detection: holes are unacked numbers below the largest
        # acked — few, because ranges merge as retransmissions land.
        newly_acked.sort()
        missing = self._missing_below(self._largest_acked)
        lost = self.loss_detector.detect(
            now, self.sent, missing, newly_acked, self._largest_acked,
            self.rtt.smoothed_rtt(),
        )
        if lost:
            self._on_packets_lost(now, lost)
        self._schedule_loss_recheck()
        # Recovery exit: a packet sent after the loss was acked.
        if self.cc.in_recovery and self._recovery_marker is not None:
            if self._largest_acked >= self._recovery_marker:
                self.cc.on_recovery_exit(now)
                self._recovery_marker = None
        if acked_bytes:
            cwnd_limited = was_cwnd_limited or bool(self.sent)
            self.cc.on_ack(now, acked_bytes, cwnd_limited=cwnd_limited)
        self._set_retx_timer()
        self._wake_sender()

    def _schedule_loss_recheck(self) -> None:
        """Time-based loss detection: re-run when a deferral matures."""
        eligible = self.loss_detector.next_eligible_time
        if eligible is None:
            return
        if (self._loss_recheck_event is not None
                and self._loss_recheck_event.pending):
            return
        delay = max(eligible - self.sim.now, 0.0)
        self._loss_recheck_event = self.sim.schedule(delay, self._loss_recheck)

    def _loss_recheck(self) -> None:
        self._loss_recheck_event = None
        if self.closed:
            return
        now = self.sim.now
        missing = self._missing_below(self._largest_acked)
        lost = self.loss_detector.detect(
            now, self.sent, missing, [], self._largest_acked,
            self.rtt.smoothed_rtt(),
        )
        if lost:
            self._on_packets_lost(now, lost)
        self._schedule_loss_recheck()

    def _missing_below(self, largest_acked: int) -> List[int]:
        """Unacked (by the peer) packet numbers below ``largest_acked``.

        These are the holes in the peer's ack ranges — the candidates for
        NACK-threshold loss declaration.  Numbers of packets already
        declared lost stay holes until retransmissions cover new numbers;
        they are filtered out via the ``sent`` map by the detector.
        """
        live: List[int] = []
        first_live: Optional[int] = None
        for gap_lo, gap_hi in self._peer_acked.gaps(self._ack_floor, largest_acked):
            for num in range(gap_lo, gap_hi):
                if num in self.sent:
                    live.append(num)
                    if first_live is None:
                        first_live = num
            if len(live) > 8192:  # safety valve
                break
        # Advance the floor past dead holes (declared-lost numbers are
        # never re-sent, so gaps below the first live hole stay dead).
        self._ack_floor = first_live if first_live is not None else largest_acked
        return live

    def _on_frames_acked(self, record: SentPacketRecord) -> None:
        for frame in record.stream_frames():
            stream = self.send_streams.get(frame.stream_id)
            if stream is not None:
                stream.on_range_acked(frame.offset, frame.length, frame.fin)
                if stream.fully_acked:
                    self._retire_send_stream(frame.stream_id)

    def _retire_send_stream(self, sid: int) -> None:
        self.send_streams.pop(sid, None)
        try:
            self._send_rr.remove(sid)
        except ValueError:
            pass

    def _on_packets_lost(self, now: float, lost: List[SentPacketRecord]) -> None:
        congestion = False
        for record in lost:
            self.bytes_in_flight -= record.size_bytes
            self.stats.retransmitted_ranges += 1
            for frame in record.frames:
                if isinstance(frame, StreamFrame):
                    stream = self.send_streams.get(frame.stream_id)
                    if stream is not None:
                        stream.on_range_lost(frame.offset, frame.length, frame.fin)
                elif isinstance(frame, (CryptoFrame, MaxDataFrame, MaxStreamDataFrame)):
                    self._requeue_control(frame)
            if self._recovery_marker is None or record.pkt_num >= self._recovery_marker:
                congestion = True
        if congestion:
            self.cc.on_congestion_event(now, self.bytes_in_flight)
            self._recovery_marker = self._next_pkt_num
        self._wake_sender()

    def _requeue_control(self, frame: Any) -> None:
        if isinstance(frame, CryptoFrame):
            self._crypto_out.appendleft(frame)
        else:
            self._control_out.append(frame)

    # ------------------------------------------------------------------
    # retransmission timers: TLP then RTO (paper Sec. 2.1)
    # ------------------------------------------------------------------
    def _set_retx_timer(self) -> None:
        if self._retx_timer is not None:
            self._retx_timer.cancel()
            self._retx_timer = None
        if self.bytes_in_flight <= 0 or self.closed:
            return
        srtt = self.rtt.smoothed_rtt()
        if self.config.tlp_enabled and self._tlp_count < self.config.max_tail_loss_probes:
            delay = max(2.0 * srtt, 1.5 * srtt + self.config.ack_delay_timer)
            kind = "tlp"
        else:
            delay = self.rtt.retransmission_timeout(self.config.min_rto)
            delay *= 2 ** min(self._rto_count, 6)
            kind = "rto"
        self._retx_timer = self.sim.schedule(delay, self._retx_timer_fired, kind)

    def _retx_timer_fired(self, kind: str) -> None:
        self._retx_timer = None
        if self.bytes_in_flight <= 0 or self.closed:
            return
        now = self.sim.now
        if kind == "tlp":
            self._tlp_count += 1
            self.stats.tlp_probes += 1
            self.trace.log(now, "tlp")
            self.cc.on_tail_loss_probe(now)
            newest = max(self.sent, default=None)
            if newest is not None:
                self._send_probe_for(self.sent[newest])
        else:
            self._rto_count += 1
            self.stats.rto_fires += 1
            self.trace.log(now, "rto")
            self.cc.on_retransmission_timeout(now)
            probes = 0
            for pkt_num in sorted(self.sent):
                if probes >= 2:
                    break
                if self._send_probe_for(self.sent[pkt_num]):
                    probes += 1
        self._set_retx_timer()

    def _send_probe_for(self, record: SentPacketRecord) -> bool:
        """Retransmit a packet's frames immediately, bypassing cc gating.

        Returns True if a probe was sent.  A record whose data has since
        been acknowledged through other copies is a zombie: it is retired
        (removed from the sent map, its bytes freed) instead of probed.
        """
        frames: List[Any] = []
        for frame in record.frames:
            if isinstance(frame, StreamFrame):
                stream = self.send_streams.get(frame.stream_id)
                if stream is None:
                    continue
                if frame.length and stream.acked.covers(frame.offset, frame.end()):
                    continue
                frames.append(StreamFrame(frame.stream_id, frame.offset,
                                          frame.length, frame.fin, frame.meta))
            elif not isinstance(frame, FecFrame):
                frames.append(frame)
        if not frames:
            if self.sent.pop(record.pkt_num, None) is not None:
                self.bytes_in_flight -= record.size_bytes
            return False
        packet = QuicPacket(self.conn_id, self._next_pkt_num, frames)
        self._next_pkt_num += 1
        self._commit_packet(packet, probe=True)
        return True

    # ------------------------------------------------------------------
    # stream frame handling (receiver side)
    # ------------------------------------------------------------------
    def _on_stream_frame(self, now: float, frame: StreamFrame) -> None:
        """Stage 1: reassemble; hand new bytes to the consume stage."""
        stream = self.recv_streams.get(frame.stream_id)
        if stream is None:
            stream = RecvStream(frame.stream_id, self.config.stream_flow_window)
            self.recv_streams[frame.stream_id] = stream
        new_bytes = stream.on_frame(now, frame.offset, frame.length, frame.fin,
                                    frame.meta)
        if new_bytes < frame.length:
            self.stats.duplicate_bytes += frame.length - new_bytes
        if new_bytes or (stream.complete and not stream.consumed_complete):
            # Zero-byte items still pass through the consumer so a bare
            # FIN arriving after the data triggers the completion check.
            self._consumer.submit((stream, new_bytes))

    def _consume_item(self, item: Tuple[RecvStream, int]) -> None:
        """Stage 2: userspace decrypt/consume — returns flow credit."""
        stream, new_bytes = item
        now = self.sim.now
        if new_bytes:
            stream.consumed += new_bytes
            self._conn_bytes_consumed += new_bytes
            self._delivered_app_bytes += new_bytes
            self.delivery_log.append((now, self._delivered_app_bytes))
            self._maybe_grant_conn_window(now)
            self._maybe_grant_stream_window(now, stream)
            if self.on_progress is not None:
                self.on_progress(stream.stream_id, new_bytes, stream.meta)
        if (
            not stream.consumed_complete
            and stream.fin_offset is not None
            and stream.consumed >= stream.fin_offset
            and stream.complete
        ):
            stream.consumed_complete = True
            self._on_stream_complete(now, stream)

    def _maybe_grant_conn_window(self, now: float) -> None:
        remaining = self._conn_granted - self._conn_bytes_consumed
        if remaining > self._conn_window / 2:
            return
        # Chromium auto-tune: frequent updates mean the window is too
        # small for the path's BDP; double it up to the cap.
        if (
            now - self._last_conn_update < 2.0 * self.rtt.smoothed_rtt()
            and self._conn_window < self.config.conn_flow_window_cap
        ):
            self._conn_window = min(self._conn_window * 2,
                                    self.config.conn_flow_window_cap)
        self._last_conn_update = now
        self._conn_granted = self._conn_bytes_consumed + self._conn_window
        self._control_out.append(MaxDataFrame(self._conn_granted))
        self._schedule_control_flush()

    def _maybe_grant_stream_window(self, now: float, stream: RecvStream) -> None:
        if stream.consumed_complete or stream.complete:
            return
        consumed = stream.consumed
        remaining = stream.granted - consumed
        if remaining > stream.window / 2:
            return
        if stream.window < self.config.stream_flow_window_cap:
            stream.window = min(stream.window * 2,
                                self.config.stream_flow_window_cap)
        stream.granted = consumed + stream.window
        self._control_out.append(MaxStreamDataFrame(stream.stream_id,
                                                    stream.granted))
        self._schedule_control_flush()

    def _schedule_control_flush(self) -> None:
        """Window updates must go out promptly even without data to send."""
        self.sim.post(0.0, self._flush_control)

    def _flush_control(self) -> None:
        if not self._control_out or self.closed:
            return
        if self._received_nums:
            self._send_ack_now()
        else:
            self._send_bare_control()

    def _send_bare_control(self) -> None:
        frames = list(self._control_out)
        self._control_out.clear()
        packet = QuicPacket(self.conn_id, self._next_pkt_num, frames)
        self._next_pkt_num += 1
        self._commit_packet(packet)

    def _on_stream_complete(self, now: float, stream: RecvStream) -> None:
        if self.role == "server":
            self._handle_request(now, stream)
        else:
            cb = self._response_cbs.pop(stream.stream_id, None)
            if cb is not None:
                self._active_requests -= 1
                cb(stream.stream_id, stream.meta, now)
                self._drain_request_queue()

    # ------------------------------------------------------------------
    # server application
    # ------------------------------------------------------------------
    def _handle_request(self, now: float, stream: RecvStream) -> None:
        if self.request_handler is None and self.on_request is None:
            return
        if self._server_ready_at is None:
            # 0-RTT data arrived before the CHLO finished processing.
            self._pending_serve.append((stream.stream_id, stream.meta))
            return
        delay = self.rng.uniform(0.0, self.server_noise)
        self.sim.post(delay, self._serve, stream.stream_id, stream.meta)

    def _serve(self, stream_id: int, meta: Any) -> None:
        if self.on_request is not None:
            # Deferred application (proxy): it answers via respond() or
            # open_streaming_response().
            self.on_request(stream_id, meta)
            return
        size = self.request_handler(meta)
        if size is None:
            # Deferred response: the application (e.g. a proxy) will call
            # open_streaming_response / respond() itself.
            return
        self._open_send_stream(stream_id, size, meta)

    def respond(self, stream_id: int, size: int, meta: Any = None) -> None:
        """Deferred-response API: serve ``size`` bytes on ``stream_id``."""
        self._open_send_stream(stream_id, size, meta)

    # ------------------------------------------------------------------
    # handshake frames
    # ------------------------------------------------------------------
    def _on_crypto_frame(self, now: float, frame: CryptoFrame) -> None:
        if frame.kind.endswith(":frag"):
            return  # leading fragment; act on the final piece only
        if frame.kind == "connection_close":
            # Peer tore the connection down: stop quietly.
            self.close(notify_peer=False)
            return
        if self.role == "server":
            if frame.kind == "inchoate_chlo":
                self.sim.post(
                    self.device.crypto_setup_cost, self._server_send_rej
                )
            elif frame.kind == "chlo":
                self.sim.post(
                    self.device.crypto_setup_cost, self._server_handshake_done
                )
        else:
            if frame.kind == "rej":
                if self.session_cache is not None:
                    # The REJ carries the server config: the next
                    # connection to this server can use 0-RTT.
                    self.session_cache.store(self.peer_addr, now)
                self._enqueue_crypto("chlo", self.config.chlo_bytes)
                self._handshake_state = "ready"
                self._app_data_allowed = True
                self.handshake_ready_time = now
                if self.on_ready is not None:
                    self.on_ready(now)
                self._drain_request_queue()
                self._wake_sender()
            elif frame.kind == "shlo":
                if self.session_cache is not None:
                    self.session_cache.store(self.peer_addr, now)

    def _server_send_rej(self) -> None:
        self._enqueue_crypto("rej", self.config.rej_bytes)
        self._wake_sender()

    def _server_handshake_done(self) -> None:
        if self._server_ready_at is not None:
            return
        self._server_ready_at = self.sim.now
        self._enqueue_crypto("shlo", self.config.shlo_bytes)
        for stream_id, meta in self._pending_serve:
            delay = self.rng.uniform(0.0, self.server_noise)
            self.sim.post(delay, self._serve, stream_id, meta)
        self._pending_serve.clear()
        self._wake_sender()

    # ------------------------------------------------------------------
    def close(self, notify_peer: bool = True) -> None:
        """Tear the connection down.

        With ``notify_peer`` a CONNECTION_CLOSE-style frame is emitted so
        the peer stops its timers too (instead of retransmitting into a
        dead endpoint until its RTO backoff gives up).
        """
        if self.closed:
            return
        if notify_peer:
            frame = CryptoFrame("connection_close", 32)
            packet = QuicPacket(self.conn_id, self._next_pkt_num, [frame])
            self._next_pkt_num += 1
            self._peer_acked.add(packet.pkt_num, packet.pkt_num + 1)
            self._emit_packet(packet)
        for timer in (self._retx_timer, self._ack_timer,
                      self._loss_recheck_event):
            if timer is not None:
                timer.cancel()
        self.trace.close(self.sim.now)
        super().close()


def open_quic_pair(
    sim: Simulator,
    client_node: Node,
    server_node: Node,
    config: QuicConfig,
    *,
    device: DeviceProfile = DESKTOP,
    request_handler: Optional[RequestHandler] = None,
    client_trace: Optional[Trace] = None,
    server_trace: Optional[Trace] = None,
    seed: int = 0,
    server_noise: float = 0.001,
    flow_id: Optional[str] = None,
    session_cache: Optional["SessionCache"] = None,
) -> Tuple[QuicConnection, QuicConnection]:
    """Create a connected client/server QUIC endpoint pair."""
    conn_id = fresh_conn_id("quic")
    rng = random.Random(seed)
    client = QuicConnection(
        sim, client_node, conn_id, server_node.name, config, "client",
        device=device, trace=client_trace,
        rng=random.Random(rng.randrange(1 << 30)), flow_id=flow_id,
        session_cache=session_cache,
    )
    server = QuicConnection(
        sim, server_node, conn_id, client_node.name, config, "server",
        device=DESKTOP, trace=server_trace, request_handler=request_handler,
        rng=random.Random(rng.randrange(1 << 30)), server_noise=server_noise,
        flow_id=flow_id,
    )
    return client, server

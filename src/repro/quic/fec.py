"""XOR forward error correction (the feature QUIC removed in early 2016).

The paper does not evaluate FEC because Google removed it for poor
performance (Sec. 2.1 footnote 4), citing the same conclusion Carlucci
et al. [17] reached experimentally.  This module implements GQUIC's
original scheme so the repository can *reproduce that removal decision*
(see ``benchmarks/ablations``):

* the sender groups consecutive retransmittable packets and, after every
  ``group_size`` of them, emits one FEC packet whose payload is the XOR
  of the group (modelled as a packet carrying the group's frame copies
  and costing as many bytes as the largest group member);
* the receiver can *revive* exactly one missing packet per group: when
  the FEC packet plus all-but-one member have arrived, the missing
  packet's frames are reconstructed and processed, and its number is
  reported as received (GQUIC acked revived packets normally).

The trade-off GQUIC measured — and this model reproduces — is that the
~``1/(group_size+1)`` bandwidth tax and the queue pressure of the extra
packets usually cost more than the retransmissions they avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from .frames import StreamFrame


@dataclass
class FecPacketPayload:
    """The simulation stand-in for an XOR FEC packet.

    ``members`` maps each protected packet number to (copies of) its
    frames; XOR reconstruction of a single missing member is modelled by
    replaying that member's frames.
    """

    group_id: int
    members: Dict[int, List[Any]]
    size_bytes: int

    @property
    def wire_bytes(self) -> int:
        return self.size_bytes


@dataclass
class FecFrame:
    """Carries one :class:`FecPacketPayload` inside a QUIC packet."""

    payload: FecPacketPayload

    @property
    def wire_bytes(self) -> int:
        return self.payload.wire_bytes


class FecEncoder:
    """Sender side: accumulate packets, emit one FEC payload per group."""

    def __init__(self, group_size: int = 5) -> None:
        if group_size < 2:
            raise ValueError("FEC group size must be at least 2")
        self.group_size = group_size
        self._group: Dict[int, List[Any]] = {}
        self._max_size = 0
        self._next_group_id = 1
        self.fec_packets_built = 0

    def on_packet_sent(self, pkt_num: int, frames: List[Any],
                       size_bytes: int) -> Optional[FecPacketPayload]:
        """Track a protected packet; returns an FEC payload when a group
        completes."""
        stream_frames = [f for f in frames if isinstance(f, StreamFrame)]
        if not stream_frames:
            return None
        self._group[pkt_num] = list(stream_frames)
        self._max_size = max(self._max_size, size_bytes)
        if len(self._group) < self.group_size:
            return None
        payload = FecPacketPayload(
            group_id=self._next_group_id,
            members=self._group,
            size_bytes=self._max_size + 16,
        )
        self._next_group_id += 1
        self._group = {}
        self._max_size = 0
        self.fec_packets_built += 1
        return payload

    def flush(self) -> Optional[FecPacketPayload]:
        """Emit a short group at end of data (GQUIC flushed on stream FIN)."""
        if len(self._group) < 2:
            return None
        payload = FecPacketPayload(
            group_id=self._next_group_id,
            members=self._group,
            size_bytes=self._max_size + 16,
        )
        self._next_group_id += 1
        self._group = {}
        self._max_size = 0
        self.fec_packets_built += 1
        return payload


class FecDecoder:
    """Receiver side: revive at most one missing packet per group."""

    def __init__(self) -> None:
        self.revived_packets = 0
        self.unhelpful_fec_packets = 0

    def on_fec_packet(self, payload: FecPacketPayload,
                      received_pkt_nums) -> Optional[Tuple[int, List[Any]]]:
        """Returns ``(revived_pkt_num, frames)`` if exactly one member of
        the group is missing, else None.

        ``received_pkt_nums`` is any object with a ``contains(num)``
        method (the connection's received-number RangeSet).
        """
        missing = [num for num in payload.members
                   if not received_pkt_nums.contains(num)]
        if len(missing) != 1:
            self.unhelpful_fec_packets += 1
            return None
        self.revived_packets += 1
        num = missing[0]
        return num, payload.members[num]

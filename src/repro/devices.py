"""Client device models: desktop, Nexus 6, MotoG (paper Sec. 3.1 / 5.2).

The paper's mobile finding (Fig. 12/13) is architectural: QUIC's transport
runs in the browser process, so a slow phone CPU delays packet processing,
flow-control window updates lag, and the *server* ends up parked in the
``ApplicationLimited`` state (58% of the time on a MotoG vs. 7% on a
desktop).  TCP's transport runs in the kernel, so the same phone hurts TCP
far less.

We model a device as per-packet processing costs (one for QUIC's
userspace decrypt+process path, a smaller one for TCP's kernel path), a
one-off crypto handshake cost, and a small noise term that plays the role
of the real testbed's scheduling jitter (it also gives the statistics
non-degenerate variance, which Welch's t-test needs).

The phone cost numbers are calibration knobs, chosen so that the MotoG's
QUIC packet-processing capacity sits just below the 50 Mbps WiFi band the
paper tested (Sec. 5.2), and the Nexus 6's above it — reproducing
"diminished but present" gains on the Nexus 6 and losses on the MotoG.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional

from .netem.sim import Simulator


@dataclass(frozen=True)
class DeviceProfile:
    """CPU characteristics of a client device.

    The QUIC receive path has *two* stages, mirroring Chrome:

    1. ``quic_packet_cost`` — per-packet transport work (header
       processing, ACK generation).  Cheap even on phones.
    2. ``quic_consume_cost`` — per-packet userspace decrypt + stream
       processing that must finish before flow-control credit is
       returned.  This is the stage a phone CPU cannot keep up with, and
       it is what throttles the *server* into ``ApplicationLimited``
       (paper Fig. 13).

    TCP's equivalents run in the kernel with bulk TLS decrypt, so its
    single per-segment cost (``tcp_packet_cost``) is far smaller — the
    paper's architectural asymmetry.
    """

    name: str
    #: Stage 1: seconds per received QUIC packet (ACK path).
    quic_packet_cost: float
    #: Stage 2: seconds per QUIC packet of decrypt+consume work.
    quic_consume_cost: float
    #: Seconds per received TCP segment (kernel+bulk-TLS path).
    tcp_packet_cost: float
    #: One-off handshake crypto cost, seconds.
    crypto_setup_cost: float
    #: Uniform(0, noise) seconds added to request processing, modelling
    #: scheduler jitter / testbed noise.
    noise: float = 0.002

    def packet_cost(self, protocol: str) -> float:
        """Stage-1 per-packet cost for ``protocol`` ("quic" or "tcp")."""
        if protocol == "quic":
            return self.quic_packet_cost
        if protocol == "tcp":
            return self.tcp_packet_cost
        raise ValueError(f"unknown protocol {protocol!r}")


#: Ubuntu desktop, Core i5 3.3 GHz (Sec. 3.1): effectively unbounded.
DESKTOP = DeviceProfile(
    name="desktop",
    quic_packet_cost=0.0,
    quic_consume_cost=0.0,
    tcp_packet_cost=0.0,
    crypto_setup_cost=0.001,
)

#: Nexus 6 (late 2014, 2.7 GHz quad-core): QUIC consume capacity
#: ~48 Mbps — right at the 50 Mbps WiFi band, so gains merely diminish.
NEXUS6 = DeviceProfile(
    name="nexus6",
    quic_packet_cost=15e-6,
    quic_consume_cost=225e-6,
    tcp_packet_cost=30e-6,
    crypto_setup_cost=0.010,
)

#: MotoG (2013, 1.2 GHz quad-core): QUIC consume capacity ~26 Mbps —
#: well below the 50 Mbps band, so QUIC loses its advantage there.
MOTOG = DeviceProfile(
    name="motog",
    quic_packet_cost=30e-6,
    quic_consume_cost=420e-6,
    tcp_packet_cost=80e-6,
    crypto_setup_cost=0.025,
)

DEVICE_PROFILES = {p.name: p for p in (DESKTOP, NEXUS6, MOTOG)}


class PacketProcessor:
    """A single-core packet-consumption model.

    Received packets queue here and are handed to ``handler`` after the
    device's per-packet cost.  With zero cost the processor degenerates to
    an inline call (desktop fast path — no extra simulator events).
    """

    def __init__(self, sim: Simulator, per_packet_cost: float,
                 handler: Callable[[Any], None],
                 rng: Optional[random.Random] = None,
                 cost_jitter: float = 0.2) -> None:
        if per_packet_cost < 0:
            raise ValueError("per_packet_cost must be >= 0")
        self.sim = sim
        self.cost = per_packet_cost
        self.handler = handler
        self.rng = rng if rng is not None else random.Random(0)
        self.cost_jitter = cost_jitter
        self._queue: Deque[Any] = deque()
        self._busy = False
        self.processed = 0

    @property
    def backlog(self) -> int:
        """Packets waiting for CPU (drives flow-control backpressure)."""
        return len(self._queue) + (1 if self._busy else 0)

    def submit(self, item: Any) -> None:
        if self.cost <= 0.0:
            self.processed += 1
            self.handler(item)
            return
        self._queue.append(item)
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        item = self._queue.popleft()
        cost = self.cost
        if self.cost_jitter > 0:
            cost *= 1.0 + self.rng.uniform(-self.cost_jitter, self.cost_jitter)
        self.sim.post(cost, self._finish, item)

    def _finish(self, item: Any) -> None:
        self.processed += 1
        self.handler(item)
        self._start_next()

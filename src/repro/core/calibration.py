"""Server calibration (paper Sec. 4.1, Fig. 2).

The paper shows that sound QUIC evaluation requires (a) rejecting
uncontrolled hosting — Google App Engine adds a large *variable* wait
time between connection establishment and first response byte that
poisons PLT — and (b) grey-box tuning of a self-hosted server until it
matches Google's production behaviour.  The two changes that achieved
parity were raising the maximum allowed congestion window from 107 to
430 packets and fixing the Chromium-52 ssthresh bug.

This module reproduces both:

* :class:`GAEFrontend` wraps a request handler with the variable wait
  the paper measured (Fig. 2's red bar);
* :func:`measure_server_configuration` decomposes a download into wait
  time and download time, Fig. 2 style;
* :func:`calibrate_macw` performs the grey-box search: sweep candidate
  MACW values, compare the resulting PLT against the reference
  ("Google") server, pick the closest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..http.objects import single_object_page
from ..netem.profiles import Scenario, emulated
from ..quic.config import QuicConfig, quic_config
from .executor import ProtocolSpec
from .runner import run_page_load
from .stats import mean, sample_std


class GAEFrontend:
    """Adds GAE-like variable service wait to a request handler.

    The paper could not explain the delay's origin (shared frontends
    without resource guarantees being the suspicion); what matters for
    the methodology is its magnitude and variance, which dominate PLT for
    small pages.  Modelled as ``base + Exp(mean)`` per request.
    """

    def __init__(self, handler: Callable, *, base_wait: float = 0.06,
                 mean_extra: float = 0.18, seed: int = 0) -> None:
        self.handler = handler
        self.base_wait = base_wait
        self.mean_extra = mean_extra
        self.rng = random.Random(seed)
        self.waits: List[float] = []

    def wait_time(self) -> float:
        wait = self.base_wait + self.rng.expovariate(1.0 / self.mean_extra)
        self.waits.append(wait)
        return wait


@dataclass
class ServerMeasurement:
    """Fig. 2's bar decomposition for one server setup."""

    label: str
    wait_times: List[float]
    download_times: List[float]

    @property
    def mean_wait(self) -> float:
        return mean(self.wait_times)

    @property
    def mean_download(self) -> float:
        return mean(self.download_times)

    @property
    def mean_total(self) -> float:
        return self.mean_wait + self.mean_download

    def describe(self) -> str:
        return (
            f"{self.label:<28} wait {self.mean_wait * 1000:7.1f} ms "
            f"(sd {sample_std(self.wait_times) * 1000:6.1f})  "
            f"download {self.mean_download:6.3f} s"
        )


def measure_server_configuration(
    label: str,
    quic_cfg: QuicConfig,
    *,
    scenario: Optional[Scenario] = None,
    size_bytes: int = 10 * 1024 * 1024,
    runs: int = 10,
    gae_like: bool = False,
    seed_base: int = 0,
) -> ServerMeasurement:
    """Download a 10 MB object repeatedly; split PLT into wait + download.

    ``gae_like`` injects the variable frontend wait.  Wait time here is
    the gap between the request being issued and the first response byte
    plus any injected frontend delay; download time is the remainder.
    """
    scenario = scenario if scenario is not None else emulated(100.0)
    waits: List[float] = []
    downloads: List[float] = []
    for i in range(runs):
        frontend = GAEFrontend(None, seed=seed_base * 977 + i) if gae_like else None
        output = run_page_load(
            scenario, single_object_page(size_bytes),
            ProtocolSpec("quic", quic_cfg),
            seed=seed_base + i,
        )
        plt = output.result.plt
        # First-byte wait: handshake + request RTT + server think time.
        stream = next(iter(output.client.recv_streams.values()))
        first_byte = stream.first_byte_at or output.result.started_at
        wait = first_byte - output.result.started_at
        if frontend is not None:
            wait += frontend.wait_time()
        waits.append(wait)
        downloads.append(plt - (first_byte - output.result.started_at))
    return ServerMeasurement(label, waits, downloads)


@dataclass
class CalibrationResult:
    """Outcome of the grey-box MACW search."""

    reference_plt: float
    candidates: List[Tuple[int, float]]  # (macw, mean plt)
    best_macw: int

    def describe(self) -> str:
        lines = [f"reference (Google-like) PLT: {self.reference_plt:.3f}s"]
        for macw, plt in self.candidates:
            marker = "  <== selected" if macw == self.best_macw else ""
            delta = (plt - self.reference_plt) / self.reference_plt * 100
            lines.append(f"  MACW={macw:>5}: {plt:.3f}s ({delta:+.1f}%){marker}")
        return "\n".join(lines)


def calibrate_macw(
    candidates: Sequence[int] = (107, 215, 430, 860),
    *,
    scenario: Optional[Scenario] = None,
    size_bytes: int = 10 * 1024 * 1024,
    runs: int = 5,
    seed_base: int = 0,
) -> CalibrationResult:
    """Grey-box calibration: find the MACW matching the reference server.

    The reference plays Google's production deployment: MACW 430 with the
    ssthresh bug fixed (what the paper converged to after communicating
    with the QUIC team).  Candidates run the *public* build (bug present)
    with varying MACW, mimicking the parameter search an outside
    experimenter would perform.
    """
    scenario = scenario if scenario is not None else emulated(100.0)
    page = single_object_page(size_bytes)

    def mean_plt(cfg: QuicConfig) -> float:
        return mean([
            run_page_load(scenario, page, ProtocolSpec("quic", cfg),
                          seed=seed_base + i).plt
            for i in range(runs)
        ])

    reference = mean_plt(quic_config(34, calibrated=True))
    results: List[Tuple[int, float]] = []
    for macw in candidates:
        cfg = quic_config(34, calibrated=True, macw_packets=macw)
        results.append((macw, mean_plt(cfg)))
    best = min(results, key=lambda item: abs(item[1] - reference))[0]
    return CalibrationResult(reference, results, best)


def uncalibrated_vs_calibrated(
    *,
    scenario: Optional[Scenario] = None,
    size_bytes: int = 10 * 1024 * 1024,
    runs: int = 10,
    seed_base: int = 0,
) -> List[ServerMeasurement]:
    """The three bars of Fig. 2: public default, GAE, calibrated EC2."""
    return [
        measure_server_configuration(
            "public default (MACW=107,bug)",
            quic_config(34, calibrated=False),
            scenario=scenario, size_bytes=size_bytes, runs=runs,
            seed_base=seed_base,
        ),
        measure_server_configuration(
            "Google App Engine",
            quic_config(34, calibrated=True),
            scenario=scenario, size_bytes=size_bytes, runs=runs,
            gae_like=True, seed_base=seed_base,
        ),
        measure_server_configuration(
            "calibrated EC2 (MACW=430)",
            quic_config(34, calibrated=True),
            scenario=scenario, size_bytes=size_bytes, runs=runs,
            seed_base=seed_base,
        ),
    ]

"""The paper's contribution: the rigorous evaluation framework.

Calibration (Sec. 4.1), instrumentation and state-machine inference
(Sec. 4.2/5.1), statistically sound head-to-head comparison (Sec. 3.3)
and root-cause analysis (Sec. 5) — over the simulated testbed substrate.
"""

from .calibration import (
    CalibrationResult,
    GAEFrontend,
    ServerMeasurement,
    calibrate_macw,
    measure_server_configuration,
    uncalibrated_vs_calibrated,
)
from .aggregate import CellAccumulator, StreamAggregator
from .comparison import Comparison, SamplePair
from .diffing import ModelDiff, diff_models, version_stability_report
from .executor import (
    EVENT_WIRE_BOUND,
    ProtocolSpec,
    RunEvent,
    RunFailure,
    RunRecord,
    RunRequest,
    execute_request,
    iter_runs,
    run_requests,
)
from .experiment import (
    SCHEMA_VERSION,
    ExperimentResult,
    ExperimentSpec,
    ScenarioSpec,
    WorkloadSpec,
    experiment_requests,
    run_experiment,
)
from .heatmap import GridAccumulator, Heatmap
from .instrumentation import Trace, TraceRecord
from .monitors import FlowThroughputMonitor
from .report import build_report, collect_sections, missing_experiments
from .rootcause import (
    DwellComparison,
    EfficiencyReport,
    LossReport,
    SlowStartReport,
    compare_dwell,
    efficiency_report,
    loss_report,
    slow_start_report,
)
from .runner import (
    DEFAULT_RUNS,
    FairnessResult,
    RunOutput,
    TransferResult,
    build_plt_heatmap,
    compare_page_load,
    compare_quic_variants,
    measure_plts,
    run_bulk_transfer,
    run_fairness,
    run_page_load,
)
from .statemachine import (
    Invariant,
    StateMachineModel,
    infer,
    infer_from_sequences,
)
from .stats import (
    ALPHA,
    TTestResult,
    mean,
    percent_difference,
    sample_std,
    sample_variance,
    welch_t_test,
)

__all__ = [
    "CalibrationResult",
    "GAEFrontend",
    "ServerMeasurement",
    "calibrate_macw",
    "measure_server_configuration",
    "uncalibrated_vs_calibrated",
    "CellAccumulator",
    "StreamAggregator",
    "Comparison",
    "SamplePair",
    "ModelDiff",
    "diff_models",
    "version_stability_report",
    "EVENT_WIRE_BOUND",
    "ProtocolSpec",
    "RunEvent",
    "RunFailure",
    "RunRecord",
    "RunRequest",
    "execute_request",
    "iter_runs",
    "run_requests",
    "SCHEMA_VERSION",
    "ExperimentResult",
    "ExperimentSpec",
    "ScenarioSpec",
    "WorkloadSpec",
    "experiment_requests",
    "run_experiment",
    "GridAccumulator",
    "Heatmap",
    "Trace",
    "TraceRecord",
    "FlowThroughputMonitor",
    "build_report",
    "collect_sections",
    "missing_experiments",
    "DwellComparison",
    "EfficiencyReport",
    "LossReport",
    "SlowStartReport",
    "compare_dwell",
    "efficiency_report",
    "loss_report",
    "slow_start_report",
    "DEFAULT_RUNS",
    "FairnessResult",
    "RunOutput",
    "TransferResult",
    "build_plt_heatmap",
    "compare_page_load",
    "compare_quic_variants",
    "measure_plts",
    "run_bulk_transfer",
    "run_fairness",
    "run_page_load",
    "Invariant",
    "StateMachineModel",
    "infer",
    "infer_from_sequences",
    "ALPHA",
    "TTestResult",
    "mean",
    "percent_difference",
    "sample_std",
    "sample_variance",
    "welch_t_test",
]

"""Declarative experiment specifications (the paper's automation goal).

The paper closes by promising to "automate the steps used for analysis in
our approach".  This module does that for the reproduction: an
:class:`ExperimentSpec` declares a full experiment — network grid,
workload grid, protocols, device, rounds — as plain data (JSON
round-trippable), and :func:`run_experiment` executes it into an
:class:`ExperimentResult` containing every sample, every comparison and
the rendered heatmap.  The CLI's ``spec`` command runs a spec file.

Example spec (JSON)::

    {
      "name": "desktop-plt",
      "scenarios": [
        {"rate_mbps": 10.0, "loss_pct": 0.0},
        {"rate_mbps": 10.0, "loss_pct": 1.0}
      ],
      "workloads": [
        {"objects": 1, "size_kb": 100},
        {"objects": 100, "size_kb": 10}
      ],
      "runs": 10,
      "device": "desktop",
      "quic_version": 34
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..devices import DEVICE_PROFILES
from ..http.objects import WebPage, page
from ..netem.profiles import Scenario, emulated
from ..quic.config import quic_config
from .comparison import Comparison
from .executor import ProtocolSpec, RunRequest, iter_runs
from .heatmap import Heatmap
from .stats import mean, sample_std

#: Version of the JSON spec schema this build reads and writes.
SCHEMA_VERSION = 1


def _reject_unknown_keys(kind: str, raw: Mapping[str, Any],
                         allowed: set) -> None:
    unknown = sorted(set(raw) - allowed)
    if unknown:
        raise ValueError(
            f"unknown {kind} key(s): {', '.join(map(repr, unknown))} "
            f"(known keys: {', '.join(sorted(allowed))})"
        )


def _parse_entry(cls: type, raw: Mapping[str, Any], kind: str):
    if not isinstance(raw, Mapping):
        raise ValueError(f"each {kind} must be a JSON object, got {raw!r}")
    _reject_unknown_keys(kind, raw, {f.name for f in fields(cls)})
    return cls(**raw)


@dataclass(frozen=True)
class WorkloadSpec:
    """A page: ``objects`` equal objects of ``size_kb`` KB each."""

    objects: int = 1
    size_kb: float = 100.0

    def build(self) -> WebPage:
        return page(self.objects, int(self.size_kb * 1024))

    @property
    def label(self) -> str:
        return f"{self.objects}x{self.size_kb:g}KB"


@dataclass(frozen=True)
class ScenarioSpec:
    """A network condition in the paper's units (Table 2)."""

    rate_mbps: Optional[float] = 10.0
    loss_pct: float = 0.0
    delay_ms: float = 0.0
    jitter_ms: float = 0.0

    def build(self) -> Scenario:
        return emulated(self.rate_mbps, loss_pct=self.loss_pct,
                        extra_delay_ms=self.delay_ms,
                        jitter_ms=self.jitter_ms)

    @property
    def label(self) -> str:
        return self.build().name


@dataclass
class ExperimentSpec:
    """A complete declarative experiment."""

    name: str
    scenarios: List[ScenarioSpec]
    workloads: List[WorkloadSpec]
    protocols: Tuple[str, ...] = ("quic", "tcp")
    runs: int = 10
    device: str = "desktop"
    quic_version: int = 34
    description: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.scenarios or not self.workloads:
            raise ValueError("spec needs at least one scenario and workload")
        if self.runs < 1:
            raise ValueError("runs must be positive")
        if self.device not in DEVICE_PROFILES:
            raise ValueError(f"unknown device {self.device!r}")
        for protocol in self.protocols:
            if protocol not in ("quic", "tcp"):
                raise ValueError(f"unknown protocol {protocol!r}")
        if not isinstance(self.schema_version, int) or self.schema_version < 1:
            raise ValueError(
                f"schema_version must be a positive integer, "
                f"got {self.schema_version!r}")
        if self.schema_version > SCHEMA_VERSION:
            raise ValueError(
                f"spec schema_version {self.schema_version} is newer than "
                f"this build supports (<= {SCHEMA_VERSION}); upgrade repro "
                f"or re-export the spec")

    # -- serialisation -----------------------------------------------------
    def to_json(self) -> str:
        payload = asdict(self)
        payload["protocols"] = list(self.protocols)
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        raw = json.loads(text)
        if not isinstance(raw, dict):
            raise ValueError("an experiment spec must be a JSON object")
        _reject_unknown_keys("experiment spec", raw,
                             {f.name for f in fields(cls)})
        for required in ("name", "scenarios", "workloads"):
            if required not in raw:
                raise ValueError(f"experiment spec is missing {required!r}")
        return cls(
            name=raw["name"],
            scenarios=[_parse_entry(ScenarioSpec, s, "scenario")
                       for s in raw["scenarios"]],
            workloads=[_parse_entry(WorkloadSpec, w, "workload")
                       for w in raw["workloads"]],
            protocols=tuple(raw.get("protocols", ("quic", "tcp"))),
            runs=raw.get("runs", 10),
            device=raw.get("device", "desktop"),
            quic_version=raw.get("quic_version", 34),
            description=raw.get("description", ""),
            schema_version=raw.get("schema_version", SCHEMA_VERSION),
        )


@dataclass
class ExperimentResult:
    """All samples plus derived comparisons for one executed spec."""

    spec: ExperimentSpec
    #: (scenario_label, workload_label, protocol) -> PLT samples.
    samples: Dict[Tuple[str, str, str], List[float]] = field(
        default_factory=dict)

    def comparison(self, scenario_label: str, workload_label: str) -> Comparison:
        quic = self.samples[(scenario_label, workload_label, "quic")]
        tcp = self.samples[(scenario_label, workload_label, "tcp")]
        return Comparison(f"{scenario_label} / {workload_label}", quic, tcp)

    def heatmap(self, title: Optional[str] = None) -> Heatmap:
        hm = Heatmap(
            title or self.spec.name,
            row_labels=[s.label for s in self.spec.scenarios],
            col_labels=[w.label for w in self.spec.workloads],
        )
        for scenario in self.spec.scenarios:
            for workload in self.spec.workloads:
                hm.put(scenario.label, workload.label,
                       self.comparison(scenario.label, workload.label))
        return hm

    def summary_rows(self) -> List[str]:
        rows = []
        for (scenario, workload, protocol), values in sorted(self.samples.items()):
            rows.append(
                f"{scenario:<24}{workload:<12}{protocol:<6}"
                f"{mean(values):8.3f}s (sd {sample_std(values):6.3f}, "
                f"n={len(values)})"
            )
        return rows

    # -- serialisation -----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "spec": json.loads(self.spec.to_json()),
            "samples": {
                "|".join(key): values for key, values in self.samples.items()
            },
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        raw = json.loads(text)
        spec = ExperimentSpec.from_json(json.dumps(raw["spec"]))
        samples = {
            tuple(key.split("|")): values
            for key, values in raw["samples"].items()
        }
        return cls(spec=spec, samples=samples)


def experiment_requests(spec: ExperimentSpec, *, seed_base: int = 0
                        ) -> List[Tuple[Tuple[str, str, str],
                                        List[RunRequest]]]:
    """Expand a spec into its (cell key, seeded RunRequests) pairs."""
    device = DEVICE_PROFILES[spec.device]
    quic_spec = ProtocolSpec("quic", quic_config(spec.quic_version))
    tcp_spec = ProtocolSpec("tcp")
    cells: List[Tuple[Tuple[str, str, str], List[RunRequest]]] = []
    for scenario_spec in spec.scenarios:
        scenario = scenario_spec.build()
        for workload_spec in spec.workloads:
            workload = workload_spec.build()
            for protocol in spec.protocols:
                proto = quic_spec if protocol == "quic" else tcp_spec
                key = (scenario_spec.label, workload_spec.label, protocol)
                cells.append((key, [
                    RunRequest(scenario=scenario, page=workload,
                               protocol=proto, seed=seed_base + i,
                               device=device)
                    for i in range(spec.runs)
                ]))
    return cells


def run_experiment(spec: ExperimentSpec, *, seed_base: int = 0,
                   progress: Optional[Any] = None,
                   jobs: Optional[int] = 1,
                   store: Optional[Any] = None) -> ExperimentResult:
    """Execute a spec: every (scenario x workload x protocol) cell.

    ``jobs`` fans every seeded run of the whole grid out over the
    process-pool executor; because each run is a pure function of its
    request, the result (including ``to_json()``) is byte-identical for
    any worker count.  ``progress(key, plts)`` fires once per cell, as
    soon as that cell's last run completes (completion order under
    parallelism — every cell still fires exactly once).

    ``store`` (a :mod:`repro.store` store, cache, or path) makes the
    sweep cached *and resumable*: completed runs are persisted as they
    finish, so re-running a killed sweep executes only the missing
    cells, and re-running a finished one executes nothing at all.
    """
    result = ExperimentResult(spec=spec)
    cells = experiment_requests(spec, seed_base=seed_base)
    # Pre-insert every cell in grid order: samples arrive in completion
    # order, but dict insertion order — and therefore to_json() — must
    # not depend on scheduling.
    flat: List[RunRequest] = []
    slots: List[Tuple[Tuple[str, str, str], int]] = []
    remaining: Dict[Tuple[str, str, str], int] = {}
    for key, requests in cells:
        result.samples[key] = [None] * len(requests)  # type: ignore[list-item]
        remaining[key] = len(requests)
        for position, request in enumerate(requests):
            flat.append(request)
            slots.append((key, position))
    for event in iter_runs(flat, jobs=jobs, store=store):
        if not event.terminal:
            continue
        key, position = slots[event.index]
        result.samples[key][position] = event.require()
        remaining[key] -= 1
        if remaining[key] == 0 and progress is not None:
            progress(key, result.samples[key])
    return result

"""Declarative experiment specifications (the paper's automation goal).

The paper closes by promising to "automate the steps used for analysis in
our approach".  This module does that for the reproduction: an
:class:`ExperimentSpec` declares a full experiment — network grid,
workload grid, protocols, device, rounds — as plain data (JSON
round-trippable), and :func:`run_experiment` executes it into an
:class:`ExperimentResult` containing every sample, every comparison and
the rendered heatmap.  The CLI's ``spec`` command runs a spec file.

Example spec (JSON)::

    {
      "name": "desktop-plt",
      "scenarios": [
        {"rate_mbps": 10.0, "loss_pct": 0.0},
        {"rate_mbps": 10.0, "loss_pct": 1.0}
      ],
      "workloads": [
        {"objects": 1, "size_kb": 100},
        {"objects": 100, "size_kb": 10}
      ],
      "runs": 10,
      "device": "desktop",
      "quic_version": 34
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..devices import DEVICE_PROFILES
from ..http.objects import WebPage, page
from ..netem.profiles import Scenario, emulated
from ..quic.config import quic_config
from .comparison import Comparison
from .heatmap import Heatmap
from .runner import measure_plts
from .stats import mean, sample_std


@dataclass(frozen=True)
class WorkloadSpec:
    """A page: ``objects`` equal objects of ``size_kb`` KB each."""

    objects: int = 1
    size_kb: float = 100.0

    def build(self) -> WebPage:
        return page(self.objects, int(self.size_kb * 1024))

    @property
    def label(self) -> str:
        return f"{self.objects}x{self.size_kb:g}KB"


@dataclass(frozen=True)
class ScenarioSpec:
    """A network condition in the paper's units (Table 2)."""

    rate_mbps: Optional[float] = 10.0
    loss_pct: float = 0.0
    delay_ms: float = 0.0
    jitter_ms: float = 0.0

    def build(self) -> Scenario:
        return emulated(self.rate_mbps, loss_pct=self.loss_pct,
                        extra_delay_ms=self.delay_ms,
                        jitter_ms=self.jitter_ms)

    @property
    def label(self) -> str:
        return self.build().name


@dataclass
class ExperimentSpec:
    """A complete declarative experiment."""

    name: str
    scenarios: List[ScenarioSpec]
    workloads: List[WorkloadSpec]
    protocols: Tuple[str, ...] = ("quic", "tcp")
    runs: int = 10
    device: str = "desktop"
    quic_version: int = 34
    description: str = ""

    def __post_init__(self) -> None:
        if not self.scenarios or not self.workloads:
            raise ValueError("spec needs at least one scenario and workload")
        if self.runs < 1:
            raise ValueError("runs must be positive")
        if self.device not in DEVICE_PROFILES:
            raise ValueError(f"unknown device {self.device!r}")
        for protocol in self.protocols:
            if protocol not in ("quic", "tcp"):
                raise ValueError(f"unknown protocol {protocol!r}")

    # -- serialisation -----------------------------------------------------
    def to_json(self) -> str:
        payload = asdict(self)
        payload["protocols"] = list(self.protocols)
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        raw = json.loads(text)
        return cls(
            name=raw["name"],
            scenarios=[ScenarioSpec(**s) for s in raw["scenarios"]],
            workloads=[WorkloadSpec(**w) for w in raw["workloads"]],
            protocols=tuple(raw.get("protocols", ("quic", "tcp"))),
            runs=raw.get("runs", 10),
            device=raw.get("device", "desktop"),
            quic_version=raw.get("quic_version", 34),
            description=raw.get("description", ""),
        )


@dataclass
class ExperimentResult:
    """All samples plus derived comparisons for one executed spec."""

    spec: ExperimentSpec
    #: (scenario_label, workload_label, protocol) -> PLT samples.
    samples: Dict[Tuple[str, str, str], List[float]] = field(
        default_factory=dict)

    def comparison(self, scenario_label: str, workload_label: str) -> Comparison:
        quic = self.samples[(scenario_label, workload_label, "quic")]
        tcp = self.samples[(scenario_label, workload_label, "tcp")]
        return Comparison(f"{scenario_label} / {workload_label}", quic, tcp)

    def heatmap(self, title: Optional[str] = None) -> Heatmap:
        hm = Heatmap(
            title or self.spec.name,
            row_labels=[s.label for s in self.spec.scenarios],
            col_labels=[w.label for w in self.spec.workloads],
        )
        for scenario in self.spec.scenarios:
            for workload in self.spec.workloads:
                hm.put(scenario.label, workload.label,
                       self.comparison(scenario.label, workload.label))
        return hm

    def summary_rows(self) -> List[str]:
        rows = []
        for (scenario, workload, protocol), values in sorted(self.samples.items()):
            rows.append(
                f"{scenario:<24}{workload:<12}{protocol:<6}"
                f"{mean(values):8.3f}s (sd {sample_std(values):6.3f}, "
                f"n={len(values)})"
            )
        return rows

    # -- serialisation -----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "spec": json.loads(self.spec.to_json()),
            "samples": {
                "|".join(key): values for key, values in self.samples.items()
            },
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        raw = json.loads(text)
        spec = ExperimentSpec.from_json(json.dumps(raw["spec"]))
        samples = {
            tuple(key.split("|")): values
            for key, values in raw["samples"].items()
        }
        return cls(spec=spec, samples=samples)


def run_experiment(spec: ExperimentSpec, *, seed_base: int = 0,
                   progress: Optional[Any] = None) -> ExperimentResult:
    """Execute a spec: every (scenario x workload x protocol) cell."""
    result = ExperimentResult(spec=spec)
    device = DEVICE_PROFILES[spec.device]
    quic_cfg = quic_config(spec.quic_version)
    for scenario_spec in spec.scenarios:
        scenario = scenario_spec.build()
        for workload_spec in spec.workloads:
            workload = workload_spec.build()
            for protocol in spec.protocols:
                plts = measure_plts(
                    scenario, workload, protocol, runs=spec.runs,
                    seed_base=seed_base, device=device,
                    quic_cfg=quic_cfg if protocol == "quic" else None,
                )
                key = (scenario_spec.label, workload_spec.label, protocol)
                result.samples[key] = plts
                if progress is not None:
                    progress(key, plts)
    return result

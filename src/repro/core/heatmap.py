"""Heatmap grids in the style of the paper's Figs. 6-8, 12, 14, 15, 17, 18.

A :class:`Heatmap` is a rate x workload grid of
:class:`~repro.core.comparison.Comparison` cells.  The terminal rendering
mirrors the paper's colour coding: positive percentages (QUIC/treatment
faster) where the paper prints red, negative where it prints blue, and a
dot for statistically insignificant ("white") cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .comparison import Comparison


@dataclass
class Heatmap:
    """A labelled grid of comparisons."""

    title: str
    row_labels: List[str]
    col_labels: List[str]
    cells: Dict[Tuple[str, str], Comparison] = field(default_factory=dict)
    #: What the two sides are called in the rendering.
    treatment: str = "QUIC"
    baseline: str = "TCP"

    def put(self, row: str, col: str, comparison: Comparison) -> None:
        if row not in self.row_labels or col not in self.col_labels:
            raise KeyError(f"cell ({row!r}, {col!r}) outside the grid")
        self.cells[(row, col)] = comparison

    def get(self, row: str, col: str) -> Optional[Comparison]:
        return self.cells.get((row, col))

    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII table: one row per rate, one column per workload."""
        width = max(8, max((len(c) for c in self.col_labels), default=8) + 2)
        row_w = max(10, max((len(r) for r in self.row_labels), default=10) + 2)
        lines = [self.title,
                 f"(positive = {self.treatment} faster; '·' = not significant "
                 f"at p<0.01)"]
        header = " " * row_w + "".join(c.rjust(width) for c in self.col_labels)
        lines.append(header)
        for row in self.row_labels:
            out = row.ljust(row_w)
            for col in self.col_labels:
                cell = self.cells.get((row, col))
                text = cell.cell_text().strip() if cell is not None else "-"
                out += text.rjust(width)
            lines.append(out)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # aggregate queries used by benchmark assertions
    # ------------------------------------------------------------------
    def fraction_favoring_treatment(self) -> float:
        """Fraction of significant cells where the treatment wins."""
        significant = [c for c in self.cells.values() if c.significant()]
        if not significant:
            return 0.0
        wins = sum(1 for c in significant if c.pct_diff > 0)
        return wins / len(significant)

    def significant_cells(self) -> List[Comparison]:
        return [c for c in self.cells.values() if c.significant()]

    def mean_pct_diff(self) -> float:
        cells = list(self.cells.values())
        if not cells:
            return 0.0
        return sum(c.pct_diff for c in cells) / len(cells)

"""Heatmap grids in the style of the paper's Figs. 6-8, 12, 14, 15, 17, 18.

A :class:`Heatmap` is a rate x workload grid of
:class:`~repro.core.comparison.Comparison` cells.  The terminal rendering
mirrors the paper's colour coding: positive percentages (QUIC/treatment
faster) where the paper prints red, negative where it prints blue, and a
dot for statistically insignificant ("white") cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .comparison import Comparison, SamplePair


@dataclass
class Heatmap:
    """A labelled grid of comparisons."""

    title: str
    row_labels: List[str]
    col_labels: List[str]
    cells: Dict[Tuple[str, str], Comparison] = field(default_factory=dict)
    #: What the two sides are called in the rendering.
    treatment: str = "QUIC"
    baseline: str = "TCP"

    def put(self, row: str, col: str, comparison: Comparison) -> None:
        if row not in self.row_labels or col not in self.col_labels:
            raise KeyError(f"cell ({row!r}, {col!r}) outside the grid")
        self.cells[(row, col)] = comparison

    def get(self, row: str, col: str) -> Optional[Comparison]:
        return self.cells.get((row, col))

    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII table: one row per rate, one column per workload."""
        width = max(8, max((len(c) for c in self.col_labels), default=8) + 2)
        row_w = max(10, max((len(r) for r in self.row_labels), default=10) + 2)
        lines = [self.title,
                 f"(positive = {self.treatment} faster; '·' = not significant "
                 f"at p<0.01)"]
        header = " " * row_w + "".join(c.rjust(width) for c in self.col_labels)
        lines.append(header)
        for row in self.row_labels:
            out = row.ljust(row_w)
            for col in self.col_labels:
                cell = self.cells.get((row, col))
                text = cell.cell_text().strip() if cell is not None else "-"
                out += text.rjust(width)
            lines.append(out)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # aggregate queries used by benchmark assertions
    # ------------------------------------------------------------------
    def fraction_favoring_treatment(self) -> float:
        """Fraction of significant cells where the treatment wins."""
        significant = [c for c in self.cells.values() if c.significant()]
        if not significant:
            return 0.0
        wins = sum(1 for c in significant if c.pct_diff > 0)
        return wins / len(significant)

    def significant_cells(self) -> List[Comparison]:
        return [c for c in self.cells.values() if c.significant()]

    def mean_pct_diff(self) -> float:
        cells = list(self.cells.values())
        if not cells:
            return 0.0
        return sum(c.pct_diff for c in cells) / len(cells)


@dataclass
class GridAccumulator:
    """Streaming builder for a :class:`Heatmap`.

    Feed one sample per completed run — in whatever order the executor
    streams them — and :meth:`build` at any point.  Cells missing a
    side are simply left out of the built heatmap (they render as
    ``-``), so a partial grid mid-sweep builds cleanly; a finished
    sweep fills every cell.  Accumulators ``merge`` across workers.
    """

    title: str
    row_labels: List[str]
    col_labels: List[str]
    treatment: str = "QUIC"
    baseline: str = "TCP"
    pairs: Dict[Tuple[str, str], SamplePair] = field(default_factory=dict)

    def pair(self, row: str, col: str) -> SamplePair:
        if row not in self.row_labels or col not in self.col_labels:
            raise KeyError(f"cell ({row!r}, {col!r}) outside the grid")
        key = (row, col)
        found = self.pairs.get(key)
        if found is None:
            found = self.pairs[key] = SamplePair(
                treatment_name=self.treatment, baseline_name=self.baseline)
        return found

    def add(self, row: str, col: str, side: str, round_index: int,
            value: float) -> None:
        self.pair(row, col).add(side, round_index, value)

    def merge(self, other: "GridAccumulator") -> None:
        for (row, col), pair in other.pairs.items():
            self.pair(row, col).merge(pair)

    def build(self) -> Heatmap:
        heatmap = Heatmap(self.title, row_labels=list(self.row_labels),
                          col_labels=list(self.col_labels),
                          treatment=self.treatment, baseline=self.baseline)
        for (row, col), pair in self.pairs.items():
            treatment_count, baseline_count = pair.counts
            if treatment_count and baseline_count:
                heatmap.put(row, col, pair.comparison(f"{row} / {col}"))
        return heatmap

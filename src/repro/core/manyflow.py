"""The ``manyflow`` scenario family: ~1000 mixed QUIC/TCP flows on one link.

The paper's fairness experiments (Tab. 4) pit a handful of bulk
connections against each other; the post-IMC literature (Wolsing et
al., Rüth et al. — see PAPERS.md) evaluates links carrying hundreds to
thousands of concurrent flows under modern AQM.  This module provides
that regime as a first-class, store-addressable workload:

* :class:`ManyflowConfig` — a frozen description of the traffic mix:
  flow count, seeded Poisson arrival process, QUIC/TCP split,
  heavy-tailed (lognormal) page sizes with a uniform video tail, the
  AQM discipline, the CC kernel (``cc`` ∈ reno/cubic/bbr, see
  :mod:`repro.transport.cc.kernels`), and the simulated-time cap.  It rides inside
  :class:`~repro.core.executor.RunRequest`, so runs are content
  addressed, cached, executed by ``iter_runs`` and streamed into the
  store exactly like page-load cells.
* :func:`build_flows` — the deterministic ``(config, seed) → schedule``
  expansion.  It is a pure function of its arguments, which is what
  makes arrival schedules identical across ``--jobs`` counts and
  serial/pool/fabric execution (tested in ``tests/test_determinism.py``).
* :class:`ManyflowEngine` — the flow-aggregate fast path: a
  :class:`~repro.netem.fastlink.AggregateLink` (batched link delivery)
  plus a :class:`~repro.transport.flowtable.FlowTable` (array-backed
  per-flow state).  The engine drains its internal work items —
  transmission completions, deliveries, acks — in merged logical-time
  order from a *single* heap wakeup per batch; ``batch_quantum=0``
  degenerates to one wakeup per item (the per-packet scheduling path)
  and produces bit-identical results, which is the fixed-seed identity
  contract gated by ``scripts/bench_diff.py --kind manyflow``.
* :func:`execute_manyflow` — the :class:`RunRecord`-producing runner
  the executor dispatches to; per-flow PLT percentiles and the Jain
  fairness index land in ``record.metrics`` and flow through
  ``StreamAggregator`` / ``report --from-store`` untouched.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Any, List, Optional, Sequence, Tuple

from ..http.objects import WebObject, WebPage
from ..netem.fastlink import AggPacket, AggregateLink
from ..netem.packet import DEFAULT_MSS, HEADER_BYTES
from ..netem.profiles import Scenario
from ..netem.queues import AQM_NAMES, make_queue
from ..netem.sim import Simulator
from ..netem.topology import _run_rtt_factor
from ..transport.cc.kernels import KERNEL_NAMES
from ..transport.flowtable import (
    FlowTable,
    PROTO_QUIC,
    PROTO_TCP,
    STATE_ACTIVE,
    STATE_DONE,
)

__all__ = [
    "ManyflowConfig",
    "ManyflowEngine",
    "build_flows",
    "execute_manyflow",
    "manyflow_page",
    "manyflow_requests",
    "manyflow_scenario",
]

#: Default engine batching horizon, seconds of logical time serviced per
#: heap wakeup.  0 means one wakeup per internal item (per-packet mode).
DEFAULT_BATCH_QUANTUM = 0.004

#: RTO / housekeeping tick period, seconds.
TICK = 0.05

_INF = float("inf")


@dataclass(frozen=True)
class ManyflowConfig:
    """The traffic mix of one many-flow run (content-addressed).

    Sizes follow the web's heavy tail: most flows draw a lognormal
    "page" size around ``page_kb_median``; a ``video_share`` fraction
    instead draws a uniform multi-megabyte "video segment".  Arrivals
    are Poisson at ``arrival_rate`` flows/sec; each flow is TCP with
    probability ``tcp_share``, else QUIC.
    """

    flows: int = 1000
    #: Poisson arrival intensity, flows/sec.  The default offers ~80
    #: Mbps of mean load (≈0.8 utilisation of the canonical 100 Mbps
    #: bottleneck) — congested but not collapse.
    arrival_rate: float = 50.0
    tcp_share: float = 0.5
    page_kb_median: float = 64.0
    page_sigma: float = 1.0
    video_share: float = 0.05
    video_kb_min: float = 1024.0
    video_kb_max: float = 3072.0
    aqm: str = "droptail"
    duration: float = 300.0
    #: Congestion-control kernel driving every flow (the CC axis):
    #: ``reno`` (the historical AIMD fast path), ``cubic`` or ``bbr``
    #: from :mod:`repro.transport.cc.kernels`.
    cc: str = "reno"

    def __post_init__(self) -> None:
        if self.flows <= 0:
            raise ValueError("flows must be positive")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if not 0.0 <= self.tcp_share <= 1.0:
            raise ValueError("tcp_share must be in [0, 1]")
        if not 0.0 <= self.video_share <= 1.0:
            raise ValueError("video_share must be in [0, 1]")
        if self.page_kb_median <= 0 or self.page_sigma < 0:
            raise ValueError("page size parameters must be positive")
        if not 0 < self.video_kb_min <= self.video_kb_max:
            raise ValueError("need 0 < video_kb_min <= video_kb_max")
        normalised = self.aqm.lower().replace("-", "_")
        if normalised not in AQM_NAMES:
            raise ValueError(
                f"unknown AQM {self.aqm!r}; expected one of "
                f"{', '.join(AQM_NAMES)}")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.cc not in KERNEL_NAMES:
            raise ValueError(
                f"unknown CC kernel {self.cc!r}; expected one of "
                f"{', '.join(KERNEL_NAMES)}")

    @property
    def label(self) -> str:
        base = f"manyflow-{self.flows}f-{self.aqm}"
        # The historical label is preserved for the default kernel so
        # pre-existing store cells keep their addresses.
        return base if self.cc == "reno" else f"{base}-{self.cc}"

    def with_(self, **changes: Any) -> "ManyflowConfig":
        return replace(self, **changes)


def build_flows(config: ManyflowConfig, seed: int
                ) -> Tuple[Tuple[float, ...], Tuple[int, ...],
                           Tuple[int, ...]]:
    """Expand ``(config, seed)`` into ``(arrivals, sizes, protos)``.

    A pure function: the same arguments yield the same schedule in any
    process, which is what keeps manyflow runs identical across worker
    counts and execution backends.  Draw order per flow is fixed
    (arrival gap, size class, size) so adding fields later cannot
    silently reshuffle existing schedules.  The QUIC/TCP split is not a
    draw at all but deterministic striping (Bresenham over
    ``tcp_share``), so even a 2-flow Tab. 4-style cell gets the exact
    mix.
    """
    rng = random.Random((seed * 2_654_435_761) ^ 0xF10A5)
    arrivals: List[float] = []
    sizes: List[int] = []
    protos: List[int] = []
    clock = 0.0
    mu = math.log(config.page_kb_median * 1024.0)
    for i in range(config.flows):
        clock += rng.expovariate(config.arrival_rate)
        arrivals.append(clock)
        tcp = (math.floor((i + 1) * config.tcp_share)
               > math.floor(i * config.tcp_share))
        protos.append(PROTO_TCP if tcp else PROTO_QUIC)
        if rng.random() < config.video_share:
            size = rng.uniform(config.video_kb_min * 1024.0,
                               config.video_kb_max * 1024.0)
        else:
            size = rng.lognormvariate(mu, config.page_sigma)
        sizes.append(max(int(size), 1400))
    return tuple(arrivals), tuple(sizes), tuple(protos)


def manyflow_scenario(rate_mbps: float = 100.0, rtt: float = 0.040,
                      loss_rate: float = 0.0,
                      queue_bytes: Optional[int] = None) -> Scenario:
    """The canonical many-flow bottleneck: a fat shared access link."""
    name = f"manyflow-{rate_mbps:g}Mbps-{rtt * 1000:g}ms"
    if loss_rate:
        name += f"-{loss_rate:.2%}loss"
    return Scenario(name=name, rate_mbps=rate_mbps, rtt=rtt,
                    loss_rate=loss_rate, queue_bytes=queue_bytes)


def manyflow_page(config: ManyflowConfig) -> WebPage:
    """The placeholder workload naming a manyflow cell.

    Flow sizes are drawn inside the engine from ``(config, seed)``; the
    page object exists so manyflow records share the ``(scenario, page,
    protocol)`` cell addressing of every other store row.
    """
    return WebPage(config.label, (WebObject(0, 1),))


class ManyflowEngine:
    """Flow-aggregate simulation of one manyflow run.

    The transport model is Reno-shaped AIMD with per-protocol
    parameters (see :mod:`repro.transport.flowtable`): receiver-side
    NACKs after ``nack_threshold`` packets past a hole, sender RTO via
    a coarse housekeeping tick, RFC 6298 RTT estimation from exact
    logical timestamps.  The data direction shares one
    :class:`AggregateLink`; the ack path is an unshaped constant delay
    (acks are 40-byte and the reverse direction is unloaded in this
    family).

    ``batch_quantum`` only changes *when the engine wakes up*, never
    what it computes: all arithmetic uses the items' logical
    timestamps, and items are processed in merged logical-time order
    with a fixed tie-break (link advance, then delivery, then ack).
    """

    def __init__(self, scenario: Scenario, config: ManyflowConfig,
                 seed: int = 0, *,
                 batch_quantum: float = DEFAULT_BATCH_QUANTUM,
                 mss: int = DEFAULT_MSS) -> None:
        if scenario.jitter or scenario.reorder_prob:
            raise ValueError(
                "the manyflow fast path supports loss but not "
                "jitter/reordering; use the classic per-packet link")
        if batch_quantum < 0:
            raise ValueError("batch_quantum must be >= 0")
        self.scenario = scenario
        self.config = config
        self.seed = seed
        self.batch_quantum = batch_quantum
        self.mss = mss
        self.sim = Simulator()
        self.table = FlowTable(config.flows, mss, cc=config.cc)

        arrivals, sizes, protos = build_flows(config, seed)
        for i in range(config.flows):
            self.table.define_flow(i, arrivals[i], sizes[i], protos[i])

        rtt = scenario.total_rtt * _run_rtt_factor(scenario, seed)
        self.up_delay = rtt / 2.0
        queue = make_queue(
            config.aqm, scenario.effective_queue_bytes(),
            rng=random.Random((seed * 5_915_587_277) ^ 0xAED))
        queue.on_drop = self._count_queue_drop
        self.down = AggregateLink(
            scenario.rate_bps, rtt / 2.0, queue,
            loss_rate=scenario.loss_rate,
            loss_rng=random.Random((seed * 1_500_450_271) ^ 0x10E55))
        #: Acks in flight back to the sender: ``(t, flow, idx, nacks)``,
        #: monotone in t (deliveries are processed in time order and the
        #: ack delay is constant).
        self.acks: List[Tuple[float, int, int,
                              Optional[Tuple[int, ...]]]] = []
        self._ack_head = 0  # deque-without-deque: index into self.acks
        self.queue_drops = 0
        self.delivered_packets = 0
        self.acks_processed = 0
        self.done = 0
        self.bytes_acked = [0, 0]  # by proto
        self._active: List[int] = []
        self._next_wakeup = _INF
        self._finished = False
        for i in range(config.flows):
            self.sim.post_at(arrivals[i], self._arrival, i)
        self.sim.post_at(TICK, self._tick)

    # ------------------------------------------------------------------
    def _count_queue_drop(self, packet: AggPacket) -> None:
        self.queue_drops += 1

    # -- the merged drain ----------------------------------------------
    def _drain(self, now: float) -> None:
        """Process every internal item with logical time <= ``now``.

        Fixed priority at equal timestamps: link advance, then
        delivery, then ack — the same rule in batched and per-packet
        mode, so both modes process the identical sequence.
        """
        down = self.down
        deliveries = down.deliveries
        acks = self.acks
        while True:
            tc = down._free_at if down._busy else _INF
            td = deliveries[0][0] if deliveries else _INF
            ta = acks[self._ack_head][0] if self._ack_head < len(acks) \
                else _INF
            if tc <= td and tc <= ta:
                if tc > now:
                    break
                down.advance()
                continue
            if td <= ta:
                if td > now:
                    break
                t, packet = down.pop_delivery()
                self.delivered_packets += 1
                self._on_deliver(t, packet)
                continue
            if ta > now:
                break
            item = acks[self._ack_head]
            self._ack_head += 1
            if self._ack_head > 4096 and self._ack_head * 2 > len(acks):
                del acks[:self._ack_head]
                self._ack_head = 0
            self._on_ack(item)

    def _next_deadline(self) -> float:
        down = self.down
        tc = down._free_at if down._busy else _INF
        td = down.deliveries[0][0] if down.deliveries else _INF
        ta = (self.acks[self._ack_head][0]
              if self._ack_head < len(self.acks) else _INF)
        return min(tc, td, ta)

    def _arm(self) -> None:
        deadline = self._next_deadline()
        if deadline == _INF:
            return
        target = deadline + self.batch_quantum
        if self._next_wakeup <= target:
            return  # an earlier (or equal) wakeup already covers it
        self._next_wakeup = target
        self.sim.post_at(target, self._pump)

    def _pump(self) -> None:
        self._next_wakeup = _INF
        self._drain(self.sim.now)
        self._arm()

    # -- entry points (heap events) ------------------------------------
    def _arrival(self, flow: int) -> None:
        now = self.sim.now
        self._drain(now)
        self.table.activate(flow, now)
        self._active.append(flow)
        self._try_send(flow, now)
        self._arm()

    def _tick(self) -> None:
        now = self.sim.now
        self._drain(now)
        table = self.table
        state = table.state
        active = [f for f in self._active if state[f] == STATE_ACTIVE]
        self._active = active
        for f in active:
            if table.inflight[f] <= 0:
                continue
            if now - table.last_progress[f] > table.rto(f):
                self._timeout(f, now)
        if self.done < self.config.flows:
            self.sim.post_at(now + TICK, self._tick)
        self._arm()

    # -- transport logic -----------------------------------------------
    def _try_send(self, flow: int, now: float) -> None:
        table = self.table
        window = int(table.cwnd[flow])
        inflight = table.inflight[flow]
        if inflight >= window:
            return
        retx_queue = table.retx_queue[flow]
        total = table.total_pkts[flow]
        nxt = table.next_idx[flow]
        size = table.size_bytes[flow]
        mss = self.mss
        sent_time = table.sent_time[flow]
        pending = table.pending[flow]
        retx_flag = table.retx_flag[flow]
        down = self.down
        while inflight < window and (retx_queue or nxt < total):
            if retx_queue:
                idx = retx_queue.pop(0)
                retx = True
                retx_flag[idx] = 1
                table.retx_sent[flow] += 1
            else:
                idx = nxt
                nxt += 1
                retx = False
            payload = size - idx * mss
            if payload > mss:
                payload = mss
            sent_time[idx] = now
            pending[idx] = 1
            inflight += 1
            down.offer(now, AggPacket(flow, idx, payload + HEADER_BYTES,
                                      retx))
        table.inflight[flow] = inflight
        table.next_idx[flow] = nxt

    def _on_deliver(self, t: float, packet: AggPacket) -> None:
        table = self.table
        flow = packet.flow_id
        rx_set = table.rx_set[flow]
        if rx_set is None:  # stale duplicate after completion
            return
        idx = packet.idx
        rx_next = table.rx_next[flow]
        first_time = False
        if idx == rx_next:
            first_time = True
            rx_next += 1
            while rx_next in rx_set:
                rx_set.remove(rx_next)
                rx_next += 1
            table.rx_next[flow] = rx_next
        elif idx > rx_next and idx not in rx_set:
            first_time = True
            rx_set.add(idx)
        if first_time:
            table.rx_received[flow] += 1
        if idx > table.rx_highest[flow]:
            table.rx_highest[flow] = idx
        nacks: Optional[Tuple[int, ...]] = None
        limit = table.rx_highest[flow] - table.params(flow).nack_threshold
        if rx_set and limit >= rx_next:
            scan = table.rx_scan[flow]
            if scan < rx_next:
                scan = rx_next
            if scan <= limit:
                nacked = table.rx_nacked[flow]
                missing: List[int] = []
                while scan <= limit:
                    if scan not in rx_set and scan not in nacked:
                        nacked.add(scan)
                        missing.append(scan)
                    scan += 1
                table.rx_scan[flow] = scan
                if missing:
                    nacks = tuple(missing)
        self.acks.append((t + self.up_delay, flow, idx, nacks))

    def _on_ack(self, item: Tuple[float, int, int,
                                  Optional[Tuple[int, ...]]]) -> None:
        t, flow, idx, nacks = item
        table = self.table
        if table.state[flow] != STATE_ACTIVE:
            return  # stale ack after completion
        self.acks_processed += 1
        table.last_progress[flow] = t
        acked = table.acked[flow]
        pending = table.pending[flow]
        newly = 0
        if not acked[idx]:
            acked[idx] = 1
            table.acked_pkts[flow] += 1
            newly = 1
            if pending[idx]:
                pending[idx] = 0
                table.inflight[flow] -= 1
            if not table.retx_flag[flow][idx]:
                table.rtt_update(flow, t - table.sent_time[flow][idx], t)
            payload = table.size_bytes[flow] - idx * self.mss
            self.bytes_acked[table.proto[flow]] += (
                payload if payload < self.mss else self.mss)
        su = table.snd_una[flow]
        total = table.total_pkts[flow]
        while su < total and acked[su]:
            su += 1
        table.snd_una[flow] = su
        if nacks:
            retx_queue = table.retx_queue[flow]
            loss_event = False
            for m in nacks:
                if acked[m] or not pending[m]:
                    continue
                pending[m] = 0
                table.inflight[flow] -= 1
                table.lost_pkts[flow] += 1
                retx_queue.append(m)
                if m > table.recover_idx[flow]:
                    loss_event = True
            if loss_event:
                table.on_loss_event(flow, t)
        if table.acked_pkts[flow] == total:
            table.finish_flow(flow, t)
            self.done += 1
            return
        if newly:
            table.on_ack(flow, 1, t)
        self._try_send(flow, t)

    def _timeout(self, flow: int, now: float) -> None:
        """RTO: go-back recovery of the whole outstanding window.

        Everything sent-but-unacked is declared lost and requeued in
        order; the restart window (cwnd = 2) then clocks the
        retransmissions back out in slow start.  A spurious timeout is
        safe: late acks for the originals mark packets acked, and the
        duplicate retransmissions are ignored by the receiver.
        """
        table = self.table
        acked = table.acked[flow]
        pending = table.pending[flow]
        unacked = [j for j in range(table.snd_una[flow],
                                    table.next_idx[flow])
                   if not acked[j]]
        for j in unacked:
            pending[j] = 0
        table.lost_pkts[flow] += table.inflight[flow]
        table.inflight[flow] = 0
        table.retx_queue[flow] = unacked
        table.on_timeout(flow, now)
        table.last_progress[flow] = now
        self._try_send(flow, now)

    # ------------------------------------------------------------------
    def run(self) -> dict:
        """Run to completion (or the simulated-time cap); return metrics."""
        if self._finished:
            raise RuntimeError("ManyflowEngine.run() may only run once")
        self._finished = True
        self.sim.run(until=self.config.duration)
        # The cap may have interrupted mid-batch; the clock is final, so
        # drain anything already due before reading the tallies.
        self._drain(self.sim.now)
        return self._metrics()

    def _metrics(self) -> dict:
        table = self.table
        config = self.config
        plts: List[float] = []
        plts_by_proto: Tuple[List[float], List[float]] = ([], [])
        rates: List[float] = []
        for f in range(config.flows):
            if table.state[f] != STATE_DONE:
                continue
            plt = table.finish[f] - table.arrival[f]
            plts.append(plt)
            plts_by_proto[table.proto[f]].append(plt)
            rates.append(table.size_bytes[f] / plt)
        plts.sort()
        jain = _jain_index(rates)
        total_acked = self.bytes_acked[PROTO_QUIC] + self.bytes_acked[PROTO_TCP]
        queue = self.down.queue
        metrics = {
            "flows": float(config.flows),
            "flows_completed": float(len(plts)),
            "plt_p10": _percentile(plts, 0.10),
            "plt_p50": _percentile(plts, 0.50),
            "plt_p90": _percentile(plts, 0.90),
            "plt_p99": _percentile(plts, 0.99),
            "plt_quic_p50": _median(plts_by_proto[PROTO_QUIC]),
            "plt_tcp_p50": _median(plts_by_proto[PROTO_TCP]),
            "jain_index": jain,
            #: Median per-flow goodput (bytes/sec over each flow's
            #: lifetime) — the observable the analytical CC models of
            #: :mod:`repro.core.models` predict.
            "rate_p50": _median(rates),
            "quic_share": (self.bytes_acked[PROTO_QUIC] / total_acked
                           if total_acked else 0.0),
            "bytes_acked": float(total_acked),
            "packets_delivered": float(self.delivered_packets),
            "acks_processed": float(self.acks_processed),
            "tx_completions": float(self.down.tx_completions),
            "logical_events": float(self.down.tx_completions
                                    + self.delivered_packets
                                    + self.acks_processed),
            "heap_events": float(self.sim.events_processed),
            "queue_drops": float(self.queue_drops),
            "loss_drops": float(self.down.loss_drops),
            "codel_drops": float(getattr(queue, "codel_drops", 0)),
            "sim_time": self.sim.now,
        }
        return metrics


def _jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index (Σx)² / (n · Σx²); 1.0 is perfectly fair."""
    if not values:
        return 0.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 0.0
    return (total * total) / (len(values) * squares)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def _median(values: Sequence[float]) -> float:
    return _percentile(sorted(values), 0.50)


# ----------------------------------------------------------------------
# executor integration
# ----------------------------------------------------------------------
def execute_manyflow(request: "Any") -> "Any":
    """Run one manyflow :class:`RunRequest` (dispatched by
    :func:`repro.core.executor.execute_request`)."""
    from .executor import RunFailure, RunRecord  # avoid import cycle

    config = request.manyflow
    engine = ManyflowEngine(request.scenario, config, request.seed)
    metrics = engine.run()
    completed = int(metrics["flows_completed"])
    if completed < config.flows:
        # Deterministic (simulated-time) shortfall: cacheable, like an
        # incomplete page load.
        return RunRecord(
            request=request, plt=None, complete=False, metrics=metrics,
            failure=RunFailure(
                "incomplete",
                f"{config.flows - completed} of {config.flows} flows "
                f"still running after {config.duration:g}s simulated"))
    return RunRecord(request=request, plt=metrics["plt_p50"],
                     complete=True, metrics=metrics)


def manyflow_requests(config: ManyflowConfig,
                      scenario: Optional[Scenario] = None,
                      seeds: Sequence[int] = (0,)) -> List["Any"]:
    """Build the :class:`RunRequest` list for a manyflow sweep.

    The request's ``protocol`` slot is pinned to ``quic`` purely for
    cell addressing — a manyflow run is intrinsically mixed; the split
    lives in ``config.tcp_share``.
    """
    from .executor import ProtocolSpec, RunRequest  # avoid import cycle

    if scenario is None:
        scenario = manyflow_scenario()
    page = manyflow_page(config)
    spec = ProtocolSpec.quic()
    return [RunRequest(scenario=scenario, page=page, protocol=spec,
                       seed=seed, manyflow=config,
                       timeout=config.duration)
            for seed in seeds]

"""Statistical machinery: Welch's t-test and summary statistics.

The paper's methodological stance (Sec. 3.3/5.2): report a QUIC-vs-TCP
difference only when Welch's two-sample t-test rejects equal means at
p < 0.01; otherwise the cell is "white" (inconclusive).  This module
implements the test from scratch — the t statistic, Welch–Satterthwaite
degrees of freedom, and a two-sided p-value via the regularised
incomplete beta function — and is cross-checked against scipy in the
test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: The paper's significance threshold.
ALPHA = 0.01


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def sample_variance(values: Sequence[float]) -> float:
    """Unbiased (n-1) sample variance; 0.0 for fewer than two values."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (n - 1)


def sample_std(values: Sequence[float]) -> float:
    return math.sqrt(sample_variance(values))


def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _betacf(a: float, b: float, x: float, max_iter: int = 300,
            eps: float = 3e-12) -> float:
    """Continued fraction for the incomplete beta function (NR style)."""
    tiny = 1e-30
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            return h
    return h  # converged well enough for p-value purposes


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b) for a, b > 0 and x in [0, 1]."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        a * math.log(x) + b * math.log1p(-x) - _log_beta(a, b)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_sf(t: float, df: float) -> float:
    """Survival function P(T > t) of Student's t with ``df`` degrees."""
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    x = df / (df + t * t)
    p = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x)
    return p if t >= 0 else 1.0 - p


@dataclass(frozen=True)
class TTestResult:
    """Outcome of Welch's t-test."""

    t_statistic: float
    degrees_of_freedom: float
    p_value: float

    def significant(self, alpha: float = ALPHA) -> bool:
        return self.p_value < alpha


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> TTestResult:
    """Two-sided Welch's t-test for equal means of two samples.

    Degenerate cases (the emulated environment can be nearly
    deterministic): with both variances ~0, the test reports p=0 for
    different means and p=1 for equal means; with one sample of size < 2
    the result is inconclusive (p=1).
    """
    na, nb = len(a), len(b)
    if na < 2 or nb < 2:
        return TTestResult(float("nan"), float("nan"), 1.0)
    ma, mb = mean(a), mean(b)
    va, vb = sample_variance(a), sample_variance(b)
    sa = va / na
    sb = vb / nb
    if sa + sb <= 0.0:
        identical = math.isclose(ma, mb, rel_tol=1e-12, abs_tol=1e-12)
        return TTestResult(0.0 if identical else math.inf,
                           float(na + nb - 2),
                           1.0 if identical else 0.0)
    t = (ma - mb) / math.sqrt(sa + sb)
    df = (sa + sb) ** 2 / (
        sa * sa / (na - 1) + sb * sb / (nb - 1)
    )
    p = 2.0 * student_t_sf(abs(t), df)
    p = min(max(p, 0.0), 1.0)
    return TTestResult(t, df, p)


def percent_difference(baseline: Sequence[float],
                       treatment: Sequence[float]) -> float:
    """The paper's heatmap metric: percent PLT difference of QUIC over TCP.

    ``baseline`` is TCP, ``treatment`` is QUIC; positive values mean the
    treatment is *faster* (smaller PLT), matching the red cells of
    Figs. 6-8.
    """
    mb = mean(baseline)
    if mb == 0:
        raise ValueError("baseline mean is zero")
    return (mb - mean(treatment)) / mb * 100.0

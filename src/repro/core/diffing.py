"""State-machine differencing for longitudinal analysis (paper Sec. 5.4).

The paper's approach is explicitly longitudinal: re-instrument each new
QUIC version ("about 30 minutes" per version), re-infer the state
machine, and ask *what changed*.  This module closes that loop: given two
inferred :class:`~repro.core.statemachine.StateMachineModel` objects —
from two protocol versions, two devices, or two network environments —
:func:`diff_models` reports

* states added / removed,
* transitions added / removed,
* transition-probability shifts above a threshold,
* dwell-time shifts (the Fig. 13 quantity),

and renders a human-readable changelog.  The Sec. 5.4 stability claim
("versions 25–36 behave identically") becomes an empty diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from .statemachine import StateMachineModel


@dataclass
class ModelDiff:
    """The structured difference between two inferred state machines."""

    label_a: str
    label_b: str
    states_added: Set[str] = field(default_factory=set)
    states_removed: Set[str] = field(default_factory=set)
    transitions_added: Set[Tuple[str, str]] = field(default_factory=set)
    transitions_removed: Set[Tuple[str, str]] = field(default_factory=set)
    #: (a, b) -> (prob_in_a, prob_in_b) for shifts above the threshold.
    probability_shifts: Dict[Tuple[str, str], Tuple[float, float]] = field(
        default_factory=dict)
    #: state -> (fraction_in_a, fraction_in_b) for dwell shifts.
    dwell_shifts: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when the two machines are behaviourally identical."""
        return not (self.states_added or self.states_removed
                    or self.transitions_added or self.transitions_removed
                    or self.probability_shifts or self.dwell_shifts)

    def render(self) -> str:
        if self.is_empty:
            return (f"{self.label_a} -> {self.label_b}: no behavioural "
                    f"change (state machines identical)")
        lines = [f"state-machine diff: {self.label_a} -> {self.label_b}"]
        for state in sorted(self.states_added):
            lines.append(f"  + state {state}")
        for state in sorted(self.states_removed):
            lines.append(f"  - state {state}")
        for a, b in sorted(self.transitions_added):
            lines.append(f"  + transition {a} -> {b}")
        for a, b in sorted(self.transitions_removed):
            lines.append(f"  - transition {a} -> {b}")
        for (a, b), (pa, pb) in sorted(self.probability_shifts.items()):
            lines.append(f"  ~ P({a} -> {b}): {pa:.2f} -> {pb:.2f}")
        for state, (fa, fb) in sorted(self.dwell_shifts.items()):
            lines.append(
                f"  ~ dwell {state}: {fa * 100:.1f}% -> {fb * 100:.1f}%")
        return "\n".join(lines)


def diff_models(model_a: StateMachineModel, model_b: StateMachineModel,
                *, label_a: str = "A", label_b: str = "B",
                probability_threshold: float = 0.15,
                dwell_threshold: float = 0.10) -> ModelDiff:
    """Compare two inferred machines; small probability/dwell wobble
    below the thresholds is treated as measurement noise."""
    diff = ModelDiff(label_a=label_a, label_b=label_b)
    diff.states_added = model_b.states - model_a.states
    diff.states_removed = model_a.states - model_b.states
    edges_a = set(model_a.transition_counts)
    edges_b = set(model_b.transition_counts)
    diff.transitions_added = edges_b - edges_a
    diff.transitions_removed = edges_a - edges_b
    probs_a = model_a.transition_probabilities()
    probs_b = model_b.transition_probabilities()
    for edge in edges_a & edges_b:
        pa, pb = probs_a[edge], probs_b[edge]
        if abs(pa - pb) >= probability_threshold:
            diff.probability_shifts[edge] = (pa, pb)
    dwell_a = model_a.dwell_fractions()
    dwell_b = model_b.dwell_fractions()
    for state in set(dwell_a) | set(dwell_b):
        fa = dwell_a.get(state, 0.0)
        fb = dwell_b.get(state, 0.0)
        if abs(fa - fb) >= dwell_threshold:
            diff.dwell_shifts[state] = (fa, fb)
    return diff


def version_stability_report(models: Dict[int, StateMachineModel],
                             baseline: Optional[int] = None) -> str:
    """Sec. 5.4 as a report: diff every version's machine vs a baseline."""
    if not models:
        raise ValueError("no models supplied")
    versions = sorted(models)
    base = baseline if baseline is not None else versions[0]
    if base not in models:
        raise KeyError(f"baseline version {base} not in models")
    lines = [f"state-machine stability vs QUIC {base}:"]
    for version in versions:
        if version == base:
            continue
        diff = diff_models(models[base], models[version],
                           label_a=f"QUIC {base}", label_b=f"QUIC {version}")
        status = "identical" if diff.is_empty else "CHANGED"
        lines.append(f"  QUIC {version}: {status}")
        if not diff.is_empty:
            for line in diff.render().splitlines()[1:]:
                lines.append("  " + line)
    return "\n".join(lines)

"""Reproduction report generation.

Collates the reproduced tables into one Markdown report — the artefact
a reproduction study would publish next to EXPERIMENTS.md.  Two
sources feed it:

* the committed text summaries under ``benchmarks/results/`` (the
  classic path, keyed by :data:`EXPERIMENT_INDEX`), and
* any results store (``repro report --from-store PATH``), whose cached
  :class:`~repro.core.executor.RunRecord` rows are aggregated through
  :mod:`repro.core.aggregate` — so a warm cache is reportable without
  re-running a single benchmark.

Both paths share the record-aggregation module, so for an identical
result set they embed identical tables.  Exposed as
``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .aggregate import (
    render_cell_table,
    store_aggregator,
    write_store_results,
)

#: Experiment index: result-file stem -> (paper artefact, one-line claim).
EXPERIMENT_INDEX: Dict[str, Tuple[str, str]] = {
    "fig02_calibration": ("Fig. 2", "GAE wait-time variability; public build ~2x slower"),
    "fig02_macw_search": ("Fig. 2", "grey-box MACW calibration selects 430"),
    "fig03a_cubic_state_machine": ("Fig. 3a", "inferred QUIC Cubic state machine"),
    "fig03b_bbr_state_machine": ("Fig. 3b", "inferred BBR state machine"),
    "tab04_fairness": ("Table 4 / Fig. 4", "QUIC takes far more than its fair share"),
    "fig05_cwnd_timeline": ("Fig. 5", "QUIC sustains the larger cwnd when competing"),
    "fig06a_plt_sizes": ("Fig. 6a", "QUIC wins across rates and object sizes"),
    "fig06b_plt_counts": ("Fig. 6b", "many small objects collapse QUIC's edge"),
    "fig07_zero_rtt": ("Fig. 7", "0-RTT gain fades with object size"),
    "fig08a_sizes_loss1pct": ("Fig. 8a", "QUIC wins under 1% loss"),
    "fig08b_sizes_delay50ms": ("Fig. 8b", "QUIC wins under +50 ms delay"),
    "fig08c_sizes_delay100ms": ("Fig. 8c", "QUIC wins under +100 ms delay"),
    "fig08d_counts_loss1pct": ("Fig. 8d", "count grid under loss"),
    "fig08e_counts_delay50ms": ("Fig. 8e", "count grid under +50 ms"),
    "fig08f_counts_delay100ms": ("Fig. 8f", "count grid under +100 ms"),
    "fig09_cwnd_loss": ("Fig. 9", "QUIC's larger window under 1% loss"),
    "fig10_reordering": ("Fig. 10", "NACK threshold vs reordering"),
    "fig11_variable_bw": ("Fig. 11", "QUIC tracks fluctuating bandwidth"),
    "fig12_mobile": ("Fig. 12", "mobile devices erode QUIC's gains"),
    "fig13_state_dwell": ("Fig. 13", "ApplicationLimited dwell on phones"),
    "fig14_cellular": ("Fig. 14 / Table 5", "emulated cellular networks"),
    "fig15_macw": ("Fig. 15", "MACW 2000 vs 430"),
    "tab06_video_qoe": ("Table 6", "video QoE per quality"),
    "fig17_tcp_proxy": ("Fig. 17", "QUIC vs proxied TCP"),
    "fig18_quic_proxy": ("Fig. 18", "QUIC direct vs proxied"),
    "sec54_versions": ("Sec. 5.4", "version-stable performance"),
    "sec54_fsm_stability": ("Sec. 5.4", "version-stable state machines"),
}


@dataclass
class ReportSection:
    stem: str
    artefact: str
    claim: str
    body: str


def collect_sections(results_dir: Path) -> List[ReportSection]:
    """Load every known result file present in ``results_dir``."""
    sections: List[ReportSection] = []
    for stem, (artefact, claim) in EXPERIMENT_INDEX.items():
        path = results_dir / f"{stem}.txt"
        if not path.exists():
            continue
        sections.append(ReportSection(stem, artefact, claim,
                                      path.read_text().rstrip()))
    return sections


def missing_experiments(results_dir: Path) -> List[str]:
    """Index entries with no result file yet (bench not run)."""
    return [stem for stem in EXPERIMENT_INDEX
            if not (results_dir / f"{stem}.txt").exists()]


def extra_results(results_dir: Path) -> List[str]:
    """Result files outside the core index (ablations, extensions)."""
    known = set(EXPERIMENT_INDEX)
    return sorted(
        path.stem for path in results_dir.glob("*.txt")
        if path.stem not in known
    )


def build_report(results_dir: Path, title: str = "Reproduction report") -> str:
    """Render the Markdown report."""
    sections = collect_sections(results_dir)
    lines = [f"# {title}", ""]
    if not sections:
        lines.append("*(no results yet — run `pytest benchmarks/ "
                     "--benchmark-only` first)*")
        return "\n".join(lines)
    lines.append("| artefact | claim | reproduced |")
    lines.append("|---|---|---|")
    for section in sections:
        lines.append(f"| {section.artefact} | {section.claim} | yes |")
    for stem in missing_experiments(results_dir):
        artefact, claim = EXPERIMENT_INDEX[stem]
        lines.append(f"| {artefact} | {claim} | *not run* |")
    lines.append("")
    for section in sections:
        lines.append(f"## {section.artefact} — {section.claim}")
        lines.append("")
        lines.append("```")
        lines.append(section.body)
        lines.append("```")
        lines.append("")
    extras = extra_results(results_dir)
    if extras:
        lines.append("## Ablations & extensions")
        lines.append("")
        for stem in extras:
            lines.append(f"### {stem}")
            lines.append("")
            lines.append("```")
            lines.append((results_dir / f"{stem}.txt").read_text().rstrip())
            lines.append("```")
            lines.append("")
    return "\n".join(lines)


def build_store_report(store: object,
                       title: str = "Reproduction report", *,
                       live: bool = False) -> str:
    """Render the Markdown report straight from a results store.

    The table body comes from the same incremental aggregation
    (:func:`~repro.core.aggregate.store_aggregator`) that
    :func:`~repro.core.aggregate.write_store_results` feeds the
    results-file path, so the two paths stay byte-identical for the
    same records — and the store is streamed, never materialised.

    ``live`` renders a store a sweep is *still appending to*: the grid
    is expected to be partial, so instead of presenting it as final the
    report labels the cells that are still short of the deepest cell's
    run count.  Without ``live`` the output is unchanged from the
    classic path.
    """
    aggregator = store_aggregator(store)
    cells = aggregator.aggregates()
    total = aggregator.total_runs
    lines = [f"# {title}", ""]
    path = getattr(store, "path", "results store")
    if not cells:
        lines.append(f"*(store at `{path}` holds no decodable records — "
                     "run a sweep with `--cache` first)*")
        if live:
            lines.append("")
            lines.append("*(live view: the sweep may not have produced "
                         "its first record yet)*")
        return "\n".join(lines)
    lines.append(f"Collated from the results store at `{path}`: "
                 f"{total} cached run(s) across {len(cells)} "
                 f"cell(s), no re-execution.")
    if live:
        deepest = max(cell.runs for cell in cells)
        partial = [cell for cell in cells if cell.runs < deepest]
        lines.append("")
        lines.append("**Live view** — rendered mid-sweep; cells may still "
                     "be filling and medians will shift as runs land.")
        if partial:
            lines.append(f"Partial cells (below the deepest cell's "
                         f"{deepest} run(s)): {len(partial)} of "
                         f"{len(cells)}")
            for cell in partial:
                lines.append(f"  - {cell.scenario} / {cell.page} / "
                             f"{cell.protocol}: {cell.runs}/{deepest} "
                             f"run(s)")
        else:
            lines.append(f"All {len(cells)} cell(s) currently hold "
                         f"{deepest} run(s) — the grid looks complete "
                         "from here.")
    lines.append("")
    lines.append("## Store summary")
    lines.append("")
    lines.append("```")
    lines.append(render_cell_table(cells))
    lines.append("```")
    lines.append("")
    fairness = aggregator.render_fairness()
    if fairness is not None:
        lines.append("## Fairness (Jain index, Tab. 4 generalised "
                     "across AQM)")
        lines.append("")
        lines.append("Per-run Jain index over completed flows' mean "
                     "rates; QUIC share is the QUIC fraction of acked "
                     "bytes (manyflow records only).")
        lines.append("")
        lines.append("```")
        lines.append(fairness)
        lines.append("```")
        lines.append("")
    model_fit = aggregator.render_model_fit()
    if model_fit is not None:
        lines.append("## Model fit (analytical CC oracles)")
        lines.append("")
        lines.append("Median per-flow goodput from homogeneous manyflow "
                     "cells against the closed-form steady-state models "
                     "(Mathis/AIMD, RFC 8312 Cubic, BDP-bound BBR) — "
                     "`repro validate` gates on this table.")
        lines.append("")
        lines.append(model_fit)
        lines.append("")
    dwell = aggregator.render_dwell()
    if dwell is not None:
        lines.append("## Inferred CC states (Fig. 3 / Fig. 13 dwell)")
        lines.append("")
        lines.append("Mean per-state dwell fractions from traced runs "
                     "(`trace=True` requests export `dwell:<state>` "
                     "metrics) — the store-backed form of the "
                     "state-machine artefact.")
        lines.append("")
        lines.append("```")
        lines.append(dwell)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


__all__ = [
    "EXPERIMENT_INDEX",
    "ReportSection",
    "build_report",
    "build_store_report",
    "collect_sections",
    "extra_results",
    "missing_experiments",
    "write_store_results",
]

"""Record selection and aggregation shared by the report paths.

``REPORT.md`` can be collated from two places: the committed
``benchmarks/results/*.txt`` summaries, or directly from a results
store (any :class:`~repro.store.backend.StoreBackend`) holding cached
:class:`~repro.core.executor.RunRecord` rows.  Both paths meet here:
this module turns a bag of records into deterministic per-cell
aggregates (scenario x page x protocol) and renders them as the one
table text both ``repro report --from-store`` and the results-file
path embed — so a warm cache reports identically to a completed
benchmark run without re-executing anything.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .executor import RunRecord

#: A cell identity: (scenario name, page name, protocol name).
CellKey = Tuple[str, str, str]


@dataclass(frozen=True)
class CellAggregate:
    """Summary statistics for one (scenario, page, protocol) cell."""

    scenario: str
    page: str
    protocol: str
    runs: int
    ok: int
    median_plt: Optional[float]
    mean_plt: Optional[float]

    @property
    def key(self) -> CellKey:
        return (self.scenario, self.page, self.protocol)


def select_records(store: object, *,
                   fingerprints: Optional[Iterable[str]] = None
                   ) -> List[RunRecord]:
    """Every decodable record in ``store``, oldest first.

    ``fingerprints`` restricts the selection to rows stamped with one of
    the given code fingerprints (e.g. only results the current code
    could still produce).  Undecodable rows are skipped, not fatal — a
    report over a shared store should survive one bad row.
    """
    from ..store.keys import record_from_dict  # avoid a package cycle

    wanted = None if fingerprints is None else set(fingerprints)
    records: List[RunRecord] = []
    for _key, _created, fingerprint, raw in store.items():  # type: ignore[attr-defined]
        if wanted is not None and fingerprint not in wanted:
            continue
        try:
            records.append(record_from_dict(raw))
        except Exception:  # noqa: BLE001 - tolerate foreign/stale rows
            continue
    return records


def aggregate_cells(records: Iterable[RunRecord]) -> List[CellAggregate]:
    """Group records into cells and summarise each, sorted by cell key."""
    cells: Dict[CellKey, List[RunRecord]] = {}
    for record in records:
        request = record.request
        key = (request.scenario.name, request.page.name,
               request.protocol.name)
        cells.setdefault(key, []).append(record)
    aggregates: List[CellAggregate] = []
    for key in sorted(cells):
        group = cells[key]
        plts = sorted(r.plt for r in group if r.ok and r.plt is not None)
        aggregates.append(CellAggregate(
            scenario=key[0], page=key[1], protocol=key[2],
            runs=len(group), ok=len(plts),
            median_plt=statistics.median(plts) if plts else None,
            mean_plt=statistics.fmean(plts) if plts else None,
        ))
    return aggregates


def _ratio_rows(cells: List[CellAggregate]) -> List[Tuple[str, str, float]]:
    """(scenario, page, quic/tcp median ratio) where both medians exist."""
    medians: Dict[Tuple[str, str], Dict[str, float]] = {}
    for cell in cells:
        if cell.median_plt is not None:
            medians.setdefault((cell.scenario, cell.page), {})[
                cell.protocol] = cell.median_plt
    rows = []
    for (scenario, page), by_proto in sorted(medians.items()):
        if "quic" in by_proto and "tcp" in by_proto and by_proto["tcp"]:
            rows.append((scenario, page, by_proto["quic"] / by_proto["tcp"]))
    return rows


def render_cell_table(cells: List[CellAggregate]) -> str:
    """The canonical fixed-width cell table (both report paths embed it)."""
    if not cells:
        return "(no records)"
    width_scn = max(len("scenario"), *(len(c.scenario) for c in cells))
    width_page = max(len("page"), *(len(c.page) for c in cells))
    lines = [
        f"{'scenario':<{width_scn}}  {'page':<{width_page}}  "
        f"{'proto':<5}  {'runs':>4}  {'ok':>4}  "
        f"{'median PLT':>10}  {'mean PLT':>10}",
    ]
    for cell in cells:
        median = (f"{cell.median_plt:.4f}s" if cell.median_plt is not None
                  else "-")
        mean = f"{cell.mean_plt:.4f}s" if cell.mean_plt is not None else "-"
        lines.append(
            f"{cell.scenario:<{width_scn}}  {cell.page:<{width_page}}  "
            f"{cell.protocol:<5}  {cell.runs:>4}  {cell.ok:>4}  "
            f"{median:>10}  {mean:>10}")
    ratios = _ratio_rows(cells)
    if ratios:
        lines.append("")
        lines.append("QUIC/TCP median PLT ratio (<1 means QUIC wins):")
        for scenario, page, ratio in ratios:
            lines.append(f"  {scenario:<{width_scn}}  {page:<{width_page}}  "
                         f"{ratio:.3f}")
    return "\n".join(lines)


def store_result_text(store: object) -> str:
    """The aggregation body for one store — the shared table text.

    This exact text is what ``repro report --from-store`` embeds and
    what :func:`write_store_results` drops into a results directory, so
    the two report paths produce identical tables for identical records.
    """
    return render_cell_table(aggregate_cells(select_records(store)))


def write_store_results(store: object, results_dir: Union[str, Path], *,
                        stem: str = "store_summary") -> Path:
    """Write the store's aggregation into a results dir as ``<stem>.txt``.

    The file feeds the classic ``benchmarks/results`` report path
    (appearing under *Ablations & extensions*) with a body byte-identical
    to the ``--from-store`` section for the same records.
    """
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"{stem}.txt"
    path.write_text(store_result_text(store) + "\n")
    return path

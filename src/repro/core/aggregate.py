"""Incremental record aggregation shared by the report paths.

``REPORT.md`` can be collated from two places: the committed
``benchmarks/results/*.txt`` summaries, or directly from a results
store (any :class:`~repro.store.backend.StoreBackend`) holding cached
:class:`~repro.core.executor.RunRecord` rows.  Both paths meet here:
this module turns a stream of records — or of the executor's
:class:`~repro.core.executor.RunEvent`\\ s — into deterministic
per-cell aggregates (scenario x page x protocol) and renders them as
the one table text both ``repro report --from-store`` and the
results-file path embed — so a warm cache reports identically to a
completed benchmark run without re-executing anything.

The aggregation is *incremental*: a :class:`StreamAggregator` holds one
:class:`CellAccumulator` per cell, each updated per record/event and
``merge``-able across workers, so nothing ever materialises the full
record list.  An accumulator keeps only the cell's PLT floats and a
run counter — the memory ceiling of a 10⁶-cell sweep's report is a few
floats per cell, not 10⁶ pickled records.  Because a partially-fed
aggregator is already renderable, ``repro report --from-store --live``
can collate a store *while* a sweep is appending to it.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .executor import RunEvent, RunRecord
from .models import ModelFitAccumulator, render_model_fit_table

#: A cell identity: (scenario name, page name, protocol name).
CellKey = Tuple[str, str, str]


@dataclass(frozen=True)
class CellAggregate:
    """Summary statistics for one (scenario, page, protocol) cell."""

    scenario: str
    page: str
    protocol: str
    runs: int
    ok: int
    median_plt: Optional[float]
    mean_plt: Optional[float]

    @property
    def key(self) -> CellKey:
        return (self.scenario, self.page, self.protocol)


@dataclass
class CellAccumulator:
    """Incremental aggregation state for one cell.

    Holds only a run counter and the successful PLT floats — bounded
    memory regardless of how many records flow through.  Feed it
    records or terminal :class:`RunEvent`\\ s; ``merge`` folds in a
    peer accumulator (another worker's, or a later resume's).
    """

    scenario: str
    page: str
    protocol: str
    runs: int = 0
    plts: List[float] = field(default_factory=list)

    @property
    def key(self) -> CellKey:
        return (self.scenario, self.page, self.protocol)

    @property
    def ok(self) -> int:
        return len(self.plts)

    def add_record(self, record: RunRecord) -> None:
        self.runs += 1
        if record.ok and record.plt is not None:
            self.plts.append(record.plt)

    def add_event(self, event: RunEvent) -> None:
        """Fold in one executor event (non-terminal kinds are ignored)."""
        if not event.terminal:
            return
        self.runs += 1
        if event.ok and event.plt is not None:
            self.plts.append(event.plt)

    def merge(self, other: "CellAccumulator") -> None:
        if other.key != self.key:
            raise ValueError(
                f"cannot merge cell {other.key} into cell {self.key}")
        self.runs += other.runs
        self.plts.extend(other.plts)

    def aggregate(self) -> CellAggregate:
        plts = sorted(self.plts)
        return CellAggregate(
            scenario=self.scenario, page=self.page, protocol=self.protocol,
            runs=self.runs, ok=len(plts),
            median_plt=statistics.median(plts) if plts else None,
            mean_plt=statistics.fmean(plts) if plts else None,
        )


@dataclass
class FairnessAccumulator:
    """Incremental Jain-fairness aggregation for one manyflow cell.

    Fed from records whose ``metrics`` carry a ``jain_index`` (the
    manyflow family — see :mod:`repro.core.manyflow`); keyed by
    ``(scenario, config label)`` where the label encodes flow count and
    AQM, so the rendered table is the Tab. 4 Jain-index artefact
    generalised across queue disciplines.
    """

    scenario: str
    config: str
    aqm: str
    flows: int
    runs: int = 0
    completed: int = 0
    jains: List[float] = field(default_factory=list)
    quic_shares: List[float] = field(default_factory=list)
    plt_quic: List[float] = field(default_factory=list)
    plt_tcp: List[float] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.scenario, self.config)

    def add_record(self, record: RunRecord) -> None:
        metrics = record.metrics
        self.runs += 1
        self.completed += int(metrics.get("flows_completed", 0))
        self.jains.append(metrics["jain_index"])
        if "quic_share" in metrics:
            self.quic_shares.append(metrics["quic_share"])
        if metrics.get("plt_quic_p50"):
            self.plt_quic.append(metrics["plt_quic_p50"])
        if metrics.get("plt_tcp_p50"):
            self.plt_tcp.append(metrics["plt_tcp_p50"])

    def merge(self, other: "FairnessAccumulator") -> None:
        if other.key != self.key:
            raise ValueError(
                f"cannot merge fairness cell {other.key} into {self.key}")
        self.runs += other.runs
        self.completed += other.completed
        self.jains.extend(other.jains)
        self.quic_shares.extend(other.quic_shares)
        self.plt_quic.extend(other.plt_quic)
        self.plt_tcp.extend(other.plt_tcp)


@dataclass
class DwellAccumulator:
    """Incremental state-dwell aggregation for one traced cell.

    Fed from records whose ``metrics`` carry ``dwell:<state>`` keys —
    the per-state time fractions :meth:`ServerTrace.dwell_fractions`
    exports when a request is executed with ``trace=True``.  Keyed by
    ``(scenario, protocol)``, so the rendered table is the store-backed
    form of the Fig. 3 / Fig. 13 inferred-state artefact: which CC
    states a protocol actually dwells in under each network condition.
    """

    scenario: str
    protocol: str
    runs: int = 0
    #: state name -> summed dwell fraction across runs.
    fractions: Dict[str, float] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.scenario, self.protocol)

    def add_record(self, record: RunRecord) -> None:
        self.runs += 1
        for name, value in record.metrics.items():
            if name.startswith("dwell:"):
                state = name[len("dwell:"):]
                self.fractions[state] = self.fractions.get(state, 0.0) + value

    def merge(self, other: "DwellAccumulator") -> None:
        if other.key != self.key:
            raise ValueError(
                f"cannot merge dwell cell {other.key} into {self.key}")
        self.runs += other.runs
        for state, value in other.fractions.items():
            self.fractions[state] = self.fractions.get(state, 0.0) + value

    def mean_fractions(self) -> List[Tuple[str, float]]:
        """(state, mean dwell fraction), largest dwell first."""
        if not self.runs:
            return []
        return sorted(((state, total / self.runs)
                       for state, total in self.fractions.items()),
                      key=lambda kv: (-kv[1], kv[0]))


def render_dwell_table(cells: List[DwellAccumulator]) -> str:
    """The store-backed inferred-state dwell table (Fig. 3 / Fig. 13)."""
    if not cells:
        return "(no traced records)"
    width_scn = max(len("scenario"), *(len(c.scenario) for c in cells))
    states = {state for cell in cells for state, _ in cell.mean_fractions()}
    width_state = max(len("state"), *(len(s) for s in states)) if states \
        else len("state")
    lines = [
        f"{'scenario':<{width_scn}}  {'proto':<5}  {'runs':>4}  "
        f"{'state':<{width_state}}  {'dwell':>6}",
    ]
    for cell in sorted(cells, key=lambda c: c.key):
        for state, fraction in cell.mean_fractions():
            lines.append(
                f"{cell.scenario:<{width_scn}}  {cell.protocol:<5}  "
                f"{cell.runs:>4}  {state:<{width_state}}  "
                f"{fraction * 100:>5.1f}%")
    return "\n".join(lines)


def render_fairness_table(cells: List[FairnessAccumulator]) -> str:
    """The store-backed Jain-index table (Tab. 4, AQM-generalised)."""
    if not cells:
        return "(no fairness records)"
    width_scn = max(len("scenario"), *(len(c.scenario) for c in cells))
    width_cfg = max(len("config"), *(len(c.config) for c in cells))
    lines = [
        f"{'scenario':<{width_scn}}  {'config':<{width_cfg}}  "
        f"{'aqm':<8}  {'runs':>4}  {'flows done':>10}  "
        f"{'Jain':>6}  {'QUIC share':>10}  "
        f"{'QUIC p50':>9}  {'TCP p50':>9}",
    ]

    def med(values: List[float]) -> Optional[float]:
        return statistics.median(values) if values else None

    def fmt(value: Optional[float], spec: str, suffix: str = "") -> str:
        return f"{value:{spec}}{suffix}" if value is not None else "-"

    for cell in sorted(cells, key=lambda c: c.key):
        lines.append(
            f"{cell.scenario:<{width_scn}}  {cell.config:<{width_cfg}}  "
            f"{cell.aqm:<8}  {cell.runs:>4}  {cell.completed:>10}  "
            f"{fmt(med(cell.jains), '.3f'):>6}  "
            f"{fmt(med(cell.quic_shares), '.3f'):>10}  "
            f"{fmt(med(cell.plt_quic), '.3f', 's'):>9}  "
            f"{fmt(med(cell.plt_tcp), '.3f', 's'):>9}")
    return "\n".join(lines)


class StreamAggregator:
    """Per-cell accumulators fed one record/event at a time.

    The streaming counterpart of :func:`aggregate_cells`: identical
    output for identical inputs, but nothing is materialised and two
    aggregators (e.g. from two workers, or a live view plus a resumed
    sweep) ``merge`` associatively.  Records carrying fairness metrics
    (the manyflow family) additionally feed per-cell
    :class:`FairnessAccumulator`\\ s, a shared
    :class:`~repro.core.models.ModelFitAccumulator` (the analytical
    oracle comparison behind ``repro validate``), and — when traced —
    per-cell :class:`DwellAccumulator`\\ s; events cannot (they carry
    no metrics), so those artefacts are record-path features.
    """

    def __init__(self) -> None:
        self.cells: Dict[CellKey, CellAccumulator] = {}
        self.fairness: Dict[Tuple[str, str], FairnessAccumulator] = {}
        self.model_fit = ModelFitAccumulator()
        self.dwell: Dict[Tuple[str, str], DwellAccumulator] = {}

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def total_runs(self) -> int:
        return sum(cell.runs for cell in self.cells.values())

    def _cell(self, scenario: str, page: str, protocol: str
              ) -> CellAccumulator:
        key = (scenario, page, protocol)
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = CellAccumulator(*key)
        return cell

    def add_record(self, record: RunRecord) -> None:
        request = record.request
        self._cell(request.scenario.name, request.page.name,
                   request.protocol.name).add_record(record)
        config = getattr(request, "manyflow", None)
        if config is not None and "jain_index" in record.metrics:
            key = (request.scenario.name, config.label)
            cell = self.fairness.get(key)
            if cell is None:
                cell = self.fairness[key] = FairnessAccumulator(
                    scenario=request.scenario.name, config=config.label,
                    aqm=config.aqm, flows=config.flows)
            cell.add_record(record)
        self.model_fit.add_record(record)
        if any(name.startswith("dwell:") for name in record.metrics):
            key = (request.scenario.name, request.protocol.name)
            dwell = self.dwell.get(key)
            if dwell is None:
                dwell = self.dwell[key] = DwellAccumulator(
                    scenario=request.scenario.name,
                    protocol=request.protocol.name)
            dwell.add_record(record)

    def add_event(self, event: RunEvent) -> None:
        if not event.terminal:
            return
        self._cell(event.scenario, event.page,
                   event.protocol).add_event(event)

    def merge(self, other: "StreamAggregator") -> None:
        for key, cell in other.cells.items():
            self._cell(*key).merge(cell)
        for key, cell in other.fairness.items():
            mine = self.fairness.get(key)
            if mine is None:
                self.fairness[key] = cell
            else:
                mine.merge(cell)
        self.model_fit.merge(other.model_fit)
        for key, cell in other.dwell.items():
            mine_dwell = self.dwell.get(key)
            if mine_dwell is None:
                self.dwell[key] = cell
            else:
                mine_dwell.merge(cell)

    def aggregates(self) -> List[CellAggregate]:
        return [self.cells[key].aggregate() for key in sorted(self.cells)]

    def render(self) -> str:
        return render_cell_table(self.aggregates())

    def render_fairness(self) -> Optional[str]:
        """The Jain-index table, or None when no fairness records seen."""
        if not self.fairness:
            return None
        return render_fairness_table(list(self.fairness.values()))

    def render_model_fit(self, tolerance: Optional[float] = None
                         ) -> Optional[str]:
        """The oracle fit table, or None when no fit cells accumulated."""
        if not self.model_fit:
            return None
        if tolerance is None:
            return render_model_fit_table(self.model_fit.cells())
        return render_model_fit_table(self.model_fit.cells(), tolerance)

    def render_dwell(self) -> Optional[str]:
        """The state-dwell table, or None when no traced records seen."""
        if not self.dwell:
            return None
        return render_dwell_table(list(self.dwell.values()))


def iter_records(store: Any, *,
                 fingerprints: Optional[Iterable[str]] = None
                 ) -> Iterator[RunRecord]:
    """Every decodable record in ``store``, streamed oldest first.

    ``fingerprints`` restricts the stream to rows stamped with one of
    the given code fingerprints (e.g. only results the current code
    could still produce).  Undecodable rows are skipped, not fatal — a
    report over a shared store should survive one bad row.
    """
    from ..store.keys import record_from_dict  # avoid a package cycle

    wanted = None if fingerprints is None else set(fingerprints)
    for _key, _created, fingerprint, raw in store.items():
        if wanted is not None and fingerprint not in wanted:
            continue
        try:
            yield record_from_dict(raw)
        except Exception:  # noqa: BLE001 - tolerate foreign/stale rows
            continue


def select_records(store: object, *,
                   fingerprints: Optional[Iterable[str]] = None
                   ) -> List[RunRecord]:
    """List form of :func:`iter_records` (kept for small stores/tests)."""
    return list(iter_records(store, fingerprints=fingerprints))


def store_aggregator(store: Any, *,
                     fingerprints: Optional[Iterable[str]] = None
                     ) -> StreamAggregator:
    """Aggregate a whole store without materialising its records."""
    aggregator = StreamAggregator()
    for record in iter_records(store, fingerprints=fingerprints):
        aggregator.add_record(record)
    return aggregator


def aggregate_cells(records: Iterable[RunRecord]) -> List[CellAggregate]:
    """Group records into cells and summarise each, sorted by cell key."""
    aggregator = StreamAggregator()
    for record in records:
        aggregator.add_record(record)
    return aggregator.aggregates()


def _ratio_rows(cells: List[CellAggregate]) -> List[Tuple[str, str, float]]:
    """(scenario, page, quic/tcp median ratio) where both medians exist."""
    medians: Dict[Tuple[str, str], Dict[str, float]] = {}
    for cell in cells:
        if cell.median_plt is not None:
            medians.setdefault((cell.scenario, cell.page), {})[
                cell.protocol] = cell.median_plt
    rows = []
    for (scenario, page), by_proto in sorted(medians.items()):
        if "quic" in by_proto and "tcp" in by_proto and by_proto["tcp"]:
            rows.append((scenario, page, by_proto["quic"] / by_proto["tcp"]))
    return rows


def render_cell_table(cells: List[CellAggregate]) -> str:
    """The canonical fixed-width cell table (both report paths embed it)."""
    if not cells:
        return "(no records)"
    width_scn = max(len("scenario"), *(len(c.scenario) for c in cells))
    width_page = max(len("page"), *(len(c.page) for c in cells))
    lines = [
        f"{'scenario':<{width_scn}}  {'page':<{width_page}}  "
        f"{'proto':<5}  {'runs':>4}  {'ok':>4}  "
        f"{'median PLT':>10}  {'mean PLT':>10}",
    ]
    for cell in cells:
        median = (f"{cell.median_plt:.4f}s" if cell.median_plt is not None
                  else "-")
        mean = f"{cell.mean_plt:.4f}s" if cell.mean_plt is not None else "-"
        lines.append(
            f"{cell.scenario:<{width_scn}}  {cell.page:<{width_page}}  "
            f"{cell.protocol:<5}  {cell.runs:>4}  {cell.ok:>4}  "
            f"{median:>10}  {mean:>10}")
    ratios = _ratio_rows(cells)
    if ratios:
        lines.append("")
        lines.append("QUIC/TCP median PLT ratio (<1 means QUIC wins):")
        for scenario, page, ratio in ratios:
            lines.append(f"  {scenario:<{width_scn}}  {page:<{width_page}}  "
                         f"{ratio:.3f}")
    return "\n".join(lines)


def store_result_text(store: object) -> str:
    """The aggregation body for one store — the shared table text.

    This exact text is what ``repro report --from-store`` embeds and
    what :func:`write_store_results` drops into a results directory, so
    the two report paths produce identical tables for identical records.
    """
    return store_aggregator(store).render()


def write_store_results(store: object, results_dir: Union[str, Path], *,
                        stem: str = "store_summary") -> Path:
    """Write the store's aggregation into a results dir as ``<stem>.txt``.

    The file feeds the classic ``benchmarks/results`` report path
    (appearing under *Ablations & extensions*) with a body byte-identical
    to the ``--from-store`` section for the same records.
    """
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"{stem}.txt"
    path.write_text(store_result_text(store) + "\n")
    return path

"""Root-cause analysis from instrumented traces (paper Secs. 4.2, 5.2).

The paper's distinctive move is explaining *why* a protocol wins or loses
using the states it visited: mobile slowness ← ApplicationLimited dwell;
reordering collapse ← false-loss floods + Recovery dwell; many-small-
objects loss ← Hybrid Slow Start early exit.  This module turns traces
and connection counters into those diagnoses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .instrumentation import Trace


@dataclass
class DwellComparison:
    """Fig. 13: time-in-state fractions for two environments."""

    label_a: str
    label_b: str
    fractions_a: Dict[str, float]
    fractions_b: Dict[str, float]

    def states(self) -> List[str]:
        return sorted(set(self.fractions_a) | set(self.fractions_b))

    def delta(self, state: str) -> float:
        return self.fractions_b.get(state, 0.0) - self.fractions_a.get(state, 0.0)

    def dominant_shift(self) -> Tuple[str, float]:
        """The state whose dwell changed the most (the root cause candidate)."""
        best = max(self.states(), key=lambda s: abs(self.delta(s)))
        return best, self.delta(best)

    def render(self) -> str:
        lines = [f"{'state':<28}{self.label_a:>12}{self.label_b:>12}{'delta':>10}"]
        for state in self.states():
            fa = self.fractions_a.get(state, 0.0) * 100
            fb = self.fractions_b.get(state, 0.0) * 100
            lines.append(
                f"{state:<28}{fa:>11.1f}%{fb:>11.1f}%{fb - fa:>+9.1f}%"
            )
        return "\n".join(lines)


def compare_dwell(trace_a: Trace, trace_b: Trace,
                  label_a: str = "A", label_b: str = "B") -> DwellComparison:
    return DwellComparison(
        label_a, label_b, trace_a.dwell_fractions(), trace_b.dwell_fractions()
    )


@dataclass
class LossReport:
    """Loss-detection behaviour of one sender (Fig. 10's explanation)."""

    protocol: str
    losses_declared: int
    false_losses: int
    rto_fires: int
    tlp_fires: int
    final_threshold: Optional[int] = None

    @property
    def false_loss_rate(self) -> float:
        if self.losses_declared == 0:
            return 0.0
        return self.false_losses / self.losses_declared

    def describe(self) -> str:
        threshold = (
            f", final reordering threshold {self.final_threshold}"
            if self.final_threshold is not None else ""
        )
        return (
            f"{self.protocol}: {self.losses_declared} losses declared, "
            f"{self.false_losses} spurious ({self.false_loss_rate * 100:.0f}%), "
            f"{self.tlp_fires} TLPs, {self.rto_fires} RTOs{threshold}"
        )


def loss_report(connection: Any) -> LossReport:
    """Build a loss report from either transport's sender connection."""
    detector = getattr(connection, "loss_detector", None)
    if detector is not None:  # QUIC
        return LossReport(
            protocol="quic",
            losses_declared=detector.losses_declared,
            false_losses=detector.false_losses,
            rto_fires=connection.stats.rto_fires,
            tlp_fires=connection.stats.tlp_probes,
            final_threshold=detector.threshold,
        )
    return LossReport(
        protocol="tcp",
        losses_declared=connection.stats.retransmits,
        false_losses=connection.stats.spurious_retransmits,
        rto_fires=connection.stats.rto_fires,
        tlp_fires=0,
        final_threshold=connection.dupthresh,
    )


@dataclass
class SlowStartReport:
    """Hybrid Slow Start behaviour (the many-small-objects root cause)."""

    exited_early: bool
    exit_time: Optional[float]
    exit_cwnd_bytes: Optional[int]

    def describe(self) -> str:
        if not self.exited_early:
            return "slow start ran to loss/ssthresh (no delay-based exit)"
        return (
            f"Hybrid Slow Start exited early at t={self.exit_time:.3f}s "
            f"with cwnd={self.exit_cwnd_bytes} bytes"
        )


@dataclass
class EfficiencyReport:
    """Wire efficiency of a sender: goodput vs everything else.

    Useful for quantifying retransmission waste (reordering pathologies)
    and fixed overheads (FEC's bandwidth tax).
    """

    protocol: str
    app_bytes: int
    wire_payload_bytes: int
    packets_sent: int

    @property
    def overhead_fraction(self) -> float:
        """Share of payload bytes that were not first-copy app data."""
        if self.wire_payload_bytes <= 0:
            return 0.0
        waste = max(self.wire_payload_bytes - self.app_bytes, 0)
        return waste / self.wire_payload_bytes

    def describe(self) -> str:
        return (
            f"{self.protocol}: {self.app_bytes} app bytes over "
            f"{self.wire_payload_bytes} payload bytes in "
            f"{self.packets_sent} packets "
            f"({self.overhead_fraction * 100:.1f}% overhead)"
        )


def efficiency_report(server: Any, app_bytes: int) -> EfficiencyReport:
    """Build a wire-efficiency report for either protocol's sender."""
    protocol = "quic" if hasattr(server, "loss_detector") else "tcp"
    return EfficiencyReport(
        protocol=protocol,
        app_bytes=app_bytes,
        wire_payload_bytes=server.stats.bytes_sent,
        packets_sent=(server.stats.packets_sent
                      if protocol == "quic" else server.stats.segments_sent),
    )


def slow_start_report(connection: Any) -> SlowStartReport:
    cc = connection.cc
    hss = getattr(cc, "_hss", None)
    exits = getattr(cc, "slow_start_exits_by_delay", 0)
    if hss is None or exits == 0:
        return SlowStartReport(False, None, None)
    exit_cwnd = None
    for t, kind, detail in connection.trace.records:
        if kind == "hss_exit":
            exit_cwnd = detail
            break
    return SlowStartReport(True, hss.exit_time, exit_cwnd)

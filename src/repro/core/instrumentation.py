"""Execution-trace instrumentation (Sec. 4.2 of the paper).

The paper instruments Chromium's QUIC with 23 lines of logging across 5
files to capture congestion-control state transitions, congestion-window
evolution and loss-detection decisions, then infers the protocol state
machine from those traces.  Here the same role is played by a
:class:`Trace` attached to every transport connection: the congestion
controller and loss detector emit structured records into it, and
:mod:`repro.core.statemachine` / :mod:`repro.core.rootcause` consume them.

Records are cheap tuples; a trace can be disabled wholesale (``enabled =
False``) for large parameter sweeps where only end-to-end metrics matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Record kinds.  Kept as plain strings for trivial filtering.
STATE = "state"          # detail: state name (str)
CWND = "cwnd"            # detail: congestion window in bytes (int)
LOSS = "loss"            # detail: packet number / sequence declared lost
FALSE_LOSS = "false_loss"  # detail: packet number spuriously declared lost
RTO_FIRED = "rto"
TLP_FIRED = "tlp"
RTT_SAMPLE = "rtt"       # detail: seconds (float)
PACING_RATE = "pacing"   # detail: bytes/sec


@dataclass
class TraceRecord:
    """One instrumentation record: ``(time, kind, detail)``."""

    time: float
    kind: str
    detail: object

    def __iter__(self):
        return iter((self.time, self.kind, self.detail))


class Trace:
    """Per-connection execution trace.

    The trace records *state transitions* (not periodic state samples), so
    dwell time in a state is the gap between consecutive STATE records —
    exactly the quantity Fig. 13 reports ("fraction of time spent in each
    state").
    """

    def __init__(self, label: str = "", enabled: bool = True,
                 cwnd_min_interval: float = 0.0) -> None:
        self.label = label
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        #: Down-sampling interval for cwnd records (0 = every change).
        self.cwnd_min_interval = cwnd_min_interval
        self._last_cwnd_time = -1e18
        #: Running counters, maintained even when record-keeping is off,
        #: because root-cause analysis needs them cheaply.
        self.counters: Dict[str, int] = {}
        self._last_state: Optional[str] = None
        self._last_state_time: float = 0.0
        #: Accumulated dwell time per state (finalised by :meth:`close`).
        self.dwell: Dict[str, float] = {}
        self._closed_at: Optional[float] = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def log_state(self, now: float, state: str) -> None:
        """Record a state transition (no-op if the state is unchanged)."""
        if state == self._last_state:
            return
        if self._last_state is not None:
            self.dwell[self._last_state] = (
                self.dwell.get(self._last_state, 0.0) + (now - self._last_state_time)
            )
        self._last_state = state
        self._last_state_time = now
        self.counters[f"state:{state}"] = self.counters.get(f"state:{state}", 0) + 1
        if self.enabled:
            self.records.append(TraceRecord(now, STATE, state))

    def log(self, now: float, kind: str, detail: object = None) -> None:
        """Record a generic event and bump its counter."""
        self.counters[kind] = self.counters.get(kind, 0) + 1
        if self.enabled:
            self.records.append(TraceRecord(now, kind, detail))

    def log_cwnd(self, now: float, cwnd_bytes: int) -> None:
        """Record congestion-window size, down-sampled by ``cwnd_min_interval``."""
        if not self.enabled:
            return
        if now - self._last_cwnd_time < self.cwnd_min_interval:
            return
        self._last_cwnd_time = now
        self.records.append(TraceRecord(now, CWND, cwnd_bytes))

    def close(self, now: float) -> None:
        """Finalise dwell accounting at the end of an experiment."""
        if self._last_state is not None and self._closed_at is None:
            self.dwell[self._last_state] = (
                self.dwell.get(self._last_state, 0.0) + (now - self._last_state_time)
            )
            self._last_state_time = now
        self._closed_at = now

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def state_sequence(self) -> List[str]:
        """The ordered list of visited states (for state-machine inference)."""
        return [r.detail for r in self.records if r.kind == STATE]

    def state_intervals(self) -> List[Tuple[str, float, float]]:
        """``(state, enter_time, exit_time)`` triples; last exit = close time."""
        out: List[Tuple[str, float, float]] = []
        prev: Optional[Tuple[str, float]] = None
        for record in self.records:
            if record.kind != STATE:
                continue
            if prev is not None:
                out.append((prev[0], prev[1], record.time))
            prev = (record.detail, record.time)
        if prev is not None:
            end = self._closed_at if self._closed_at is not None else prev[1]
            out.append((prev[0], prev[1], max(end, prev[1])))
        return out

    def dwell_fractions(self) -> Dict[str, float]:
        """Fraction of total traced time spent in each state (Fig. 13)."""
        total = sum(self.dwell.values())
        if total <= 0:
            return {}
        return {state: t / total for state, t in self.dwell.items()}

    def series(self, kind: str) -> List[Tuple[float, object]]:
        """All ``(time, detail)`` pairs of one record kind (e.g. CWND)."""
        return [(r.time, r.detail) for r in self.records if r.kind == kind]

    def count(self, kind: str) -> int:
        return self.counters.get(kind, 0)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace {self.label!r} records={len(self.records)}>"


def merge_state_sequences(traces: Iterable[Trace]) -> List[List[str]]:
    """Collect the state sequences of many traces (statemachine input)."""
    return [t.state_sequence() for t in traces if t.state_sequence()]

"""Head-to-head comparisons with significance (paper Sec. 3.3).

A :class:`Comparison` holds matched samples for two protocols (paired by
run round, as the paper runs TCP and QUIC back-to-back in each round) and
answers the three questions every heatmap cell needs: the percent
difference, its direction, and whether it is statistically significant
under Welch's t-test at p < 0.01.

A :class:`SamplePair` is its streaming front-end: samples arrive tagged
with their run round — in whatever order the parallel executor
completes them — and surface in round order, so a comparison built
from an event stream is identical to one built serially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .stats import ALPHA, TTestResult, mean, percent_difference, sample_std, welch_t_test


@dataclass
class Comparison:
    """QUIC-vs-TCP samples for one experimental cell.

    ``metric`` is "smaller is better" (PLT) by convention; positive
    :attr:`pct_diff` means QUIC outperformed TCP, matching the red cells
    of the paper's heatmaps.
    """

    label: str
    quic: List[float]
    tcp: List[float]
    metric: str = "plt"
    #: What the two sides are called; variant comparisons (e.g. 0-RTT
    #: on/off) override these so reports name the actual treatments.
    treatment_name: str = "QUIC"
    baseline_name: str = "TCP"

    def __post_init__(self) -> None:
        if not self.quic or not self.tcp:
            raise ValueError("both sample sets must be non-empty")

    @property
    def quic_mean(self) -> float:
        return mean(self.quic)

    @property
    def tcp_mean(self) -> float:
        return mean(self.tcp)

    @property
    def pct_diff(self) -> float:
        """Percent difference of QUIC over TCP; positive = QUIC faster."""
        return percent_difference(self.tcp, self.quic)

    @property
    def ttest(self) -> TTestResult:
        return welch_t_test(self.quic, self.tcp)

    def significant(self, alpha: float = ALPHA) -> bool:
        return self.ttest.significant(alpha)

    @property
    def winner(self) -> str:
        """"quic", "tcp", or "inconclusive" (the paper's white cells)."""
        if not self.significant():
            return "inconclusive"
        return "quic" if self.quic_mean < self.tcp_mean else "tcp"

    def cell_text(self) -> str:
        """Heatmap cell rendering: signed percent or a dot when white."""
        if not self.significant():
            return "   ·  "
        return f"{self.pct_diff:+5.0f}%"

    def describe(self) -> str:
        t = self.ttest
        return (
            f"{self.label}: {self.treatment_name} {self.quic_mean:.3f}s "
            f"(sd {sample_std(self.quic):.3f}) vs {self.baseline_name} "
            f"{self.tcp_mean:.3f}s "
            f"(sd {sample_std(self.tcp):.3f}) -> {self.pct_diff:+.1f}% "
            f"(p={t.p_value:.4f}, {self.winner})"
        )


@dataclass
class SamplePair:
    """Out-of-order-tolerant accumulator for one cell's two sample sets.

    The streaming executor finishes runs in completion order; each
    sample lands here with its round index and the sides are read back
    in round order, so the derived :class:`Comparison` is bit-identical
    to a serial run's.  Two pairs for the same cell ``merge`` (e.g.
    across workers, or a killed sweep's partial grid plus its resume).
    """

    treatment_name: str = "QUIC"
    baseline_name: str = "TCP"
    treatment_by_round: Dict[int, float] = field(default_factory=dict)
    baseline_by_round: Dict[int, float] = field(default_factory=dict)

    def add(self, side: str, round_index: int, value: float) -> None:
        """Record one sample: ``side`` is "treatment" or "baseline"."""
        if side == "treatment":
            self.treatment_by_round[round_index] = value
        elif side == "baseline":
            self.baseline_by_round[round_index] = value
        else:
            raise ValueError(
                f"side must be 'treatment' or 'baseline', not {side!r}")

    def merge(self, other: "SamplePair") -> None:
        self.treatment_by_round.update(other.treatment_by_round)
        self.baseline_by_round.update(other.baseline_by_round)

    @property
    def counts(self) -> Tuple[int, int]:
        """(treatment samples, baseline samples) accumulated so far."""
        return len(self.treatment_by_round), len(self.baseline_by_round)

    def complete(self, runs: int) -> bool:
        """Whether both sides hold all ``runs`` rounds."""
        return (len(self.treatment_by_round) >= runs
                and len(self.baseline_by_round) >= runs)

    def treatment_samples(self) -> List[float]:
        return [value for _round, value
                in sorted(self.treatment_by_round.items())]

    def baseline_samples(self) -> List[float]:
        return [value for _round, value
                in sorted(self.baseline_by_round.items())]

    def comparison(self, label: str, *, metric: str = "plt") -> Comparison:
        return Comparison(
            label, self.treatment_samples(), self.baseline_samples(),
            metric=metric, treatment_name=self.treatment_name,
            baseline_name=self.baseline_name)

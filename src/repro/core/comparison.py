"""Head-to-head comparisons with significance (paper Sec. 3.3).

A :class:`Comparison` holds matched samples for two protocols (paired by
run round, as the paper runs TCP and QUIC back-to-back in each round) and
answers the three questions every heatmap cell needs: the percent
difference, its direction, and whether it is statistically significant
under Welch's t-test at p < 0.01.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .stats import ALPHA, TTestResult, mean, percent_difference, sample_std, welch_t_test


@dataclass
class Comparison:
    """QUIC-vs-TCP samples for one experimental cell.

    ``metric`` is "smaller is better" (PLT) by convention; positive
    :attr:`pct_diff` means QUIC outperformed TCP, matching the red cells
    of the paper's heatmaps.
    """

    label: str
    quic: List[float]
    tcp: List[float]
    metric: str = "plt"
    #: What the two sides are called; variant comparisons (e.g. 0-RTT
    #: on/off) override these so reports name the actual treatments.
    treatment_name: str = "QUIC"
    baseline_name: str = "TCP"

    def __post_init__(self) -> None:
        if not self.quic or not self.tcp:
            raise ValueError("both sample sets must be non-empty")

    @property
    def quic_mean(self) -> float:
        return mean(self.quic)

    @property
    def tcp_mean(self) -> float:
        return mean(self.tcp)

    @property
    def pct_diff(self) -> float:
        """Percent difference of QUIC over TCP; positive = QUIC faster."""
        return percent_difference(self.tcp, self.quic)

    @property
    def ttest(self) -> TTestResult:
        return welch_t_test(self.quic, self.tcp)

    def significant(self, alpha: float = ALPHA) -> bool:
        return self.ttest.significant(alpha)

    @property
    def winner(self) -> str:
        """"quic", "tcp", or "inconclusive" (the paper's white cells)."""
        if not self.significant():
            return "inconclusive"
        return "quic" if self.quic_mean < self.tcp_mean else "tcp"

    def cell_text(self) -> str:
        """Heatmap cell rendering: signed percent or a dot when white."""
        if not self.significant():
            return "   ·  "
        return f"{self.pct_diff:+5.0f}%"

    def describe(self) -> str:
        t = self.ttest
        return (
            f"{self.label}: {self.treatment_name} {self.quic_mean:.3f}s "
            f"(sd {sample_std(self.quic):.3f}) vs {self.baseline_name} "
            f"{self.tcp_mean:.3f}s "
            f"(sd {sample_std(self.tcp):.3f}) -> {self.pct_diff:+.1f}% "
            f"(p={t.p_value:.4f}, {self.winner})"
        )

"""Measurement taps: per-flow throughput over time.

The fairness (Fig. 4), cwnd (Fig. 5/9) and variable-bandwidth (Fig. 11)
figures all need throughput/cwnd *time series*.  cwnd series come from
connection traces; throughput series come from this module's link tap,
which buckets delivered bytes per flow per interval — the simulated
equivalent of the packet captures the paper took at the router.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..netem.link import Link
from ..netem.packet import Packet


class FlowThroughputMonitor:
    """Buckets bytes delivered over a link per flow per time interval."""

    def __init__(self, link: Link, interval: float = 0.1) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._buckets: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._totals: Dict[str, int] = defaultdict(int)
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None
        link.on_deliver = self._tap

    def _tap(self, now: float, packet: Packet) -> None:
        flow = packet.flow_id or "unknown"
        bucket = int(now / self.interval)
        self._buckets[flow][bucket] += packet.size_bytes
        self._totals[flow] += packet.size_bytes
        if self._first_time is None:
            self._first_time = now
        self._last_time = now

    # ------------------------------------------------------------------
    def flows(self) -> List[str]:
        return sorted(self._buckets)

    def series_mbps(self, flow: str) -> List[Tuple[float, float]]:
        """(bucket_start_time, throughput_mbps) samples for one flow."""
        buckets = self._buckets.get(flow, {})
        return [
            (b * self.interval, bytes_ * 8 / self.interval / 1e6)
            for b, bytes_ in sorted(buckets.items())
        ]

    def average_mbps(self, flow: str, duration: Optional[float] = None) -> float:
        """Average throughput of a flow over ``duration`` (or the observed span)."""
        total = self._totals.get(flow, 0)
        if duration is None:
            if self._first_time is None or self._last_time is None:
                return 0.0
            duration = max(self._last_time, self.interval)
        if duration <= 0:
            return 0.0
        return total * 8 / duration / 1e6

    def total_bytes(self, flow: str) -> int:
        return self._totals.get(flow, 0)

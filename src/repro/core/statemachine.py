"""State-machine inference from execution traces (paper Secs. 4.2/5.1).

The paper feeds its instrumentation logs to Synoptic [15] to generate the
first state-machine diagrams for QUIC (Fig. 3) and uses transition
statistics and per-state dwell times for root-cause analysis (Fig. 13).
This module is a self-contained "Synoptic-lite":

* :func:`infer` builds a model from many traces: states, transition
  counts/probabilities, initial/terminal states, and (when the traces
  carry timing) aggregate dwell-time fractions;
* :meth:`StateMachineModel.mine_invariants` mines Synoptic's three
  temporal invariant families (AlwaysFollowedBy, NeverFollowedBy,
  AlwaysPrecedes) over the observed sequences;
* :meth:`StateMachineModel.to_dot` renders a Graphviz diagram equivalent
  to the paper's figures, annotated with transition probabilities (black
  numbers in Fig. 13) and dwell fractions (red numbers).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .instrumentation import Trace

INITIAL = "INITIAL"
TERMINAL = "TERMINAL"


@dataclass(frozen=True)
class Invariant:
    """One mined temporal invariant, Synoptic-style."""

    kind: str  # "AFby" | "NFby" | "AP"
    first: str
    second: str

    def __str__(self) -> str:
        symbol = {"AFby": "->*", "NFby": "!->*", "AP": "<-*"}[self.kind]
        return f"{self.first} {symbol} {self.second}"


class StateMachineModel:
    """An inferred finite-state model of a protocol's CC behaviour."""

    def __init__(self) -> None:
        self.states: Set[str] = set()
        self.transition_counts: Dict[Tuple[str, str], int] = Counter()
        self.initial_counts: Dict[str, int] = Counter()
        self.terminal_counts: Dict[str, int] = Counter()
        self.dwell_totals: Dict[str, float] = defaultdict(float)
        self.traces_used = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_sequence(self, sequence: Sequence[str],
                     dwell: Optional[Dict[str, float]] = None) -> None:
        """Fold one trace's state sequence (and optional dwell map) in."""
        if not sequence:
            return
        self.traces_used += 1
        self.initial_counts[sequence[0]] += 1
        self.terminal_counts[sequence[-1]] += 1
        for state in sequence:
            self.states.add(state)
        for a, b in zip(sequence, sequence[1:]):
            self.transition_counts[(a, b)] += 1
        if dwell:
            for state, seconds in dwell.items():
                self.dwell_totals[state] += seconds
                self.states.add(state)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def transition_probabilities(self) -> Dict[Tuple[str, str], float]:
        """P(next = b | current = a) over observed transitions."""
        outgoing: Dict[str, int] = Counter()
        for (a, _b), n in self.transition_counts.items():
            outgoing[a] += n
        return {
            (a, b): n / outgoing[a]
            for (a, b), n in self.transition_counts.items()
        }

    def dwell_fractions(self) -> Dict[str, float]:
        """Fraction of total traced time per state (Fig. 13's red numbers)."""
        total = sum(self.dwell_totals.values())
        if total <= 0:
            return {}
        return {s: t / total for s, t in self.dwell_totals.items()}

    def successors(self, state: str) -> List[str]:
        return sorted(b for (a, b) in self.transition_counts if a == state)

    def has_transition(self, a: str, b: str) -> bool:
        return (a, b) in self.transition_counts

    def edge_count(self) -> int:
        return len(self.transition_counts)

    # ------------------------------------------------------------------
    # invariants (Synoptic's three families)
    # ------------------------------------------------------------------
    @staticmethod
    def mine_invariants(sequences: Iterable[Sequence[str]]) -> List[Invariant]:
        """Mine AFby / NFby / AP invariants holding over *all* sequences."""
        sequences = [list(s) for s in sequences if s]
        if not sequences:
            return []
        alphabet: Set[str] = set()
        for seq in sequences:
            alphabet.update(seq)
        # Candidate sets start maximal and get pruned per sequence.
        afby = {(x, y) for x in alphabet for y in alphabet if x != y}
        nfby = set(afby)
        ap = set(afby)
        for seq in sequences:
            occurred: Set[str] = set(seq)
            # AFby: every x occurrence has a later y.
            last_index: Dict[str, int] = {}
            for i, s in enumerate(seq):
                last_index[s] = i
            followers_after: List[Set[str]] = [set() for _ in seq]
            seen_after: Set[str] = set()
            for i in range(len(seq) - 1, -1, -1):
                followers_after[i] = set(seen_after)
                seen_after.add(seq[i])
            seen_before: Set[str] = set()
            first_seen: Dict[str, int] = {}
            for i, s in enumerate(seq):
                if s not in first_seen:
                    first_seen[s] = i
                seen_before.add(s)
            for x, y in list(afby):
                if x not in occurred:
                    continue
                # Check the *last* occurrence of x: it needs a later y.
                if y not in followers_after[last_index[x]]:
                    afby.discard((x, y))
            for x, y in list(nfby):
                if x not in occurred:
                    continue
                # Any y after the first x kills NFby.
                if y in followers_after[first_seen[x]]:
                    nfby.discard((x, y))
            for x, y in list(ap):
                # x AlwaysPrecedes y: the first y must come after an x.
                if y not in occurred:
                    continue
                if x not in occurred or first_seen[x] > first_seen[y]:
                    ap.discard((x, y))
        out = [Invariant("AFby", x, y) for x, y in sorted(afby)]
        out += [Invariant("NFby", x, y) for x, y in sorted(nfby)]
        out += [Invariant("AP", x, y) for x, y in sorted(ap)]
        return out

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_dot(self, title: str = "inferred state machine",
               min_probability: float = 0.0) -> str:
        """Graphviz DOT text equivalent to the paper's Fig. 3/13 diagrams."""
        probs = self.transition_probabilities()
        dwell = self.dwell_fractions()
        lines = [
            "digraph inferred {",
            f'  label="{title}";',
            "  rankdir=TB;",
            '  node [shape=ellipse fontname="Helvetica"];',
        ]
        for state in sorted(self.states):
            if state in dwell:
                label = f"{state}\\n{dwell[state] * 100:.1f}%"
            else:
                label = state
            lines.append(f'  "{state}" [label="{label}"];')
        for (a, b), p in sorted(probs.items()):
            if p < min_probability:
                continue
            lines.append(f'  "{a}" -> "{b}" [label="{p:.2f}"];')
        for state, n in self.initial_counts.items():
            if n > 0:
                lines.append(f'  "{INITIAL}" [shape=point];')
                lines.append(f'  "{INITIAL}" -> "{state}";')
        lines.append("}")
        return "\n".join(lines)

    def summary(self) -> str:
        """A compact text rendering for terminal output."""
        probs = self.transition_probabilities()
        dwell = self.dwell_fractions()
        lines = [f"states: {len(self.states)}, transitions: {self.edge_count()}, "
                 f"traces: {self.traces_used}"]
        for state in sorted(self.states):
            frac = f" [{dwell[state] * 100:5.1f}% of time]" if state in dwell else ""
            lines.append(f"  {state}{frac}")
            for (a, b), p in sorted(probs.items()):
                if a == state:
                    lines.append(f"    -> {b}  p={p:.2f} "
                                 f"(n={self.transition_counts[(a, b)]})")
        return "\n".join(lines)


def infer(traces: Iterable[Trace]) -> StateMachineModel:
    """Infer a state machine from instrumented connection traces."""
    model = StateMachineModel()
    for trace in traces:
        model.add_sequence(trace.state_sequence(), trace.dwell)
    return model


def infer_from_sequences(sequences: Iterable[Sequence[str]]) -> StateMachineModel:
    """Infer from bare state sequences (no timing information)."""
    model = StateMachineModel()
    for seq in sequences:
        model.add_sequence(list(seq))
    return model

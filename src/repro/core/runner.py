"""High-level experiment drivers.

These functions are the public face of the evaluation framework: each
builds a fresh simulated testbed (Fig. 1 / Fig. 4 / Fig. 16 topology),
runs one or many page loads / transfers, and returns metrics plus the
instrumented traces needed for root-cause analysis.  The benchmark
harness and the examples are thin layers over this module.

Batch drivers (``measure_plts``, ``compare_page_load``,
``compare_quic_variants``, ``build_plt_heatmap``) accept ``jobs=`` and
fan their independent seeded rounds out over
:mod:`repro.core.executor`; seeded results are bit-identical to serial
execution.  They also accept ``store=`` — a :mod:`repro.store` results
store (or a path to one) that serves previously computed runs as cache
hits and persists new ones as they complete.  A protocol is named by a
:class:`~repro.core.executor.ProtocolSpec`; the old ``protocol="quic"``
string plus ``quic_cfg=``/``tcp_cfg=`` keyword form still works but
raises :class:`DeprecationWarning`.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..devices import DESKTOP, DeviceProfile
from ..http.client import PageLoader, PageLoadResult
from ..http.objects import WebPage, single_object_page
from ..http.server import page_request_handler
from ..netem.link import BandwidthSchedule, mbps
from ..netem.profiles import Scenario, fairness_bottleneck
from ..netem.sim import Simulator
from ..netem.topology import Path, build_bottleneck, build_path, build_proxy_path
from ..quic.config import QuicConfig, quic_config
from ..quic.connection import open_quic_pair
from ..tcp.config import TcpConfig, tcp_config
from ..tcp.connection import open_tcp_pair
from .comparison import Comparison, SamplePair
from .executor import ProtocolSpec, RunRecord, RunRequest, iter_runs
from .heatmap import GridAccumulator, Heatmap
from .instrumentation import Trace
from .monitors import FlowThroughputMonitor

#: Default number of measurement rounds (the paper: "at least 10").
DEFAULT_RUNS = 10
DEFAULT_TIMEOUT = 900.0

#: What a protocol argument may look like across the public drivers.
ProtocolLike = Union[str, ProtocolSpec]


def _coerce_protocol(caller: str, protocol: ProtocolLike,
                     quic_cfg: Optional[QuicConfig] = None,
                     tcp_cfg: Optional[TcpConfig] = None) -> ProtocolSpec:
    """Accept a ProtocolSpec or the deprecated string + cfg-kwarg form."""
    if quic_cfg is not None or tcp_cfg is not None:
        if isinstance(protocol, ProtocolSpec):
            raise TypeError(
                f"{caller}: pass the configuration inside the ProtocolSpec, "
                f"not via quic_cfg=/tcp_cfg=")
        warnings.warn(
            f"{caller}(..., quic_cfg=/tcp_cfg=) is deprecated; pass "
            f"protocol=ProtocolSpec(name, config) instead",
            DeprecationWarning, stacklevel=3)
    if isinstance(protocol, ProtocolSpec):
        return protocol
    if protocol == "quic":
        return ProtocolSpec("quic", quic_cfg)
    if protocol == "tcp":
        return ProtocolSpec("tcp", tcp_cfg)
    raise ValueError(f"unknown protocol {protocol!r}")


#: RunRequest fields settable through the batch drivers' ``**kwargs``.
_REQUEST_FIELDS = ("device", "trace", "cwnd_interval", "proxied", "timeout")


def _request_fields(caller: str, kwargs: Dict[str, Any]) -> Dict[str, Any]:
    unknown = sorted(set(kwargs) - set(_REQUEST_FIELDS))
    if unknown:
        raise TypeError(
            f"{caller}() got unexpected keyword argument(s) "
            f"{', '.join(map(repr, unknown))}; RunRequest accepts "
            f"{', '.join(_REQUEST_FIELDS)}")
    return kwargs


def _side_spec(name: str, value: Optional[Union[QuicConfig, TcpConfig,
                                                ProtocolSpec]]) -> ProtocolSpec:
    """Coerce one comparison side (a config, a spec, or None) to a spec."""
    if isinstance(value, ProtocolSpec):
        if value.name != name:
            raise ValueError(
                f"the {name} side of a comparison got a {value.name} "
                f"ProtocolSpec")
        return value
    return ProtocolSpec(name, value)


def _seeded_requests(scenario: Scenario, page: WebPage, spec: ProtocolSpec,
                     runs: int, seed_base: int,
                     fields: Dict[str, Any]) -> List[RunRequest]:
    return [
        RunRequest(scenario=scenario, page=page, protocol=spec,
                   seed=seed_base + round_idx, **fields)
        for round_idx in range(runs)
    ]


@dataclass
class RunOutput:
    """Everything one page-load run produced."""

    result: PageLoadResult
    sim: Simulator
    client: Any
    server: Any
    server_trace: Trace
    client_trace: Trace
    path: Path
    proxy_connections: Tuple[Any, ...] = ()

    @property
    def plt(self) -> float:
        return self.result.plt


def _make_connections(sim: Simulator, path: Path, protocol: str,
                      handler: Callable[[Any], Optional[int]],
                      *, quic_cfg: QuicConfig, tcp_cfg: TcpConfig,
                      device: DeviceProfile, seed: int,
                      server_trace: Trace, client_trace: Trace,
                      flow_id: Optional[str] = None) -> Tuple[Any, Any]:
    if protocol == "quic":
        return open_quic_pair(
            sim, path.client, path.server, quic_cfg, device=device,
            request_handler=handler, server_trace=server_trace,
            client_trace=client_trace, seed=seed, flow_id=flow_id,
        )
    if protocol == "tcp":
        return open_tcp_pair(
            sim, path.client, path.server, tcp_cfg, device=device,
            request_handler=handler, server_trace=server_trace,
            client_trace=client_trace, seed=seed, flow_id=flow_id,
        )
    raise ValueError(f"unknown protocol {protocol!r}")


def run_page_load(
    scenario: Scenario,
    page: WebPage,
    protocol: ProtocolLike,
    *,
    seed: int = 0,
    quic_cfg: Optional[QuicConfig] = None,
    tcp_cfg: Optional[TcpConfig] = None,
    device: DeviceProfile = DESKTOP,
    trace: bool = False,
    cwnd_interval: float = 0.0,
    proxied: bool = False,
    timeout: float = DEFAULT_TIMEOUT,
) -> RunOutput:
    """Load ``page`` once over ``protocol`` in ``scenario``; return metrics.

    ``protocol`` is a :class:`ProtocolSpec` (or a bare ``"quic"``/
    ``"tcp"`` for the defaults; the ``quic_cfg=``/``tcp_cfg=`` keyword
    form is deprecated).  With ``proxied`` a split-connection proxy sits
    midway (Fig. 16); the proxy terminates the same protocol on both
    legs.
    """
    spec = _coerce_protocol("run_page_load", protocol, quic_cfg, tcp_cfg)
    protocol = spec.name
    if spec.name == "quic":
        quic_cfg = spec.resolved_config()
        tcp_cfg = tcp_cfg if tcp_cfg is not None else tcp_config()
    else:
        tcp_cfg = spec.resolved_config()
        quic_cfg = quic_cfg if quic_cfg is not None else quic_config(34)
    sim = Simulator()
    server_trace = Trace(label=f"{protocol}-server", enabled=trace,
                         cwnd_min_interval=cwnd_interval)
    client_trace = Trace(label=f"{protocol}-client", enabled=False)
    handler = page_request_handler(page)
    proxy_conns: Tuple[Any, ...] = ()
    if proxied:
        from ..proxy import install_proxy  # local import avoids a cycle

        path = build_proxy_path(sim, scenario, seed=seed)
        client, server, proxy_conns = install_proxy(
            sim, path, protocol, handler,
            quic_cfg=quic_cfg, tcp_cfg=tcp_cfg, device=device, seed=seed,
            server_trace=server_trace, client_trace=client_trace,
        )
    else:
        path = build_path(sim, scenario, seed=seed)
        client, server = _make_connections(
            sim, path, protocol, handler, quic_cfg=quic_cfg, tcp_cfg=tcp_cfg,
            device=device, seed=seed, server_trace=server_trace,
            client_trace=client_trace,
        )
    loader = PageLoader(sim, client, page, protocol)
    loader.start()
    sim.run_until(lambda: loader.done, timeout=timeout)
    server_trace.close(sim.now)
    client_trace.close(sim.now)
    return RunOutput(
        result=loader.result, sim=sim, client=client, server=server,
        server_trace=server_trace, client_trace=client_trace, path=path,
        proxy_connections=proxy_conns,
    )


def measure_plts(
    scenario: Scenario,
    page: WebPage,
    protocol: ProtocolLike,
    runs: int = DEFAULT_RUNS,
    *,
    seed_base: int = 0,
    jobs: Optional[int] = 1,
    store: Optional[Any] = None,
    quic_cfg: Optional[QuicConfig] = None,
    tcp_cfg: Optional[TcpConfig] = None,
    **kwargs: Any,
) -> List[float]:
    """PLT samples over ``runs`` seeded rounds (paper: >= 10 per scenario).

    ``jobs`` fans the independent rounds out across worker processes;
    seeded samples are identical to serial execution.  ``store`` serves
    already-computed rounds from a results store and persists new ones
    (see :mod:`repro.store`).
    """
    spec = _coerce_protocol("measure_plts", protocol, quic_cfg, tcp_cfg)
    fields = _request_fields("measure_plts", kwargs)
    requests = _seeded_requests(scenario, page, spec, runs, seed_base, fields)
    plts: List[Optional[float]] = [None] * len(requests)
    for event in iter_runs(requests, jobs=jobs, store=store):
        if event.terminal:
            plts[event.index] = event.require()
    return plts  # type: ignore[return-value]  # one terminal per request


def _streamed_pair(requests: List[RunRequest], runs: int, *,
                   jobs: Optional[int], store: Optional[Any],
                   treatment_name: str = "QUIC",
                   baseline_name: str = "TCP") -> SamplePair:
    """Stream a treatment-half/baseline-half batch into a SamplePair.

    ``requests`` holds the treatment side's ``runs`` rounds followed by
    the baseline side's; events slot back by index, so completion order
    (and cache-aware reordering) never changes the sample order.
    """
    pair = SamplePair(treatment_name=treatment_name,
                      baseline_name=baseline_name)
    for event in iter_runs(requests, jobs=jobs, store=store):
        if not event.terminal:
            continue
        if event.index < runs:
            pair.add("treatment", event.index, event.require())
        else:
            pair.add("baseline", event.index - runs, event.require())
    return pair


def compare_page_load(
    scenario: Scenario,
    page: WebPage,
    runs: int = DEFAULT_RUNS,
    *,
    label: Optional[str] = None,
    seed_base: int = 0,
    jobs: Optional[int] = 1,
    store: Optional[Any] = None,
    quic: Optional[Union[QuicConfig, ProtocolSpec]] = None,
    tcp: Optional[Union[TcpConfig, ProtocolSpec]] = None,
    quic_kwargs: Optional[Dict[str, Any]] = None,
    tcp_kwargs: Optional[Dict[str, Any]] = None,
    **common: Any,
) -> Comparison:
    """The paper's core unit: back-to-back QUIC and TCP rounds, compared.

    ``quic``/``tcp`` override either side's configuration (a config or a
    full :class:`ProtocolSpec`).  The per-side ``quic_kwargs``/
    ``tcp_kwargs`` dicts are deprecated and force the serial path.
    """
    if quic_kwargs is not None or tcp_kwargs is not None:
        warnings.warn(
            "compare_page_load(..., quic_kwargs=/tcp_kwargs=) is deprecated; "
            "pass quic=/tcp= ProtocolSpecs (plus shared RunRequest fields)",
            DeprecationWarning, stacklevel=2)
        quic_kw = dict(common, **(quic_kwargs or {}))
        tcp_kw = dict(common, **(tcp_kwargs or {}))
        quic_plts = [
            run_page_load(scenario, page, "quic", seed=seed_base + i,
                          **quic_kw).plt
            for i in range(runs)
        ]
        tcp_plts = [
            run_page_load(scenario, page, "tcp", seed=seed_base + i,
                          **tcp_kw).plt
            for i in range(runs)
        ]
        return Comparison(
            label or f"{scenario.name} / {page.name}", quic_plts, tcp_plts
        )
    quic_spec = _side_spec("quic", quic)
    tcp_spec = _side_spec("tcp", tcp)
    fields = _request_fields("compare_page_load", common)
    requests = (
        _seeded_requests(scenario, page, quic_spec, runs, seed_base, fields)
        + _seeded_requests(scenario, page, tcp_spec, runs, seed_base, fields)
    )
    pair = _streamed_pair(requests, runs, jobs=jobs, store=store)
    return pair.comparison(label or f"{scenario.name} / {page.name}")


def compare_quic_variants(
    scenario: Scenario,
    page: WebPage,
    treatment_cfg: QuicConfig,
    baseline_cfg: QuicConfig,
    runs: int = DEFAULT_RUNS,
    *,
    label: Optional[str] = None,
    treatment_name: str = "treatment",
    baseline_name: str = "baseline",
    seed_base: int = 0,
    jobs: Optional[int] = 1,
    store: Optional[Any] = None,
    **common: Any,
) -> Comparison:
    """Compare two QUIC configurations (e.g. 0-RTT on/off for Fig. 7)."""
    fields = _request_fields("compare_quic_variants", common)
    treatment = ProtocolSpec("quic", treatment_cfg)
    baseline = ProtocolSpec("quic", baseline_cfg)
    requests = (
        _seeded_requests(scenario, page, treatment, runs, seed_base, fields)
        + _seeded_requests(scenario, page, baseline, runs, seed_base, fields)
    )
    pair = _streamed_pair(requests, runs, jobs=jobs, store=store,
                          treatment_name=treatment_name,
                          baseline_name=baseline_name)
    return pair.comparison(label or f"{scenario.name} / {page.name}")


def build_plt_heatmap(
    title: str,
    scenarios: Sequence[Scenario],
    pages: Sequence[WebPage],
    runs: int = DEFAULT_RUNS,
    *,
    compare: Optional[Callable[[Scenario, WebPage], Comparison]] = None,
    jobs: Optional[int] = 1,
    store: Optional[Any] = None,
    seed_base: int = 0,
    quic: Optional[Union[QuicConfig, ProtocolSpec]] = None,
    tcp: Optional[Union[TcpConfig, ProtocolSpec]] = None,
    **kwargs: Any,
) -> Heatmap:
    """Build a Fig. 6/8-style heatmap: scenarios as rows, pages as columns.

    Without a custom ``compare`` callback the whole grid — every
    (scenario x page x protocol x round) — is fanned out over the
    executor in one batch, so ``jobs`` parallelises across cells, not
    just within them.  The samples stream into a
    :class:`~repro.core.heatmap.GridAccumulator` as events complete,
    so the grid's memory cost is its samples, never the record batch.
    """
    if compare is not None:
        heatmap = Heatmap(
            title,
            row_labels=[s.name for s in scenarios],
            col_labels=[p.name for p in pages],
        )
        for scenario in scenarios:
            for page in pages:
                heatmap.put(scenario.name, page.name, compare(scenario, page))
        return heatmap
    quic_spec = _side_spec("quic", quic)
    tcp_spec = _side_spec("tcp", tcp)
    fields = _request_fields("build_plt_heatmap", kwargs)
    cells: List[Tuple[Scenario, WebPage]] = [
        (scenario, page) for scenario in scenarios for page in pages
    ]
    requests: List[RunRequest] = []
    for scenario, page in cells:
        requests.extend(
            _seeded_requests(scenario, page, quic_spec, runs, seed_base,
                             fields))
        requests.extend(
            _seeded_requests(scenario, page, tcp_spec, runs, seed_base,
                             fields))
    grid = GridAccumulator(
        title,
        row_labels=[s.name for s in scenarios],
        col_labels=[p.name for p in pages],
    )
    for event in iter_runs(requests, jobs=jobs, store=store):
        if not event.terminal:
            continue
        cell_index, offset = divmod(event.index, 2 * runs)
        scenario, page = cells[cell_index]
        side = "treatment" if offset < runs else "baseline"
        grid.add(scenario.name, page.name, side, offset % runs,
                 event.require())
    return grid.build()


# ----------------------------------------------------------------------
# fairness (Table 4 / Fig. 4)
# ----------------------------------------------------------------------
@dataclass
class FairnessResult:
    """Per-flow throughputs on a shared bottleneck."""

    scenario: Scenario
    duration: float
    #: flow label -> average Mbps over the measurement window.
    average_mbps: Dict[str, float]
    #: flow label -> (time, mbps) series.
    series: Dict[str, List[Tuple[float, float]]]

    def quic_share(self) -> float:
        """QUIC's fraction of the total delivered bytes."""
        total = sum(self.average_mbps.values())
        quic = sum(v for k, v in self.average_mbps.items() if k.startswith("quic"))
        return quic / total if total > 0 else 0.0


def run_fairness(
    n_quic: int = 1,
    n_tcp: int = 1,
    duration: float = 60.0,
    *,
    scenario: Optional[Scenario] = None,
    seed: int = 0,
    quic_cfg: Optional[QuicConfig] = None,
    tcp_cfg: Optional[TcpConfig] = None,
    stagger: float = 0.1,
) -> FairnessResult:
    """Competing bulk flows over one bottleneck (Table 4's setup).

    Each flow downloads an effectively unbounded object; throughput is
    measured at the bottleneck for ``duration`` seconds.
    """
    scenario = scenario if scenario is not None else fairness_bottleneck()
    quic_cfg = quic_cfg if quic_cfg is not None else quic_config(34)
    tcp_cfg = tcp_cfg if tcp_cfg is not None else tcp_config()
    sim = Simulator()
    n_pairs = n_quic + n_tcp
    net, clients, servers, bottleneck = build_bottleneck(
        sim, scenario, n_pairs, seed=seed
    )
    monitor = FlowThroughputMonitor(bottleneck, interval=0.25)
    # An object large enough to outlast the window at the link rate.
    rate = scenario.rate_mbps if scenario.rate_mbps is not None else 1000.0
    blob = int(rate * 1e6 / 8 * duration * 2)
    handler = lambda meta: meta["size"]  # noqa: E731 - tiny closure
    rng = random.Random(seed)
    idx = 0
    for q in range(n_quic):
        flow = f"quic{q}" if n_quic > 1 else "quic"
        client, _server = open_quic_pair(
            sim, clients[idx], servers[idx], quic_cfg,
            request_handler=handler, seed=rng.randrange(1 << 30), flow_id=flow,
        )
        start = stagger * idx
        sim.schedule(start, client.connect)
        sim.schedule(start, client.request, {"size": blob}, lambda *a: None)
        idx += 1
    for t in range(n_tcp):
        flow = f"tcp{t + 1}" if n_tcp > 1 else "tcp"
        client, _server = open_tcp_pair(
            sim, clients[idx], servers[idx], tcp_cfg,
            request_handler=handler, seed=rng.randrange(1 << 30), flow_id=flow,
        )
        start = stagger * idx

        def kickoff(c=client):
            c.connect(lambda now, c=c: c.request({"size": blob}, lambda *a: None))

        sim.schedule(start, kickoff)
        idx += 1
    sim.run(until=duration)
    averages = {
        flow: monitor.average_mbps(flow, duration) for flow in monitor.flows()
    }
    series = {flow: monitor.series_mbps(flow) for flow in monitor.flows()}
    return FairnessResult(scenario, duration, averages, series)


# ----------------------------------------------------------------------
# single bulk transfers with instrumentation (Figs. 5, 9, 10, 11)
# ----------------------------------------------------------------------
@dataclass
class TransferResult:
    """One instrumented bulk download."""

    protocol: str
    size_bytes: int
    elapsed: float
    throughput_mbps: float
    cwnd_series: List[Tuple[float, int]]
    server_trace: Trace
    stats: Any
    false_losses: int = 0
    losses: int = 0


def run_bulk_transfer(
    scenario: Scenario,
    size_bytes: int,
    protocol: ProtocolLike,
    *,
    seed: int = 0,
    quic_cfg: Optional[QuicConfig] = None,
    tcp_cfg: Optional[TcpConfig] = None,
    variable_bw: Optional[Tuple[float, float, float]] = None,
    cwnd_interval: float = 0.01,
    timeout: float = DEFAULT_TIMEOUT,
) -> TransferResult:
    """Download one object, recording cwnd and loss-detection activity.

    ``variable_bw=(low_mbps, high_mbps, period)`` re-draws the bottleneck
    rate during the transfer (Fig. 11).
    """
    spec = _coerce_protocol("run_bulk_transfer", protocol, quic_cfg, tcp_cfg)
    protocol = spec.name
    if spec.name == "quic":
        quic_cfg = spec.resolved_config()
        tcp_cfg = tcp_cfg if tcp_cfg is not None else tcp_config()
    else:
        tcp_cfg = spec.resolved_config()
        quic_cfg = quic_cfg if quic_cfg is not None else quic_config(34)
    sim = Simulator()
    path = build_path(sim, scenario, seed=seed)
    if variable_bw is not None:
        low, high, period = variable_bw
        schedule = BandwidthSchedule(
            sim, [path.bottleneck_down, path.bottleneck_up],
            mbps(low), mbps(high), period=period,
            rng=random.Random(seed ^ 0xBEEF),
        )
        schedule.start()
    server_trace = Trace(label=f"{protocol}-server", enabled=True,
                         cwnd_min_interval=cwnd_interval)
    page = single_object_page(size_bytes)
    handler = page_request_handler(page)
    client, server = _make_connections(
        sim, path, protocol, handler, quic_cfg=quic_cfg, tcp_cfg=tcp_cfg,
        device=DESKTOP, seed=seed, server_trace=server_trace,
        client_trace=Trace(enabled=False),
    )
    loader = PageLoader(sim, client, page, protocol)
    loader.start()
    sim.run_until(lambda: loader.done, timeout=timeout)
    server_trace.close(sim.now)
    if not loader.done:
        raise RuntimeError(f"{protocol} bulk transfer did not finish in {timeout}s")
    elapsed = loader.result.plt
    if protocol == "quic":
        false_losses = server.loss_detector.false_losses
        losses = server.loss_detector.losses_declared
    else:
        false_losses = server.stats.spurious_retransmits
        losses = server.stats.retransmits
    return TransferResult(
        protocol=protocol,
        size_bytes=size_bytes,
        elapsed=elapsed,
        throughput_mbps=size_bytes * 8 / elapsed / 1e6,
        cwnd_series=server_trace.series("cwnd"),
        server_trace=server_trace,
        stats=server.stats,
        false_losses=false_losses,
        losses=losses,
    )

"""Parallel experiment execution engine.

The paper's methodology is a large matrix of *independent* seeded
simulations — "at least 10" rounds per (scenario x workload x protocol)
cell — and every run is a pure function of ``(configuration, seed)``.
That makes the matrix embarrassingly parallel: this module fans the runs
out across CPU cores.

The unit of work is a :class:`RunRequest`: a frozen, picklable
description of one run (scenario, page workload, :class:`ProtocolSpec`,
device, seed, trace options).  Executing one yields a :class:`RunRecord`
carrying the metrics, wall-clock timing and — instead of an exception
that would poison a whole batch — a structured :class:`RunFailure`.

:func:`iter_runs` is the engine: a bounded process pool (``jobs``
workers, chunked dispatch) with per-run wall-clock timeout enforcement
and bounded retry-on-failure, surfaced to the caller as a *stream* of
typed :class:`RunEvent`\\ s (``hit`` / ``miss-start`` / ``retry`` /
``complete`` / ``timeout`` / ``error``).  When a results store is
attached, pool workers write their full :class:`RunRecord`\\ s straight
into the store (the sharded backend's per-shard locks make multi-writer
append safe) and only the lightweight events — key, status, summary
stats, never a record payload — cross the pipe back to the parent.  A
10⁵-cell sweep therefore costs the parent O(cells) small events, not
O(cells) pickled records, and its memory stays bounded by whatever the
caller accumulates.

:func:`run_requests` remains as a thin compatibility wrapper that
materialises the stream into the classic request-ordered
``List[RunRecord]``.  Each run re-seeds from its request alone, so a
parallel execution is bit-identical to a serial one.  ``jobs=1`` is a
true in-process serial mode — the escape hatch for Windows, coverage
tooling, and debugging — and the engine degrades to it automatically if
the pool cannot be used.
"""

from __future__ import annotations

import contextlib
import os
import signal
import sys
import threading
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..devices import DESKTOP, DeviceProfile
from ..http.objects import WebPage
from ..netem.profiles import Scenario
from .manyflow import ManyflowConfig
from ..quic.config import QuicConfig, quic_config
from ..tcp.config import TcpConfig, tcp_config

#: Simulated-time cap per run (mirrors ``runner.DEFAULT_TIMEOUT``).
DEFAULT_SIM_TIMEOUT = 900.0
#: Environment knob forcing in-process serial execution everywhere.
SERIAL_ENV_VAR = "REPRO_EXECUTOR_SERIAL"
#: Below this many requests the pool's fork/IPC overhead exceeds any
#: speedup, so the engine runs them in-process instead.
MIN_PARALLEL = 4

PROTOCOL_NAMES = ("quic", "tcp")


# ----------------------------------------------------------------------
# request / result types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProtocolSpec:
    """A protocol plus its configuration, as one picklable value.

    Replaces the stringly ``protocol="quic"`` + ``quic_cfg=``/``tcp_cfg=``
    keyword sprawl: the name selects the stack, ``config`` carries its
    tunables (``None`` means the paper's defaults, resolved lazily so the
    pickle stays small).
    """

    name: str
    config: Optional[Union[QuicConfig, TcpConfig]] = None

    def __post_init__(self) -> None:
        if self.name not in PROTOCOL_NAMES:
            raise ValueError(
                f"unknown protocol {self.name!r} (expected one of "
                f"{', '.join(PROTOCOL_NAMES)})"
            )
        if self.config is not None:
            expected = QuicConfig if self.name == "quic" else TcpConfig
            if not isinstance(self.config, expected):
                raise TypeError(
                    f"{self.name} ProtocolSpec needs a {expected.__name__}, "
                    f"got {type(self.config).__name__}"
                )

    # -- constructors ------------------------------------------------------
    @classmethod
    def quic(cls, config: Optional[QuicConfig] = None, *,
             version: Optional[int] = None) -> "ProtocolSpec":
        """A QUIC spec; ``version`` builds the version-keyed config."""
        if version is not None:
            if config is not None:
                raise TypeError("pass either config or version, not both")
            config = quic_config(version)
        return cls("quic", config)

    @classmethod
    def tcp(cls, config: Optional[TcpConfig] = None) -> "ProtocolSpec":
        return cls("tcp", config)

    @classmethod
    def of(cls, protocol: Union[str, "ProtocolSpec"],
           config: Optional[Union[QuicConfig, TcpConfig]] = None
           ) -> "ProtocolSpec":
        """Coerce a protocol name or an existing spec into a spec."""
        if isinstance(protocol, ProtocolSpec):
            if config is not None:
                raise TypeError(
                    "pass the configuration inside the ProtocolSpec, not "
                    "alongside it")
            return protocol
        return cls(protocol, config)

    # -- accessors ---------------------------------------------------------
    def resolved_config(self) -> Union[QuicConfig, TcpConfig]:
        """The configuration, with the paper's defaults filled in."""
        if self.config is not None:
            return self.config
        return quic_config(34) if self.name == "quic" else tcp_config()

    @property
    def label(self) -> str:
        if self.config is None:
            return self.name
        if isinstance(self.config, QuicConfig):
            return self.config.label()
        return "tcp(custom)"


@dataclass(frozen=True)
class RunRequest:
    """One seeded run, serialisable to a worker process and back.

    Everything needed to reconstruct the run lives here as plain frozen
    data: the :class:`~repro.netem.profiles.Scenario` (itself a data-only
    spec — see ``Scenario.to_spec``/``from_spec``), the page workload,
    the :class:`ProtocolSpec`, the device model, the seed, and the trace
    options.  ``timeout`` caps *simulated* time (the in-sim watchdog);
    wall-clock budgets are enforced by the executor.
    """

    scenario: Scenario
    page: WebPage
    protocol: ProtocolSpec
    seed: int = 0
    device: DeviceProfile = DESKTOP
    trace: bool = False
    cwnd_interval: float = 0.0
    proxied: bool = False
    timeout: float = DEFAULT_SIM_TIMEOUT
    #: When set, this request is a many-flow aggregate run: the engine in
    #: :mod:`repro.core.manyflow` executes it instead of a page load, and
    #: ``page``/``protocol`` serve only as cell-addressing labels.
    manyflow: Optional[ManyflowConfig] = None

    @property
    def label(self) -> str:
        return (f"{self.protocol.name} {self.page.name} @ "
                f"{self.scenario.name} seed={self.seed}")

    def with_(self, **changes: Any) -> "RunRequest":
        return replace(self, **changes)

    def execute(self) -> "RunRecord":
        """Run in-process (no pool) and return the record."""
        return execute_request(self)


@dataclass(frozen=True)
class RunFailure:
    """Structured description of why a run produced no sample.

    ``kind`` is one of ``"timeout"`` (wall-clock budget exceeded),
    ``"incomplete"`` (the simulation hit its simulated-time cap), or
    ``"error"`` (an exception — the only kind the executor retries).
    """

    kind: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


@dataclass
class RunRecord:
    """What one executed :class:`RunRequest` produced."""

    request: RunRequest
    plt: Optional[float] = None
    complete: bool = False
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Wall-clock seconds the (final) attempt took.
    wall_time: float = 0.0
    #: Total attempts made, including the successful one.
    attempts: int = 1
    failure: Optional[RunFailure] = None
    #: True when this record was served from a results store rather than
    #: executed (see :mod:`repro.store`); never persisted.
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.failure is None and self.complete

    def require(self) -> float:
        """The PLT sample, or a RuntimeError mirroring the serial API."""
        if self.ok and self.plt is not None:
            return self.plt
        reason = str(self.failure) if self.failure else "did not complete"
        raise RuntimeError(
            f"{self.request.protocol.name} load of {self.request.page.name} "
            f"in {self.request.scenario.name} (seed {self.request.seed}) "
            f"failed: {reason}"
        )


#: A run function: maps a request to a record (may raise).  Injectable so
#: tests can exercise timeout/retry handling without real simulations.
RunFn = Callable[[RunRequest], RunRecord]
ProgressFn = Callable[[RunRecord], None]

# ----------------------------------------------------------------------
# the event stream
# ----------------------------------------------------------------------
#: Every kind a :class:`RunEvent` can carry, in rough lifecycle order.
EVENT_KINDS = ("hit", "miss-start", "retry", "complete", "timeout", "error")
#: Kinds that end a request's lifecycle (exactly one per request).
TERMINAL_EVENTS = frozenset({"hit", "complete", "timeout", "error"})
#: Upper bound on one pickled streaming event (asserted in tests): the
#: parent-pipe cost of a cell is a few hundred bytes, not a record.
EVENT_WIRE_BOUND = 1024
#: Failure messages are clipped to keep events under the wire bound.
_FAILURE_MESSAGE_LIMIT = 300


def _clipped(message: Optional[str]) -> Optional[str]:
    if message is None or len(message) <= _FAILURE_MESSAGE_LIMIT:
        return message
    return message[:_FAILURE_MESSAGE_LIMIT - 3] + "..."


@dataclass(frozen=True)
class RunEvent:
    """One step of a streamed execution (see :func:`iter_runs`).

    Events identify their run by coordinates — ``(scenario, page,
    protocol, seed)`` names plus the request ``index`` — and carry only
    strings and numbers, never a request or record object, so they stay
    tiny on the parent pipe (``EVENT_WIRE_BOUND`` bytes pickled).

    Kinds:

    - ``"hit"`` — served from the results store, no execution (terminal).
    - ``"miss-start"`` — execution of this request began.
    - ``"retry"`` — one failed attempt that will be retried; ``attempts``
      counts attempts so far and ``failure_kind``/``failure_message``
      describe what went wrong.  One event per failed attempt, so store
      counters reconcile exactly with the events observed.
    - ``"complete"`` — the run finished (terminal).  ``ok`` distinguishes
      a measured sample from a structured ``"incomplete"`` outcome.
    - ``"timeout"`` / ``"error"`` — the run's final attempt failed with
      that failure kind (terminal).

    ``stored`` marks terminal events whose record is in the results
    store (a hit, a worker-direct write-back, or a parent-side offer).
    ``record`` is populated only on the ``keep_records`` compatibility
    path used by :func:`run_requests`; on the streaming path it is
    always ``None``.
    """

    kind: str
    index: int
    scenario: str
    page: str
    protocol: str
    seed: int
    key: Optional[str] = None
    plt: Optional[float] = None
    ok: bool = False
    attempts: int = 1
    wall_time: float = 0.0
    failure_kind: Optional[str] = None
    failure_message: Optional[str] = None
    cached: bool = False
    stored: bool = False
    record: Optional[RunRecord] = None

    @property
    def terminal(self) -> bool:
        """Whether this event ends its request's lifecycle."""
        return self.kind in TERMINAL_EVENTS

    @property
    def label(self) -> str:
        return (f"{self.protocol} {self.page} @ {self.scenario} "
                f"seed={self.seed}")

    def require(self) -> float:
        """The measured PLT, or a loud error mirroring ``RunRecord.require``."""
        if self.ok and self.plt is not None:
            return self.plt
        if self.failure_kind is not None:
            reason = f"[{self.failure_kind}] {self.failure_message}"
        else:
            reason = "did not complete"
        raise RuntimeError(
            f"{self.protocol} load of {self.page} in {self.scenario} "
            f"(seed {self.seed}) failed: {reason}"
        )


def _event(kind: str, index: int, request: RunRequest,
           key: Optional[str]) -> RunEvent:
    return RunEvent(kind=kind, index=index, scenario=request.scenario.name,
                    page=request.page.name, protocol=request.protocol.name,
                    seed=request.seed, key=key)


def _retry_event(index: int, request: RunRequest, key: Optional[str],
                 attempt: RunRecord) -> RunEvent:
    failure = attempt.failure
    return RunEvent(
        kind="retry", index=index, scenario=request.scenario.name,
        page=request.page.name, protocol=request.protocol.name,
        seed=request.seed, key=key, attempts=attempt.attempts,
        wall_time=attempt.wall_time,
        failure_kind=failure.kind if failure is not None else None,
        failure_message=_clipped(failure.message) if failure is not None
        else None)


def _terminal_kind(record: RunRecord) -> str:
    """The event kind a final record maps to.

    ``"incomplete"`` is a structured, deterministic (and cacheable)
    outcome of a finished run, so it surfaces as ``"complete"`` with
    ``ok=False`` rather than as its own kind.
    """
    if record.failure is not None and record.failure.kind in ("timeout",
                                                              "error"):
        return record.failure.kind
    return "complete"


def _terminal_event(kind: str, index: int, request: RunRequest,
                    key: Optional[str], record: RunRecord, *,
                    stored: bool = False,
                    attach: Optional[RunRecord] = None) -> RunEvent:
    failure = record.failure
    return RunEvent(
        kind=kind, index=index, scenario=request.scenario.name,
        page=request.page.name, protocol=request.protocol.name,
        seed=request.seed, key=key, plt=record.plt, ok=record.ok,
        attempts=record.attempts, wall_time=record.wall_time,
        failure_kind=failure.kind if failure is not None else None,
        failure_message=_clipped(failure.message) if failure is not None
        else None,
        cached=record.cached, stored=stored, record=attach)


def execute_request(request: RunRequest) -> RunRecord:
    """Execute one request with the real simulator (the default RunFn)."""
    if request.manyflow is not None:
        from .manyflow import execute_manyflow
        return execute_manyflow(request)

    from .runner import run_page_load  # runner sits above this module

    output = run_page_load(
        request.scenario, request.page, request.protocol,
        seed=request.seed, device=request.device, trace=request.trace,
        cwnd_interval=request.cwnd_interval, proxied=request.proxied,
        timeout=request.timeout,
    )
    result = output.result
    metrics: Dict[str, float] = {
        "bytes": float(request.page.total_bytes),
        "objects": float(request.page.object_count),
    }
    if request.trace:
        for state, fraction in output.server_trace.dwell_fractions().items():
            metrics[f"dwell:{state}"] = fraction
    if not result.complete:
        return RunRecord(
            request=request, plt=None, complete=False, metrics=metrics,
            failure=RunFailure(
                "incomplete",
                f"page load still running after {request.timeout:g}s of "
                f"simulated time"),
        )
    metrics["plt"] = result.plt
    return RunRecord(request=request, plt=result.plt, complete=True,
                     metrics=metrics)


# ----------------------------------------------------------------------
# wall-clock timeout enforcement
# ----------------------------------------------------------------------
class WallClockTimeout(Exception):
    """Raised inside a run when its wall-clock budget expires."""


@contextlib.contextmanager
def _wall_clock_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`WallClockTimeout` in the current frame after ``seconds``.

    Uses ``SIGALRM``; on platforms without it (Windows) or off the main
    thread the budget is simply not enforced — the simulated-time cap in
    the request still bounds the run.
    """
    usable = (
        seconds is not None and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum: int, frame: Any) -> None:
        raise WallClockTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _guarded_run(run_fn: RunFn, request: RunRequest,
                 wall_timeout: Optional[float]) -> RunRecord:
    """One attempt: exceptions and timeouts become failure records."""
    start = time.perf_counter()
    try:
        with _wall_clock_deadline(wall_timeout):
            record = run_fn(request)
        if not isinstance(record, RunRecord):
            raise TypeError(
                f"run function returned {type(record).__name__}, "
                f"expected RunRecord")
    except WallClockTimeout:
        record = RunRecord(request=request, failure=RunFailure(
            "timeout",
            f"run exceeded its {wall_timeout:g}s wall-clock budget"))
    except Exception as exc:  # noqa: BLE001 - converted to structured failure
        record = RunRecord(request=request, failure=RunFailure(
            "error", f"{type(exc).__name__}: {exc}"))
    record.wall_time = time.perf_counter() - start
    return record


def _run_with_retries(run_fn: RunFn, request: RunRequest,
                      wall_timeout: Optional[float], retries: int,
                      on_retry: Optional[ProgressFn] = None) -> RunRecord:
    """Attempt a run up to ``1 + retries`` times.

    Only ``"error"`` failures are retried: timeouts and simulated-time
    exhaustion are deterministic in this simulator, so repeating them
    would only burn the pool's time.  ``on_retry`` sees the failed
    record of every attempt that *will* be retried — the final attempt,
    successful or exhausted, is the return value instead.
    """
    attempt = 0
    while True:
        attempt += 1
        record = _guarded_run(run_fn, request, wall_timeout)
        record.attempts = attempt
        if record.failure is None or record.failure.kind != "error":
            return record
        if attempt > retries:
            return record
        if on_retry is not None:
            on_retry(record)


#: A parent-precomputed unit of work: ``(index, request, key, fingerprint)``.
#: ``key``/``fingerprint`` are ``None`` when no store is attached.
TaggedRequest = Tuple[int, RunRequest, Optional[str], Optional[str]]


def _cacheable_policy() -> Callable[[RunRecord], bool]:
    from ..store.cache import RunCache  # lazy: store imports this module

    return RunCache.cacheable


def _run_chunk_events(run_fn: RunFn, chunk: Sequence[TaggedRequest],
                      wall_timeout: Optional[float], retries: int,
                      writeback: Optional[Tuple[str, str]],
                      keep_records: bool) -> List[RunEvent]:
    """Worker-side entry point: execute one chunk of tagged misses.

    With ``writeback`` (a ``(path, kind)`` store spec) the worker
    persists the chunk's cacheable records straight into the store —
    one batched append per shard — and the returned events cross the
    pipe payload-free.  With ``keep_records`` the full records ride
    back on the terminal events instead (the compatibility path
    :func:`run_requests` uses; the parent writes the store there).
    """
    events: List[RunEvent] = []
    batch: List[Tuple[str, RunRecord, str]] = []
    cacheable = _cacheable_policy() if writeback is not None else None
    for index, request, key, fingerprint in chunk:
        retried: List[RunRecord] = []
        record = _run_with_retries(run_fn, request, wall_timeout, retries,
                                   on_retry=retried.append)
        for failed in retried:
            events.append(_retry_event(index, request, key, failed))
        stored = False
        if cacheable is not None and key is not None and cacheable(record):
            batch.append((key, record, fingerprint or ""))
            stored = True
        events.append(_terminal_event(
            _terminal_kind(record), index, request, key, record,
            stored=stored, attach=record if keep_records else None))
    if batch:
        from ..store.backend import open_store  # lazy, as above

        path, kind = writeback  # type: ignore[misc]  # batch implies spec
        store = open_store(path, backend=kind)
        try:
            store.put_many(batch)
            store.bump_counter("writes", len(batch))
        finally:
            store.close()
    return events


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
def usable_cpu_count() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine; containers and ``taskset``
    often allow far fewer.  Scheduling more workers than usable CPUs
    just adds context-switch overhead (a 1-CPU box shows a *slowdown*),
    so the executor clamps to the affinity mask where the platform
    exposes one.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument: ``None``/``0`` mean "all usable cores"."""
    if jobs is None or jobs == 0:
        return usable_cpu_count()
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = all cores)")
    return jobs


def _force_serial() -> bool:
    return sys.platform == "win32" or bool(os.environ.get(SERIAL_ENV_VAR))


def iter_runs(
    requests: Sequence[RunRequest],
    *,
    jobs: Optional[int] = 1,
    wall_timeout: Optional[float] = None,
    retries: int = 1,
    chunk_size: Optional[int] = None,
    run_fn: Optional[RunFn] = None,
    store: Optional[Any] = None,
    keep_records: bool = False,
    force_pool: bool = False,
) -> Iterator[RunEvent]:
    """Execute ``requests``, streaming typed :class:`RunEvent`\\ s.

    This is the primary execution API.  Exactly one *terminal* event
    (``hit``/``complete``/``timeout``/``error``) is emitted per request,
    carrying the request's ``index`` so callers can slot samples back
    into request order; ``miss-start`` and per-attempt ``retry`` events
    interleave as execution proceeds.  Nothing is materialised: a sweep
    is O(1) memory here, bounded only by what the caller accumulates.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs serially in-process, ``None``/``0``
        uses every usable core.  The count is clamped to the CPUs the
        process may run on (affinity mask), and batches smaller than
        ``MIN_PARALLEL`` run in-process — a pool that cannot win is
        never started.  Serial mode is also forced on Windows or when
        ``REPRO_EXECUTOR_SERIAL`` is set (the coverage/debug escape
        hatch).
    wall_timeout:
        Per-run wall-clock budget in seconds; an overrun yields a
        ``"timeout"`` :class:`RunFailure` instead of hanging the pool.
    retries:
        How many times an ``"error"`` failure is retried (bounded;
        deterministic timeout/incomplete failures are never retried).
        Every retried attempt surfaces as a ``retry`` event.
    chunk_size:
        Requests dispatched per pool task; defaults to an even split
        that gives each worker ~4 chunks (amortises IPC without
        serialising the tail).
    run_fn:
        The per-request run function (default: the real simulator).
        Must be picklable (module-level) when ``jobs > 1``.
    store:
        A results store — a :class:`repro.store.RunCache`, any
        :class:`repro.store.StoreBackend` (sqlite file or sharded JSONL
        directory), or a path to one (see
        :func:`repro.store.resolve_store`).  Requests whose content
        address is already stored are served as ``hit`` events (no
        execution); misses execute and are written back *as they
        complete*, so an interrupted sweep is resumable — the rerun
        only executes the missing requests.  On the pool path the
        workers write their records **directly** into the store (one
        batched append per chunk) and only the payload-free events
        reach the parent.
    keep_records:
        Attach the full :class:`RunRecord` to each terminal event (and
        route store writes back through the parent).  This is the
        compatibility mode :func:`run_requests` uses; leave it off to
        keep record payloads out of the parent process entirely.
    force_pool:
        Start the process pool even where the auto-serial heuristics
        (CPU-affinity clamp, ``MIN_PARALLEL``) would decline it — for
        I/O-bound run functions and multi-writer store tests on small
        machines.  ``REPRO_EXECUTOR_SERIAL`` and Windows still force
        serial.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    n_jobs = resolve_jobs(jobs)
    return _iter_runs(list(requests), n_jobs, wall_timeout, retries,
                      chunk_size, run_fn, store, keep_records, force_pool)


def _iter_runs(requests: List[RunRequest], n_jobs: int,
               wall_timeout: Optional[float], retries: int,
               chunk_size: Optional[int], run_fn: Optional[RunFn],
               store: Optional[Any], keep_records: bool,
               force_pool: bool) -> Iterator[RunEvent]:
    """The generator behind :func:`iter_runs` (knobs validated there)."""
    run = run_fn if run_fn is not None else execute_request
    if not requests:
        return
    cache = None
    if store is not None:
        from ..store.cache import RunCache  # lazy: store imports this module

        cache = RunCache.of(store)
    misses: List[TaggedRequest] = []
    for index, request in enumerate(requests):
        if cache is None:
            misses.append((index, request, None, None))
            continue
        key, fingerprint, hit = cache.lookup_with_key(request)
        if hit is None:
            misses.append((index, request, key, fingerprint))
        else:
            yield _terminal_event("hit", index, request, key, hit,
                                  stored=True,
                                  attach=hit if keep_records else None)
    if not misses:
        return
    # Cache-aware scheduling: execute the heaviest misses first (object
    # count, then bytes, as the expected-cost proxy) so a long run never
    # lands last on an otherwise-drained pool.  The sort is stable and
    # events carry their request index, so callers see no difference.
    misses.sort(key=lambda tagged: (tagged[1].page.object_count,
                                    tagged[1].page.total_bytes),
                reverse=True)
    if not force_pool:
        n_jobs = min(n_jobs, usable_cpu_count())
    n_jobs = min(n_jobs, len(misses))
    use_pool = (n_jobs > 1 and not _force_serial()
                and (force_pool or len(misses) >= MIN_PARALLEL))
    if not use_pool:
        for tagged in misses:
            yield from _stream_one(run, tagged, cache, wall_timeout, retries,
                                   keep_records)
        return
    yield from _stream_pooled(run, misses, n_jobs, wall_timeout, retries,
                              chunk_size, cache, keep_records)


def _stream_one(run: RunFn, tagged: TaggedRequest, cache: Optional[Any],
                wall_timeout: Optional[float], retries: int,
                keep_records: bool) -> Iterator[RunEvent]:
    """In-process execution of one miss, store offer included."""
    index, request, key, _fingerprint = tagged
    yield _event("miss-start", index, request, key)
    retried: List[RunRecord] = []
    record = _run_with_retries(run, request, wall_timeout, retries,
                               on_retry=retried.append)
    for failed in retried:
        if cache is not None:
            cache.retries += 1
        yield _retry_event(index, request, key, failed)
    stored = cache.offer(record) if cache is not None else False
    yield _terminal_event(_terminal_kind(record), index, request, key, record,
                          stored=stored,
                          attach=record if keep_records else None)


def _stream_pooled(run: RunFn, misses: List[TaggedRequest], n_jobs: int,
                   wall_timeout: Optional[float], retries: int,
                   chunk_size: Optional[int], cache: Optional[Any],
                   keep_records: bool) -> Iterator[RunEvent]:
    """Pool execution: worker-direct write-back, events to the parent."""
    if chunk_size is None:
        chunk_size = max(1, len(misses) // (n_jobs * 4))
    chunks = [misses[start:start + chunk_size]
              for start in range(0, len(misses), chunk_size)]
    # Worker-direct write-back needs a store the workers can reopen by
    # path; in keep_records mode the records cross the pipe anyway, so
    # the parent writes them instead (one batched offer per chunk).
    writeback: Optional[Tuple[str, str]] = None
    if (cache is not None and not keep_records
            and getattr(cache.store, "path", ":memory:") != ":memory:"):
        writeback = (cache.store.path, cache.store.kind)
    # Records must reach the parent when it is the one writing the store
    # (keep_records mode, or an in-memory store workers cannot reopen).
    attach = keep_records or (cache is not None and writeback is None)
    done: set = set()
    completed = True
    try:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            pending = {
                pool.submit(_run_chunk_events, run, chunk, wall_timeout,
                            retries, writeback, attach)
                for chunk in chunks
            }
            try:
                for chunk in chunks:
                    for tagged in chunk:
                        yield _event("miss-start", tagged[0], tagged[1],
                                     tagged[2])
                while pending:
                    finished, pending = wait(pending,
                                             return_when=FIRST_COMPLETED)
                    for future in finished:
                        try:
                            events = future.result()
                        except Exception:  # noqa: BLE001 - broken pool/pickle
                            continue  # chunk lost; serial completion below
                        yield from _relay_chunk(events, cache, writeback,
                                                keep_records, done)
            except GeneratorExit:
                for future in pending:
                    future.cancel()
                raise
    except GeneratorExit:
        raise
    except Exception:  # pragma: no cover - pool setup failure
        completed = False  # graceful fallback: run everything serially
    # Anything a lost chunk or failed pool left behind finishes serially.
    # Those requests get a second miss-start — announcing the rerun —
    # but still exactly one terminal event.
    del completed
    for tagged in misses:
        if tagged[0] in done:
            continue
        yield from _stream_one(run, tagged, cache, wall_timeout, retries,
                               keep_records)


def _relay_chunk(events: List[RunEvent], cache: Optional[Any],
                 writeback: Optional[Tuple[str, str]], keep_records: bool,
                 done: set) -> Iterator[RunEvent]:
    """Parent-side bookkeeping for one worker chunk's events."""
    offered: set = set()
    if cache is not None and writeback is None:
        # The records crossed the pipe (keep_records mode or an
        # in-memory store), so the parent persists them — one batched
        # store write per chunk.
        fresh = [event.record for event in events
                 if event.terminal and event.record is not None
                 and cache.cacheable(event.record)]
        if fresh:
            cache.offer_many(fresh)
            offered = {id(record) for record in fresh}
    for event in events:
        if event.terminal:
            done.add(event.index)
            if cache is not None and writeback is not None and event.stored:
                cache.writes += 1  # worker wrote it; count it this session
            elif event.record is not None and id(event.record) in offered:
                event = replace(event, stored=True)
        elif event.kind == "retry" and cache is not None:
            cache.retries += 1
        if event.record is not None and not keep_records:
            event = replace(event, record=None)
        yield event


def run_requests(
    requests: Sequence[RunRequest],
    *,
    jobs: Optional[int] = 1,
    wall_timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[ProgressFn] = None,
    chunk_size: Optional[int] = None,
    run_fn: Optional[RunFn] = None,
    store: Optional[Any] = None,
    force_pool: bool = False,
) -> List[RunRecord]:
    """Execute ``requests`` and return records in *request order*.

    Compatibility wrapper over :func:`iter_runs`: it materialises the
    event stream into the classic list (so the whole batch is held in
    memory — prefer :func:`iter_runs` for large sweeps).  All knobs are
    forwarded unchanged; see :func:`iter_runs` for their semantics.

    .. deprecated:: the ``progress`` callback.  Iterate
       :func:`iter_runs` and consume its typed events instead — they
       carry strictly more information (hits, retries, per-attempt
       failures) at a fraction of the parent-pipe cost.
    """
    if progress is not None:
        warnings.warn(
            "run_requests(progress=...) is deprecated; iterate "
            "iter_runs(...) and consume its typed RunEvents instead",
            DeprecationWarning, stacklevel=2)
    requests = list(requests)
    results: List[Optional[RunRecord]] = [None] * len(requests)
    for event in iter_runs(requests, jobs=jobs, wall_timeout=wall_timeout,
                           retries=retries, chunk_size=chunk_size,
                           run_fn=run_fn, store=store, keep_records=True,
                           force_pool=force_pool):
        if not event.terminal:
            continue
        results[event.index] = event.record
        if progress is not None:
            progress(event.record)
    return results  # type: ignore[return-value]  # one terminal per request


def failed_records(records: Sequence[RunRecord]) -> List[RunRecord]:
    """The subset of ``records`` that produced no sample."""
    return [record for record in records if not record.ok]

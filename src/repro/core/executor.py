"""Parallel experiment execution engine.

The paper's methodology is a large matrix of *independent* seeded
simulations — "at least 10" rounds per (scenario x workload x protocol)
cell — and every run is a pure function of ``(configuration, seed)``.
That makes the matrix embarrassingly parallel: this module fans the runs
out across CPU cores.

The unit of work is a :class:`RunRequest`: a frozen, picklable
description of one run (scenario, page workload, :class:`ProtocolSpec`,
device, seed, trace options).  Executing one yields a :class:`RunRecord`
carrying the metrics, wall-clock timing and — instead of an exception
that would poison a whole batch — a structured :class:`RunFailure`.

:func:`run_requests` is the engine: a bounded process pool
(``jobs`` workers, chunked dispatch) with per-run wall-clock timeout
enforcement, bounded retry-on-failure, and a progress callback.  Results
are always returned in *request order* regardless of completion order,
and each run re-seeds from its request alone, so a parallel execution is
bit-identical to a serial one.  ``jobs=1`` is a true in-process serial
mode — the escape hatch for Windows, coverage tooling, and debugging —
and the engine degrades to it automatically if the pool cannot be used.
"""

from __future__ import annotations

import contextlib
import os
import signal
import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..devices import DESKTOP, DeviceProfile
from ..http.objects import WebPage
from ..netem.profiles import Scenario
from ..quic.config import QuicConfig, quic_config
from ..tcp.config import TcpConfig, tcp_config

#: Simulated-time cap per run (mirrors ``runner.DEFAULT_TIMEOUT``).
DEFAULT_SIM_TIMEOUT = 900.0
#: Environment knob forcing in-process serial execution everywhere.
SERIAL_ENV_VAR = "REPRO_EXECUTOR_SERIAL"
#: Below this many requests the pool's fork/IPC overhead exceeds any
#: speedup, so the engine runs them in-process instead.
MIN_PARALLEL = 4

PROTOCOL_NAMES = ("quic", "tcp")


# ----------------------------------------------------------------------
# request / result types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProtocolSpec:
    """A protocol plus its configuration, as one picklable value.

    Replaces the stringly ``protocol="quic"`` + ``quic_cfg=``/``tcp_cfg=``
    keyword sprawl: the name selects the stack, ``config`` carries its
    tunables (``None`` means the paper's defaults, resolved lazily so the
    pickle stays small).
    """

    name: str
    config: Optional[Union[QuicConfig, TcpConfig]] = None

    def __post_init__(self) -> None:
        if self.name not in PROTOCOL_NAMES:
            raise ValueError(
                f"unknown protocol {self.name!r} (expected one of "
                f"{', '.join(PROTOCOL_NAMES)})"
            )
        if self.config is not None:
            expected = QuicConfig if self.name == "quic" else TcpConfig
            if not isinstance(self.config, expected):
                raise TypeError(
                    f"{self.name} ProtocolSpec needs a {expected.__name__}, "
                    f"got {type(self.config).__name__}"
                )

    # -- constructors ------------------------------------------------------
    @classmethod
    def quic(cls, config: Optional[QuicConfig] = None, *,
             version: Optional[int] = None) -> "ProtocolSpec":
        """A QUIC spec; ``version`` builds the version-keyed config."""
        if version is not None:
            if config is not None:
                raise TypeError("pass either config or version, not both")
            config = quic_config(version)
        return cls("quic", config)

    @classmethod
    def tcp(cls, config: Optional[TcpConfig] = None) -> "ProtocolSpec":
        return cls("tcp", config)

    @classmethod
    def of(cls, protocol: Union[str, "ProtocolSpec"],
           config: Optional[Union[QuicConfig, TcpConfig]] = None
           ) -> "ProtocolSpec":
        """Coerce a protocol name or an existing spec into a spec."""
        if isinstance(protocol, ProtocolSpec):
            if config is not None:
                raise TypeError(
                    "pass the configuration inside the ProtocolSpec, not "
                    "alongside it")
            return protocol
        return cls(protocol, config)

    # -- accessors ---------------------------------------------------------
    def resolved_config(self) -> Union[QuicConfig, TcpConfig]:
        """The configuration, with the paper's defaults filled in."""
        if self.config is not None:
            return self.config
        return quic_config(34) if self.name == "quic" else tcp_config()

    @property
    def label(self) -> str:
        if self.config is None:
            return self.name
        if isinstance(self.config, QuicConfig):
            return self.config.label()
        return "tcp(custom)"


@dataclass(frozen=True)
class RunRequest:
    """One seeded run, serialisable to a worker process and back.

    Everything needed to reconstruct the run lives here as plain frozen
    data: the :class:`~repro.netem.profiles.Scenario` (itself a data-only
    spec — see ``Scenario.to_spec``/``from_spec``), the page workload,
    the :class:`ProtocolSpec`, the device model, the seed, and the trace
    options.  ``timeout`` caps *simulated* time (the in-sim watchdog);
    wall-clock budgets are enforced by the executor.
    """

    scenario: Scenario
    page: WebPage
    protocol: ProtocolSpec
    seed: int = 0
    device: DeviceProfile = DESKTOP
    trace: bool = False
    cwnd_interval: float = 0.0
    proxied: bool = False
    timeout: float = DEFAULT_SIM_TIMEOUT

    @property
    def label(self) -> str:
        return (f"{self.protocol.name} {self.page.name} @ "
                f"{self.scenario.name} seed={self.seed}")

    def with_(self, **changes: Any) -> "RunRequest":
        return replace(self, **changes)

    def execute(self) -> "RunRecord":
        """Run in-process (no pool) and return the record."""
        return execute_request(self)


@dataclass(frozen=True)
class RunFailure:
    """Structured description of why a run produced no sample.

    ``kind`` is one of ``"timeout"`` (wall-clock budget exceeded),
    ``"incomplete"`` (the simulation hit its simulated-time cap), or
    ``"error"`` (an exception — the only kind the executor retries).
    """

    kind: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


@dataclass
class RunRecord:
    """What one executed :class:`RunRequest` produced."""

    request: RunRequest
    plt: Optional[float] = None
    complete: bool = False
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Wall-clock seconds the (final) attempt took.
    wall_time: float = 0.0
    #: Total attempts made, including the successful one.
    attempts: int = 1
    failure: Optional[RunFailure] = None
    #: True when this record was served from a results store rather than
    #: executed (see :mod:`repro.store`); never persisted.
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.failure is None and self.complete

    def require(self) -> float:
        """The PLT sample, or a RuntimeError mirroring the serial API."""
        if self.ok and self.plt is not None:
            return self.plt
        reason = str(self.failure) if self.failure else "did not complete"
        raise RuntimeError(
            f"{self.request.protocol.name} load of {self.request.page.name} "
            f"in {self.request.scenario.name} (seed {self.request.seed}) "
            f"failed: {reason}"
        )


#: A run function: maps a request to a record (may raise).  Injectable so
#: tests can exercise timeout/retry handling without real simulations.
RunFn = Callable[[RunRequest], RunRecord]
ProgressFn = Callable[[RunRecord], None]


def execute_request(request: RunRequest) -> RunRecord:
    """Execute one request with the real simulator (the default RunFn)."""
    from .runner import run_page_load  # runner sits above this module

    output = run_page_load(
        request.scenario, request.page, request.protocol,
        seed=request.seed, device=request.device, trace=request.trace,
        cwnd_interval=request.cwnd_interval, proxied=request.proxied,
        timeout=request.timeout,
    )
    result = output.result
    metrics: Dict[str, float] = {
        "bytes": float(request.page.total_bytes),
        "objects": float(request.page.object_count),
    }
    if request.trace:
        for state, fraction in output.server_trace.dwell_fractions().items():
            metrics[f"dwell:{state}"] = fraction
    if not result.complete:
        return RunRecord(
            request=request, plt=None, complete=False, metrics=metrics,
            failure=RunFailure(
                "incomplete",
                f"page load still running after {request.timeout:g}s of "
                f"simulated time"),
        )
    metrics["plt"] = result.plt
    return RunRecord(request=request, plt=result.plt, complete=True,
                     metrics=metrics)


# ----------------------------------------------------------------------
# wall-clock timeout enforcement
# ----------------------------------------------------------------------
class WallClockTimeout(Exception):
    """Raised inside a run when its wall-clock budget expires."""


@contextlib.contextmanager
def _wall_clock_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`WallClockTimeout` in the current frame after ``seconds``.

    Uses ``SIGALRM``; on platforms without it (Windows) or off the main
    thread the budget is simply not enforced — the simulated-time cap in
    the request still bounds the run.
    """
    usable = (
        seconds is not None and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum: int, frame: Any) -> None:
        raise WallClockTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _guarded_run(run_fn: RunFn, request: RunRequest,
                 wall_timeout: Optional[float]) -> RunRecord:
    """One attempt: exceptions and timeouts become failure records."""
    start = time.perf_counter()
    try:
        with _wall_clock_deadline(wall_timeout):
            record = run_fn(request)
        if not isinstance(record, RunRecord):
            raise TypeError(
                f"run function returned {type(record).__name__}, "
                f"expected RunRecord")
    except WallClockTimeout:
        record = RunRecord(request=request, failure=RunFailure(
            "timeout",
            f"run exceeded its {wall_timeout:g}s wall-clock budget"))
    except Exception as exc:  # noqa: BLE001 - converted to structured failure
        record = RunRecord(request=request, failure=RunFailure(
            "error", f"{type(exc).__name__}: {exc}"))
    record.wall_time = time.perf_counter() - start
    return record


def _run_with_retries(run_fn: RunFn, request: RunRequest,
                      wall_timeout: Optional[float], retries: int) -> RunRecord:
    """Attempt a run up to ``1 + retries`` times.

    Only ``"error"`` failures are retried: timeouts and simulated-time
    exhaustion are deterministic in this simulator, so repeating them
    would only burn the pool's time.
    """
    attempt = 0
    while True:
        attempt += 1
        record = _guarded_run(run_fn, request, wall_timeout)
        record.attempts = attempt
        if record.failure is None or record.failure.kind != "error":
            return record
        if attempt > retries:
            return record


def _run_chunk(run_fn: RunFn, chunk: Sequence[RunRequest],
               wall_timeout: Optional[float], retries: int) -> List[RunRecord]:
    """Worker-side entry point: execute one chunk of requests in order."""
    return [_run_with_retries(run_fn, request, wall_timeout, retries)
            for request in chunk]


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
def usable_cpu_count() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine; containers and ``taskset``
    often allow far fewer.  Scheduling more workers than usable CPUs
    just adds context-switch overhead (a 1-CPU box shows a *slowdown*),
    so the executor clamps to the affinity mask where the platform
    exposes one.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument: ``None``/``0`` mean "all usable cores"."""
    if jobs is None or jobs == 0:
        return usable_cpu_count()
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = all cores)")
    return jobs


def _force_serial() -> bool:
    return sys.platform == "win32" or bool(os.environ.get(SERIAL_ENV_VAR))


def _chunked(requests: Sequence[RunRequest], chunk_size: int
             ) -> List[Tuple[int, List[RunRequest]]]:
    return [(start, list(requests[start:start + chunk_size]))
            for start in range(0, len(requests), chunk_size)]


def run_requests(
    requests: Sequence[RunRequest],
    *,
    jobs: Optional[int] = 1,
    wall_timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[ProgressFn] = None,
    chunk_size: Optional[int] = None,
    run_fn: Optional[RunFn] = None,
    store: Optional[Any] = None,
) -> List[RunRecord]:
    """Execute ``requests`` and return records in *request order*.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs serially in-process, ``None``/``0``
        uses every usable core.  The count is clamped to the CPUs the
        process may run on (affinity mask), and batches smaller than
        ``MIN_PARALLEL`` run in-process — a pool that cannot win is
        never started.  Serial mode is also forced on Windows or when
        ``REPRO_EXECUTOR_SERIAL`` is set (the coverage/debug escape
        hatch).
    wall_timeout:
        Per-run wall-clock budget in seconds; an overrun yields a
        ``"timeout"`` :class:`RunFailure` instead of hanging the pool.
    retries:
        How many times an ``"error"`` failure is retried (bounded;
        deterministic timeout/incomplete failures are never retried).
    progress:
        Called with each :class:`RunRecord` as it completes (completion
        order, which under parallelism differs from request order).
    chunk_size:
        Requests dispatched per pool task; defaults to an even split
        that gives each worker ~4 chunks (amortises IPC without
        serialising the tail).
    run_fn:
        The per-request run function (default: the real simulator).
        Must be picklable (module-level) when ``jobs > 1``.
    store:
        A results store — a :class:`repro.store.RunCache`, any
        :class:`repro.store.StoreBackend` (sqlite file or sharded JSONL
        directory), or a path to one (backend selected by path
        convention; see :func:`repro.store.open_store`).  Requests
        whose content address is already stored are served as hits
        (``record.cached`` set, no execution); misses execute normally
        and are written back *as they complete*, so an interrupted batch
        is resumable — the rerun only executes the missing requests.
        The address covers configuration, seed and the code fingerprints
        of the subsystems the run exercises, so stale hits are
        impossible while unrelated edits (say, under ``video/``) leave
        a warm cache warm.  Only meaningful with the real simulator (a
        custom ``run_fn`` is not part of the key).
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    requests = list(requests)
    if not requests:
        return []
    if store is not None:
        from ..store.cache import RunCache  # lazy: store imports this module

        cache = RunCache.of(store)
        results: List[Optional[RunRecord]] = []
        miss_indices: List[int] = []
        for index, request in enumerate(requests):
            hit = cache.lookup(request)
            results.append(hit)
            if hit is None:
                miss_indices.append(index)
            elif progress is not None:
                progress(hit)
        if miss_indices:
            # Cache-aware scheduling: execute the heaviest misses first
            # (object count, then bytes, as the expected-cost proxy) so a
            # long run never lands last on an otherwise-drained pool.
            # The sort is stable and results are slotted back by index,
            # so the returned order is untouched.
            miss_indices.sort(
                key=lambda i: (requests[i].page.object_count,
                               requests[i].page.total_bytes),
                reverse=True)

            def _write_back(record: RunRecord) -> None:
                cache.offer(record)
                if progress is not None:
                    progress(record)

            miss_records = _execute_requests(
                [requests[i] for i in miss_indices], jobs=jobs,
                wall_timeout=wall_timeout, retries=retries,
                progress=_write_back, chunk_size=chunk_size, run_fn=run_fn)
            for index, record in zip(miss_indices, miss_records):
                results[index] = record
        return results  # type: ignore[return-value]  # misses filled above
    return _execute_requests(requests, jobs=jobs, wall_timeout=wall_timeout,
                             retries=retries, progress=progress,
                             chunk_size=chunk_size, run_fn=run_fn)


def _execute_requests(
    requests: List[RunRequest],
    *,
    jobs: Optional[int],
    wall_timeout: Optional[float],
    retries: int,
    progress: Optional[ProgressFn],
    chunk_size: Optional[int],
    run_fn: Optional[RunFn],
) -> List[RunRecord]:
    """The store-blind execution engine behind :func:`run_requests`."""
    run = run_fn if run_fn is not None else execute_request
    # Validate knobs before any serial-fallback decision: a bad argument
    # is a bug regardless of which execution path would be taken.
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    # Auto-serial fallback: never more workers than usable CPUs (extra
    # workers only context-switch), and never a pool for a request list
    # too small to amortise worker start-up.
    n_jobs = min(resolve_jobs(jobs), usable_cpu_count())
    if (n_jobs <= 1 or len(requests) < MIN_PARALLEL or _force_serial()):
        out = []
        for request in requests:
            record = _run_with_retries(run, request, wall_timeout, retries)
            out.append(record)
            if progress is not None:
                progress(record)
        return out

    n_jobs = min(n_jobs, len(requests))
    if chunk_size is None:
        chunk_size = max(1, len(requests) // (n_jobs * 4))
    chunks = _chunked(requests, chunk_size)
    results: List[Optional[RunRecord]] = [None] * len(requests)
    try:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            future_to_start = {
                pool.submit(_run_chunk, run, chunk, wall_timeout, retries): start
                for start, chunk in chunks
            }
            pending = set(future_to_start)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    start = future_to_start[future]
                    try:
                        records = future.result()
                    except Exception:  # noqa: BLE001 - broken pool/pickling
                        continue  # slots stay None; serial fallback below
                    for offset, record in enumerate(records):
                        results[start + offset] = record
                        if progress is not None:
                            progress(record)
    except Exception:  # pragma: no cover - pool setup failure
        pass  # graceful fallback: finish everything serially below
    for index, record in enumerate(results):
        if record is None:
            record = _run_with_retries(run, requests[index], wall_timeout,
                                       retries)
            results[index] = record
            if progress is not None:
                progress(record)
    return results  # type: ignore[return-value]  # all slots filled above


def failed_records(records: Sequence[RunRecord]) -> List[RunRecord]:
    """The subset of ``records`` that produced no sample."""
    return [record for record in records if not record.ok]

"""Closed-form steady-state CC throughput models + the model-fit layer.

The ROADMAP's analytical-oracle item, in the spirit of the Mathis
et al. macroscopic TCP model and its descendants: for each pluggable
kernel in :mod:`repro.transport.cc.kernels` there is a closed-form
steady-state throughput prediction —

* **Reno-shaped AIMD** (:func:`aimd_rate`): the Mathis square-root law
  generalised to an arbitrary multiplicative-decrease ``beta`` and
  additive-increase ``alpha``.  With the classic ``beta = 1/2``,
  ``alpha = 1`` it collapses to ``rate = (mss/rtt) * sqrt(3/(2p))``.
* **Cubic** (:func:`cubic_rate`): the RFC 8312 steady-state sawtooth —
  ``W_max = (4 rtt / (p (3+beta)))^(3/4) * (C/(1-beta))^(1/4)`` packets,
  average window ``(3+beta)/4 * W_max`` — taken as the max with the
  TCP-friendly AIMD region, so low-loss/short-RTT cells recover the
  Reno law exactly as the kernel's ``w_est`` floor does.
* **BBR** (:func:`bbr_rate`): loss-agnostic by design; the model is the
  BDP/capacity bound times the goodput factor ``(1 - p)``.

:func:`predict_rate` bounds every loss-driven prediction by the link's
goodput capacity and by the MACW window limit (``max_cwnd * mss /
rtt`` — the paper's Sec. 5.1 cap) and labels the binding constraint as
the cell's *regime*.

The fit layer (:class:`ModelFitAccumulator`) compares predictions
against store-backed manyflow sweep cells: every completed record with
a homogeneous protocol mix and a ``rate_p50`` metric contributes its
median per-flow goodput as the observable.  ``repro validate`` renders
the resulting table and exits nonzero on gated cells whose
observed/predicted ratio falls outside the tolerance band — a CC
regression surfaces as a model-fit break even after fixed-seed goldens
were re-baselined.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..netem.packet import DEFAULT_MSS, HEADER_BYTES
from ..transport.flowtable import FlowParams, QUIC_PARAMS, TCP_PARAMS

__all__ = [
    "DEFAULT_TOLERANCE",
    "FitCell",
    "ModelFitAccumulator",
    "ModelPrediction",
    "aimd_rate",
    "bbr_rate",
    "cubic_rate",
    "oracle_configs",
    "oracle_requests",
    "predict_rate",
    "render_model_fit_table",
]

#: Default accepted band for observed/predicted: within a factor of
#: ``1 + DEFAULT_TOLERANCE`` either way.  Steady-state models ignore
#: slow start, recovery details and self-induced queueing, so the band
#: is generous; a mis-tuned kernel (wrong beta) still lands well
#: outside it (see tests/test_models.py).
DEFAULT_TOLERANCE = 0.6

#: Regime labels: which constraint binds the prediction.
REGIME_LOSS = "loss-limited"
REGIME_CAPACITY = "capacity-limited"
REGIME_WINDOW = "window-limited"

_INF = float("inf")


def aimd_rate(mss: float, rtt: float, loss_rate: float, *,
              beta: float = 0.5, alpha: float = 1.0) -> float:
    """Steady-state AIMD goodput, bytes/sec (Mathis generalised).

    The sawtooth oscillates between ``beta * W`` and ``W`` with additive
    increase ``alpha`` packets/RTT; one loss event per cycle delivers
    ``(1 - beta^2) W^2 / (2 alpha)`` packets, so ``W = sqrt(2 alpha /
    ((1 - beta^2) p))`` and the mean window is ``(1 + beta)/2 * W``.
    """
    if loss_rate <= 0:
        return _INF
    if not 0.0 <= beta < 1.0:
        raise ValueError("beta must be in [0, 1)")
    w_peak = math.sqrt(2.0 * alpha / ((1.0 - beta * beta) * loss_rate))
    w_avg = (1.0 + beta) / 2.0 * w_peak
    return w_avg * mss / rtt


def cubic_rate(mss: float, rtt: float, loss_rate: float, *,
               beta: float = 0.7, c: float = 0.4,
               alpha: Optional[float] = None) -> float:
    """Steady-state Cubic goodput, bytes/sec (RFC 8312 sawtooth).

    Integrating the cubic window over one loss cycle of length
    ``K = ((1-beta) W_max / C)^(1/3)`` seconds gives ``W_max =
    (4 rtt / (p (3+beta)))^(3/4) * (C/(1-beta))^(1/4)`` and a mean
    window of ``(3+beta)/4 * W_max`` — the famous ``p^(-3/4)`` loss
    exponent and ``rtt^(-1/4)`` RTT-fairness.  The TCP-friendly region
    (``alpha`` defaulting to RFC 8312's ``3(1-beta)/(1+beta)``) is a
    floor, exactly as the kernel's ``w_est`` term is.
    """
    if loss_rate <= 0:
        return _INF
    if not 0.0 <= beta < 1.0:
        raise ValueError("beta must be in [0, 1)")
    w_max = ((4.0 * rtt / (loss_rate * (3.0 + beta))) ** 0.75
             * (c / (1.0 - beta)) ** 0.25)
    w_avg = (3.0 + beta) / 4.0 * w_max
    cubic = w_avg * mss / rtt
    if alpha is None:
        alpha = 3.0 * (1.0 - beta) / (1.0 + beta)
    friendly = aimd_rate(mss, rtt, loss_rate, beta=beta, alpha=alpha)
    return max(cubic, friendly)


def bbr_rate(mss: float, rtt: float, loss_rate: float, *,
             link_rate: float, max_cwnd: Optional[float] = None) -> float:
    """Steady-state BBR goodput, bytes/sec: BDP-bound, loss-agnostic.

    BBR paces at the measured bottleneck bandwidth regardless of random
    loss, so the model is the link's goodput capacity (or the window
    limit ``max_cwnd * mss / rtt`` when the MACW binds first) times the
    delivered fraction ``1 - p``.
    """
    bound = link_rate
    if max_cwnd is not None:
        bound = min(bound, max_cwnd * mss / rtt)
    return bound * (1.0 - loss_rate)


@dataclass(frozen=True)
class ModelPrediction:
    """A bounded steady-state prediction and its binding constraint."""

    rate: float      #: goodput, bytes/sec
    regime: str      #: one of loss-/capacity-/window-limited


def goodput_capacity(rate_bps: float, mss: float = DEFAULT_MSS) -> float:
    """Link capacity net of per-packet header overhead, bytes/sec."""
    return rate_bps / 8.0 * (mss / (mss + HEADER_BYTES))


def predict_rate(cc: str, params: FlowParams, *, rtt: float,
                 loss_rate: float, link_rate_bps: float,
                 mss: float = DEFAULT_MSS) -> ModelPrediction:
    """Oracle prediction for one flow of ``cc`` under ``params``.

    ``params`` is the per-protocol :class:`FlowParams` the manyflow
    kernels are built from (QUIC's beta 0.85 / MACW 430 vs TCP's 0.7),
    so model and simulation share one source of constants.
    """
    capacity = goodput_capacity(link_rate_bps, mss)
    window_limit = params.max_cwnd * mss / rtt
    if cc == "reno":
        loss_limited = aimd_rate(mss, rtt, loss_rate, beta=params.beta)
    elif cc == "cubic":
        n = max(params.emulated_connections, 1)
        alpha = 3.0 * n * n * (1.0 - params.beta) / (1.0 + params.beta)
        loss_limited = cubic_rate(mss, rtt, loss_rate, beta=params.beta,
                                  alpha=alpha)
    elif cc == "bbr":
        rate = bbr_rate(mss, rtt, loss_rate, link_rate=capacity,
                        max_cwnd=params.max_cwnd)
        regime = (REGIME_WINDOW if window_limit < capacity
                  else REGIME_CAPACITY)
        return ModelPrediction(rate=rate, regime=regime)
    else:
        raise ValueError(f"no analytical model for CC kernel {cc!r}")
    rate = min(loss_limited, capacity, window_limit)
    if rate == loss_limited:
        regime = REGIME_LOSS
    elif rate == capacity:
        regime = REGIME_CAPACITY
    else:
        regime = REGIME_WINDOW
    return ModelPrediction(rate=rate, regime=regime)


# ----------------------------------------------------------------------
# fit layer: predictions vs store-backed sweep cells
# ----------------------------------------------------------------------
_PARAMS_BY_NAME = {"quic": QUIC_PARAMS, "tcp": TCP_PARAMS}


@dataclass(frozen=True)
class FitCell:
    """One (kernel, protocol, scenario) cell of the model-fit table."""

    cc: str
    proto: str
    rate_mbps: float
    rtt: float
    loss_rate: float
    observed: float       #: mean-over-seeds median per-flow goodput, B/s
    predicted: float
    regime: str
    runs: int
    #: Only loss>0 cells are gated: at zero loss the loss models are
    #: unbounded and the cell is purely capacity/contention-shaped.
    gated: bool

    @property
    def ratio(self) -> float:
        if self.predicted <= 0:
            return _INF
        return self.observed / self.predicted

    def within(self, tolerance: float) -> bool:
        """Observed within a factor of ``1 + tolerance`` of the model."""
        band = 1.0 + tolerance
        ratio = self.ratio
        return (1.0 / band) <= ratio <= band


class ModelFitAccumulator:
    """Streaming accumulator: manyflow records → model-fit cells.

    Mergeable (for :class:`~repro.core.aggregate.StreamAggregator`) and
    order-independent: cells key on ``(cc, proto, link, rtt, loss)`` and
    average the ``rate_p50`` observable across seeds.  Mixed-protocol
    runs (``0 < tcp_share < 1``) are skipped — their median flow has no
    single analytical model.
    """

    def __init__(self) -> None:
        #: key -> [observed_sum, run_count]
        self._sums: Dict[Tuple[str, str, float, float, float],
                         List[float]] = {}

    def add_record(self, record: Any) -> None:
        request = getattr(record, "request", None)
        manyflow = getattr(request, "manyflow", None)
        if manyflow is None or not getattr(record, "complete", False):
            return
        if 0.0 < manyflow.tcp_share < 1.0:
            return
        metrics = getattr(record, "metrics", None) or {}
        observed = metrics.get("rate_p50")
        if not observed or observed <= 0:
            return
        proto = "tcp" if manyflow.tcp_share >= 1.0 else "quic"
        scenario = request.scenario
        key = (manyflow.cc, proto, float(scenario.rate_mbps),
               float(scenario.total_rtt), float(scenario.loss_rate))
        entry = self._sums.setdefault(key, [0.0, 0.0])
        entry[0] += observed
        entry[1] += 1.0

    def merge(self, other: "ModelFitAccumulator") -> None:
        for key, (obs_sum, count) in other._sums.items():
            entry = self._sums.setdefault(key, [0.0, 0.0])
            entry[0] += obs_sum
            entry[1] += count

    def __bool__(self) -> bool:
        return bool(self._sums)

    def cells(self) -> List[FitCell]:
        out: List[FitCell] = []
        for key in sorted(self._sums):
            cc, proto, rate_mbps, rtt, loss_rate = key
            obs_sum, count = self._sums[key]
            prediction = predict_rate(
                cc, _PARAMS_BY_NAME[proto], rtt=rtt, loss_rate=loss_rate,
                link_rate_bps=rate_mbps * 1e6)
            out.append(FitCell(
                cc=cc, proto=proto, rate_mbps=rate_mbps, rtt=rtt,
                loss_rate=loss_rate, observed=obs_sum / count,
                predicted=prediction.rate, regime=prediction.regime,
                runs=int(count), gated=loss_rate > 0.0))
        return out


def render_model_fit_table(cells: Sequence[FitCell],
                           tolerance: float = DEFAULT_TOLERANCE) -> str:
    """The ``repro validate`` / ``report --from-store`` fit table."""
    lines = [
        "| CC | proto | link | RTT | loss | observed | model | obs/model "
        "| regime | fit |",
        "|---|---|---|---|---|---|---|---|---|---|",
    ]
    for cell in cells:
        if cell.gated:
            verdict = "ok" if cell.within(tolerance) else "DIVERGENT"
        else:
            verdict = "(info)"
        ratio = cell.ratio
        lines.append(
            f"| {cell.cc} | {cell.proto} | {cell.rate_mbps:g} Mbps "
            f"| {cell.rtt * 1000:g} ms | {cell.loss_rate:.2%} "
            f"| {cell.observed / 1e3:,.0f} KB/s "
            f"| {cell.predicted / 1e3:,.0f} KB/s "
            f"| {'inf' if math.isinf(ratio) else f'{ratio:.2f}'} "
            f"| {cell.regime} | {verdict} |")
    lines.append("")
    lines.append(f"tolerance: observed within {1 + tolerance:.2f}x of the "
                 f"model either way; loss-free cells are informational.")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the oracle grid: steady-state-friendly manyflow cells
# ----------------------------------------------------------------------
def oracle_configs(ccs: Sequence[str] = ("reno", "cubic", "bbr"),
                   flows: int = 8) -> List[Any]:
    """Manyflow configs tuned so the steady-state models apply.

    Long (~3 MB, low-variance) transfers at a low arrival rate on a fat
    link: flows are mostly alone at the bottleneck, random loss — not
    queue contention — is the binding constraint, and each flow spans
    many sawtooth cycles.  One config per (cc, protocol) with a
    homogeneous mix, so every cell has a single analytical model.
    """
    from .manyflow import ManyflowConfig  # avoid import cycle

    configs: List[Any] = []
    for cc in ccs:
        for tcp_share in (0.0, 1.0):
            configs.append(ManyflowConfig(
                flows=flows, arrival_rate=0.12, tcp_share=tcp_share,
                page_kb_median=8192.0, page_sigma=0.1, video_share=0.0,
                aqm="droptail", duration=240.0, cc=cc))
    return configs


def oracle_requests(ccs: Sequence[str] = ("reno", "cubic", "bbr"),
                    loss_rates: Sequence[float] = (0.01, 0.02),
                    seeds: Sequence[int] = (0,),
                    flows: int = 8) -> List[Any]:
    """The ``repro validate`` grid: oracle configs x loss cells.

    BBR only runs the lowest-loss cell: the BDP-bound model applies
    while random loss stays within BBR's probing headroom; past ~1%
    the engine's go-back-N RTO path dominates the simplified BBR and
    the loss-agnostic model no longer describes it.
    """
    from .manyflow import manyflow_requests, manyflow_scenario

    requests: List[Any] = []
    for loss_rate in loss_rates:
        scenario = manyflow_scenario(rate_mbps=50.0, rtt=0.040,
                                     loss_rate=loss_rate)
        cell_ccs = [cc for cc in ccs
                    if cc != "bbr" or loss_rate <= min(loss_rates)]
        for config in oracle_configs(cell_ccs, flows=flows):
            requests.extend(manyflow_requests(config, scenario, seeds))
    return requests


def fit_records(records: Iterable[Any]) -> ModelFitAccumulator:
    """Fold an iterable of records into a fit accumulator."""
    accumulator = ModelFitAccumulator()
    for record in records:
        accumulator.add_record(record)
    return accumulator

"""Hot-path microbenchmarks for the simulation core.

The optimisation work on the event loop and the netem layer only counts
if it is measured the same way every time, on every host, across
commits.  This module is that measurement layer:

* :func:`bench_events` — raw event-loop throughput (events/second): many
  concurrent self-rescheduling callback chains, nothing else.  This is
  the number the per-event scheduling overhead shows up in directly.
* :func:`bench_packets` — packets/second through one rate-limited,
  lossy, jittery :class:`~repro.netem.link.Link`, i.e. the full netem
  data path (queue, token-bucket serialisation, loss/jitter draws,
  delivery bookkeeping) without any transport on top.
* :func:`bench_plt` — one canonical page-load pair (QUIC and TCP over
  the same emulated scenario), wall-clock timed.  This is the end-to-end
  number a sweep cell costs; speeding it up is the point of the whole
  exercise.
* :func:`calibrate` — a tiny pure-Python spin loop measured on the same
  host.  Benchmark JSONs carry this so that
  ``scripts/bench_diff.py`` can compare *host-normalised* rates across
  machines (a laptop and a CI runner disagree wildly on absolute
  events/sec but much less on events-per-calibration-op).

:func:`run_benchmarks` bundles the above into the ``BENCH_sim.json``
payload; the ``repro bench`` CLI subcommand and
``benchmarks/sim_hotpath.py`` are thin wrappers around it.

Determinism note: every benchmark here is a fixed-seed simulation, so
the *simulated* outcome (delivered packet counts, PLT values,
``events_processed``) is bit-identical across runs and hosts — only the
wall-clock numbers vary.  The payload records those outcomes too, which
gives the perf gate a free behaviour cross-check.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Callable, Dict, Optional

from ..http.objects import page
from ..netem.link import Link, mbps
from ..netem.packet import Packet
from ..netem.profiles import emulated
from ..netem.sim import Simulator

#: The canonical PLT cell: the paper's mid-range emulated condition — a
#: 20 Mbps cap, 20 ms extra one-way delay, 0.5 % loss — loading a
#: 10-object x 100 KB page.  Chosen to exercise queueing, loss recovery
#: and multiplexing without taking seconds per run.
CANONICAL_SCENARIO_KWARGS = dict(extra_delay_ms=20.0, loss_pct=0.5)
CANONICAL_RATE_MBPS = 20.0
CANONICAL_PAGE = (10, 100 * 1024)
CANONICAL_SEED = 0


def _best_of(repeat: int, fn: Callable[[], Dict[str, Any]],
             key: str) -> Dict[str, Any]:
    """Run ``fn`` ``repeat`` times, keep the run with the best ``key``.

    Wall-clock benchmarks are noisy downwards only (GC pauses, other
    processes); the maximum rate / minimum time is the stable statistic.
    """
    best: Optional[Dict[str, Any]] = None
    for _ in range(max(1, repeat)):
        sample = fn()
        if best is None or sample[key] > best[key]:
            best = sample
    assert best is not None
    return best


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------
def calibrate(ops: int = 2_000_000) -> float:
    """Host-speed reference: pure-Python ops/second of a trivial loop."""
    deadline = time.perf_counter
    acc = 0
    start = deadline()
    for i in range(ops):
        acc += i & 7
    elapsed = deadline() - start
    if acc < 0:  # pragma: no cover - keeps the loop from being elided
        raise AssertionError
    return ops / elapsed if elapsed > 0 else float("inf")


# ----------------------------------------------------------------------
# events/sec
# ----------------------------------------------------------------------
def bench_events(num_events: int = 200_000, chains: int = 64) -> Dict[str, Any]:
    """Event-loop throughput: ``chains`` concurrent callback chains.

    Each chain re-posts itself a fixed number of times, so the heap holds
    ``chains`` entries throughout — a realistic depth for a page load.
    Uses the non-cancellable fast path (``Simulator.post``) when the
    simulator provides one, else plain ``schedule``; the benchmark is the
    representative cost of the *majority* scheduling style either way.
    """
    sim = Simulator()
    post = getattr(sim, "post", None) or sim.schedule
    per_chain = num_events // chains
    remaining = [per_chain] * chains

    def tick(index: int) -> None:
        left = remaining[index] - 1
        remaining[index] = left
        if left > 0:
            post(1e-6, tick, index)

    for index in range(chains):
        post(1e-6, tick, index)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    fired = sim.events_processed
    return {
        "events": fired,
        "wall_seconds": elapsed,
        "events_per_sec": fired / elapsed if elapsed > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# packets/sec
# ----------------------------------------------------------------------
def bench_packets(num_packets: int = 30_000) -> Dict[str, Any]:
    """Netem data-path throughput: packets/second through one Link.

    A 50 Mbps, 10 ms link with 1 % loss, 2 ms jitter and a 64 KB droptail
    queue; the sender offers slightly more than the link can carry so the
    queue and the serialisation path both stay busy.
    """
    sim = Simulator()
    link = Link(sim, mbps(50.0), 0.010, jitter=0.002, loss_rate=0.01,
                queue_bytes=64 * 1024, name="bench")
    delivered = [0]

    def sink(packet: Packet) -> None:
        delivered[0] += 1

    link.attach(sink)
    size = 1390
    interval = size * 8 / mbps(50.0) * 0.95  # offer ~105% of capacity
    sent = [0]
    post = getattr(sim, "post", None) or sim.schedule

    def feed() -> None:
        link.send(Packet("a", "b", size, flow_id="bench"))
        sent[0] += 1
        if sent[0] < num_packets:
            post(interval, feed)

    feed()
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "packets_offered": sent[0],
        "packets_delivered": delivered[0],
        "wall_seconds": elapsed,
        "packets_per_sec": sent[0] / elapsed if elapsed > 0 else float("inf"),
        "events_processed": sim.events_processed,
    }


# ----------------------------------------------------------------------
# canonical PLT run
# ----------------------------------------------------------------------
def bench_plt(seed: int = CANONICAL_SEED) -> Dict[str, Any]:
    """One canonical QUIC + TCP page-load pair, wall-clock timed."""
    from .runner import run_page_load  # runner sits above this module

    scenario = emulated(CANONICAL_RATE_MBPS, **CANONICAL_SCENARIO_KWARGS)
    workload = page(*CANONICAL_PAGE)
    out: Dict[str, Any] = {}
    total = 0.0
    for protocol in ("quic", "tcp"):
        start = time.perf_counter()
        output = run_page_load(scenario, workload, protocol, seed=seed)
        elapsed = time.perf_counter() - start
        total += elapsed
        out[f"plt_{protocol}"] = output.result.plt
        out[f"events_{protocol}"] = output.sim.events_processed
        out[f"wall_{protocol}"] = elapsed
    out["plt_wall_seconds"] = total
    return out


# ----------------------------------------------------------------------
# the bundle
# ----------------------------------------------------------------------
def run_benchmarks(*, events: int = 200_000, packets: int = 30_000,
                   repeat: int = 3,
                   baseline: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Run the full suite; return the ``BENCH_sim.json`` payload.

    ``baseline`` is the ``current`` section of a previous payload (or a
    whole previous payload, whose ``current`` is then used); when given,
    per-metric speedups are computed against it.
    """
    cal = calibrate()
    ev = _best_of(repeat, lambda: bench_events(events), "events_per_sec")
    pk = _best_of(repeat, lambda: bench_packets(packets), "packets_per_sec")
    plt_samples = [bench_plt() for _ in range(max(1, repeat))]
    plt = min(plt_samples, key=lambda s: s["plt_wall_seconds"])

    current: Dict[str, Any] = {
        "events_per_sec": round(ev["events_per_sec"], 1),
        "packets_per_sec": round(pk["packets_per_sec"], 1),
        "plt_wall_seconds": round(plt["plt_wall_seconds"], 4),
        "plt_quic": plt["plt_quic"],
        "plt_tcp": plt["plt_tcp"],
        "events_quic": plt["events_quic"],
        "events_tcp": plt["events_tcp"],
        "packets_delivered": pk["packets_delivered"],
    }
    payload: Dict[str, Any] = {
        "benchmark": "sim_hotpath",
        "python": platform.python_version(),
        "calibration_ops_per_sec": round(cal, 1),
        "workload": {
            "events": events,
            "packets": packets,
            "repeat": repeat,
            "plt_scenario": f"emulated({CANONICAL_RATE_MBPS:g}, "
                            f"extra_delay_ms=20, loss_pct=0.5)",
            "plt_page": f"page{CANONICAL_PAGE}",
        },
        "current": current,
    }
    if baseline:
        base = baseline.get("current", baseline)
        payload["baseline"] = base
        speedup: Dict[str, float] = {}
        for metric in ("events_per_sec", "packets_per_sec"):
            if base.get(metric):
                speedup[metric] = round(current[metric] / base[metric], 3)
        if base.get("plt_wall_seconds"):
            speedup["plt_wall_seconds"] = round(
                base["plt_wall_seconds"] / current["plt_wall_seconds"], 3)
        payload["speedup"] = speedup
    return payload


def bench_manyflow(flows: int = 1000, *, aqm: str = "droptail",
                   seed: int = CANONICAL_SEED,
                   duration: float = 300.0) -> Dict[str, Any]:
    """The thousand-flow cell: batched vs per-packet scheduling.

    Runs the same (config, seed) workload twice — once with the default
    batch quantum and once with ``batch_quantum=0`` (one heap wakeup per
    logical item, the pre-optimisation cost model) — and checks the two
    produce identical simulated outcomes.  The speedup between them is
    the number the fast path is judged by.
    """
    from .manyflow import ManyflowConfig, ManyflowEngine, manyflow_scenario

    config = ManyflowConfig(flows=flows, aqm=aqm, duration=duration)
    scenario = manyflow_scenario()

    def timed(batch_quantum: float) -> Dict[str, Any]:
        engine = ManyflowEngine(scenario, config, seed=seed,
                                batch_quantum=batch_quantum)
        start = time.perf_counter()
        metrics = engine.run()
        wall = time.perf_counter() - start
        return {"wall": wall, "metrics": metrics}

    from .manyflow import DEFAULT_BATCH_QUANTUM

    batched = timed(DEFAULT_BATCH_QUANTUM)
    per_packet = timed(0.0)

    def outcome(sample: Dict[str, Any]) -> Dict[str, Any]:
        # heap_events is the cost model, not an outcome: batching
        # exists to change it.
        return {k: v for k, v in sample["metrics"].items()
                if k != "heap_events"}

    identical = outcome(batched) == outcome(per_packet)
    logical = batched["metrics"]["logical_events"]
    return {
        "flows": flows,
        "batched_seconds": round(batched["wall"], 4),
        "per_packet_seconds": round(per_packet["wall"], 4),
        "speedup_vs_per_packet": round(
            per_packet["wall"] / batched["wall"], 2),
        "events_per_sec": round(logical / batched["wall"], 1),
        "heap_events_batched": batched["metrics"]["heap_events"],
        "heap_events_per_packet": per_packet["metrics"]["heap_events"],
        "results_identical": identical,
        "outcome": outcome(batched),
    }


def run_manyflow_benchmark(*, flows: int = 1000, repeat: int = 1,
                           aqm: str = "droptail", seed: int = CANONICAL_SEED,
                           duration: float = 300.0,
                           baseline: Optional[Dict[str, Any]] = None
                           ) -> Dict[str, Any]:
    """Run the manyflow cell; return the ``BENCH_manyflow.json`` payload."""
    cal = calibrate()
    sample = _best_of(repeat,
                      lambda: bench_manyflow(flows, aqm=aqm, seed=seed,
                                             duration=duration),
                      "speedup_vs_per_packet")
    payload: Dict[str, Any] = {
        "benchmark": "manyflow",
        "python": platform.python_version(),
        "calibration_ops_per_sec": round(cal, 1),
        "workload": {
            "flows": flows,
            "aqm": aqm,
            "cc": "reno",
            "seed": seed,
            "duration": duration,
            "scenario": "manyflow_scenario()",
        },
    }
    payload.update(sample)
    if baseline:
        base_rate = baseline.get("events_per_sec")
        if base_rate:
            payload["speedup_vs_baseline"] = round(
                sample["events_per_sec"] / base_rate, 3)
    return payload


def _subsystem_of(filename: str) -> str:
    """Map a profiled frame's file onto the fingerprint partition.

    Uses the same :data:`repro.store.keys.SUBSYSTEMS` table that stamps
    store rows, so "which partition is hot" lines up with "which
    partition's fingerprint would a fix invalidate".
    """
    from ..store.keys import SUBSYSTEMS  # avoid a package cycle

    normalised = filename.replace("\\", "/")
    if "/repro/" not in normalised:
        return "(stdlib/other)"
    rel = normalised.split("/repro/", 1)[1]
    # Explicit file entries win over the enclosing directory (e.g.
    # core/models.py belongs to transport, not core), mirroring the
    # claimed-file precedence in subsystem_fingerprints.
    for name, entries in SUBSYSTEMS.items():
        if rel in entries:
            return name
    head = rel.split("/", 1)[0]
    for name, entries in SUBSYSTEMS.items():
        if head in entries:
            return name
    return "(stdlib/other)"


def _print_subsystem_partition(stats: Any, out: Any) -> None:
    """Aggregate a pstats table by subsystem fingerprint partition."""
    totals: Dict[str, float] = {}
    calls: Dict[str, int] = {}
    for (filename, _line, _func), row in stats.stats.items():
        cc, _nc, tottime, _cumtime, _callers = row
        part = _subsystem_of(filename)
        totals[part] = totals.get(part, 0.0) + tottime
        calls[part] = calls.get(part, 0) + cc
    grand = sum(totals.values()) or 1.0
    print("By subsystem fingerprint partition (tottime):", file=out)
    for part in sorted(totals, key=totals.get, reverse=True):
        print(f"  {part:<16} {totals[part]:>9.4f}s  "
              f"{100.0 * totals[part] / grand:>5.1f}%  "
              f"{calls[part]:>10,} calls", file=out)
    print("", file=out)


def profile_run(workload: Any, top: int = 25, out: Any = None) -> None:
    """cProfile ``workload()``: subsystem partition summary + top-N rows."""
    import cProfile
    import pstats

    out = out or sys.stdout
    profiler = cProfile.Profile()
    profiler.enable()
    workload()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=out)
    _print_subsystem_partition(stats, out)
    stats.sort_stats("cumulative").print_stats(top)


def profile_plt(top: int = 25, out: Any = None) -> None:
    """cProfile the canonical PLT pair; print the top-N cumulative rows."""
    profile_run(bench_plt, top=top, out=out)


def profile_manyflow(top: int = 25, out: Any = None,
                     flows: int = 300) -> None:
    """cProfile a mid-size manyflow run (the fan-out hot path)."""
    from .manyflow import ManyflowConfig, ManyflowEngine, manyflow_scenario

    config = ManyflowConfig(flows=flows, duration=120.0)
    engine = ManyflowEngine(manyflow_scenario(), config, seed=CANONICAL_SEED)
    profile_run(engine.run, top=top, out=out)


def write_payload(payload: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

"""Deterministic fault injection for the sweep fabric (`repro.faults`).

The fabric's crash-safety story (write-ahead shards, idempotent
uploads, worker respawn) is only as trustworthy as the faults it has
survived.  This module makes fault injection *seeded and replayable*,
so "it survived chaos run 42" is a reproducible claim, not an anecdote
— the same way run keys made cache hits definitionally fresh.

The pieces:

* :class:`FaultSpec` — one scheduled fault: a surface (``store`` /
  ``http`` / ``worker``), a kind, an operation filter, and *when* it
  fires (the Nth matching operation).
* :class:`FaultPlan` — an ordered, seeded schedule of specs with a
  thread-safe one-shot trigger (:meth:`FaultPlan.take`).  Injection
  points call ``plan.take(surface, op)`` on every operation; the plan
  counts operations per surface (and per filtered op) and hands back a
  :class:`FaultEvent` exactly once per spec when its count comes up.
  Two plans built from the same seed fire the identical schedule.
* :class:`FaultyStore` — a :class:`~repro.store.backend.StoreBackend`
  decorator that injects torn writes, transient ``OSError``\\ s and
  latency into any local backend.

The other two surfaces live where the operations happen: the HTTP
fault hook in :class:`repro.fabric.server.StoreServer` (``fault_plan=``
— scheduled 5xx, stalled/truncated bodies, dropped connections) and
worker kills in :func:`repro.fabric.coordinator.iter_fabric_runs`
(``fault_plan=`` — SIGKILL worker N after its Mth event).

Injected *write* faults always fail the operation loudly (the torn
bytes land on disk **and** the caller gets ``OSError``), so the normal
retry path re-uploads and the store converges to the fault-free state
— which is exactly what the chaos gate (``scripts/chaos_sweep.py``)
asserts.
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .core.executor import RunRecord
from .store.backend import StoreBackend
from .store.keys import record_to_dict
from .store.shards import ShardStore

#: Fault kinds each surface understands.
SURFACE_KINDS: Dict[str, Tuple[str, ...]] = {
    "store": ("torn_write", "os_error", "latency"),
    "http": ("error_500", "stall", "drop", "truncate"),
    "worker": ("kill",),
}


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``op`` filters which operations count ("" matches any operation on
    the surface): store ops are method names (``put``, ``put_many``,
    ``get`` …), HTTP ops are endpoint paths (``/records``, ``/fetch``
    …), worker ops are worker ids as strings.  ``after`` is how many
    matching operations pass *before* the fault fires (0 = the very
    first one).  ``param`` parameterises the kind — seconds for
    ``latency`` / ``stall``, unused otherwise.
    """

    surface: str
    kind: str
    op: str = ""
    after: int = 0
    param: float = 0.0

    def __post_init__(self) -> None:
        kinds = SURFACE_KINDS.get(self.surface)
        if kinds is None:
            raise ValueError(
                f"unknown fault surface {self.surface!r} (expected one of "
                f"{', '.join(SURFACE_KINDS)})")
        if self.kind not in kinds:
            raise ValueError(
                f"surface {self.surface!r} has no fault kind {self.kind!r} "
                f"(expected one of {', '.join(kinds)})")
        if self.after < 0:
            raise ValueError("after must be >= 0")


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired: the spec plus where it landed."""

    spec: FaultSpec
    op: str        #: the concrete operation it fired on
    sequence: int  #: 0-based firing order within the plan


class FaultPlan:
    """A seeded, deterministic, replayable schedule of faults.

    Thread-safe: injection points in server handler threads, pool
    workers and the coordinator all share one plan.  Each spec fires at
    most once (one-shot), on the first matching operation whose count
    has reached ``spec.after``.  :meth:`schedule` describes what *will*
    fire; :meth:`fired` describes what *did* — asserting the two lists
    agree across two same-seed runs is the determinism test.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), *,
                 seed: Optional[int] = None) -> None:
        self.seed = seed
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self._lock = threading.Lock()
        self._done: set = set()
        self._fired: List[FaultEvent] = []
        #: operations seen per surface and per (surface, op).
        self._surface_counts: Dict[str, int] = {}
        self._op_counts: Dict[Tuple[str, str], int] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def seeded(cls, seed: int, *, count: int = 6,
               surfaces: Sequence[str] = ("store", "http", "worker"),
               horizon: int = 40) -> "FaultPlan":
        """A random-but-deterministic plan: ``count`` faults spread over
        the first ``horizon`` operations of the named surfaces.

        The schedule is a pure function of the arguments — the
        replayability contract the chaos gate leans on.
        """
        rng = random.Random(f"repro-fault-plan:{seed}")
        specs = []
        for _ in range(count):
            surface = surfaces[rng.randrange(len(surfaces))]
            kinds = SURFACE_KINDS[surface]
            kind = kinds[rng.randrange(len(kinds))]
            param = (round(rng.uniform(0.01, 0.05), 3)
                     if kind in ("latency", "stall") else 0.0)
            specs.append(FaultSpec(surface=surface, kind=kind, op="",
                                   after=rng.randrange(horizon), param=param))
        return cls(specs, seed=seed)

    # -- the trigger -------------------------------------------------------
    def take(self, surface: str, op: str = "") -> Optional[FaultEvent]:
        """Count one operation; return the fault due on it, if any.

        At most one fault fires per operation (specs are consulted in
        schedule order); a spec whose turn was shadowed by an earlier
        spec fires on the next matching operation instead of being
        lost.
        """
        with self._lock:
            n_surface = self._surface_counts.get(surface, 0)
            self._surface_counts[surface] = n_surface + 1
            op_key = (surface, op)
            n_op = self._op_counts.get(op_key, 0)
            self._op_counts[op_key] = n_op + 1
            for index, spec in enumerate(self.specs):
                if index in self._done or spec.surface != surface:
                    continue
                if spec.op and spec.op != op:
                    continue
                count = n_op if spec.op else n_surface
                if count >= spec.after:
                    self._done.add(index)
                    event = FaultEvent(spec=spec, op=op,
                                       sequence=len(self._fired))
                    self._fired.append(event)
                    return event
            return None

    # -- introspection -----------------------------------------------------
    def schedule(self) -> List[Dict[str, Any]]:
        """The plan as plain dicts (stable across processes; loggable)."""
        return [dataclasses.asdict(spec) for spec in self.specs]

    def fired(self) -> List[Dict[str, Any]]:
        """Every fault that has fired so far, in firing order."""
        with self._lock:
            return [{"sequence": event.sequence, "op": event.op,
                     **dataclasses.asdict(event.spec)}
                    for event in self._fired]

    def pending(self) -> int:
        """Specs still armed."""
        with self._lock:
            return len(self.specs) - len(self._done)

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed!r}, specs={len(self.specs)}, "
                f"fired={len(self._fired)})")


class FaultyStore(StoreBackend):
    """A store decorator that injects the plan's ``store`` faults.

    Wraps any *local* backend.  ``latency`` sleeps then proceeds;
    ``os_error`` raises a transient :class:`OSError` without touching
    the inner store; ``torn_write`` (on ``put`` / ``put_many``) appends
    a truncated line to the underlying shard file **and** raises
    ``OSError`` — the on-disk state a crash mid-append leaves behind,
    with the failure surfaced so idempotent retry re-uploads the row.
    On non-shard backends a torn write degrades to ``os_error``
    (sqlite's transaction can't half-land a row).
    """

    kind = "faulty"

    def __init__(self, inner: StoreBackend, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.path = inner.path

    # -- fault plumbing ----------------------------------------------------
    def _trip(self, op: str) -> Optional[FaultEvent]:
        """Consult the plan; handle latency/os_error inline."""
        event = self.plan.take("store", op)
        if event is None:
            return None
        if event.spec.kind == "latency":
            time.sleep(event.spec.param)
            return None
        if event.spec.kind == "os_error":
            raise OSError(f"injected transient fault during {op}")
        return event  # torn_write: the caller decides how to tear

    def _tear(self, key: str, record: RunRecord, fingerprint: str) -> None:
        """Leave half a line on disk, exactly like a crashed append."""
        inner = self.inner
        if not isinstance(inner, ShardStore):
            return  # transactional backend: a crash leaves nothing
        from .store.shards import _line

        shard = inner.shard_of(key)
        full = _line(key, time.time(), fingerprint, record_to_dict(record))
        with inner._locked(shard):
            with open(inner._data_path(shard), "a") as handle:
                handle.write(full[:max(1, len(full) // 2)])
                handle.flush()
        inner._cache.pop(shard, None)

    # -- instrumented operations -------------------------------------------
    def get(self, key: str) -> Optional[RunRecord]:
        self._trip("get")
        return self.inner.get(key)

    def put(self, key: str, record: RunRecord, *, fingerprint: str = "",
            created: Optional[float] = None) -> None:
        event = self._trip("put")
        if event is not None:  # torn_write
            self._tear(key, record, fingerprint)
            raise OSError("injected torn write during put")
        self.inner.put(key, record, fingerprint=fingerprint, created=created)

    def put_many(self, entries: List[Tuple[str, RunRecord, str]], *,
                 created: Optional[float] = None) -> int:
        event = self._trip("put_many")
        if event is not None:  # torn_write: first row tears, none land
            if entries:
                key, record, fingerprint = entries[0]
                self._tear(key, record, fingerprint)
            raise OSError("injected torn write during put_many")
        return self.inner.put_many(entries, created=created)

    def __contains__(self, key: str) -> bool:
        self._trip("contains")
        return key in self.inner

    def items(self) -> Iterator[Tuple[str, float, str, Dict[str, Any]]]:
        self._trip("items")
        return self.inner.items()

    def row(self, key: str) -> Optional[Tuple[str, float, str,
                                              Dict[str, Any]]]:
        self._trip("row")
        return self.inner.row(key)

    def bump_counter(self, name: str, delta: int = 1) -> None:
        self._trip("bump_counter")
        self.inner.bump_counter(name, delta)

    # -- plain delegation ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.inner)

    def keys(self) -> List[str]:
        return self.inner.keys()

    def rows(self) -> Iterator[Tuple[str, float, str, str]]:
        return self.inner.rows()

    def delete(self, key: str) -> bool:
        return self.inner.delete(key)

    def gc(self, older_than_seconds: float, now: Optional[float] = None,
           *, dry_run: bool = False) -> int:
        return self.inner.gc(older_than_seconds, now, dry_run=dry_run)

    def fingerprints(self) -> Dict[str, int]:
        return self.inner.fingerprints()

    def counters(self) -> Dict[str, int]:
        return self.inner.counters()

    def close(self) -> None:
        self.inner.close()

"""Split-connection proxies (TCP PEP and the "unoptimized" QUIC proxy)."""

from .base import SplitConnectionProxy, install_proxy

__all__ = ["SplitConnectionProxy", "install_proxy"]

"""Split-connection proxies (paper Sec. 5.5, Figs. 16-18).

A proxy terminates the transport on both legs and streams response bytes
through as they arrive (cut-through, not store-and-forward — transparent
cellular TCP proxies behave this way, which is why they help at all).

* The **TCP proxy** models the transparent performance-enhancing proxies
  common in cellular networks [40]: each leg sees half the RTT, so
  handshakes, slow start and loss recovery all run twice as fast per leg.
* The **QUIC proxy** is the paper's "unoptimized" one: QUIC's encrypted
  transport headers make *transparent* proxying impossible, so this is an
  explicit terminating proxy, and — as the paper notes — it cannot use
  0-RTT connection establishment on either leg, hurting small objects.

Both are one :class:`SplitConnectionProxy`, protocol chosen per leg.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.instrumentation import Trace
from ..devices import DESKTOP, DeviceProfile
from ..netem.sim import Simulator
from ..netem.topology import Path
from ..quic.config import QuicConfig
from ..quic.connection import open_quic_pair
from ..tcp.config import TcpConfig
from ..tcp.connection import open_tcp_pair


class SplitConnectionProxy:
    """Terminates ``protocol`` on the client leg and the server leg,
    streaming response bytes through with cut-through forwarding."""

    def __init__(
        self,
        sim: Simulator,
        path: Path,
        protocol: str,
        origin_handler: Callable[[Any], Optional[int]],
        *,
        quic_cfg: Optional[QuicConfig] = None,
        tcp_cfg: Optional[TcpConfig] = None,
        device: DeviceProfile = DESKTOP,
        seed: int = 0,
        server_trace: Optional[Trace] = None,
        client_trace: Optional[Trace] = None,
    ) -> None:
        if path.proxy is None:
            raise ValueError("path has no proxy node (use build_proxy_path)")
        self.sim = sim
        self.protocol = protocol
        rng = random.Random(seed ^ 0x9E3779B9)
        if protocol == "quic":
            if quic_cfg is None:
                raise ValueError("quic_cfg required for a QUIC proxy")
            # "Unoptimized" QUIC proxy: no 0-RTT on either leg (Sec. 5.5).
            leg_cfg = quic_cfg.with_(zero_rtt=False)
            self.client, self.left_server = open_quic_pair(
                sim, path.client, path.proxy, leg_cfg, device=device,
                seed=rng.randrange(1 << 30), client_trace=client_trace,
            )
            self.right_client, self.origin = open_quic_pair(
                sim, path.proxy, path.server, leg_cfg,
                request_handler=origin_handler,
                server_trace=server_trace, seed=rng.randrange(1 << 30),
            )
        elif protocol == "tcp":
            if tcp_cfg is None:
                raise ValueError("tcp_cfg required for a TCP proxy")
            self.client, self.left_server = open_tcp_pair(
                sim, path.client, path.proxy, tcp_cfg, device=device,
                seed=rng.randrange(1 << 30), client_trace=client_trace,
            )
            self.right_client, self.origin = open_tcp_pair(
                sim, path.proxy, path.server, tcp_cfg,
                request_handler=origin_handler,
                server_trace=server_trace, seed=rng.randrange(1 << 30),
            )
        else:
            raise ValueError(f"unknown protocol {protocol!r}")

        self.left_server.on_request = self._on_left_request
        self.right_client.on_progress = self._on_right_progress
        #: request-meta identity -> left-leg response handle.
        self._left_handle: Dict[int, Any] = {}
        #: right-leg stream/message id -> bytes that arrived before the
        #: response metadata (its carrying frame can be lost and
        #: retransmitted, with later-offset data overtaking it).
        self._pending_by_right: Dict[int, int] = {}
        self.forwarded_bytes = 0
        # A transparent proxy opens its origin leg as soon as the client
        # appears; both legs handshake in parallel.
        sim.schedule(0.0, self.right_client.connect)

    # ------------------------------------------------------------------
    def _on_left_request(self, left_id: int, meta: Any) -> None:
        """A client request reached the proxy: open a streaming response
        on the left leg and fetch from the origin on the right leg."""
        if self.protocol == "quic":
            self.left_server.open_streaming_response(left_id, meta)
            handle = left_id
        else:
            handle = self.left_server.open_streaming_response(left_id, meta)
        self._left_handle[id(meta)] = handle
        self.right_client.request(meta, self._on_right_complete)

    def _meta_key(self, meta: Any) -> Optional[int]:
        """Normalise progress metadata back to the request meta object."""
        if meta is None:
            return None
        if isinstance(meta, tuple) and len(meta) == 3 and meta[0] == "resp":
            meta = meta[2]
        return id(meta) if meta is not None else None

    def _on_right_progress(self, right_id: int, nbytes: int, meta: Any) -> None:
        key = self._meta_key(meta)
        if key is None or key not in self._left_handle:
            # Metadata not yet known (its frame may be in retransmission):
            # buffer the bytes against the right-leg stream id.
            self._pending_by_right[right_id] = (
                self._pending_by_right.get(right_id, 0) + nbytes
            )
            return
        pending = self._pending_by_right.pop(right_id, 0)
        self._forward(self._left_handle[key], pending + nbytes)

    def _forward(self, handle: Any, nbytes: int) -> None:
        if nbytes <= 0:
            return
        self.forwarded_bytes += nbytes
        if self.protocol == "quic":
            self.left_server.stream_append(handle, nbytes)
        else:
            self.left_server.message_append(handle, nbytes)

    def _on_right_complete(self, right_id: int, meta: Any, _now: float) -> None:
        key = self._meta_key(meta)
        if key is None:
            return
        handle = self._left_handle.pop(key, None)
        if handle is None:
            return
        # Flush anything that arrived before the metadata did.
        self._forward(handle, self._pending_by_right.pop(right_id, 0))
        if self.protocol == "quic":
            self.left_server.stream_finish(handle)
        else:
            self.left_server.message_finish(handle)


def install_proxy(
    sim: Simulator,
    path: Path,
    protocol: str,
    origin_handler: Callable[[Any], Optional[int]],
    *,
    quic_cfg: Optional[QuicConfig] = None,
    tcp_cfg: Optional[TcpConfig] = None,
    device: DeviceProfile = DESKTOP,
    seed: int = 0,
    server_trace: Optional[Trace] = None,
    client_trace: Optional[Trace] = None,
) -> Tuple[Any, Any, Tuple[Any, ...]]:
    """Wire a split-connection proxy into a proxy path.

    Returns ``(client_connection, origin_server_connection,
    (left_server, right_client))`` so callers can drive page loads on the
    client and inspect the origin.
    """
    proxy = SplitConnectionProxy(
        sim, path, protocol, origin_handler,
        quic_cfg=quic_cfg, tcp_cfg=tcp_cfg, device=device, seed=seed,
        server_trace=server_trace, client_trace=client_trace,
    )
    return proxy.client, proxy.origin, (proxy.left_server, proxy.right_client)
